"""Setuptools shim for tooling that still invokes ``setup.py`` directly.

``pip install -e .`` does NOT go through this file: pyproject.toml points
at the in-tree, stdlib-only PEP 517 backend (``_offline_build_backend``)
so editable installs work offline without the ``wheel`` package.  All
project metadata lives in pyproject.toml's ``[project]`` table, which
setuptools >= 61 also reads when this shim is used.
"""

from setuptools import setup

setup()
