"""Setuptools shim so that ``pip install -e .`` works offline (legacy
editable installs need no wheel package).  All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
