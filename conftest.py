"""Repo-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been
installed (offline environments without the ``wheel`` package cannot run
``pip install -e .``; see README).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
