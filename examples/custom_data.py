"""Bring your own data: mine seasonal patterns from raw numpy arrays.

Shows the full public-API pipeline on user-supplied signals:

1. wrap arrays as :class:`repro.TimeSeries`;
2. symbolize with SAX (or quantile/threshold mappers);
3. choose a granularity via the sequence-mapping ratio;
4. mine with E-STPM and inspect the seasonal evidence.

Run: ``python examples/custom_data.py``
"""

import numpy as np

from repro import (
    ESTPM,
    Alphabet,
    MiningParams,
    SaxMapper,
    SymbolicDatabase,
    TimeSeries,
    build_sequence_database,
)


def make_signals(n_weeks: int = 160, seed: int = 42) -> dict[str, np.ndarray]:
    """Two coupled signals with an 8-week seasonal rhythm (hourly samples
    aggregated to weeks would work the same way)."""
    rng = np.random.default_rng(seed)
    t = np.arange(n_weeks * 7)  # daily samples
    rhythm = np.maximum(0.0, np.sin(2 * np.pi * t / (8 * 7)))  # 8-week cycle
    sales = 100 + 80 * rhythm + rng.normal(0, 6, len(t))
    shipments = 20 + 15 * np.roll(rhythm, 3) + rng.normal(0, 1.5, len(t))
    return {"Sales": sales, "Shipments": shipments}


def main() -> None:
    signals = make_signals()

    # 1-2. Wrap and symbolize (SAX with a 3-letter alphabet).
    alphabet = Alphabet.levels(["Low", "Medium", "High"])
    mapper = SaxMapper(alphabet)
    dsyb = SymbolicDatabase.from_raw(
        [TimeSeries.from_array(name, values) for name, values in signals.items()],
        mapper,
    )

    # 3. One temporal sequence per week (7 daily samples).
    dseq = build_sequence_database(dsyb, ratio=7)
    print(f"{len(dseq)} weekly sequences, events: {sorted(dseq.events())}")

    # 4. Mine: seasons are dense runs of weeks, recurring every ~8 weeks.
    params = MiningParams(
        max_period=2,
        min_density=2,
        dist_interval=(3, 12),
        min_season=5,
    )
    result = ESTPM(dseq, params).mine()
    print(f"\n{len(result)} frequent seasonal patterns:")
    for sp in sorted(result.patterns, key=lambda sp: (-sp.size, -sp.n_seasons)):
        print(f"  {sp.pattern.describe():40s} seasons={sp.n_seasons} "
              f"densities={sp.seasons.densities()}")

    high_demand = [
        sp
        for sp in result.by_size(2)
        if set(sp.pattern.events) == {"Sales:High", "Shipments:High"}
    ]
    assert high_demand, "the planted Sales/Shipments coupling should be found"
    print("\nPlanted coupling recovered:", high_demand[0].pattern.describe())


if __name__ == "__main__":
    main()
