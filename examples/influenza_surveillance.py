"""Health scenario: seasonal disease detection from surveillance data.

Mines the simulated Kawasaki influenza dataset (INF) for weather-disease
couplings like the paper's Table VIII P4/P5 (cold humid winters ->
influenza peaks), and demonstrates the tolerance buffer epsilon
(Tables XIX/XX): small epsilon values lose almost no patterns.

Run: ``python examples/influenza_surveillance.py``
"""

from repro import ESTPM, RelationConfig
from repro.datasets import load_dataset


def main() -> None:
    dataset = load_dataset("INF", profile="bench")
    print(f"Dataset {dataset.name}: {dataset.summary()}")

    params = dataset.params(min_season=4, max_period_pct=0.4, min_density_pct=0.5)
    result = ESTPM(dataset.dseq(), params).mine()
    print(f"\n{len(result)} frequent seasonal patterns")

    print("\nDisease-related patterns (weather/case couplings):")
    shown = 0
    for sp in sorted(result.patterns, key=lambda sp: (-sp.size, -sp.n_seasons)):
        if sp.size >= 2 and any(
            event.startswith(("InfluenzaCases", "InfluenzaA", "ILIVisits"))
            for event in sp.pattern.events
        ):
            print(f"  {sp.pattern.describe():60s} seasons={sp.n_seasons}")
            shown += 1
        if shown >= 10:
            break

    print("\nTolerance buffer sensitivity (Tables XIX/XX):")
    reference = None
    for epsilon in (0, 1, 2):
        swept = params.with_updates(
            relation=RelationConfig(epsilon=epsilon, min_overlap=1)
        )
        keys = ESTPM(dataset.dseq(), swept).mine().pattern_keys()
        if reference is None:
            reference = keys
        loss = 100.0 * len(reference - keys) / max(len(reference), 1)
        print(f"  epsilon={epsilon} day(s): {len(keys):5d} patterns, "
              f"loss vs eps=0: {loss:.2f}%")


if __name__ == "__main__":
    main()
