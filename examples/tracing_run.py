"""Tracing: watch where a mining run spends its time, phase by phase.

Mines the paper's Table II running example (see ``quickstart.py``) with
the telemetry layer enabled, then prints three views of the same run:

1. the nested span tree (symbolization -> sequence mapping -> step 2.1
   -> step 2.2 pair + extension kernels), each phase with its wall-clock
   and its attributes (group counts, pattern counts, kernel/backend);
2. the flat per-phase summary with *self* time (time in the phase minus
   its children), which answers "which phase itself is hot";
3. the mining counters (candidate groups, support intersections,
   bulk/near instance classifications, apriori rejections).

The same data is what ``freqstpfts run T9 --trace trace.json`` writes as
JSON.  Telemetry is off by default and costs nothing until enabled.

Run: ``python examples/tracing_run.py``
"""

from repro import ESTPM, MiningParams, SymbolicDatabase, build_sequence_database
from repro.obs import (
    disable_telemetry,
    enable_telemetry,
    phase_summary,
    reset_telemetry,
    summary,
    trace_tree,
)

TABLE_II = {
    "C": "110100110000000000111111000000100110000110",
    "D": "100100110110000000111111000000100100110110",
    "F": "001011001001111000000000111111001001001001",
    "M": "111100111110111111000111111111111000111000",
    "N": "110111111110111111000000111111111111111000",
}


def print_span(node: dict, depth: int = 0) -> None:
    attrs = " ".join(f"{k}={v}" for k, v in node.get("attrs", {}).items())
    print(f"  {'  ' * depth}{node['name']:<32} {node['seconds'] * 1e3:8.2f} ms  {attrs}")
    for child in node["children"]:
        print_span(child, depth + 1)


def main() -> None:
    reset_telemetry()
    enable_telemetry()
    try:
        dsyb = SymbolicDatabase.from_rows(TABLE_II)
        dseq = build_sequence_database(dsyb, ratio=3)
        params = MiningParams(
            max_period=2, min_density=3, dist_interval=(4, 10), min_season=2
        )
        result = ESTPM(dseq, params).mine()
    finally:
        disable_telemetry()

    print(f"{len(result)} frequent seasonal patterns; the run as a span tree:\n")
    for root in trace_tree():
        print_span(root)

    print("\nPer-phase summary (self = excluding child spans):\n")
    for row in phase_summary():
        print(
            f"  {row['name']:<32} calls={row['calls']:<3} "
            f"total={row['seconds'] * 1e3:8.2f} ms  "
            f"self={row['self_seconds'] * 1e3:8.2f} ms"
        )

    counters = summary()["counters"]
    print("\nMining counters:\n")
    for name in sorted(counters):
        print(f"  {name:<32} {counters[name]}")

    # The spans cover the whole pipeline and the counters saw real work.
    names = {row["name"] for row in phase_summary()}
    assert {"estpm/mine", "estpm/step2.1", "estpm/step2.2/pairs"} <= names
    assert counters["mine.groups.pair"] > 0


if __name__ == "__main__":
    main()
