"""Renewable-energy scenario: seasonal couplings in an energy system.

Mines the simulated Spanish renewable-energy dataset (RE) for patterns
like the paper's Table VIII P1-P3 -- strong wind driving wind power,
irradiance driving solar power -- and compares the exact miner (E-STPM)
against the approximate one (A-STPM), reporting the accuracy trade-off.

Run: ``python examples/energy_seasonality.py``
"""

from repro import ASTPM, ESTPM
from repro.datasets import load_dataset
from repro.metrics import accuracy_pct, time_call


def main() -> None:
    dataset = load_dataset("RE", profile="bench")
    print(f"Dataset {dataset.name}: {dataset.summary()}")
    print(f"  {dataset.description}")

    params = dataset.params(min_season=6, max_period_pct=0.4, min_density_pct=0.75)
    print(
        f"\nThresholds: maxPeriod={params.max_period} days, "
        f"minDensity={params.min_density}, distInterval={params.dist_interval}, "
        f"minSeason={params.min_season}"
    )

    exact, exact_seconds = time_call(lambda: ESTPM(dataset.dseq(), params).mine())
    print(f"\nE-STPM: {len(exact)} patterns in {exact_seconds:.2f}s")

    miner = ASTPM(dataset.dsyb, dataset.ratio, params, dseq=dataset.dseq())
    report = miner.screening()
    approx, approx_seconds = time_call(miner.mine)
    print(
        f"A-STPM: {len(approx)} patterns in {approx_seconds:.2f}s "
        f"(pruned series: {', '.join(report.pruned_series) or 'none'})"
    )
    print(f"A-STPM accuracy vs E-STPM: {accuracy_pct(exact, approx):.1f}%")

    print("\nEnergy couplings found (wind/solar -> generation):")
    shown = 0
    for sp in sorted(exact.patterns, key=lambda sp: -sp.n_seasons):
        events = sp.pattern.events
        if sp.size >= 2 and any("Power" in event for event in events):
            print(f"  {sp.pattern.describe():55s} seasons={sp.n_seasons}")
            shown += 1
        if shown >= 10:
            break


if __name__ == "__main__":
    main()
