"""Advanced workflow: multi-granularity mining, querying, archiving.

Demonstrates the library features beyond the core miner:

1. mine the same symbolic database at several granularities
   (:class:`repro.MultiGranularityMiner` -- the paper's contribution (1));
2. navigate a large result with :class:`repro.PatternQuery` and the
   sub-/super-pattern containment search;
3. archive results as JSON and reload them;
4. independently validate a result against its DSEQ;
5. the event-level A-STPM extension (the paper's stated future work).

Run: ``python examples/advanced_workflow.py``
"""

from repro import (
    ASTPM,
    MultiGranularityMiner,
    PatternQuery,
    superpatterns_of,
    validate_result,
)
from repro.datasets import load_dataset
from repro.io import result_from_json, result_to_json
from repro.transform import build_sequence_database


def main() -> None:
    dataset = load_dataset("INF", profile="bench")

    # 1. Multi-granularity: weekly (ratio 7) and biweekly (ratio 14).
    miner = MultiGranularityMiner(
        dataset.dsyb,
        ratios=[7, 14],
        max_period_pct=0.4,
        min_density_pct=0.5,
        dist_interval=(70, 350),  # fine (daily) granules
        min_season=4,
    )
    levels = miner.mine_all()
    for level in levels:
        print(
            f"ratio {level.ratio:2d}: {level.n_sequences} sequences, "
            f"{len(level.result)} frequent seasonal patterns "
            f"(maxPeriod={level.params.max_period}, "
            f"distInterval={level.params.dist_interval})"
        )

    weekly = levels[0].result

    # 2. Query: multi-event influenza patterns with strong seasonality.
    query = PatternQuery().with_series("InfluenzaCases").min_size(2).min_seasons(6)
    hits = query.run(weekly)
    print(f"\n{len(hits)} strong influenza couplings; top 5:")
    for sp in hits[:5]:
        print(f"  {sp.pattern.describe():55s} seasons={sp.n_seasons}")
    two_event_hits = [sp for sp in hits if sp.size == 2]
    if two_event_hits:
        supers = superpatterns_of(two_event_hits[0].pattern, weekly)
        print(
            f"  {two_event_hits[0].pattern.describe()!r} is contained in "
            f"{len(supers)} longer frequent patterns"
        )

    # 3. Archive and reload.
    archived = result_to_json(weekly)
    restored = result_from_json(archived)
    assert restored.pattern_keys() == weekly.pattern_keys()
    print(f"\nArchived {len(archived)} bytes of JSON; reload is lossless.")

    # 4. Independent validation (first 20 patterns for speed).
    dseq = build_sequence_database(dataset.dsyb, 7)
    problems = validate_result(weekly, dseq, levels[0].params, limit=20)
    print(f"Validator re-checked 20 patterns: {len(problems)} violations.")

    # 5. Event-level A-STPM (future-work extension).
    params = levels[0].params
    plain = ASTPM(dataset.dsyb, 7, params, dseq=dseq).mine()
    extended = ASTPM(dataset.dsyb, 7, params, dseq=dseq, event_level=True).mine()
    print(
        f"\nA-STPM: {len(plain)} patterns, {plain.stats.n_events_pruned} events pruned; "
        f"event-level A-STPM: {len(extended)} patterns, "
        f"{extended.stats.n_events_pruned} events pruned "
        f"in {extended.stats.mining_seconds:.2f}s vs {plain.stats.mining_seconds:.2f}s"
    )
    assert extended.pattern_keys() <= plain.pattern_keys()


if __name__ == "__main__":
    main()
