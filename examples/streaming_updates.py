"""Streaming updates: mine seasonal patterns from live data, incrementally.

A small weather-station scenario: two sensors push a handful of readings
at a time into a :class:`StreamingMiningService`.  The service symbolizes
the points online (quantile breakpoints frozen on the first window),
extends the temporal sequence database granule by granule, and updates
the frequent seasonal pattern set after every push -- without ever
re-mining history.  At the end we checkpoint the stream, restore it, and
verify the incremental state matches a full batch E-STPM run exactly.

Run: ``python examples/streaming_updates.py``
"""

import math
import tempfile
from pathlib import Path

from repro import (
    Alphabet,
    MiningParams,
    StreamingDatabase,
    StreamingMiningService,
    StreamingSymbolizer,
)


def readings(start: int, count: int) -> dict[str, list[float]]:
    """Synthetic sensor feed: a daily temperature cycle + a pump that
    switches on in the warm half of each cycle (so the two correlate
    seasonally)."""
    temperature = []
    pump = []
    for step in range(start, start + count):
        phase = math.sin(2 * math.pi * step / 24)
        temperature.append(10.0 + 8.0 * phase + 0.3 * ((step * 7919) % 13 - 6))
        pump.append(1.0 if phase > 0.2 else 0.0)
    return {"Temperature": temperature, "Pump": pump}


def main() -> None:
    alphabets = {
        "Temperature": Alphabet.levels(("Low", "Medium", "High")),
        "Pump": Alphabet.binary(),
    }
    # 4 readings per coarse granule; seasons are daily cycles.
    service = StreamingMiningService(
        database=StreamingDatabase(ratio=4, alphabets=alphabets),
        params=MiningParams(
            max_period=3,
            min_density=2,
            dist_interval=(0, 8),
            min_season=3,
        ),
        symbolizer=StreamingSymbolizer.fit(readings(0, 48), alphabets),
    )

    # The fitting window is also the first chunk of the stream.
    delta = service.push(readings(0, 48))
    print(f"warm-up: {delta.describe()}")

    # Live operation: a few readings at a time, a pattern delta per push.
    cursor = 48
    for _ in range(18):
        delta = service.push(readings(cursor, 12))
        cursor += 12
        if delta.has_changes:
            print(f"  {delta.describe()}")
            for sp in delta.promoted[:2]:
                print(f"    new: {sp.describe()}")

    result = service.result()
    border = service.border_patterns()
    print(f"\n{len(result)} frequent seasonal patterns after "
          f"{service.n_granules} granules; {len(border)} on the border")
    print(result.describe(limit=6))

    # Operational safety nets: checkpoint/restore and batch parity.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "stream-checkpoint.json"
        service.save_checkpoint(path)
        restored = StreamingMiningService.restore(path)
        assert len(restored.result()) == len(result)
        print(f"\ncheckpoint restored: {restored.n_granules} granules, "
              f"{path.stat().st_size} bytes of JSON")
    service.verify_parity()
    print("parity verified: incremental state == batch E-STPM")
    assert result.patterns, "the synthetic cycles must produce patterns"


if __name__ == "__main__":
    main()
