"""Quickstart: mine seasonal temporal patterns from the paper's running example.

Reproduces Tables II/IV of the paper end to end:

1. five binary device series at 5-minute granularity (Table II);
2. sequence mapping into 15-minute temporal sequences (Table IV);
3. E-STPM mining with maxPeriod=2, minDensity=3, distInterval=[4,10],
   minSeason=2.

Run: ``python examples/quickstart.py``
"""

from repro import ESTPM, MiningParams, SymbolicDatabase, build_sequence_database

# Table II: energy usage of five devices (C: Cooker, D: Dish washer,
# F: Food processor, M: Microwave, N: Nespresso), ON/OFF per 5 minutes.
TABLE_II = {
    "C": "110100110000000000111111000000100110000110",
    "D": "100100110110000000111111000000100100110110",
    "F": "001011001001111000000000111111001001001001",
    "M": "111100111110111111000111111111111000111000",
    "N": "110111111110111111000000111111111111111000",
}


def main() -> None:
    # Phase 1: data transformation (Defs. 3.6 and 3.9-3.11).
    dsyb = SymbolicDatabase.from_rows(TABLE_II)
    dseq = build_sequence_database(dsyb, ratio=3)  # 5-Minutes -> 15-Minutes
    print(f"DSEQ has {len(dseq)} temporal sequences; first row:")
    print(" ", dseq.describe_row(1))

    # Phase 2: seasonal temporal pattern mining (Alg. 1).
    params = MiningParams(
        max_period=2,        # occurrences <= 2 granules apart share a season
        min_density=3,       # a season needs >= 3 occurrences
        dist_interval=(4, 10),  # consecutive seasons 4..10 granules apart
        min_season=2,        # frequent = at least 2 seasons
    )
    result = ESTPM(dseq, params).mine()

    print(f"\n{len(result)} frequent seasonal patterns "
          f"(mined in {result.stats.mining_seconds:.3f}s):")
    for sp in sorted(result.patterns, key=lambda sp: (sp.size, sp.pattern.describe())):
        seasons = ", ".join(str(list(season)) for season in sp.seasons.seasons)
        print(f"  [{sp.size}-event] {sp.pattern.describe():40s} seasons: {seasons}")

    # The paper's anti-monotonicity example: M:1 alone is not seasonal,
    # yet the pattern M:1 >= N:1 is.
    singles = {sp.pattern.events[0] for sp in result.by_size(1)}
    pairs = {sp.pattern.describe() for sp in result.by_size(2)}
    assert "M:1" not in singles
    assert "M:1 >= N:1" in pairs
    print("\nAnti-monotonicity check: M:1 is not seasonal, but M:1 >= N:1 is.")


if __name__ == "__main__":
    main()
