"""Smart-city scenario: storms, congestion and incidents.

Mines the simulated NYC traffic dataset (SC) for the paper's Table VIII
P8-P11 style patterns (rain/wind -> lane blockages and incidents), then
runs the E-STPM pruning ablation (Fig. 15/16): NoPrune vs Apriori vs
Trans vs All, showing that the combined pruning is fastest while all
variants return identical results.

Run: ``python examples/traffic_incidents.py``
"""

from repro import ESTPM
from repro.core.prune import ALL_VARIANTS
from repro.datasets import load_dataset
from repro.metrics import time_call


def main() -> None:
    dataset = load_dataset("SC", profile="bench")
    print(f"Dataset {dataset.name}: {dataset.summary()}")

    params = dataset.params(min_season=6, max_period_pct=0.4, min_density_pct=0.75)
    result = ESTPM(dataset.dseq(), params).mine()
    print(f"\n{len(result)} frequent seasonal patterns")

    print("\nWeather -> traffic incident couplings:")
    shown = 0
    for sp in sorted(result.patterns, key=lambda sp: (-sp.size, -sp.n_seasons)):
        if sp.size >= 2 and any(
            event.startswith(("LaneBlocked", "FlowIncident", "Congestion"))
            for event in sp.pattern.events
        ):
            print(f"  {sp.pattern.describe():60s} seasons={sp.n_seasons}")
            shown += 1
        if shown >= 10:
            break

    print("\nPruning ablation (Fig. 15/16 shape):")
    reference = None
    for pruning in ALL_VARIANTS:
        mined, elapsed = time_call(
            lambda: ESTPM(dataset.dseq(), params, pruning).mine()
        )
        keys = mined.pattern_keys()
        if reference is None:
            reference = keys
        assert keys == reference, "prunings are lossless"
        print(f"  {pruning.label:8s} {elapsed:6.2f}s  ({len(mined)} patterns)")


if __name__ == "__main__":
    main()
