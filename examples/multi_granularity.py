"""Hierarchical multi-granularity mining on the energy dataset.

The paper's contribution (1): FreqSTPfTS mines seasonal temporal
patterns *at different data granularities*.  This example walks the RE
(renewable energy) dataset — 3-hourly raw samples — up a granularity
hierarchy to daily sequences in one hierarchical job:

1. declare the hierarchy (3-hourly ⊴2 6-hourly ⊴2 12-hourly ⊴2 daily);
2. mine every level at once with :class:`repro.HierarchicalMiner`
   (the finest level is built once; coarser levels derive their event
   supports by bit-folds and their rows by run merges);
3. ask the cross-level questions the old per-level loop could not:
   which patterns persist from sub-daily to daily granularity, which
   are granularity artifacts, and how a pattern's season count moves;
4. archive the multi-level result for ``freqstpfts query --level``.

Run: ``python examples/multi_granularity.py``
"""

from repro import HierarchicalMiner, GranularityHierarchy, TimeDomain
from repro.datasets import load_dataset
from repro.io import multigrain_from_json, multigrain_to_json


def main() -> None:
    dataset = load_dataset("RE", profile="tiny")

    # 1. The hierarchy, in instants of the DSYB (RE samples 3-hourly,
    #    so widths 1/2/4/8 are 3h / 6h / 12h / 1 day).
    domain = TimeDomain(dataset.dsyb.n_instants, unit="3h")
    hierarchy = GranularityHierarchy.from_widths(
        domain, [1, 2, 4, 8], names=["3-Hours", "6-Hours", "12-Hours", "Daily"]
    )

    # 2. One hierarchical job over every level.
    miner = HierarchicalMiner.from_hierarchy(
        dataset.dsyb,
        hierarchy,
        max_period_pct=0.4,
        min_density_pct=1.0,
        dist_interval=(0, dataset.dist_interval[1] * dataset.ratio),
        min_season=4,
        max_pattern_length=2,
    )
    result = miner.mine()
    for level, granularity in zip(result.levels, hierarchy):
        origin = (
            f"fold-derived from ratio {level.derived_from}"
            if level.derived_from is not None
            else "built from DSYB"
        )
        print(
            f"{granularity.name:>8s} (ratio {level.ratio:2d}): "
            f"{level.n_sequences:4d} sequences, "
            f"{len(level.result):3d} frequent patterns ({origin})"
        )

    # 3. Cross-level alignment.
    persistent = result.persistent_patterns()
    print(f"\n{len(persistent)} patterns persist across all 4 granularities:")
    for pattern in persistent[:5]:
        trajectory = result.seasonal_trajectory(pattern)
        seasons = ", ".join(
            f"x{ratio}:{sp.n_seasons}" for ratio, sp in sorted(trajectory.items())
        )
        print(f"  {pattern.describe():50s} seasons {seasons}")
    daily_only = result.exclusive_patterns(8)
    print(f"{len(daily_only)} patterns are frequent at the daily level only.")

    # 4. Archive and reload (the CLI reads this with `query --level 8`).
    archived = multigrain_to_json(result)
    restored = multigrain_from_json(archived)
    assert restored.ratios == result.ratios
    assert restored.persistence() == result.persistence()
    print(f"\nArchived {len(archived)} bytes of multigrain JSON; reload is lossless.")


if __name__ == "__main__":
    main()
