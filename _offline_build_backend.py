"""Self-contained PEP 517/660 build backend (stdlib only, offline-safe).

The reproduction containers have ``pip`` and ``setuptools`` but no
``wheel`` distribution and no network, which breaks every standard
``pip install -e .`` path: the setuptools backend needs ``wheel`` to build
(editable) wheels, and build isolation cannot download anything.  This
backend removes both obstacles: it reads the ``[project]`` table from
``pyproject.toml`` with :mod:`tomllib` and writes the (editable) wheel
with :mod:`zipfile` directly -- no third-party imports, no build
requirements (``requires = []``), so it works in pip's isolated build
environment without touching the network.

Supported hooks: ``build_wheel``, ``build_editable``, ``build_sdist``,
``prepare_metadata_for_build_wheel`` / ``_editable`` and the
``get_requires_for_*`` trio (all empty).  The editable wheel uses the
classical ``.pth`` mechanism pointing at ``src/``.
"""

from __future__ import annotations

import base64
import hashlib
import tarfile
import tomllib
import zipfile
from pathlib import Path

_ROOT = Path(__file__).resolve().parent
_SRC = _ROOT / "src"
_TAG = "py3-none-any"


def _project() -> dict:
    with open(_ROOT / "pyproject.toml", "rb") as handle:
        return tomllib.load(handle)["project"]


def _dist_name(project: dict) -> str:
    return project["name"].replace("-", "_")


def _metadata_lines(project: dict) -> list[str]:
    lines = [
        "Metadata-Version: 2.1",
        f"Name: {project['name']}",
        f"Version: {project['version']}",
    ]
    if "description" in project:
        lines.append(f"Summary: {project['description']}")
    if "requires-python" in project:
        lines.append(f"Requires-Python: {project['requires-python']}")
    license_text = project.get("license", {}).get("text")
    if license_text:
        lines.append(f"License: {license_text}")
    if project.get("keywords"):
        lines.append(f"Keywords: {','.join(project['keywords'])}")
    for classifier in project.get("classifiers", ()):
        lines.append(f"Classifier: {classifier}")
    for requirement in project.get("dependencies", ()):
        lines.append(f"Requires-Dist: {requirement}")
    for extra, requirements in project.get("optional-dependencies", {}).items():
        lines.append(f"Provides-Extra: {extra}")
        for requirement in requirements:
            lines.append(f'Requires-Dist: {requirement}; extra == "{extra}"')
    readme = project.get("readme")
    body = ""
    if isinstance(readme, dict) and "text" in readme:
        lines.append(
            f"Description-Content-Type: {readme.get('content-type', 'text/plain')}"
        )
        body = readme["text"]
    elif isinstance(readme, str) and (_ROOT / readme).exists():
        lines.append("Description-Content-Type: text/markdown")
        body = (_ROOT / readme).read_text()
    if body:
        lines.extend(["", body])
    return lines


def _entry_points_lines(project: dict) -> list[str]:
    scripts = project.get("scripts", {})
    if not scripts:
        return []
    lines = ["[console_scripts]"]
    lines.extend(f"{name} = {target}" for name, target in sorted(scripts.items()))
    return lines


def _dist_info_contents(project: dict) -> dict[str, str]:
    contents = {"METADATA": "\n".join(_metadata_lines(project)) + "\n"}
    entry_points = _entry_points_lines(project)
    if entry_points:
        contents["entry_points.txt"] = "\n".join(entry_points) + "\n"
    contents["WHEEL"] = (
        "Wheel-Version: 1.0\n"
        "Generator: offline-build-backend\n"
        "Root-Is-Purelib: true\n"
        f"Tag: {_TAG}\n"
    )
    return contents


def _record_entry(path: str, data: bytes) -> str:
    digest = base64.urlsafe_b64encode(hashlib.sha256(data).digest()).rstrip(b"=")
    return f"{path},sha256={digest.decode()},{len(data)}"


def _write_wheel(wheel_directory: str, project: dict, payload: dict[str, bytes]) -> str:
    name, version = _dist_name(project), project["version"]
    dist_info = f"{name}-{version}.dist-info"
    wheel_name = f"{name}-{version}-{_TAG}.whl"
    files = dict(payload)
    for filename, text in _dist_info_contents(project).items():
        files[f"{dist_info}/{filename}"] = text.encode()
    record = [_record_entry(path, data) for path, data in files.items()]
    record.append(f"{dist_info}/RECORD,,")
    files[f"{dist_info}/RECORD"] = ("\n".join(record) + "\n").encode()
    with zipfile.ZipFile(
        Path(wheel_directory) / wheel_name, "w", zipfile.ZIP_DEFLATED
    ) as archive:
        for path, data in files.items():
            archive.writestr(path, data)
    return wheel_name


def _package_payload() -> dict[str, bytes]:
    payload: dict[str, bytes] = {}
    for path in sorted(_SRC.rglob("*.py")):
        payload[path.relative_to(_SRC).as_posix()] = path.read_bytes()
    return payload


# --- PEP 517 mandatory + optional hooks ------------------------------------


def get_requires_for_build_wheel(config_settings=None):
    """No build requirements -- the backend is stdlib-only."""
    return []


get_requires_for_build_editable = get_requires_for_build_wheel
get_requires_for_build_sdist = get_requires_for_build_wheel


def prepare_metadata_for_build_wheel(metadata_directory, config_settings=None):
    """Write ``{name}-{version}.dist-info`` and return its directory name."""
    project = _project()
    dist_info = f"{_dist_name(project)}-{project['version']}.dist-info"
    target = Path(metadata_directory) / dist_info
    target.mkdir(parents=True, exist_ok=True)
    for filename, text in _dist_info_contents(project).items():
        (target / filename).write_text(text)
    return dist_info


prepare_metadata_for_build_editable = prepare_metadata_for_build_wheel


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    """Build a regular wheel containing the ``src/`` packages."""
    return _write_wheel(wheel_directory, _project(), _package_payload())


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    """Build an editable wheel: a ``.pth`` file pointing at ``src/``."""
    project = _project()
    pth = f"_{_dist_name(project)}_editable.pth"
    return _write_wheel(wheel_directory, project, {pth: f"{_SRC}\n".encode()})


def build_sdist(sdist_directory, config_settings=None):
    """Build a minimal source distribution (pyproject + backend + src)."""
    project = _project()
    base = f"{_dist_name(project)}-{project['version']}"
    sdist_name = f"{base}.tar.gz"
    members = [
        "pyproject.toml",
        "setup.py",
        "_offline_build_backend.py",
        "DESIGN.md",
        "ROADMAP.md",
    ]
    with tarfile.open(Path(sdist_directory) / sdist_name, "w:gz") as archive:
        for member in members:
            path = _ROOT / member
            if path.exists():
                archive.add(path, arcname=f"{base}/{member}")
        archive.add(_SRC, arcname=f"{base}/src")
    return sdist_name
