"""Bench T10: #seasonal patterns on INF over the threshold grid (Table X)."""

from _shared import run_once

from repro.harness import run_experiment

GRID = ((4, 0.5), (4, 1.0), (6, 0.5), (6, 1.0), (8, 0.5), (8, 1.0))


def test_table10_pattern_counts_inf(benchmark, record_artifact):
    table = run_once(
        benchmark,
        lambda: run_experiment(
            "T10", profile="bench", max_period_pcts=(0.2, 0.4), grid=GRID
        ),
    )
    record_artifact("T10", table.render())
    counts = [[int(cell) for cell in row[1:]] for row in table.rows]
    for row in counts:
        assert row[0] >= row[1] and row[2] >= row[3] and row[4] >= row[5]
        assert row[0] >= row[2] >= row[4]
        assert row[1] >= row[3] >= row[5]
        assert row[0] > 0
