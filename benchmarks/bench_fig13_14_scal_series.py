"""Bench F13/F14 (+ appendix F23/F24): scalability in #time series.

Paper shape: runtime grows with the number of series for every miner;
A-STPM grows slowest because the MI screening prunes the added
uncorrelated series before mining.
"""

import pytest
from _shared import run_once, series_means

from repro.harness import run_experiment

SERIES_COUNTS = (10, 12)


@pytest.mark.parametrize(
    "artifact", ["F13", "F14", "F23", "F24"], ids=["RE", "INF", "SC", "HFM"]
)
def test_scalability_series(benchmark, record_artifact, artifact):
    figure = run_once(
        benchmark,
        lambda: run_experiment(artifact, profile="bench", series_counts=SERIES_COUNTS),
    )
    record_artifact(artifact, figure.render())
    # The exact miners must grow with #series; A-STPM may stay flat when
    # the MI screening prunes every added series (that is its point).
    for name in ("E-STPM", "APS-growth"):
        values = figure.series[name]
        assert values[-1] > values[0], f"{name} should grow with #series"
    means = series_means(figure)
    assert means["APS-growth"] > means["E-STPM"]
    assert means["A-STPM"] <= means["E-STPM"] * 1.15
