"""Bench F11/F12 (+ appendix F21/F22): scalability in #sequences.

Paper shape: every miner's runtime grows with the number of sequences;
the baseline grows fastest (it is the one that eventually falls over on
the paper's big configurations).
"""

import pytest
from _shared import run_once, series_means

from repro.harness import run_experiment

FRACTIONS = (0.5, 1.0)


@pytest.mark.parametrize(
    "artifact", ["F11", "F12", "F21", "F22"], ids=["RE", "INF", "SC", "HFM"]
)
def test_scalability_sequences(benchmark, record_artifact, artifact):
    figure = run_once(
        benchmark,
        lambda: run_experiment(artifact, profile="bench", fractions=FRACTIONS),
    )
    record_artifact(artifact, figure.render())
    for name, values in figure.series.items():
        assert values[-1] > values[0], f"{name} should grow with #sequences"
    means = series_means(figure)
    assert means["APS-growth"] > means["E-STPM"]
    assert means["A-STPM"] <= means["E-STPM"] * 1.15
