"""Bench T5: dataset characteristics (paper Table V)."""

from _shared import run_once

from repro.harness import run_experiment


def test_table05_dataset_characteristics(benchmark, record_artifact):
    table = run_once(benchmark, lambda: run_experiment("T5", profile="bench"))
    record_artifact("T5", table.render())
    assert len(table.rows) == 4
    names = {row[0] for row in table.rows}
    assert names == {"RE", "SC", "INF", "HFM"}
    for row in table.rows:
        n_sequences, n_series, n_events = int(row[1]), int(row[2]), int(row[3])
        assert n_sequences >= 300
        assert n_series >= 6
        assert n_events > n_series  # multi-symbol alphabets
