"""Bench F15/F16 (+ appendix F25/F26): E-STPM pruning ablation.

Paper shape: (All) is fastest, (NoPrune) slowest, with (Trans) and
(Apriori) in between; all four return identical pattern sets (asserted in
the unit/property tests).
"""

import pytest
from _shared import run_once, series_means

from repro.harness import run_experiment

SWEEP = (4,)


@pytest.mark.parametrize(
    "artifact", ["F15", "F16", "F25", "F26"], ids=["RE", "INF", "SC", "HFM"]
)
def test_pruning_ablation(benchmark, record_artifact, artifact):
    figure = run_once(
        benchmark,
        lambda: run_experiment(artifact, profile="bench", vary="min_season", values=SWEEP),
    )
    record_artifact(artifact, figure.render())
    means = series_means(figure)
    # Combined pruning beats no pruning; each single technique is at most
    # marginally slower than none (single-core timing jitter allowed).
    assert means["All"] < means["NoPrune"]
    assert means["Apriori"] <= means["NoPrune"] * 1.25
    assert means["Trans"] <= means["NoPrune"] * 1.25
    assert means["All"] <= min(means["Apriori"], means["Trans"]) * 1.25
