"""Bench T7: A-STPM accuracy on the real-shaped datasets (paper Table VII).

Paper shape: accuracy >= ~80% at the loosest grid point, rising with
minSeason and minDensity, reaching 100% at the strictest point.
"""

from _shared import run_once

from repro.harness import run_experiment

MIN_SEASONS = (4, 8)
MIN_DENSITIES = (0.5, 1.0)


def test_table07_accuracy(benchmark, record_artifact):
    table = run_once(
        benchmark,
        lambda: run_experiment(
            "T7",
            profile="bench",
            datasets=("RE", "INF"),
            min_seasons=MIN_SEASONS,
            min_density_pcts=MIN_DENSITIES,
        ),
    )
    record_artifact("T7", table.render())
    accuracies = [[int(cell) for cell in row[1:]] for row in table.rows]
    # Accuracy is a valid percentage everywhere and high at the strictest
    # grid point (paper: 100 at minSeason=20, minDensity=1.0).
    for row in accuracies:
        for value in row:
            assert 0 <= value <= 100
    assert min(accuracies[-1]) >= 90
    # Rising trend in minSeason per column (tolerating small dips).
    for column in range(len(accuracies[0])):
        assert accuracies[-1][column] >= accuracies[0][column] - 5
