"""Bench F7/F8 (+ appendix F17/F18): runtime comparison of the three miners.

Paper shape: A-STPM fastest, E-STPM second, APS-growth slowest, across the
minSeason sweep on every dataset.
"""

import pytest
from _shared import run_once, series_means

from repro.harness import run_experiment

SWEEP = (4, 8)


def _check_ordering(figure):
    means = series_means(figure)
    # Allow 15% jitter on the A-vs-E comparison; the baseline gap is wide.
    assert means["A-STPM"] <= means["E-STPM"] * 1.15
    assert means["E-STPM"] < means["APS-growth"]


@pytest.mark.parametrize(
    "artifact", ["F7", "F8", "F17", "F18"], ids=["RE", "INF", "SC", "HFM"]
)
def test_runtime_comparison(benchmark, record_artifact, artifact):
    figure = run_once(
        benchmark,
        lambda: run_experiment(artifact, profile="bench", vary="min_season", values=SWEEP),
    )
    record_artifact(artifact, figure.render())
    _check_ordering(figure)
