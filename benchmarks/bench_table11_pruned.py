"""Bench T11 (+ appendix T15/T16): % series/events pruned by A-STPM at scale.

Paper shape: pruned percentages fall as the number of series grows, and
fall as minSeason/minDensity rise (they lower mu).
"""

from _shared import run_once

from repro.harness import run_experiment

SETTINGS = ((4, 0.5), (6, 0.75), (8, 1.0))


def test_table11_pruned_series_and_events(benchmark, record_artifact):
    table = run_once(
        benchmark,
        lambda: run_experiment(
            "T11",
            profile="bench",
            datasets=("RE", "INF"),
            series_counts=(12, 16, 20),
            settings=SETTINGS,
        ),
    )
    record_artifact("T11", table.render())
    values = [[float(cell) for cell in row] for row in table.rows]
    # Something is pruned at every scale, never everything.
    for row in values:
        pruned = row[1:]
        assert all(0.0 <= v <= 100.0 for v in pruned)
        assert max(pruned) > 0.0
        assert min(pruned) < 100.0
