"""Benchmark-suite configuration.

Every bench regenerates one of the paper's tables/figures via the harness
(`repro.harness.experiments`), records the rendered artifact under
``benchmarks/results/``, and asserts the *shape* the paper reports (who
wins, orderings, trends).  pytest-benchmark provides the timing envelope;
each experiment runs once (rounds=1) because the experiments themselves
are multi-run parameter sweeps.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_artifact(results_dir):
    """Persist a rendered table/figure for EXPERIMENTS.md."""

    def _record(artifact_id: str, rendered: str) -> None:
        (results_dir / f"{artifact_id}.txt").write_text(rendered + "\n")
        print(f"\n{rendered}\n")

    return _record
