"""Bench EXT5 (extension): columnar sweep-join kernels vs reference loops.

The step-2.2 instance enumeration (pair products + the Iterative Check
of Sec. IV-D 4.2.2) is the paper's dominant cost on dense data -- it is
where the FIG 7/8 runtime and the FIG 11-14 scalability sweeps spend
their time.  The columnar instance index replaces the object-at-a-time
``relation_of_pair`` product with a two-pointer sweep over start-sorted
start/end columns (bulk Follows tails skipped without classification),
index-keyed verdict rows for the extension kernel, flyweight-interned
patterns, and compact column-index assignments.

Workload: granules dense enough that every event has many instances per
granule (large sequence-mapping ratio over rapidly alternating series),
which is exactly where the pre-index kernels drown in per-pair Python
object work.  Two regimes:

* ``pairs``  -- ``max_pattern_length=2``: pure pair sweep (the k = 2
  kernel);
* ``growth`` -- ``max_pattern_length=3``: pair sweep + the extension
  kernel's verdict rows (the full pattern-growth path).

Expected shape: the sweep kernels are >= 2x faster on the recorded
dense workload; CI asserts a conservative >= 1.3x floor.  Both kernels
must produce ``results_equivalent`` output (also pinned by
tests/test_instance_index.py and the hypothesis property suite).
"""

import random
import time

import pytest
from _shared import run_once

from repro import ESTPM, MiningParams, SymbolicDatabase, build_sequence_database
from repro.core.results import results_equivalent

MIN_SPEEDUP = 1.3

#: (series, instants, mapping ratio, max_pattern_length) per regime.
REGIMES = {
    "pairs": dict(n_series=6, n_instants=4800, ratio=48, max_len=2),
    "growth": dict(n_series=4, n_instants=3600, ratio=48, max_len=3),
}


def _dense_dseq(n_series: int, n_instants: int, ratio: int):
    """A deterministic dense-granule DSEQ: short alternating runs, so
    every (event, granule) column holds many instances."""
    rng = random.Random(20230419)
    rows = {}
    for index in range(n_series):
        symbols: list[str] = []
        while len(symbols) < n_instants:
            symbols.extend(rng.choice("01") * rng.randint(1, 3))
        rows[f"S{index}"] = "".join(symbols[:n_instants])
    return build_sequence_database(SymbolicDatabase.from_rows(rows), ratio)


@pytest.mark.parametrize("regime", sorted(REGIMES))
def test_sweep_kernel_speedup(benchmark, record_artifact, regime):
    spec = REGIMES[regime]
    dseq = _dense_dseq(spec["n_series"], spec["n_instants"], spec["ratio"])
    params = MiningParams(
        max_period=4,
        min_density=2,
        dist_interval=(0, 20),
        min_season=3,
        max_pattern_length=spec["max_len"],
    )

    def measure():
        # Warm both paths once (column caches are per-job, but imports,
        # allocator state, and branch caches warm up).
        ESTPM(dseq.prefix(10), params).mine()
        ESTPM(dseq.prefix(10), params, kernel="reference").mine()
        started = time.perf_counter()
        sweep = ESTPM(dseq, params).mine()
        sweep_seconds = time.perf_counter() - started
        started = time.perf_counter()
        reference = ESTPM(dseq, params, kernel="reference").mine()
        reference_seconds = time.perf_counter() - started
        assert results_equivalent(sweep, reference), (
            "sweep kernels diverged from the reference kernels"
        )
        return sweep, sweep_seconds, reference_seconds

    sweep, sweep_seconds, reference_seconds = run_once(benchmark, measure)
    speedup = reference_seconds / sweep_seconds
    n_columns = len(dseq) * len(dseq.event_support())
    record_artifact(
        f"EXT5-kernel-{regime}",
        "\n".join(
            [
                f"EXT5 -- columnar sweep-join kernels vs pre-index reference "
                f"loops ({regime} regime)",
                f"  granules                : {len(dseq):8d} "
                f"(ratio {dseq.ratio}, {len(dseq.event_support())} events)",
                f"  event instances         : {dseq.total_instances():8d} "
                f"(~{dseq.total_instances() / n_columns:.1f} per column)",
                f"  max pattern length      : {params.max_pattern_length:8d}",
                f"  frequent patterns       : {len(sweep):8d}",
                f"  sweep kernels           : {sweep_seconds * 1000:10.1f} ms",
                f"  reference kernels       : {reference_seconds * 1000:10.1f} ms",
                f"  sweep speedup           : {speedup:10.1f}x",
                "  results are results_equivalent across kernels",
            ]
        ),
    )
    assert speedup >= MIN_SPEEDUP, (
        f"sweep kernels must be >= {MIN_SPEEDUP}x faster than the reference "
        f"kernels on the dense {regime} workload, got {speedup:.2f}x"
    )
