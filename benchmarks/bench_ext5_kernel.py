"""Bench EXT5 (extension): the step-2.2 kernel ladder.

The step-2.2 instance enumeration (pair products + the Iterative Check
of Sec. IV-D 4.2.2) is the paper's dominant cost on dense data -- it is
where the FIG 7/8 runtime and the FIG 11-14 scalability sweeps spend
their time.  This bench times all three registered kernels on the same
dense workload:

* ``reference`` -- the pre-index object-at-a-time ``relation_of_pair``
  loops (the parity baseline);
* ``sweep``     -- the columnar two-pointer sweep join over start-sorted
  tuple columns (the previous-generation kernel);
* ``array``     -- the array-backed kernel v2: vectorized bulk-Follows
  boundaries (one ``searchsorted`` pair per column), batched near-window
  classification, implicit bulk-zone assignment blocks
  (``LazyAssignments``), and O(1) bulk-zone handling in the extension
  path.  Runs vectorized when numpy is available and falls back to an
  equivalent pure-Python machine-word path otherwise (see
  ``repro.core.config.get_numpy``).

Workload: granules dense enough that every event has ~a hundred
instances per granule (large sequence-mapping ratio over rapidly
alternating series), which is exactly where per-pair Python object work
drowns.  Two regimes:

* ``pairs``  -- ``max_pattern_length=2``: pure pair enumeration (the
  k = 2 kernel), quadratic bulk zones dominate;
* ``growth`` -- ``max_pattern_length=3``: pair enumeration + the
  extension kernel's verdict rows (the full pattern-growth path).

CI asserts the array kernel's *additional* speedup over the sweep
kernel: >= 2x on the pairs regime, >= 1.3x on the full growth regime
(measured ~3.2x / ~1.8x on a dev container).  All three kernels must
produce ``results_equivalent`` output (also pinned by
tests/test_instance_index.py and the hypothesis property suites).
"""

import random
import time

import pytest
from _shared import record_benchmark_json, run_once

from repro import ESTPM, MiningParams, SymbolicDatabase, build_sequence_database
from repro.core.config import get_numpy
from repro.core.results import results_equivalent

#: (series, instants, mapping ratio, params) per regime, with the
#: array-vs-sweep CI floor.  The pairs regime uses ``min_season=1``: at
#: ratio 192 every event occurs in every granule, so the one season
#: spanning the stream is the only season -- the quantity under test is
#: the enumeration kernel, not the seasonality gate.
REGIMES = {
    "pairs": {
        "n_series": 6, "n_instants": 9600, "ratio": 192,
        "params": {"max_period": 4, "min_density": 2, "dist_interval": (0, 20),
                   "min_season": 1, "max_pattern_length": 2},
        "min_speedup": 2.0,
    },
    "growth": {
        "n_series": 4, "n_instants": 3600, "ratio": 96,
        "params": {"max_period": 4, "min_density": 2, "dist_interval": (0, 20),
                   "min_season": 3, "max_pattern_length": 3},
        "min_speedup": 1.3,
    },
}


def _dense_dseq(n_series: int, n_instants: int, ratio: int):
    """A deterministic dense-granule DSEQ: short alternating runs, so
    every (event, granule) column holds many instances."""
    rng = random.Random(20230419)
    rows = {}
    for index in range(n_series):
        symbols: list[str] = []
        while len(symbols) < n_instants:
            symbols.extend(rng.choice("01") * rng.randint(1, 3))
        rows[f"S{index}"] = "".join(symbols[:n_instants])
    return build_sequence_database(SymbolicDatabase.from_rows(rows), ratio)


@pytest.mark.parametrize("regime", sorted(REGIMES))
def test_kernel_ladder_speedup(benchmark, record_artifact, regime):
    spec = REGIMES[regime]
    dseq = _dense_dseq(spec["n_series"], spec["n_instants"], spec["ratio"])
    params = MiningParams(**spec["params"])
    min_speedup = spec["min_speedup"]

    def measure():
        # Warm every path once (column caches are per-job, but imports,
        # allocator state, and branch caches warm up).
        for kernel in ("array", "sweep", "reference"):
            ESTPM(dseq.prefix(10), params, kernel=kernel).mine()
        seconds = {}
        results = {}
        for kernel in ("array", "sweep", "reference"):
            started = time.perf_counter()
            results[kernel] = ESTPM(dseq, params, kernel=kernel).mine()
            seconds[kernel] = time.perf_counter() - started
        for kernel in ("sweep", "reference"):
            assert results_equivalent(results["array"], results[kernel]), (
                f"array kernel diverged from the {kernel} kernel"
            )
        return results["array"], seconds

    result, seconds = run_once(benchmark, measure)
    array_speedup = seconds["sweep"] / seconds["array"]
    reference_speedup = seconds["reference"] / seconds["array"]
    n_columns = len(dseq) * len(dseq.event_support())
    record_artifact(
        f"EXT5-kernel-{regime}",
        "\n".join(
            [
                f"EXT5 -- step-2.2 kernel ladder: array vs sweep vs reference "
                f"({regime} regime)",
                f"  granules                : {len(dseq):8d} "
                f"(ratio {dseq.ratio}, {len(dseq.event_support())} events)",
                f"  event instances         : {dseq.total_instances():8d} "
                f"(~{dseq.total_instances() / n_columns:.1f} per column)",
                f"  max pattern length      : {params.max_pattern_length:8d}",
                f"  frequent patterns       : {len(result):8d}",
                f"  numpy backend           : "
                f"{'yes' if get_numpy() is not None else 'no (pure-Python path)'}",
                f"  array kernel            : {seconds['array'] * 1000:10.1f} ms",
                f"  sweep kernel            : {seconds['sweep'] * 1000:10.1f} ms",
                f"  reference kernel        : {seconds['reference'] * 1000:10.1f} ms",
                f"  array vs sweep          : {array_speedup:10.1f}x "
                f"(floor {min_speedup}x)",
                f"  array vs reference      : {reference_speedup:10.1f}x",
                "  results are results_equivalent across all three kernels",
            ]
        ),
    )
    record_benchmark_json(
        "EXT5",
        {
            "name": f"kernel-{regime}",
            "workload": {
                "regime": regime,
                "n_series": spec["n_series"],
                "n_instants": spec["n_instants"],
                "ratio": spec["ratio"],
                "n_granules": len(dseq),
                "total_instances": dseq.total_instances(),
                "max_pattern_length": params.max_pattern_length,
            },
            "numpy": get_numpy() is not None,
            "seconds": seconds,
            "array_vs_sweep": array_speedup,
            "array_vs_reference": reference_speedup,
            "floor": min_speedup,
            "n_patterns": len(result),
        },
    )
    assert array_speedup >= min_speedup, (
        f"array kernel must be >= {min_speedup}x faster than the sweep kernel "
        f"on the dense {regime} workload, got {array_speedup:.2f}x"
    )
