"""Bench F9/F10 (+ appendix F19/F20): peak-memory comparison.

Paper shape: A-STPM uses the least memory, E-STPM less than APS-growth
(the baseline materializes every occurrence of every group).
"""

import pytest
from _shared import run_once, series_means

from repro.harness import run_experiment

SWEEP = (4,)


@pytest.mark.parametrize(
    "artifact", ["F9", "F10", "F19", "F20"], ids=["RE", "INF", "SC", "HFM"]
)
def test_memory_comparison(benchmark, record_artifact, artifact):
    figure = run_once(
        benchmark,
        lambda: run_experiment(artifact, profile="bench", vary="min_season", values=SWEEP),
    )
    record_artifact(artifact, figure.render())
    means = series_means(figure)
    assert means["A-STPM"] <= means["E-STPM"] * 1.1
    assert means["E-STPM"] < means["APS-growth"]
