"""Bench T12 (+ appendix T17/T18): A-STPM accuracy on synthetic scale-up.

Paper shape: accuracy rises with minSeason/minDensity and is high
throughout (>= ~85%).
"""

from _shared import run_once

from repro.harness import run_experiment

SETTINGS = ((4, 0.5), (6, 0.75), (8, 1.0))


def test_table12_accuracy_synthetic(benchmark, record_artifact):
    table = run_once(
        benchmark,
        lambda: run_experiment(
            "T12",
            profile="bench",
            datasets=("INF", "HFM"),
            series_counts=(10, 12),
            settings=SETTINGS,
        ),
    )
    record_artifact("T12", table.render())
    for row in table.rows:
        accuracies = [int(cell) for cell in row[1:]]
        assert all(0 <= value <= 100 for value in accuracies)
        # The strictest setting per dataset reaches (near) perfect recall.
        assert accuracies[2] >= 90
        assert accuracies[5] >= 90
