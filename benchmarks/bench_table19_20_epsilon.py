"""Bench T19/T20: tolerance buffer epsilon sensitivity (Tables XIX/XX).

Paper shape: epsilon = 0 loses nothing by definition; small epsilon values
lose at most a few percent of the patterns.
"""

from _shared import run_once

from repro.harness import run_experiment


def test_table19_20_epsilon_sensitivity(benchmark, record_artifact):
    table = run_once(
        benchmark,
        lambda: run_experiment(
            "T19", profile="bench", datasets=("RE", "INF"), epsilons=(0, 1, 2)
        ),
    )
    record_artifact("T19", table.render())
    # Row 0 is epsilon=0: zero loss on both datasets.
    assert float(table.rows[0][2]) == 0.0
    assert float(table.rows[0][4]) == 0.0
    # Larger epsilons keep losses moderate (paper: <= ~2.5%; we allow 15%
    # because epsilon is in coarse 3-hourly/daily granules here).
    for row in table.rows[1:]:
        assert float(row[2]) <= 15.0
        assert float(row[4]) <= 15.0
        assert int(row[1]) > 0 and int(row[3]) > 0
