"""Bench T13/T14: #seasonal patterns on SC and HFM (appendix Tables XIII/XIV)."""

from _shared import run_once

from repro.harness import run_experiment

GRID = ((4, 0.5), (6, 0.5), (8, 0.5))


def _check(table):
    counts = [[int(cell) for cell in row[1:]] for row in table.rows]
    for row in counts:
        assert row[0] >= row[1] >= row[2]  # minSeason up -> fewer patterns
        assert row[0] > 0


def test_table13_pattern_counts_sc(benchmark, record_artifact):
    table = run_once(
        benchmark,
        lambda: run_experiment(
            "T13", profile="bench", max_period_pcts=(0.2, 0.4), grid=GRID
        ),
    )
    record_artifact("T13", table.render())
    _check(table)


def test_table14_pattern_counts_hfm(benchmark, record_artifact):
    table = run_once(
        benchmark,
        lambda: run_experiment(
            "T14", profile="bench", max_period_pcts=(0.2, 0.4), grid=GRID
        ),
    )
    record_artifact("T14", table.render())
    _check(table)
