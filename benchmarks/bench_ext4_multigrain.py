"""Bench EXT4 (extension): fold-derived hierarchy vs per-level rebuilds.

The hierarchical miner's value proposition: mining a granularity
hierarchy should not pay the sequence-mapping setup once per level.  The
pre-1.3 ``MultiGranularityMiner`` rebuilt DSEQ from the raw symbol
stream and re-scanned every event's support at every level; the
``fold`` strategy builds the finest level once and *derives* each
coarser level -- event supports by big-int bit-folds, candidacy gates
from the folded supports before any row exists, and granule rows only
where a candidate event needs them.

Workload: the multigrain seasonal *event* scan (``max_pattern_length=1``
-- "which events are seasonal at which granularity?"), the first-stage
multigrain workload where the per-level setup dominates, on a
long-horizon scaled RE/INF dataset over a six-level hierarchy.  Pattern
mining at k >= 2 runs identical group enumeration under both strategies
(the parity tests pin byte-equal results), so its cost is
strategy-independent; EXT2/EXT3 cover that regime.

Expected shape: fold-derived multi-level mining is at least 2x faster
than the per-level-rebuild baseline on a >= 3-level hierarchy, with
``results_equivalent`` levels.
"""

import time

import pytest
from _shared import record_benchmark_json, run_once

from repro.core.results import results_equivalent
from repro.datasets.energy import build_re
from repro.datasets.health import build_inf
from repro.datasets.scaling import scale_sequences
from repro.multigrain import HierarchicalMiner

N_SEQUENCES = 2000
MULTIPLES = (1, 2, 3, 4, 6, 8)
MIN_SPEEDUP = 2.0

BUILDERS = {"RE": (build_re, 16), "INF": (build_inf, 12)}


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_fold_vs_rebuild_hierarchy(benchmark, record_artifact, name):
    builder, n_series = BUILDERS[name]
    dataset = scale_sequences(builder, N_SEQUENCES, n_series=n_series)
    ratios = [dataset.ratio * multiple for multiple in MULTIPLES]
    settings = {
        "max_period_pct": 0.4,
        "min_density_pct": 2.0,
        "dist_interval": (
            dataset.dist_interval[0] * dataset.ratio,
            dataset.dist_interval[1] * dataset.ratio,
        ),
        "min_season": 6,
        "max_pattern_length": 1,
    }

    def measure():
        started = time.perf_counter()
        fold = HierarchicalMiner(
            dataset.dsyb, ratios=ratios, strategy="fold", **settings
        ).mine()
        fold_seconds = time.perf_counter() - started
        started = time.perf_counter()
        rebuild = HierarchicalMiner(
            dataset.dsyb, ratios=ratios, strategy="rebuild", **settings
        ).mine()
        rebuild_seconds = time.perf_counter() - started
        for fold_level, rebuild_level in zip(fold.levels, rebuild.levels):
            assert results_equivalent(fold_level.result, rebuild_level.result), (
                f"fold level {fold_level.ratio} diverged from the rebuild baseline"
            )
        return fold, fold_seconds, rebuild_seconds

    fold, fold_seconds, rebuild_seconds = run_once(benchmark, measure)
    speedup = rebuild_seconds / fold_seconds
    skipped = sum(level.n_granules_skipped for level in fold.levels)
    screened = sum(level.n_events_screened for level in fold.levels)
    record_artifact(
        f"EXT4-multigrain-{name}",
        "\n".join(
            [
                f"EXT4 -- fold-derived hierarchy vs per-level rebuild on {name} "
                f"(scaled, {N_SEQUENCES} sequences x {n_series} series)",
                f"  hierarchy levels        : {len(ratios):6d} "
                f"(ratios {', '.join(str(r) for r in ratios)})",
                f"  frequent events/level   : "
                + ", ".join(str(len(level.result)) for level in fold.levels),
                f"  events screened (folds) : {screened:6d}",
                f"  granule rows skipped    : {skipped:6d}",
                f"  fold-derived mining     : {fold_seconds * 1000:10.1f} ms",
                f"  per-level rebuilds      : {rebuild_seconds * 1000:10.1f} ms",
                f"  fold speedup            : {speedup:10.1f}x",
                "  per-level results are results_equivalent across strategies",
            ]
        ),
    )
    record_benchmark_json(
        "EXT4",
        {
            "name": f"multigrain-{name}",
            "workload": {"dataset": name, "n_sequences": N_SEQUENCES,
                         "ratios": list(ratios)},
            "fold_seconds": fold_seconds,
            "rebuild_seconds": rebuild_seconds,
            "speedup": speedup,
            "floor": MIN_SPEEDUP,
            "events_screened": screened,
            "granule_rows_skipped": skipped,
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"fold-derived hierarchical mining must be >= {MIN_SPEEDUP}x faster "
        f"than per-level rebuilds, got {speedup:.1f}x"
    )
