"""Bench EXT3 (extension): incremental streaming vs batch re-mining.

The streaming subsystem's value proposition: once a stream is long, an
incremental advance must beat re-mining the whole database from scratch.
On the Fig. 11/12 scaling workloads we replay each dataset as a stream
(initial warm-up window, then fixed-size granule batches) and measure

* the mean per-batch incremental update latency in the late stream
  (prefixes beyond 4x the initial window), and
* the wall clock of one full batch E-STPM re-mine at stream end (what a
  batch deployment would pay on every arrival).

Expected shape: the incremental update is at least 5x faster than the
re-mine once the stream exceeds ~4x the initial window -- per-advance
work is proportional to the new granules (plus bounded catch-ups), while
a re-mine walks the entire history.  A final parity check asserts the
streamed result equals the batch result exactly.
"""

import time

import pytest
from _shared import record_benchmark_json, run_once

from repro.core.results import results_equivalent
from repro.core.stpm import ESTPM
from repro.datasets.registry import DATASET_BUILDERS, PROFILES
from repro.streaming import replay_dataset

BATCH_GRANULES = 8
MIN_SPEEDUP = 5.0


@pytest.mark.parametrize("name", ["RE", "INF"])
def test_incremental_vs_batch_remine(benchmark, record_artifact, name):
    n_sequences, n_series = PROFILES["bench"][name]
    dataset = DATASET_BUILDERS[name](n_sequences=n_sequences, n_series=n_series)
    params = dataset.params(max_period_pct=0.4, min_density_pct=0.75, min_season=6)
    initial = n_sequences // 5

    def measure():
        latencies = []
        service = None
        for service, delta in replay_dataset(
            dataset,
            params,
            batch_granules=BATCH_GRANULES,
            initial_granules=initial,
        ):
            latencies.append((service.n_granules, delta.seconds))
        started = time.perf_counter()
        batch_result = ESTPM(dataset.dseq(), params).mine()
        remine_seconds = time.perf_counter() - started
        assert results_equivalent(service.result(), batch_result), (
            "streamed result must equal batch E-STPM at stream end"
        )
        return latencies, remine_seconds, len(batch_result)

    latencies, remine_seconds, n_patterns = run_once(benchmark, measure)
    late = [seconds for granules, seconds in latencies if granules >= 4 * initial]
    mean_late = sum(late) / len(late)
    speedup = remine_seconds / mean_late
    total_incremental = sum(seconds for _, seconds in latencies)
    record_artifact(
        f"EXT3-streaming-{name}",
        "\n".join(
            [
                f"EXT3 -- incremental streaming vs batch re-mine on {name} "
                f"(bench profile, {n_sequences} granules)",
                f"  initial window          : {initial:6d} granules",
                f"  batch size              : {BATCH_GRANULES:6d} granules",
                f"  frequent patterns       : {n_patterns:6d}",
                f"  mean incr. update (>4x) : {mean_late * 1000:10.1f} ms/batch",
                f"  full batch re-mine      : {remine_seconds * 1000:10.1f} ms",
                f"  incremental speedup     : {speedup:10.1f}x",
                f"  whole-stream mining     : {total_incremental:10.2f} s "
                f"({len(latencies)} advances)",
            ]
        ),
    )
    record_benchmark_json(
        "EXT3",
        {
            "name": f"streaming-{name}",
            "workload": {"dataset": name, "n_granules": n_sequences,
                         "initial_granules": initial,
                         "batch_granules": BATCH_GRANULES},
            "mean_late_update_seconds": mean_late,
            "batch_remine_seconds": remine_seconds,
            "speedup": speedup,
            "floor": MIN_SPEEDUP,
            "total_incremental_seconds": total_incremental,
            "n_advances": len(latencies),
            "n_patterns": n_patterns,
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"late-stream incremental updates must be >= {MIN_SPEEDUP}x faster than "
        f"a batch re-mine, got {speedup:.1f}x"
    )
