"""Bench T8: qualitative seasonal patterns (paper Table VIII).

Paper shape: each domain yields interpretable driver -> response
couplings (wind -> wind power, weather -> disease, storms -> incidents).
"""

from _shared import run_once

from repro.harness import run_experiment


def test_table08_qualitative_patterns(benchmark, record_artifact):
    table = run_once(
        benchmark, lambda: run_experiment("T8", profile="bench", per_dataset=3)
    )
    record_artifact("T8", table.render())
    datasets = {row[0] for row in table.rows}
    assert {"RE", "SC", "INF", "HFM"} <= datasets
    for row in table.rows:
        assert int(row[2]) >= 2  # at least two seasons
        assert int(row[3]) >= 2  # multi-event patterns
    rendered = table.render()
    # Domain couplings the paper highlights.
    assert "Power" in rendered
    assert "Influenza" in rendered or "ILIVisits" in rendered
