"""Bench EXT2 (extension): bitset support engine + parallel executor.

Two measurements on the Fig. 11/12 scaling-in-#sequences workloads:

* **Intersection throughput** -- pairwise support-set intersections over
  every event support of the workload, bitset (big-int ``&``) vs the
  classical sorted-list two-pointer merge.  Expected shape: the bitset
  representation wins by an order of magnitude (the merge is Python-level
  work, the ``&`` is one C call).
* **Serial vs parallel wall-clock** -- full E-STPM runs through the
  :class:`SerialExecutor` and the process-pool :class:`ParallelExecutor`,
  asserting the two mining results are identical (same patterns, same
  supports, same season views, same order).  The speedup column is
  informational: on a single-core runner the pool overhead makes the
  parallel backend slower; with cores it approaches the worker count on
  the group-heavy configurations.
"""

import time

import pytest
from _shared import run_once

from repro.core.executor import ParallelExecutor
from repro.core.stpm import ESTPM
from repro.core.supportset import make_support_set
from repro.datasets.registry import DATASET_BUILDERS, PROFILES

FRACTIONS = (0.5, 1.0)
INTERSECTION_ROUNDS = 40


def _scaling_dataset(name: str, fraction: float):
    base_sequences, n_series = PROFILES["bench"][name]
    return DATASET_BUILDERS[name](
        n_sequences=max(int(base_sequences * fraction), 8), n_series=n_series
    )


def _intersection_throughput(supports) -> float:
    """Pairwise intersections per second over one support-set list."""
    started = time.perf_counter()
    n_ops = 0
    for _ in range(INTERSECTION_ROUNDS):
        for left in supports:
            for right in supports:
                len(left & right)
                n_ops += 1
    return n_ops / (time.perf_counter() - started)


@pytest.mark.parametrize("name", ["RE", "INF"])
def test_bitset_vs_list_intersection_throughput(benchmark, record_artifact, name):
    dataset = _scaling_dataset(name, 1.0)
    event_supports = dataset.dseq().event_support("list")
    positions = [support.positions() for support in event_supports.values()]
    as_lists = [make_support_set(p, "list") for p in positions]
    as_bitsets = [make_support_set(p, "bitset") for p in positions]

    def measure():
        return (
            _intersection_throughput(as_lists),
            _intersection_throughput(as_bitsets),
        )

    list_ops, bitset_ops = run_once(benchmark, measure)
    speedup = bitset_ops / list_ops
    record_artifact(
        f"EXT2-intersect-{name}",
        "\n".join(
            [
                f"EXT2 -- support intersection throughput on {name} "
                f"(Fig. 11/12 workload, {len(positions)} event supports)",
                f"  sorted-list merge : {list_ops:12.0f} ops/s",
                f"  big-int bitset    : {bitset_ops:12.0f} ops/s",
                f"  bitset speedup    : {speedup:12.1f}x",
            ]
        ),
    )
    assert bitset_ops > list_ops, "bitset intersection should beat the list merge"


@pytest.mark.parametrize("name", ["RE", "INF"])
def test_serial_vs_parallel_executor(benchmark, record_artifact, name):
    datasets = [_scaling_dataset(name, fraction) for fraction in FRACTIONS]
    params = [
        dataset.params(max_period_pct=0.4, min_density_pct=0.75, min_season=6)
        for dataset in datasets
    ]

    def measure():
        rows = []
        for dataset, p in zip(datasets, params):
            dseq = dataset.dseq()
            started = time.perf_counter()
            serial = ESTPM(dseq, p, executor="serial").mine()
            serial_seconds = time.perf_counter() - started
            started = time.perf_counter()
            parallel = ESTPM(dseq, p, executor=ParallelExecutor()).mine()
            parallel_seconds = time.perf_counter() - started
            rows.append((len(dseq), serial, serial_seconds, parallel, parallel_seconds))
        return rows

    rows = run_once(benchmark, measure)
    lines = [
        f"EXT2 -- serial vs parallel E-STPM on {name} (Fig. 11/12 workload)",
        "  #seq   serial(s)  parallel(s)  speedup  #patterns",
    ]
    for n_seq, serial, serial_seconds, parallel, parallel_seconds in rows:
        assert [(sp.pattern, sp.seasons) for sp in serial.patterns] == [
            (sp.pattern, sp.seasons) for sp in parallel.patterns
        ], "executor backends must return identical mining results"
        lines.append(
            f"  {n_seq:5d}  {serial_seconds:9.2f}  {parallel_seconds:11.2f}"
            f"  {serial_seconds / parallel_seconds:7.2f}  {len(serial):9d}"
        )
    record_artifact(f"EXT2-parallel-{name}", "\n".join(lines))
