"""Bench EXT2 (extension): bitset support engine + parallel executor.

Three measurements:

* **Intersection throughput** (Fig. 11/12 workloads) -- pairwise
  support-set intersections over every event support of the workload,
  bitset (big-int ``&``) vs the classical sorted-list two-pointer merge.
  Expected shape: the bitset representation wins by an order of magnitude
  (the merge is Python-level work, the ``&`` is one C call).
* **Serial vs parallel wall-clock** (Fig. 11/12 workloads) -- full E-STPM
  runs through the :class:`SerialExecutor` and the process-pool
  :class:`ParallelExecutor`, asserting the two mining results are
  identical (same patterns, same supports, same season views, same
  order).  The speedup column is informational: on a single-core runner
  the pool overhead makes the parallel backend slower; with cores it
  approaches the worker count on the group-heavy configurations.
* **Pool reuse vs per-level pool spawn** -- a multi-level workload (four
  seed datasets' E-STPM levels plus a two-level fold hierarchy, nine
  parallel level dispatches in all) run once with a fresh worker pool per
  level (the pre-1.4 executor lifecycle) and once through one persistent,
  reused pool.  Measured under ``spawn`` worker semantics -- the portable
  start method (macOS/Windows default), where every pool spawn boots new
  interpreters; under Linux ``fork`` a fresh pool inherits the level
  context copy-on-write, which is why ``reuse_pool`` auto-selects per
  start method.  The reused pool must win by >= 1.3x (asserted; CI runs
  this as part of the bench smoke), with identical mining results across
  serial / per-level / reused / threads backends.
"""

import time

import pytest
from _shared import record_benchmark_json, run_once

from repro.core.executor import ParallelExecutor, SerialExecutor, ThreadExecutor
from repro.core.results import results_equivalent
from repro.core.stpm import ESTPM
from repro.core.supportset import make_support_set
from repro.datasets.registry import DATASET_BUILDERS, PROFILES
from repro.multigrain import HierarchicalMiner

FRACTIONS = (0.5, 1.0)
INTERSECTION_ROUNDS = 40


def _scaling_dataset(name: str, fraction: float):
    base_sequences, n_series = PROFILES["bench"][name]
    return DATASET_BUILDERS[name](
        n_sequences=max(int(base_sequences * fraction), 8), n_series=n_series
    )


def _intersection_throughput(supports) -> float:
    """Pairwise intersections per second over one support-set list."""
    started = time.perf_counter()
    n_ops = 0
    for _ in range(INTERSECTION_ROUNDS):
        for left in supports:
            for right in supports:
                len(left & right)
                n_ops += 1
    return n_ops / (time.perf_counter() - started)


@pytest.mark.parametrize("name", ["RE", "INF"])
def test_bitset_vs_list_intersection_throughput(benchmark, record_artifact, name):
    dataset = _scaling_dataset(name, 1.0)
    event_supports = dataset.dseq().event_support("list")
    positions = [support.positions() for support in event_supports.values()]
    as_lists = [make_support_set(p, "list") for p in positions]
    as_bitsets = [make_support_set(p, "bitset") for p in positions]

    def measure():
        return (
            _intersection_throughput(as_lists),
            _intersection_throughput(as_bitsets),
        )

    list_ops, bitset_ops = run_once(benchmark, measure)
    speedup = bitset_ops / list_ops
    record_artifact(
        f"EXT2-intersect-{name}",
        "\n".join(
            [
                f"EXT2 -- support intersection throughput on {name} "
                f"(Fig. 11/12 workload, {len(positions)} event supports)",
                f"  sorted-list merge : {list_ops:12.0f} ops/s",
                f"  big-int bitset    : {bitset_ops:12.0f} ops/s",
                f"  bitset speedup    : {speedup:12.1f}x",
            ]
        ),
    )
    record_benchmark_json(
        "EXT2",
        {
            "name": f"intersect-{name}",
            "workload": {"dataset": name, "n_supports": len(positions),
                         "rounds": INTERSECTION_ROUNDS},
            "list_ops_per_s": list_ops,
            "bitset_ops_per_s": bitset_ops,
            "speedup": speedup,
        },
    )
    assert bitset_ops > list_ops, "bitset intersection should beat the list merge"


@pytest.mark.parametrize("name", ["RE", "INF"])
def test_serial_vs_parallel_executor(benchmark, record_artifact, name):
    datasets = [_scaling_dataset(name, fraction) for fraction in FRACTIONS]
    params = [
        dataset.params(max_period_pct=0.4, min_density_pct=0.75, min_season=6)
        for dataset in datasets
    ]

    def measure():
        rows = []
        for dataset, p in zip(datasets, params):
            dseq = dataset.dseq()
            started = time.perf_counter()
            serial = ESTPM(dseq, p, executor="serial").mine()
            serial_seconds = time.perf_counter() - started
            started = time.perf_counter()
            parallel = ESTPM(dseq, p, executor=ParallelExecutor()).mine()
            parallel_seconds = time.perf_counter() - started
            rows.append((len(dseq), serial, serial_seconds, parallel, parallel_seconds))
        return rows

    rows = run_once(benchmark, measure)
    lines = [
        f"EXT2 -- serial vs parallel E-STPM on {name} (Fig. 11/12 workload)",
        "  #seq   serial(s)  parallel(s)  speedup  #patterns",
    ]
    for n_seq, serial, serial_seconds, parallel, parallel_seconds in rows:
        assert [(sp.pattern, sp.seasons) for sp in serial.patterns] == [
            (sp.pattern, sp.seasons) for sp in parallel.patterns
        ], "executor backends must return identical mining results"
        lines.append(
            f"  {n_seq:5d}  {serial_seconds:9.2f}  {parallel_seconds:11.2f}"
            f"  {serial_seconds / parallel_seconds:7.2f}  {len(serial):9d}"
        )
    record_artifact(f"EXT2-parallel-{name}", "\n".join(lines))
    record_benchmark_json(
        "EXT2",
        {
            "name": f"parallel-{name}",
            "workload": {"dataset": name, "fractions": list(FRACTIONS)},
            "rows": [
                {
                    "n_sequences": n_seq,
                    "serial_seconds": serial_seconds,
                    "parallel_seconds": parallel_seconds,
                    "speedup": serial_seconds / parallel_seconds,
                    "n_patterns": len(serial),
                }
                for n_seq, serial, serial_seconds, _, parallel_seconds in rows
            ],
        },
    )


# ---------------------------------------------------------------------------
# Pool reuse vs per-level pool spawn (the persistent runtime's headline win)
# ---------------------------------------------------------------------------

#: The multi-level workload: (dataset, n_sequences, n_series, min_season)
#: E-STPM jobs -- two parallel HLH levels each -- plus a two-level fold
#: hierarchy, so one executor sees nine level dispatches across five
#: jobs.  The per-level mining work is kept small on purpose: the
#: quantity under test is the executor *lifecycle* cost per level (pool
#: spawn vs context broadcast), not the group mining itself.
_REUSE_JOBS = (
    ("RE", 48, 3, 3),
    ("INF", 52, 4, 4),
    ("SC", 48, 3, 3),
    ("HFM", 52, 4, 4),
)
_REUSE_SPEEDUP_FLOOR = 1.3


def _mine_multi_level(datasets, executor):
    """Run the whole multi-level workload through one executor spec."""
    results = []
    for name, _, _, min_season in _REUSE_JOBS:
        dataset, dseq = datasets[name]
        params = dataset.params(
            max_period_pct=0.4, min_density_pct=0.75, min_season=min_season
        )
        results.append(ESTPM(dseq, params, executor=executor).mine())
    dataset, _ = datasets["RE"]
    hierarchy = HierarchicalMiner(
        dataset.dsyb,
        ratios=[dataset.ratio, dataset.ratio * 2],
        min_season=3,
        executor=executor,
    ).mine()
    results.extend(level.result for level in hierarchy.levels)
    return results


def test_pool_reuse_multi_level(benchmark, record_artifact):
    datasets = {}
    for name, n_sequences, n_series, _ in _REUSE_JOBS:
        dataset = DATASET_BUILDERS[name](
            n_sequences=n_sequences, n_series=n_series
        )
        datasets[name] = (dataset, dataset.dseq())

    def measure():
        timings = {}
        started = time.perf_counter()
        serial = _mine_multi_level(datasets, SerialExecutor())
        timings["serial"] = time.perf_counter() - started

        per_call = ParallelExecutor(
            max_workers=2, min_tasks=1, reuse_pool=False, start_method="spawn"
        )
        started = time.perf_counter()
        spawned = _mine_multi_level(datasets, per_call)
        timings["per-level pools"] = time.perf_counter() - started

        started = time.perf_counter()
        with ParallelExecutor(
            max_workers=2, min_tasks=1, reuse_pool=True, start_method="spawn"
        ) as reused:
            pooled = _mine_multi_level(datasets, reused)
        timings["reused pool"] = time.perf_counter() - started

        started = time.perf_counter()
        with ThreadExecutor(max_workers=2, min_tasks=1) as threads:
            threaded = _mine_multi_level(datasets, threads)
        timings["threads"] = time.perf_counter() - started
        return timings, serial, spawned, pooled, threaded

    timings, serial, spawned, pooled, threaded = run_once(benchmark, measure)
    for variant in (spawned, pooled, threaded):
        assert len(variant) == len(serial)
        for left, right in zip(serial, variant):
            assert results_equivalent(left, right), (
                "executor backends must return equivalent mining results"
            )
    assert sum(len(r) for r in serial) > 0, "reuse workload mined nothing"
    speedup = timings["per-level pools"] / timings["reused pool"]
    lines = [
        "EXT2 -- pool reuse vs per-level pool spawn (multi-level workload: "
        f"{len(_REUSE_JOBS)} E-STPM jobs + 2-level RE hierarchy, 9 level "
        "dispatches; 2 spawn-method workers)",
        "  backend              wall clock (s)",
        f"  serial               {timings['serial']:13.2f}",
        f"  per-level pools      {timings['per-level pools']:13.2f}",
        f"  reused pool          {timings['reused pool']:13.2f}",
        f"  threads (reused)     {timings['threads']:13.2f}",
        f"  pool-reuse speedup   {speedup:12.2f}x  (floor {_REUSE_SPEEDUP_FLOOR}x)",
        "  (spawn start method: every per-level pool boots fresh "
        "interpreters, the portable cost the persistent runtime removes; "
        "under Linux fork a fresh pool is nearly free via copy-on-write, "
        "so reuse_pool auto-selects per start method)",
    ]
    record_artifact("EXT2-pool-reuse", "\n".join(lines))
    record_benchmark_json(
        "EXT2",
        {
            "name": "pool-reuse",
            "workload": {"jobs": [job[0] for job in _REUSE_JOBS],
                         "n_level_dispatches": 9, "workers": 2},
            "seconds": dict(timings),
            "speedup": speedup,
            "floor": _REUSE_SPEEDUP_FLOOR,
        },
    )
    assert speedup >= _REUSE_SPEEDUP_FLOOR, (
        f"pool reuse speedup {speedup:.2f}x below the {_REUSE_SPEEDUP_FLOOR}x floor"
    )
