"""Bench T9: #seasonal patterns on RE over the threshold grid (Table IX).

Paper shape: counts fall as minSeason/minDensity rise; higher maxPeriod
admits more (or equal) patterns.
"""

from _shared import run_once

from repro.harness import run_experiment

GRID = ((4, 0.5), (4, 1.0), (6, 0.5), (6, 1.0), (8, 0.5), (8, 1.0))


def test_table09_pattern_counts_re(benchmark, record_artifact):
    table = run_once(
        benchmark,
        lambda: run_experiment(
            "T9", profile="bench", max_period_pcts=(0.2, 0.4), grid=GRID
        ),
    )
    record_artifact("T9", table.render())
    counts = [[int(cell) for cell in row[1:]] for row in table.rows]
    for row in counts:
        # minDensity up (same minSeason) -> fewer or equal patterns.
        assert row[0] >= row[1] and row[2] >= row[3] and row[4] >= row[5]
        # minSeason up (same minDensity) -> fewer or equal patterns.
        assert row[0] >= row[2] >= row[4]
        assert row[1] >= row[3] >= row[5]
        assert row[0] > 0
