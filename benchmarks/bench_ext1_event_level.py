"""Bench EXT1: event-level A-STPM ablation (the paper's future work).

Expected shape: the extension returns a subset of A-STPM's patterns at
comparable or lower runtime, pruning at least as many events.
"""

from _shared import run_once

from repro.harness import run_experiment


def test_ext1_event_level_astpm(benchmark, record_artifact):
    table = run_once(
        benchmark,
        lambda: run_experiment(
            "EXT1", profile="bench", datasets=("RE", "INF"), min_seasons=(4, 8)
        ),
    )
    record_artifact("EXT1", table.render())
    for row in table.rows:
        plain_patterns, extended_patterns = int(row[2]), int(row[3])
        plain_accuracy, extended_accuracy = int(row[4]), int(row[5])
        extra_pruned = int(row[8])
        assert extended_patterns <= plain_patterns  # subset property
        assert extended_accuracy <= plain_accuracy
        assert extra_pruned >= 0
