"""Bench EXT6 (extension): the front-end ladder (symbolize -> DSEQ -> step 2.1).

PRs 5-6 made step-2.2 pattern growth up to ~55x faster, so by Amdahl the
pipeline's wall-clock moved into the front end: quantile symbolization,
the sequence mapping ``g: XS ->m H``, and the step-2.1 single-event scan
(supports + maxSeason/frequency gates).  This bench times the full front
end twice on the same seasonal scale workload
(:func:`repro.datasets.scaling.frontend_workload`):

* ``vectorized`` -- the columnar front end: one-``searchsorted`` binning,
  one-pass columnar DSEQ construction priming per-event supports and
  instance columns, batched season gate (``count_seasons_batch``);
* ``scalar``     -- the parity reference: pure-Python binning loops
  (``REPRO_COMPUTE=python``), granule-by-granule DSEQ rows, per-event
  season chains.

Two regimes, matching the acceptance floors:

* ``numpy``  -- vectorized arm on the numpy compute backend vs the fully
  scalar arm; floor >= 2x end-to-end;
* ``python`` -- both arms under ``REPRO_COMPUTE=python`` (the columnar
  builder's single-pass run sweep vs the per-granule loops); floor
  >= 1.2x.

Both arms must produce byte-identical symbol streams and
``results_equivalent`` mining output.  A third, traced run of the
vectorized arm embeds the per-phase ``self_seconds`` breakdown
(``obs.phase_summary``) into ``BENCH_EXT6.json`` so the Amdahl picture
ships with the numbers.
"""

import time
from contextlib import contextmanager

import pytest
from _shared import record_benchmark_json, run_once

from repro import ESTPM, SymbolicDatabase, build_sequence_database
from repro.core.config import get_numpy, set_compute_backend
from repro.core.results import results_equivalent
from repro.datasets.scaling import frontend_workload, scale_alphabet
from repro.obs import (
    disable_telemetry,
    enable_telemetry,
    phase_summary,
    reset_telemetry,
)
from repro.obs.trace import span
from repro.symbolic.mapping import QuantileMapper
from repro.symbolic.series import TimeSeries

#: Workload shared by both regimes (smooth seasonal sines -- low noise
#: keeps symbol runs multiple instants long, the regime where per-symbol
#: work dominates the scalar arm; see frontend_workload).  The regimes
#: pick the compute backend per arm and the CI floor.
WORKLOAD = {"n_granules": 1600, "n_series": 8, "alphabet_size": 5, "ratio": 12, "noise": 0.05}
REGIMES = {
    "numpy": {"vec_backend": None, "scalar_backend": "python", "min_speedup": 2.0},
    "python": {"vec_backend": "python", "scalar_backend": "python", "min_speedup": 1.2},
}


@contextmanager
def _compute(backend):
    """Pin the compute backend for one arm (None = the session default)."""
    if backend is None:
        yield
        return
    set_compute_backend(backend)
    try:
        yield
    finally:
        set_compute_backend(None)


def _pipeline(series, alphabet, ratio, params, frontend):
    """Run symbolize -> build DSEQ -> step 2.1 and time each phase.

    ``series`` holds prebuilt :class:`TimeSeries` objects -- input
    preparation is not symbolization, so it stays outside the clock.
    """
    phases = {}
    started = time.perf_counter()
    with span("ext6/symbolize", series=len(series)):
        mapper = QuantileMapper(alphabet)
        dsyb = SymbolicDatabase()
        for one in series:
            dsyb.add(mapper.encode(one))
    phases["symbolize"] = time.perf_counter() - started
    started = time.perf_counter()
    dseq = build_sequence_database(dsyb, ratio, frontend=frontend)
    phases["build_dseq"] = time.perf_counter() - started
    started = time.perf_counter()
    result = ESTPM(dseq, params).mine()
    phases["step2.1"] = time.perf_counter() - started
    phases["total"] = sum(phases.values())
    return result, phases


@pytest.mark.parametrize("regime", sorted(REGIMES))
def test_frontend_ladder_speedup(benchmark, record_artifact, regime):
    spec = REGIMES[regime]
    if regime == "numpy" and get_numpy() is None:
        pytest.skip("numpy compute backend unavailable (REPRO_COMPUTE=python)")
    dataset = frontend_workload(**WORKLOAD)
    series = [
        TimeSeries.from_array(name, values) for name, values in dataset.raw.items()
    ]
    alphabet = scale_alphabet(WORKLOAD["alphabet_size"])
    ratio = dataset.ratio
    params = dataset.params(
        max_period_pct=0.4, min_density_pct=0.35, min_season=4, max_pattern_length=1
    )
    min_speedup = spec["min_speedup"]

    def measure():
        # Warm both arms once (imports, allocator, branch caches).
        with _compute(spec["vec_backend"]):
            _pipeline(series, alphabet, ratio, params, "columnar")
        with _compute(spec["scalar_backend"]):
            _pipeline(series, alphabet, ratio, params, "scalar")
        with _compute(spec["vec_backend"]):
            vec_result, vec_phases = _pipeline(series, alphabet, ratio, params, "columnar")
        with _compute(spec["scalar_backend"]):
            scalar_result, scalar_phases = _pipeline(series, alphabet, ratio, params, "scalar")
        assert results_equivalent(vec_result, scalar_result), (
            "vectorized front end diverged from the scalar reference"
        )
        return vec_result, vec_phases, scalar_phases

    (result, vec_phases, scalar_phases) = run_once(benchmark, measure)

    # Traced vectorized run: the per-phase self-seconds breakdown that
    # ships with the JSON artifact (run separately so span bookkeeping
    # does not pollute the timed arms above).
    reset_telemetry()
    enable_telemetry()
    try:
        with _compute(spec["vec_backend"]):
            _pipeline(series, alphabet, ratio, params, "columnar")
        breakdown = [
            {
                "name": row["name"],
                "calls": row["calls"],
                "seconds": row["seconds"],
                "self_seconds": row["self_seconds"],
            }
            for row in phase_summary()
        ]
    finally:
        disable_telemetry()

    speedup = scalar_phases["total"] / vec_phases["total"]
    record_artifact(
        f"EXT6-frontend-{regime}",
        "\n".join(
            [
                f"EXT6 -- front-end ladder: vectorized vs scalar ({regime} regime)",
                f"  granules                : {WORKLOAD['n_granules']:8d} "
                f"(ratio {ratio}, {WORKLOAD['n_series']} series, "
                f"{WORKLOAD['alphabet_size']}-symbol alphabet)",
                f"  frequent patterns       : {len(result):8d}",
                f"  vectorized symbolize    : {vec_phases['symbolize'] * 1000:10.1f} ms",
                f"  vectorized build DSEQ   : {vec_phases['build_dseq'] * 1000:10.1f} ms",
                f"  vectorized step 2.1     : {vec_phases['step2.1'] * 1000:10.1f} ms",
                f"  vectorized total        : {vec_phases['total'] * 1000:10.1f} ms",
                f"  scalar total            : {scalar_phases['total'] * 1000:10.1f} ms",
                f"  end-to-end speedup      : {speedup:10.1f}x (floor {min_speedup}x)",
                "  results are results_equivalent across both arms",
            ]
        ),
    )
    record_benchmark_json(
        "EXT6",
        {
            "name": f"frontend-{regime}",
            "workload": dict(WORKLOAD),
            "numpy": get_numpy() is not None,
            "vectorized_seconds": vec_phases,
            "scalar_seconds": scalar_phases,
            "speedup": speedup,
            "floor": min_speedup,
            "n_patterns": len(result),
            "phase_breakdown": breakdown,
        },
    )
    assert speedup >= min_speedup, (
        f"vectorized front end must be >= {min_speedup}x faster than the "
        f"scalar reference in the {regime} regime, got {speedup:.2f}x"
    )
