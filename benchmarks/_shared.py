"""Shared helpers for the benchmark modules."""

from __future__ import annotations


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def series_means(figure) -> dict[str, float]:
    """Mean y-value per series of a harness Figure."""
    return {
        name: sum(values) / len(values) for name, values in figure.series.items()
    }
