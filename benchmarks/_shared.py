"""Shared helpers for the benchmark modules."""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

from repro.obs.counters import MetricRegistry, capture

RESULTS_DIR = Path(__file__).parent / "results"

#: Counters accumulated by :func:`run_once` since the last
#: :func:`record_benchmark_json` call.  One registry per EXT module in a
#: normal ``pytest benchmarks/bench_extN.py`` invocation; in a combined
#: session the record call drains whatever accumulated since the
#: previous record, so counters stay attributable per suite as long as
#: each suite records once at the end (which they all do).
_BENCH_REGISTRY = MetricRegistry()


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer.

    The timed call runs with mining counters captured; the captured
    snapshot is merged into the module registry that
    :func:`record_benchmark_json` embeds (and drains) on its next call.
    Tracing stays off -- counters are cheap dict increments, span trees
    are not worth distorting a benchmark for.
    """

    def instrumented():
        with capture() as registry:
            outcome = fn()
        _BENCH_REGISTRY.merge(registry.snapshot())
        return outcome

    return benchmark.pedantic(instrumented, rounds=1, iterations=1, warmup_rounds=0)


def series_means(figure) -> dict[str, float]:
    """Mean y-value per series of a harness Figure."""
    return {
        name: sum(values) / len(values) for name, values in figure.series.items()
    }


def record_benchmark_json(ext: str, run: dict) -> Path:
    """Record one benchmark run in a machine-readable EXT record.

    One JSON file per EXT suite (``benchmarks/results/BENCH_<ext>.json``),
    holding a run list plus an environment stamp, so speedup history can
    be compared across machines and commits without re-parsing the
    rendered ``.txt`` artifacts.  ``run`` should carry a unique ``name``
    (runs of the same name replace each other -- parametrized bench tests
    each record their own regime), the workload identity, and the
    measured wall-clocks/speedups; anything JSON-serializable goes
    through untouched.  The mining counters accumulated by
    :func:`run_once` since the previous record are embedded under
    ``"counters"`` (then drained), so the EXT record shows not just how
    long the suite took but how much work the kernels actually did.
    """
    counters = _BENCH_REGISTRY.snapshot()
    _BENCH_REGISTRY.clear()
    if counters["counters"] or counters["gauges"] or counters["histograms"]:
        run = {**run, "counters": counters}
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{ext}.json"
    runs: list[dict] = []
    if path.exists():
        try:
            runs = json.loads(path.read_text()).get("runs", [])
        except (ValueError, AttributeError):
            runs = []
    runs = [entry for entry in runs if entry.get("name") != run.get("name")]
    runs.append(run)
    runs.sort(key=lambda entry: str(entry.get("name", "")))
    payload = {
        "ext": ext,
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "runs": runs,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
