"""Unit tests for APS-growth and the naive oracle miner."""

from repro import ESTPM, MiningParams, SymbolicDatabase, build_sequence_database
from repro.baselines import APSGrowth, NaiveSTPM
from repro.baselines.apsgrowth import transactions_from_dseq


class TestTransactionsView:
    def test_granule_to_events(self, paper_dseq):
        transactions = transactions_from_dseq(paper_dseq)
        assert len(transactions) == 14
        assert set(transactions[5]) == {"C:0", "D:0", "F:1", "M:1", "N:1"}


class TestAPSGrowth:
    def test_phase1_matches_maxseason_gate(self, paper_dseq, paper_params):
        baseline = APSGrowth(paper_dseq, paper_params)
        events = baseline.recurring_events()
        # minSup = minSeason * minDensity = 6: same events as Fig. 6's HLH1.
        assert set(events) == {"C:1", "C:0", "D:1", "D:0", "F:1", "F:0", "M:1", "N:1"}
        assert baseline.phase1_itemsets == 8

    def test_output_equals_estpm(self, paper_dseq, paper_params):
        exact = ESTPM(paper_dseq, paper_params).mine()
        baseline = APSGrowth(paper_dseq, paper_params).mine()
        assert baseline.pattern_keys() == exact.pattern_keys()
        assert baseline.stats.mining_seconds > 0

    def test_output_equals_estpm_on_tiny_dataset(self, tiny_inf):
        params = tiny_inf.params(min_season=2, max_period_pct=1.0, min_density_pct=1.0)
        params = params.with_updates(max_pattern_length=2)
        exact = ESTPM(tiny_inf.dseq(), params).mine()
        baseline = APSGrowth(tiny_inf.dseq(), params).mine()
        assert baseline.pattern_keys() == exact.pattern_keys()


class TestNaive:
    def test_equals_estpm_on_paper_example(self, paper_dseq, paper_params):
        exact = ESTPM(paper_dseq, paper_params).mine()
        naive = NaiveSTPM(paper_dseq, paper_params).mine()
        assert naive.pattern_keys() == exact.pattern_keys()

    def test_support_gate_is_lossless(self, paper_dseq, paper_params):
        gated = NaiveSTPM(paper_dseq, paper_params, support_gate=True).mine()
        ungated = NaiveSTPM(paper_dseq, paper_params, support_gate=False).mine()
        assert gated.pattern_keys() == ungated.pattern_keys()

    def test_event_whitelist(self, paper_dseq, paper_params):
        naive = NaiveSTPM(paper_dseq, paper_params, events=["C:1", "D:1"]).mine()
        for sp in naive.patterns:
            assert set(sp.pattern.events) <= {"C:1", "D:1"}

    def test_respects_max_pattern_length(self):
        dseq = build_sequence_database(
            SymbolicDatabase.from_rows({"A": "110110", "B": "110110"}), 3
        )
        params = MiningParams(2, 1, (0, 10), 1, max_pattern_length=2)
        naive = NaiveSTPM(dseq, params).mine()
        assert not naive.by_size(3)
