"""Tests for the static contract analyzer (``repro.analysis``).

Each rule family has a bad fixture tree (true positives) and a good one
(true negatives) under ``tests/data/analysis/``; on top of those:
suppression handling, the baseline round trip, the JSON reporter schema,
the CLI surfaces, and the self-check that the shipped tree is clean
against the shipped baseline.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, Baseline, analyze, load_baseline, render_json
from repro.analysis.baseline import FIXME_JUSTIFICATION, write_baseline
from repro.analysis.engine import build_repo_index, run_rules
from repro.analysis.runner import BASELINE_FILENAME, main as lint_main
from repro.analysis.suppress import parse_suppressions
from repro.harness.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "data" / "analysis"


def run_family(tree: str, *rules: str, baseline: Baseline | None = None):
    return analyze(FIXTURES / tree, baseline=baseline, select=rules)


def rules_hit(result) -> set[str]:
    return {finding.rule for finding in result.findings}


class TestComputeTwinRules:
    def test_bad_tree_fires_both_rules(self):
        result = run_family("ct_bad", "CT001", "CT002")
        assert rules_hit(result) == {"CT001", "CT002"}
        # Both violations are in series.py; the registry module is exempt.
        assert all("series.py" in f.path for f in result.findings)

    def test_registry_module_is_exempt(self):
        result = run_family("ct_bad", "CT001", "CT002")
        assert not any("config.py" in f.path for f in result.findings)

    def test_good_tree_is_clean(self):
        result = run_family("ct_good", "CT001", "CT002")
        assert result.ok


class TestPicklabilityRules:
    def test_bad_tree_fires_all_three_rules(self):
        result = run_family("ep_bad", "EP001", "EP002", "EP003")
        assert rules_hit(result) == {"EP001", "EP002", "EP003"}

    def test_lambda_and_closure_both_flagged(self):
        result = run_family("ep_bad", "EP001")
        messages = [f.message for f in result.findings]
        assert len(messages) == 2
        assert any("lambda" in m for m in messages)
        assert any("closure" in m for m in messages)

    def test_boundary_class_names_offending_attributes(self):
        result = run_family("ep_bad", "EP002")
        (finding,) = result.findings
        assert finding.symbol == "LevelState"
        assert "_column_cache" in finding.message

    def test_good_tree_is_clean(self):
        result = run_family("ep_good", "EP001", "EP002", "EP003")
        assert result.ok


class TestThreadSafetyRule:
    def test_unguarded_mutations_flagged(self):
        result = run_family("ts_bad", "TS001")
        assert rules_hit(result) == {"TS001"}
        assert {f.symbol for f in result.findings} == {"_CACHE"}
        # Both the subscript store in intern() and the .clear() in clear().
        assert len(result.findings) == 2

    def test_lock_guard_threadlocal_and_module_init_pass(self):
        result = run_family("ts_good", "TS001")
        assert result.ok


class TestObsOverheadRule:
    def test_direct_access_flagged(self):
        result = run_family("ob_bad", "OB001")
        assert rules_hit(result) == {"OB001"}
        symbols = {f.symbol for f in result.findings}
        assert "registry" in symbols
        assert "Span" in symbols

    def test_guarded_helpers_pass(self):
        result = run_family("ob_good", "OB001")
        assert result.ok


class TestRegistryConformanceRules:
    def test_bad_tree_fires_all_four_rules(self):
        result = run_family("rc_bad", "RC001", "RC002", "RC003", "RC101")
        assert rules_hit(result) == {"RC001", "RC002", "RC003", "RC101"}

    def test_signature_drift_message_names_both_kernels(self):
        result = run_family("rc_bad", "RC001")
        (finding,) = result.findings
        assert "drift" in finding.message
        assert "'sweep'" in finding.message and "'array'" in finding.message

    def test_missing_frontend_builder(self):
        result = run_family("rc_bad", "RC002")
        (finding,) = result.findings
        assert "_build_scalar" in finding.message

    def test_unresolved_export_and_import(self):
        result = run_family("rc_bad", "RC003", "RC101")
        by_rule = {f.rule: f for f in result.findings}
        assert "vanished" in by_rule["RC003"].message
        assert "KERNEL_GONE" in by_rule["RC101"].message

    def test_good_tree_is_clean(self):
        result = run_family("rc_good", "RC001", "RC002", "RC003", "RC101")
        assert result.ok


class TestSuppressions:
    def test_line_suppression_silences_finding(self):
        result = run_family("ct_suppressed", "CT001")
        assert result.ok
        assert result.suppressed == 1

    def test_parse_line_and_file_wide(self):
        source = (
            "x = 1  # repro: ignore[CT001, TS001] -- reason\n"
            "# repro: ignore-file[OB001]\n"
            "y = 2  # repro: ignore\n"
        )
        suppressions = parse_suppressions(source)
        assert suppressions.is_suppressed("CT001", 1)
        assert suppressions.is_suppressed("TS001", 1)
        assert not suppressions.is_suppressed("EP001", 1)
        assert suppressions.is_suppressed("OB001", 999)  # file-wide
        assert suppressions.is_suppressed("ANY999", 3)  # bare ignore = all

    def test_marker_inside_string_is_not_a_suppression(self):
        suppressions = parse_suppressions('text = "# repro: ignore[CT001]"\n')
        assert not suppressions.is_suppressed("CT001", 1)


class TestBaselineRoundTrip:
    def _bad_findings(self):
        repo = build_repo_index(FIXTURES / "ct_bad")
        return [f for f in run_rules(repo) if f.rule.startswith("CT")]

    def test_write_then_load_silences_findings_but_flags_fixmes(self, tmp_path):
        baseline_path = tmp_path / BASELINE_FILENAME
        write_baseline(baseline_path, self._bad_findings(), Baseline())
        baseline = load_baseline(baseline_path)
        result = run_family("ct_bad", "CT001", "CT002", baseline=baseline)
        assert not result.findings
        assert result.baselined == 2
        # FIXME placeholders must fail the run until justified.
        assert any("FIXME" in error for error in result.errors)

    def test_justified_baseline_is_clean(self, tmp_path):
        baseline_path = tmp_path / BASELINE_FILENAME
        write_baseline(baseline_path, self._bad_findings(), Baseline())
        data = json.loads(baseline_path.read_text())
        for entry in data["entries"]:
            assert entry["justification"] == FIXME_JUSTIFICATION
            entry["justification"] = "fixture: deliberately kept"
        baseline_path.write_text(json.dumps(data))
        result = run_family(
            "ct_bad", "CT001", "CT002", baseline=load_baseline(baseline_path)
        )
        assert result.ok
        assert result.baselined == 2

    def test_rewrite_preserves_existing_justifications(self, tmp_path):
        baseline_path = tmp_path / BASELINE_FILENAME
        findings = self._bad_findings()
        write_baseline(baseline_path, findings, Baseline())
        data = json.loads(baseline_path.read_text())
        data["entries"][0]["justification"] = "kept on purpose"
        baseline_path.write_text(json.dumps(data))
        write_baseline(baseline_path, findings, load_baseline(baseline_path))
        rewritten = json.loads(baseline_path.read_text())
        assert rewritten["entries"][0]["justification"] == "kept on purpose"

    def test_stale_entries_error_on_full_runs(self, tmp_path):
        baseline_path = tmp_path / BASELINE_FILENAME
        write_baseline(baseline_path, self._bad_findings(), Baseline())
        data = json.loads(baseline_path.read_text())
        for entry in data["entries"]:
            entry["justification"] = "fixture"
        baseline_path.write_text(json.dumps(data))
        # Full run (no --select) over the CLEAN tree: entries match nothing.
        result = analyze(FIXTURES / "ct_good", baseline=load_baseline(baseline_path))
        assert any("stale baseline entry" in error for error in result.errors)

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / BASELINE_FILENAME
        path.write_text(json.dumps({"entries": [{"rule": "CT001"}]}))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_baseline_keys_survive_line_moves(self, tmp_path):
        """Baseline entries match on (rule, path, symbol), not line numbers."""
        tree = tmp_path / "tree"
        shutil.copytree(FIXTURES / "ct_bad", tree)
        baseline_path = tmp_path / BASELINE_FILENAME
        repo = build_repo_index(tree)
        write_baseline(baseline_path, list(run_rules(repo)), Baseline())
        data = json.loads(baseline_path.read_text())
        for entry in data["entries"]:
            entry["justification"] = "fixture"
        baseline_path.write_text(json.dumps(data))
        series = tree / "src" / "repro" / "symbolic" / "series.py"
        series.write_text("# pushed down\n\n" + series.read_text())
        result = analyze(tree, baseline=load_baseline(baseline_path))
        assert result.ok
        assert result.baselined == 2


class TestJsonReport:
    def test_schema(self):
        result = run_family("ct_bad", "CT001", "CT002")
        payload = json.loads(render_json(result))
        assert payload["version"] == 1
        assert set(payload) == {"version", "summary", "findings", "errors"}
        assert set(payload["summary"]) == {
            "findings",
            "suppressed",
            "baselined",
            "errors",
            "files",
        }
        assert payload["summary"]["findings"] == len(payload["findings"])
        for finding in payload["findings"]:
            assert set(finding) == {"path", "line", "col", "rule", "symbol", "message"}
            assert isinstance(finding["line"], int)

    def test_findings_sorted_by_location(self):
        result = run_family("ct_bad", "CT001", "CT002")
        locations = [(f.path, f.line, f.col) for f in result.findings]
        assert locations == sorted(locations)


class TestCli:
    def test_bad_tree_exits_nonzero_with_json(self, capsys):
        code = lint_main(
            [
                "--root",
                str(FIXTURES / "ct_bad"),
                "--select",
                "CT001",
                "--format",
                "json",
                "--no-baseline",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["findings"] == 1

    def test_good_tree_exits_zero(self, capsys):
        code = lint_main(["--root", str(FIXTURES / "ct_good"), "--no-baseline"])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_missing_path_is_usage_error(self, capsys):
        code = lint_main(
            ["--root", str(FIXTURES / "ct_good"), "--paths", "no/such/dir"]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_list_rules_covers_every_rule(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out

    def test_write_baseline_flow(self, tmp_path, capsys):
        tree = tmp_path / "tree"
        shutil.copytree(FIXTURES / "ct_bad", tree)
        assert lint_main(["--root", str(tree), "--write-baseline"]) == 0
        capsys.readouterr()
        # Fails while the FIXME placeholders are in place...
        assert lint_main(["--root", str(tree)]) == 1
        capsys.readouterr()
        baseline_path = tree / BASELINE_FILENAME
        data = json.loads(baseline_path.read_text())
        for entry in data["entries"]:
            entry["justification"] = "fixture"
        baseline_path.write_text(json.dumps(data))
        # ...and passes once every entry is justified.
        assert lint_main(["--root", str(tree)]) == 0

    def test_select_accepts_family_and_commas(self, capsys):
        code = lint_main(
            [
                "--root",
                str(FIXTURES / "ct_bad"),
                "--select",
                "CT,EP",
                "--format",
                "json",
                "--no-baseline",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        # Family CT selects both CT001 and CT002 findings of the fixture.
        assert {f["rule"] for f in payload["findings"]} == {"CT001", "CT002"}

    def test_select_unknown_token_is_usage_error(self, capsys):
        code = lint_main(
            ["--root", str(FIXTURES / "ct_good"), "--select", "XX,CT"]
        )
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_freqstpfts_lint_delegates(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        assert "CT001" in capsys.readouterr().out

    def test_rule_ids_are_unique(self):
        ids = [rule.id for rule in ALL_RULES]
        assert len(ids) == len(set(ids))


class TestSelfCheck:
    def test_shipped_tree_is_clean_against_shipped_baseline(self):
        baseline = load_baseline(REPO_ROOT / BASELINE_FILENAME)
        result = analyze(
            REPO_ROOT,
            extra_paths=["scripts", "benchmarks/_shared.py"],
            baseline=baseline,
        )
        details = [f.render() for f in result.findings] + result.errors
        assert result.ok, "shipped tree has contract violations:\n" + "\n".join(details)

    def test_shipped_baseline_entries_are_justified(self):
        baseline = load_baseline(REPO_ROOT / BASELINE_FILENAME)
        assert baseline.entries, "expected grandfathered entries in the baseline"
        for entry in baseline.entries.values():
            assert not entry.justification.startswith("FIXME")
            assert len(entry.justification) > 40, entry
