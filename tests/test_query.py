"""Unit tests for the pattern query API."""

import pytest

from repro import ESTPM, PatternQuery, subpatterns_of, superpatterns_of
from repro.events import CONTAINS


@pytest.fixture(scope="module")
def mined(paper_dseq, paper_params):
    return ESTPM(paper_dseq, paper_params).mine()


class TestPatternQuery:
    def test_no_constraints_matches_everything(self, mined):
        assert len(PatternQuery().run(mined)) == len(mined)

    def test_event_constraint(self, mined):
        hits = PatternQuery().with_events("C:1").run(mined)
        assert hits
        for sp in hits:
            assert "C:1" in sp.pattern.events

    def test_series_constraint(self, mined):
        hits = PatternQuery().with_series("M").run(mined)
        assert hits
        for sp in hits:
            assert any(event.startswith("M:") for event in sp.pattern.events)

    def test_relation_constraint(self, mined):
        hits = PatternQuery().with_relations(CONTAINS).run(mined)
        assert hits
        for sp in hits:
            assert any(t.relation == CONTAINS for t in sp.pattern.triples)

    def test_size_bounds(self, mined):
        twos = PatternQuery().min_size(2).max_size(2).run(mined)
        assert twos
        assert all(sp.size == 2 for sp in twos)

    def test_min_seasons(self, mined):
        strong = PatternQuery().min_seasons(2).run(mined)
        assert strong
        assert all(sp.n_seasons >= 2 for sp in strong)
        assert not PatternQuery().min_seasons(99).run(mined)

    def test_conjunction(self, mined):
        hits = (
            PatternQuery()
            .with_series("C", "D")
            .min_size(2)
            .with_relations(CONTAINS)
            .run(mined)
        )
        for sp in hits:
            series = {e.rsplit(":", 1)[0] for e in sp.pattern.events}
            assert {"C", "D"} <= series

    def test_ordering_is_strongest_first(self, mined):
        hits = PatternQuery().run(mined)
        seasons = [sp.n_seasons for sp in hits]
        assert seasons == sorted(seasons, reverse=True)

    def test_immutability_of_builders(self):
        base = PatternQuery()
        derived = base.with_events("A:1")
        assert base.events == frozenset()
        assert derived.events == {"A:1"}


class TestContainmentSearch:
    def test_superpatterns(self, mined):
        two_event = next(sp for sp in mined.by_size(2))
        supers = superpatterns_of(two_event.pattern, mined)
        for sp in supers:
            assert two_event.pattern.is_subpattern_of(sp.pattern)
            assert sp.size > two_event.size or sp.pattern != two_event.pattern

    def test_subpatterns_of_a_triple(self, mined):
        three_event = next(sp for sp in mined.by_size(3))
        subs = subpatterns_of(three_event.pattern, mined)
        # Every 2-event restriction that was itself frequent shows up.
        assert subs
        for sp in subs:
            assert sp.pattern.is_subpattern_of(three_event.pattern)

    def test_super_sub_duality(self, mined):
        two_event = next(sp for sp in mined.by_size(2))
        for sp in superpatterns_of(two_event.pattern, mined):
            assert two_event.pattern in {
                q.pattern for q in subpatterns_of(sp.pattern, mined)
            } | {two_event.pattern}
