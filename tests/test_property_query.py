"""Property-based tests for the query API (plus pruning-config labels)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ESTPM, PatternQuery
from repro.core.prune import ALL_VARIANTS, PruningConfig


@pytest.fixture(scope="module")
def paper_result(paper_dseq, paper_params):
    return ESTPM(paper_dseq, paper_params).mine()


class TestPruningConfigLabels:
    def test_labels(self):
        assert PruningConfig.none().label == "NoPrune"
        assert PruningConfig.apriori_only().label == "Apriori"
        assert PruningConfig.transitivity_only().label == "Trans"
        assert PruningConfig.all().label == "All"

    def test_all_variants_distinct(self):
        assert len(set(ALL_VARIANTS)) == 4


@st.composite
def queries(draw):
    query = PatternQuery()
    if draw(st.booleans()):
        query = query.with_events(draw(st.sampled_from(["C:1", "D:1", "F:0", "Z:9"])))
    if draw(st.booleans()):
        query = query.with_series(draw(st.sampled_from(["C", "D", "M", "Z"])))
    if draw(st.booleans()):
        query = query.with_relations(
            draw(st.sampled_from(["Follows", "Contains", "Overlaps"]))
        )
    query = query.min_size(draw(st.integers(1, 3)))
    if draw(st.booleans()):
        query = query.max_size(draw(st.integers(1, 3)))
    return query.min_seasons(draw(st.integers(0, 3)))


class TestQueryProperties:
    @given(query=queries())
    @settings(max_examples=60, deadline=None)
    def test_run_agrees_with_matches(self, paper_result, query):
        hits = query.run(paper_result)
        hit_keys = {sp.pattern for sp in hits}
        for sp in paper_result.patterns:
            assert (sp.pattern in hit_keys) == query.matches(sp)

    @given(query=queries(), event=st.sampled_from(["C:1", "D:0"]))
    @settings(max_examples=40, deadline=None)
    def test_adding_constraints_never_grows_results(
        self, paper_result, query, event
    ):
        base = len(query.run(paper_result))
        narrowed = len(query.with_events(event).run(paper_result))
        assert narrowed <= base
