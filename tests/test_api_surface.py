"""API-surface checks: exports exist, everything public is documented."""

import importlib
import pkgutil

import repro


class TestPublicExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_public_callables_are_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) or isinstance(obj, type):
                assert getattr(obj, "__doc__", None), f"{name} lacks a docstring"

    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert major.isdigit() and minor.isdigit() and patch.isdigit()


class TestModuleDocumentation:
    def test_every_module_has_a_docstring(self):
        seen = []
        for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(module_info.name)
            assert module.__doc__, f"{module_info.name} lacks a module docstring"
            seen.append(module_info.name)
        # Sanity: the walk actually covered the library.
        assert len(seen) > 25

    def test_public_classes_have_documented_methods(self):
        from repro import ESTPM, ASTPM, MiningParams, TemporalPattern

        for cls in (ESTPM, ASTPM, MiningParams, TemporalPattern):
            for attr_name, attr in vars(cls).items():
                if attr_name.startswith("_") or not callable(attr):
                    continue
                assert attr.__doc__, f"{cls.__name__}.{attr_name} lacks a docstring"
