"""API-surface checks: exports exist, everything public is documented."""

import importlib
import pkgutil

import repro


class TestPublicExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_public_callables_are_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) or isinstance(obj, type):
                assert getattr(obj, "__doc__", None), f"{name} lacks a docstring"

    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert major.isdigit() and minor.isdigit() and patch.isdigit()

    def test_streaming_exports(self):
        # The streaming subsystem is part of the top-level API ...
        for name in (
            "IncrementalSTPM",
            "PatternDelta",
            "StreamingDatabase",
            "StreamingMiningService",
            "StreamingSymbolizer",
            "replay_dataset",
        ):
            assert name in repro.__all__, name
            assert getattr(repro, name) is getattr(repro.streaming, name)
        # ... and repro.streaming re-exports everything it advertises.
        for name in repro.streaming.__all__:
            assert hasattr(repro.streaming, name), name

    def test_io_exports_stream_checkpoints(self):
        from repro import io

        for name in ("save_stream_checkpoint", "load_stream_checkpoint"):
            assert name in io.__all__
            assert callable(getattr(io, name))


class TestModuleDocumentation:
    def test_every_module_has_a_docstring(self):
        seen = []
        for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(module_info.name)
            assert module.__doc__, f"{module_info.name} lacks a module docstring"
            seen.append(module_info.name)
        # Sanity: the walk actually covered the library.
        assert len(seen) > 25

    def test_public_classes_have_documented_methods(self):
        from repro import ESTPM, ASTPM, MiningParams, TemporalPattern

        for cls in (ESTPM, ASTPM, MiningParams, TemporalPattern):
            for attr_name, attr in vars(cls).items():
                if attr_name.startswith("_") or not callable(attr):
                    continue
                assert attr.__doc__, f"{cls.__name__}.{attr_name} lacks a docstring"
