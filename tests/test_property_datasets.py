"""Property-based tests for the dataset simulators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import build_hfm, build_inf, build_re, build_sc, scale_series

builders = st.sampled_from([build_re, build_sc, build_inf, build_hfm])


@given(
    builders,
    st.integers(20, 80),
    st.integers(2, 6),
    st.integers(0, 10_000),
)
@settings(max_examples=25, deadline=None)
def test_builder_shape_contract(builder, n_sequences, n_series, seed):
    dataset = builder(n_sequences=n_sequences, n_series=n_series, seed=seed)
    assert dataset.n_sequences == n_sequences
    assert dataset.n_series == n_series
    assert dataset.dsyb.n_instants == n_sequences * dataset.ratio
    # Every symbol used belongs to the declared alphabet (SymbolicSeries
    # enforces it; this asserts the builders went through that check).
    for series in dataset.dsyb:
        assert set(series.symbols) <= set(series.alphabet.symbols)


@given(builders, st.integers(0, 1_000))
@settings(max_examples=10, deadline=None)
def test_builders_are_deterministic(builder, seed):
    a = builder(n_sequences=30, n_series=3, seed=seed)
    b = builder(n_sequences=30, n_series=3, seed=seed)
    for name in a.dsyb.names:
        assert a.dsyb[name].symbols == b.dsyb[name].symbols


@given(st.integers(1, 6), st.integers(0, 500))
@settings(max_examples=10, deadline=None)
def test_scale_series_adds_exactly_n(extra, seed):
    base = build_inf(n_sequences=30, n_series=4, seed=3)
    scaled = scale_series(base, base.n_series + extra, seed=seed)
    assert scaled.n_series == base.n_series + extra
    # Original raw signals are preserved verbatim (the scale-up only
    # appends derived/noise series; like the paper's synthetic datasets it
    # re-symbolizes uniformly, so symbols may re-bin).
    for name in base.dsyb.names:
        assert (scaled.raw[name] == base.raw[name]).all()
