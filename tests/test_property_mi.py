"""Property-based tests for the information-theoretic layer (Sec. V-A)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import mu_threshold
from repro.core.lambertw import BRANCH_POINT, lambert_w0, lambert_w_minus1
from repro.core.mi import (
    conditional_entropy,
    entropy,
    mutual_information,
    normalized_mutual_information,
)
from repro.symbolic import Alphabet, SymbolicSeries

ALPHABET = Alphabet(("a", "b", "c"))


def _series_pair(draw_symbols):
    n = len(draw_symbols) // 2
    x = SymbolicSeries("X", tuple(draw_symbols[:n]), ALPHABET)
    y = SymbolicSeries("Y", tuple(draw_symbols[n:]), ALPHABET)
    return x, y

symbol_lists = st.lists(
    st.sampled_from(["a", "b", "c"]), min_size=4, max_size=60
).filter(lambda s: len(s) % 2 == 0)


@given(symbol_lists)
def test_entropy_bounds(symbols):
    series = SymbolicSeries("X", tuple(symbols), ALPHABET)
    assert 0.0 <= entropy(series) <= math.log2(len(ALPHABET)) + 1e-12


@given(symbol_lists)
def test_mi_properties(symbols):
    x, y = _series_pair(symbols)
    mi_xy = mutual_information(x, y)
    assert mi_xy >= 0.0
    assert mi_xy == mutual_information(y, x)  # symmetric by definition
    assert mi_xy <= min(entropy(x), entropy(y)) + 1e-9


@given(symbol_lists)
def test_chain_rule(symbols):
    x, y = _series_pair(symbols)
    assert mutual_information(x, y) == entropy(x) - conditional_entropy(x, y) or abs(
        mutual_information(x, y) - (entropy(x) - conditional_entropy(x, y))
    ) < 1e-9


@given(symbol_lists)
def test_nmi_in_unit_interval(symbols):
    x, y = _series_pair(symbols)
    assert 0.0 <= normalized_mutual_information(x, y) <= 1.0


@given(symbol_lists)
def test_self_nmi_is_one_unless_constant(symbols):
    x, _ = _series_pair(symbols)
    value = normalized_mutual_information(x, x)
    if entropy(x) == 0.0:
        assert value == 0.0
    else:
        assert value >= 1.0 - 1e-9


@given(
    st.floats(0.01, 0.99),
    st.floats(0.01, 1.0),
    st.integers(1, 30),
    st.integers(1, 10),
    st.integers(10, 2000),
)
@settings(max_examples=300)
def test_mu_threshold_in_unit_interval(lambda1, lambda2, min_season, min_density, n):
    assert 0.0 <= mu_threshold(lambda1, lambda2, min_season, min_density, n) <= 1.0


@given(st.floats(BRANCH_POINT + 1e-9, 100.0))
@settings(max_examples=300)
def test_lambert_w0_inverse_identity(x):
    w = lambert_w0(x)
    assert abs(w * math.exp(w) - x) <= 1e-6 * max(1.0, abs(x))


@given(st.floats(BRANCH_POINT + 1e-9, -1e-9))
@settings(max_examples=300)
def test_lambert_w_minus1_inverse_identity(x):
    w = lambert_w_minus1(x)
    assert abs(w * math.exp(w) - x) <= 1e-6
    assert w <= -1.0 + 1e-9  # secondary branch stays below -1
