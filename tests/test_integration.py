"""End-to-end integration tests: raw signals -> symbolization -> DSEQ ->
mining -> harness reporting."""

import numpy as np
from repro import (
    ASTPM,
    ESTPM,
    Alphabet,
    QuantileMapper,
    SymbolicDatabase,
    TimeSeries,
    build_sequence_database,
)
from repro.baselines import APSGrowth
from repro.datasets.synthetic import lagged_response, noisy, seasonal_pulses
from repro.harness import run_experiment
from repro.metrics import accuracy_pct


class TestFullPipelineFromRawSignals:
    def test_planted_seasonal_pattern_is_found(self):
        # Plant a "driver -> response" seasonal coupling and verify the
        # expected 2-event pattern surfaces with the right seasonality.
        rng = np.random.default_rng(0)
        n_days, per_day = 240, 4
        n = n_days * per_day
        driver = seasonal_pulses(n, period=40 * per_day, center_frac=0.5,
                                 width_frac=0.06, height=10.0)
        driver = noisy(rng, driver, 0.05)
        response = lagged_response(driver, lag=0, gain=3.0, bias=1.0)
        alphabet = Alphabet.levels(["Low", "High"])
        dsyb = SymbolicDatabase.from_raw(
            [
                TimeSeries.from_array("Driver", driver),
                TimeSeries.from_array("Response", response),
            ],
            QuantileMapper(alphabet),
        )
        dseq = build_sequence_database(dsyb, ratio=per_day)
        params = __import__("repro").MiningParams(
            max_period=3, min_density=2, dist_interval=(10, 50), min_season=3
        )
        result = ESTPM(dseq, params).mine()
        coupled = [
            sp
            for sp in result.by_size(2)
            if set(sp.pattern.events) == {"Driver:High", "Response:High"}
        ]
        assert coupled, "the planted coupling must be mined"
        assert max(sp.n_seasons for sp in coupled) >= 4

    def test_all_miners_agree_on_tiny_dataset(self, tiny_inf):
        params = tiny_inf.params(
            min_season=2, max_period_pct=1.0, min_density_pct=1.0
        ).with_updates(max_pattern_length=2)
        dseq = tiny_inf.dseq()
        exact = ESTPM(dseq, params).mine()
        baseline = APSGrowth(dseq, params).mine()
        approx = ASTPM(tiny_inf.dsyb, tiny_inf.ratio, params, dseq=dseq).mine()
        assert baseline.pattern_keys() == exact.pattern_keys()
        assert approx.pattern_keys() <= exact.pattern_keys()
        assert 0.0 <= accuracy_pct(exact, approx) <= 100.0

    def test_dataset_mining_produces_domain_patterns(self, tiny_re):
        params = tiny_re.params(min_season=2, max_period_pct=1.0, min_density_pct=0.5)
        result = ESTPM(tiny_re.dseq(), params).mine()
        assert len(result) > 0
        events = {e for sp in result.patterns for e in sp.pattern.events}
        assert any(e.startswith("WindSpeed") or e.startswith("Temperature") for e in events)


class TestHarnessEndToEnd:
    def test_t8_qualitative_on_tiny_profile(self):
        table = run_experiment("T8", profile="tiny", datasets=("RE",), per_dataset=2)
        assert "Table VIII" in table.render()

    def test_t9_counts_shape_on_tiny_profile(self):
        table = run_experiment(
            "T9",
            profile="tiny",
            max_period_pcts=(0.5, 1.0),
            grid=((2, 0.5), (3, 0.5)),
        )
        # Counts fall (or stay) as minSeason rises -- the paper's Table IX
        # shape.  (The maxPeriod direction is only stable at bench scale;
        # EXPERIMENTS.md reports it there.)
        rows = [[int(c) for c in row[1:]] for row in table.rows]
        for row in rows:
            assert row[0] >= row[1]
            assert row[0] > 0
