"""Unit tests for the measurement utilities."""

import pytest

from repro import ESTPM
from repro.core.results import MiningResult, MiningStats
from repro.metrics import (
    Timer,
    accuracy_pct,
    measure_peak_memory,
    pattern_set_overlap,
    time_call,
)


def _result_with(patterns):
    from repro.core.pattern import single_event_pattern
    from repro.core.results import SeasonalPattern
    from repro.core.seasonality import SeasonView

    view = SeasonView(support=(1,), near_sets=((1,),), seasons=((1,),))
    return MiningResult(
        patterns=[SeasonalPattern(single_event_pattern(e), view) for e in patterns],
        stats=MiningStats(),
    )


class TestTimeCall:
    def test_returns_result_and_elapsed(self):
        result, elapsed = time_call(lambda: 21 * 2)
        assert result == 42
        assert elapsed >= 0.0


class TestTimer:
    def test_context_manager(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.seconds > 0.0
        assert timer.elapsed_ns > 0

    def test_start_stop(self):
        timer = Timer()
        assert timer.start() is timer
        elapsed = timer.stop()
        assert elapsed == timer.seconds >= 0.0

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_restart_measures_fresh(self):
        timer = Timer()
        with timer:
            sum(range(100_000))
        first = timer.seconds
        with timer:
            pass
        assert timer.seconds < first


class TestPeakMemory:
    def test_measures_allocation(self):
        result, peak = measure_peak_memory(lambda: [0] * 200_000)
        assert len(result) == 200_000
        assert peak > 200_000 * 4  # a list of ints is at least this big

    def test_nested_measurement(self):
        import tracemalloc

        def nested():
            _, inner_peak = measure_peak_memory(lambda: [0] * 200_000)
            return inner_peak

        inner_peak, outer_peak = measure_peak_memory(nested)
        assert inner_peak > 200_000 * 4
        assert outer_peak >= inner_peak
        assert not tracemalloc.is_tracing()

    def test_outer_sees_peaks_outside_inner_frame(self):
        def work():
            big = [0] * 400_000  # outer allocation, freed before inner runs
            del big
            _, inner_peak = measure_peak_memory(lambda: [0] * 50_000)
            return inner_peak

        inner_peak, outer_peak = measure_peak_memory(work)
        assert outer_peak > 400_000 * 4
        assert inner_peak < outer_peak

    def test_foreign_tracing_rejected(self):
        import tracemalloc

        tracemalloc.start()
        try:
            with pytest.raises(RuntimeError):
                measure_peak_memory(lambda: 1)
        finally:
            tracemalloc.stop()

    def test_stops_tracing_on_error(self):
        import tracemalloc

        def boom():
            raise ValueError("x")

        with pytest.raises(ValueError):
            measure_peak_memory(boom)
        assert not tracemalloc.is_tracing()

    def test_stops_tracing_on_nested_error(self):
        import tracemalloc

        def boom():
            raise ValueError("x")

        def outer():
            with pytest.raises(ValueError):
                measure_peak_memory(boom)
            return 1

        result, _ = measure_peak_memory(outer)
        assert result == 1
        assert not tracemalloc.is_tracing()


class TestAccuracy:
    def test_full_recall(self):
        exact = _result_with(["A:1", "B:1"])
        approx = _result_with(["A:1", "B:1"])
        assert accuracy_pct(exact, approx) == 100.0

    def test_partial_recall(self):
        exact = _result_with(["A:1", "B:1", "C:1", "D:1"])
        approx = _result_with(["A:1", "B:1", "C:1"])
        assert accuracy_pct(exact, approx) == 75.0
        assert pattern_set_overlap(exact, approx) == (3, 4)

    def test_empty_exact_counts_as_perfect(self):
        assert accuracy_pct(_result_with([]), _result_with([])) == 100.0

    def test_on_real_mining_results(self, paper_dseq, paper_params):
        exact = ESTPM(paper_dseq, paper_params).mine()
        assert accuracy_pct(exact, exact) == 100.0


class TestResultHelpers:
    def test_by_size_and_describe(self, paper_dseq, paper_params):
        result = ESTPM(paper_dseq, paper_params).mine()
        assert len(result.by_size(1)) + len(result.by_size(2)) + len(
            result.by_size(3)
        ) == len(result)
        text = result.describe(limit=5)
        assert "more" in text or len(result) <= 5
        assert result.multi_event_keys() <= result.pattern_keys()
