"""Unit tests for A-STPM (paper Alg. 2)."""

import pytest

from repro import ASTPM, ESTPM, MiningParams, SymbolicDatabase, build_sequence_database
from repro.core.approximate import screen_correlated_series
from repro.exceptions import MiningError
from repro.metrics import accuracy_pct
from repro.symbolic import Alphabet, SymbolicSeries


def _correlated_pair_db(n=300, flip=0.02, seed=3):
    import random

    rng = random.Random(seed)
    x = [rng.choice("01") for _ in range(n)]
    y = [s if rng.random() > flip else ("1" if s == "0" else "0") for s in x]
    z = [rng.choice("01") for _ in range(n)]  # independent
    return SymbolicDatabase.from_symbolic(
        [
            SymbolicSeries("X", tuple(x), Alphabet.binary()),
            SymbolicSeries("Y", tuple(y), Alphabet.binary()),
            SymbolicSeries("Z", tuple(z), Alphabet.binary()),
        ]
    )


def _params():
    return MiningParams(max_period=3, min_density=2, dist_interval=(0, 30), min_season=2)


class TestScreening:
    def test_correlated_pair_kept_independent_pruned(self):
        dsyb = _correlated_pair_db()
        dseq_len = dsyb.n_instants // 2
        report = screen_correlated_series(dsyb, _params(), dseq_len)
        assert report.correlated_series == frozenset({"X", "Y"})
        assert report.pruned_series == ["Z"]
        assert report.n_pruned_series == 1
        assert report.pruned_series_pct() == pytest.approx(100.0 / 3.0)
        assert frozenset(("X", "Y")) in report.correlated_pairs
        assert report.mi_seconds >= 0.0

    def test_screening_via_miner(self):
        dsyb = _correlated_pair_db()
        report = ASTPM(dsyb, 2, _params()).screening()
        assert "Z" in report.pruned_series


class TestMining:
    def test_result_is_subset_of_exact(self):
        dsyb = _correlated_pair_db()
        dseq = build_sequence_database(dsyb, 2)
        params = _params()
        exact = ESTPM(dseq, params).mine()
        approx = ASTPM(dsyb, 2, params, dseq=dseq).mine()
        assert approx.pattern_keys() <= exact.pattern_keys()
        assert 0.0 <= accuracy_pct(exact, approx) <= 100.0

    def test_patterns_on_kept_series_are_recovered_exactly(self):
        dsyb = _correlated_pair_db()
        dseq = build_sequence_database(dsyb, 2)
        params = _params()
        exact = ESTPM(dseq, params).mine()
        approx = ASTPM(dsyb, 2, params, dseq=dseq).mine()
        kept_exact = {
            p
            for p in exact.pattern_keys()
            if all(e.rsplit(":", 1)[0] in {"X", "Y"} for e in p.events)
        }
        assert approx.pattern_keys() == kept_exact

    def test_stats_carry_screening_info(self):
        dsyb = _correlated_pair_db()
        result = ASTPM(dsyb, 2, _params()).mine()
        assert result.stats.n_series_pruned == 1
        assert result.stats.mi_seconds >= 0.0

    def test_builds_dseq_when_not_supplied(self):
        dsyb = _correlated_pair_db()
        result = ASTPM(dsyb, 2, _params()).mine()
        assert result.stats.n_granules == dsyb.n_instants // 2

    def test_empty_dsyb_rejected(self):
        with pytest.raises(MiningError):
            ASTPM(SymbolicDatabase(), 2, _params()).mine()


class TestOnTinyDataset:
    def test_accuracy_shape_on_tiny_re(self, tiny_re):
        params = tiny_re.params(min_season=2, max_period_pct=1.0, min_density_pct=1.0)
        exact = ESTPM(tiny_re.dseq(), params).mine()
        approx = ASTPM(tiny_re.dsyb, tiny_re.ratio, params, dseq=tiny_re.dseq()).mine()
        assert approx.pattern_keys() <= exact.pattern_keys()
