"""Unit tests for the Table VIII seasonal-occurrence attribution."""

import pytest

from repro.core.seasonality import SeasonView
from repro.exceptions import ReproError
from repro.harness.calendar_map import (
    describe_seasonal_occurrence,
    month_of_position,
    season_months,
)


class TestMonthOfPosition:
    def test_day_unit_january(self):
        assert month_of_position(1, "day") == 1
        assert month_of_position(31, "day") == 1
        assert month_of_position(32, "day") == 2

    def test_day_unit_december(self):
        assert month_of_position(365, "day") == 12

    def test_wraps_across_years(self):
        assert month_of_position(366, "day") == 1
        assert month_of_position(365 + 32, "day") == 2

    def test_week_unit(self):
        assert month_of_position(1, "week") == 1
        assert month_of_position(5, "week") == 1  # day 29
        assert month_of_position(6, "week") == 2  # day 36

    def test_start_month_offset(self):
        # Position 1 in July.
        assert month_of_position(1, "day", start_month=7) == 7
        assert month_of_position(32, "day", start_month=7) == 8

    def test_validation(self):
        with pytest.raises(ReproError):
            month_of_position(0, "day")
        with pytest.raises(ReproError):
            month_of_position(1, "fortnight")
        with pytest.raises(ReproError):
            month_of_position(1, "day", start_month=0)


class TestSeasonMonths:
    def _view(self, *seasons):
        flat = tuple(g for season in seasons for g in season)
        return SeasonView(
            support=flat,
            near_sets=tuple(tuple(s) for s in seasons),
            seasons=tuple(tuple(s) for s in seasons),
        )

    def test_winter_seasons(self):
        # Two January seasons a year apart (daily positions).
        view = self._view(range(5, 25), range(370, 390))
        months = season_months(view, "day")
        assert "January" in months

    def test_describe(self):
        view = self._view(range(5, 25))
        assert describe_seasonal_occurrence(view, "day") == "January"

    def test_empty_view(self):
        view = SeasonView(support=(), near_sets=(), seasons=())
        assert describe_seasonal_occurrence(view, "day") == "-"

    def test_top_limit_and_calendar_order(self):
        view = self._view(range(1, 120))  # spans Jan..Apr
        months = season_months(view, "day", top=2)
        assert len(months) == 2
        assert months == sorted(
            months,
            key=lambda m: [
                "January", "February", "March", "April", "May", "June", "July",
                "August", "September", "October", "November", "December",
            ].index(m),
        )
