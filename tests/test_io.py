"""Unit tests for CSV ingestion and JSON result serialization."""

import json

import pytest

from repro import ESTPM
from repro.exceptions import DatasetError, ReproError
from repro.io import (
    load_csv_series,
    load_results_archive,
    multigrain_from_json,
    multigrain_to_json,
    result_from_json,
    result_to_json,
    save_csv_series,
)
from repro.symbolic import TimeSeries


class TestCsv:
    def test_roundtrip(self, tmp_path):
        series = [
            TimeSeries("A", (1.0, 2.0, 3.5)),
            TimeSeries("B", (0.25, -1.0, 9.0)),
        ]
        path = tmp_path / "data.csv"
        save_csv_series(series, path)
        loaded = load_csv_series(path)
        assert [s.name for s in loaded] == ["A", "B"]
        assert loaded[0].values == (1.0, 2.0, 3.5)
        assert loaded[1].values == (0.25, -1.0, 9.0)

    def test_skip_columns(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("ts,A\n2020-01-01,1.5\n2020-01-02,2.5\n")
        loaded = load_csv_series(path, skip_columns=1)
        assert len(loaded) == 1
        assert loaded[0].values == (1.5, 2.5)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_csv_series(tmp_path / "missing.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DatasetError):
            load_csv_series(path)

    def test_header_only(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("A,B\n")
        with pytest.raises(DatasetError):
            load_csv_series(path)

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("A,B\n1,2\n3\n")
        with pytest.raises(DatasetError) as excinfo:
            load_csv_series(path)
        assert ":3:" in str(excinfo.value)

    def test_non_numeric_rejected_with_location(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("A\n1.0\noops\n")
        with pytest.raises(DatasetError) as excinfo:
            load_csv_series(path)
        assert "oops" in str(excinfo.value)

    def test_save_validates(self, tmp_path):
        with pytest.raises(DatasetError):
            save_csv_series([], tmp_path / "x.csv")
        with pytest.raises(DatasetError):
            save_csv_series(
                [TimeSeries("A", (1.0,)), TimeSeries("B", (1.0, 2.0))],
                tmp_path / "x.csv",
            )


class TestResultJson:
    def test_roundtrip(self, paper_dseq, paper_params):
        result = ESTPM(paper_dseq, paper_params).mine()
        restored = result_from_json(result_to_json(result))
        assert restored.pattern_keys() == result.pattern_keys()
        assert len(restored) == len(result)
        for original, loaded in zip(result.patterns, restored.patterns):
            assert loaded.support == original.support
            assert loaded.seasons.seasons == original.seasons.seasons
        assert restored.stats.n_granules == result.stats.n_granules
        assert restored.stats.n_frequent == result.stats.n_frequent

    def test_file_roundtrip(self, paper_dseq, paper_params, tmp_path):
        result = ESTPM(paper_dseq, paper_params).mine()
        path = tmp_path / "result.json"
        result_to_json(result, path)
        restored = result_from_json(path)
        assert restored.pattern_keys() == result.pattern_keys()

    def test_invalid_json_rejected(self):
        with pytest.raises(ReproError):
            result_from_json("{not json")

    def test_version_checked(self):
        payload = json.dumps({"format_version": 999, "patterns": []})
        with pytest.raises(ReproError) as excinfo:
            result_from_json(payload)
        assert "999" in str(excinfo.value)

    def test_missing_version_rejected(self):
        with pytest.raises(ReproError) as excinfo:
            result_from_json(json.dumps({"patterns": []}))
        assert "version" in str(excinfo.value)

    def test_non_object_payload_rejected(self):
        # A JSON array used to die on payload.get with an AttributeError.
        with pytest.raises(ReproError) as excinfo:
            result_from_json(json.dumps([1, 2, 3]))
        assert "object" in str(excinfo.value)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ReproError) as excinfo:
            result_from_json(tmp_path / "nope.json")
        assert "cannot read" in str(excinfo.value)

    def test_malformed_pattern_rejected(self):
        payload = json.dumps(
            {"format_version": 1, "patterns": [{"events": ["A:1"]}]}
        )
        with pytest.raises(ReproError) as excinfo:
            result_from_json(payload)
        assert "malformed" in str(excinfo.value)

    def test_malformed_stats_rejected(self):
        payload = json.dumps(
            {"format_version": 1, "patterns": [], "stats": {"n_frequent": {"x": 1}}}
        )
        with pytest.raises(ReproError):
            result_from_json(payload)

    def test_output_is_stable_json(self, paper_dseq, paper_params):
        result = ESTPM(paper_dseq, paper_params).mine()
        first = result_to_json(result)
        second = result_to_json(result)
        assert first == second
        parsed = json.loads(first)
        assert parsed["format_version"] == 1


class TestMultigrainJson:
    @pytest.fixture(scope="class")
    def hierarchical(self, paper_dsyb):
        from repro.multigrain import HierarchicalMiner

        return HierarchicalMiner(
            paper_dsyb, ratios=[3, 6], dist_interval=(0, 42), min_season=1
        ).mine()

    def test_roundtrip(self, hierarchical):
        restored = multigrain_from_json(multigrain_to_json(hierarchical))
        assert restored.ratios == hierarchical.ratios
        for original, loaded in zip(hierarchical.levels, restored.levels):
            assert loaded.n_sequences == original.n_sequences
            assert loaded.derived_from == original.derived_from
            assert loaded.params == original.params
            assert loaded.result.pattern_keys() == original.result.pattern_keys()
            assert (
                loaded.result.seasonal_map() == original.result.seasonal_map()
            )
        assert restored.persistence() == hierarchical.persistence()

    def test_file_roundtrip(self, hierarchical, tmp_path):
        path = tmp_path / "multigrain.json"
        multigrain_to_json(hierarchical, path)
        restored = multigrain_from_json(path)
        assert restored.ratios == hierarchical.ratios

    def test_result_loader_rejects_multigrain_archives(self, hierarchical):
        text = multigrain_to_json(hierarchical)
        with pytest.raises(ReproError) as excinfo:
            result_from_json(text)
        assert "multigrain" in str(excinfo.value)

    def test_multigrain_loader_rejects_flat_archives(
        self, paper_dseq, paper_params
    ):
        text = result_to_json(ESTPM(paper_dseq, paper_params).mine())
        with pytest.raises(ReproError) as excinfo:
            multigrain_from_json(text)
        assert "not a multigrain" in str(excinfo.value)

    def test_empty_levels_rejected(self):
        payload = json.dumps(
            {"format_version": 1, "kind": "multigrain", "levels": []}
        )
        with pytest.raises(ReproError) as excinfo:
            multigrain_from_json(payload)
        assert "no levels" in str(excinfo.value)

    def test_malformed_level_rejected(self, hierarchical):
        payload = json.loads(multigrain_to_json(hierarchical))
        del payload["levels"][0]["params"]["max_period"]
        with pytest.raises(ReproError) as excinfo:
            multigrain_from_json(json.dumps(payload))
        assert "malformed" in str(excinfo.value)

    def test_load_results_archive_sniffs_both_kinds(
        self, hierarchical, paper_dseq, paper_params
    ):
        from repro.core.results import MiningResult
        from repro.multigrain import MultiGranularityResult

        flat = load_results_archive(
            result_to_json(ESTPM(paper_dseq, paper_params).mine())
        )
        assert isinstance(flat, MiningResult)
        multi = load_results_archive(multigrain_to_json(hierarchical))
        assert isinstance(multi, MultiGranularityResult)
