"""Unit tests for the Lambert W implementation (validated against scipy)."""

import math

import numpy as np
import pytest
from scipy.special import lambertw as scipy_lambertw

from repro.core.lambertw import BRANCH_POINT, lambert_w0, lambert_w_minus1
from repro.exceptions import MiningError


class TestPrincipalBranch:
    @pytest.mark.parametrize(
        "x", [-0.36, -0.3, -0.1, -1e-6, 0.0, 1e-6, 0.5, 1.0, math.e, 10.0, 1e4]
    )
    def test_matches_scipy(self, x):
        assert lambert_w0(x) == pytest.approx(
            float(scipy_lambertw(x, 0).real), abs=1e-10
        )

    @pytest.mark.parametrize("x", [-0.3, 0.5, 3.0, 100.0])
    def test_inverse_identity(self, x):
        w = lambert_w0(x)
        assert w * math.exp(w) == pytest.approx(x, rel=1e-10)

    def test_branch_point(self):
        assert lambert_w0(BRANCH_POINT) == pytest.approx(-1.0, abs=1e-6)

    def test_below_branch_point_rejected(self):
        with pytest.raises(MiningError):
            lambert_w0(-1.0)


class TestSecondaryBranch:
    @pytest.mark.parametrize("x", [-0.36, -0.25, -0.1, -0.01, -1e-4])
    def test_matches_scipy(self, x):
        assert lambert_w_minus1(x) == pytest.approx(
            float(scipy_lambertw(x, -1).real), rel=1e-8
        )

    @pytest.mark.parametrize("x", [-0.3, -0.05, -0.001])
    def test_inverse_identity(self, x):
        w = lambert_w_minus1(x)
        assert w * math.exp(w) == pytest.approx(x, rel=1e-8)

    def test_domain_enforced(self):
        with pytest.raises(MiningError):
            lambert_w_minus1(0.1)
        with pytest.raises(MiningError):
            lambert_w_minus1(-1.0)


class TestGridAgainstScipy:
    def test_dense_grid_principal(self):
        xs = np.concatenate(
            [np.linspace(BRANCH_POINT + 1e-9, 0.0, 100), np.linspace(0.0, 50.0, 100)]
        )
        for x in xs:
            assert lambert_w0(float(x)) == pytest.approx(
                float(scipy_lambertw(float(x), 0).real), abs=1e-8
            )
