"""Unit tests for the temporal relations (paper Table III, Property 1)."""

import pytest

from repro.events import (
    CONTAINS,
    FOLLOWS,
    OVERLAPS,
    EventInstance,
    RelationConfig,
    relation_between,
)
from repro.events.relations import format_triple, order_pair, relation_of_pair
from repro.exceptions import ConfigError


def _instance(start, end, event="X:1"):
    return EventInstance(event, start, end)


class TestFollows:
    def test_adjacent_intervals_follow(self):
        # [G1,G2] then [G3,G4]: ei ends exactly where ej starts.
        assert relation_between(_instance(1, 2), _instance(3, 4)) == FOLLOWS

    def test_gap_follows(self):
        assert relation_between(_instance(1, 2), _instance(10, 12)) == FOLLOWS

    def test_epsilon_tolerates_small_overlap(self):
        config = RelationConfig(epsilon=1, min_overlap=2)
        # One shared granule is within the epsilon=1 tolerance -> Follows.
        assert relation_between(_instance(1, 3), _instance(3, 6), config) == FOLLOWS


class TestContains:
    def test_proper_containment(self):
        assert relation_between(_instance(1, 6), _instance(2, 4)) == CONTAINS

    def test_equal_intervals_contain(self):
        assert relation_between(_instance(1, 4), _instance(1, 4)) == CONTAINS

    def test_shared_start(self):
        assert relation_between(_instance(1, 6), _instance(1, 3)) == CONTAINS

    def test_epsilon_tolerates_slight_overhang(self):
        config = RelationConfig(epsilon=1)
        assert relation_between(_instance(1, 4), _instance(2, 5), config) == CONTAINS


class TestOverlaps:
    def test_basic_overlap(self):
        assert relation_between(_instance(1, 4), _instance(3, 8)) == OVERLAPS

    def test_overlap_shorter_than_do_is_no_relation(self):
        config = RelationConfig(min_overlap=3)
        assert relation_between(_instance(1, 4), _instance(3, 8), config) is None

    def test_minimum_overlap_boundary(self):
        config = RelationConfig(min_overlap=2)
        assert relation_between(_instance(1, 4), _instance(3, 8), config) == OVERLAPS
        assert relation_between(_instance(1, 4), _instance(4, 8), config) is None

    def test_equal_start_longer_second_is_no_relation(self):
        # Table III requires ts_i < ts_j for Overlaps and te_i >= te_j for
        # Contains; equal starts with a longer second instance match neither.
        assert relation_between(_instance(1, 3), _instance(1, 6)) is None


class TestMutualExclusivity:
    def test_exhaustive_small_grid(self):
        # Property 1: at most one relation holds for every ordered pair.
        config = RelationConfig()
        span = 6
        for start_i in range(1, span):
            for end_i in range(start_i, span):
                for start_j in range(start_i, span):
                    for end_j in range(start_j, span):
                        earlier = _instance(start_i, end_i)
                        later = _instance(start_j, end_j, "Y:1")
                        if later.sort_key() < earlier.sort_key():
                            continue
                        relation = relation_between(earlier, later, config)
                        assert relation in (FOLLOWS, CONTAINS, OVERLAPS, None)


class TestHelpers:
    def test_order_pair(self):
        a, b = _instance(3, 4), _instance(1, 2, "Y:1")
        assert order_pair(a, b) == (b, a)
        assert order_pair(b, a) == (b, a)

    def test_relation_of_pair_orders_first(self):
        late = _instance(5, 6, "A:1")
        early = _instance(1, 2, "B:1")
        relation, first, second = relation_of_pair(late, early)
        assert relation == FOLLOWS
        assert first == early
        assert second == late

    def test_relation_of_pair_none(self):
        config = RelationConfig(min_overlap=5)
        assert relation_of_pair(_instance(1, 4), _instance(3, 8, "Y:1"), config) is None

    def test_format_triple(self):
        assert format_triple(FOLLOWS, "A:1", "B:1") == "A:1 -> B:1"
        assert format_triple(CONTAINS, "A:1", "B:1") == "A:1 >= B:1"
        assert format_triple(OVERLAPS, "A:1", "B:1") == "A:1 ~ B:1"

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            RelationConfig(epsilon=-1)
        with pytest.raises(ConfigError):
            RelationConfig(min_overlap=0)
