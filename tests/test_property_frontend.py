"""Property-based parity of the vectorized front end.

Random symbol streams, raw series, and support sets must be handled
identically by the columnar and scalar front ends under both compute
backends: same DSEQ rows and supports, byte-identical symbolization,
the same batched season counts, and equivalent step-2.1 results.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Alphabet,
    ESTPM,
    MiningParams,
    SymbolicDatabase,
    build_sequence_database,
)
from repro.core.config import set_compute_backend
from repro.core.results import results_equivalent
from repro.core.seasonality import count_seasons, count_seasons_batch
from repro.symbolic.mapping import QuantileMapper, ThresholdMapper
from repro.symbolic.sax import SaxMapper
from repro.symbolic.series import TimeSeries


@st.composite
def databases(draw):
    n_series = draw(st.integers(1, 3))
    # Long enough to cross the columnar builder's numpy cut-over in at
    # least some examples (length * ratio vs _NUMPY_MIN_SYMBOLS).
    length = draw(st.integers(4, 260))
    alphabet = draw(st.sampled_from(["01", "abc"]))
    rows = {
        f"S{i}": "".join(
            draw(st.lists(st.sampled_from(alphabet), min_size=length, max_size=length))
        )
        for i in range(n_series)
    }
    ratio = draw(st.integers(1, 5).filter(lambda r: r <= length))
    return SymbolicDatabase.from_rows(rows, Alphabet(tuple(alphabet))), ratio


@st.composite
def raw_series(draw):
    length = draw(st.integers(8, 240))
    values = draw(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
            min_size=length,
            max_size=length,
        )
    )
    return TimeSeries("R", tuple(values))


@st.composite
def support_sets(draw):
    return draw(
        st.lists(
            st.lists(st.integers(1, 60), min_size=1, max_size=30, unique=True).map(
                sorted
            ),
            min_size=0,
            max_size=5,
        )
    )


def _each_backend(check):
    for backend in (None, "python"):
        set_compute_backend(backend)
        try:
            check()
        finally:
            set_compute_backend(None)


def _rows_and_supports(dseq):
    rows = [(row.position, tuple(row.instances)) for row in dseq.rows]
    supports = {
        event: list(support.positions())
        for event, support in dseq.event_support().items()
    }
    return rows, supports


@given(databases())
@settings(max_examples=60, deadline=None)
def test_columnar_matches_scalar_on_both_backends(db_and_ratio):
    dsyb, ratio = db_and_ratio
    reference = None

    def check():
        nonlocal reference
        columnar = _rows_and_supports(
            build_sequence_database(dsyb, ratio, frontend="columnar")
        )
        scalar = _rows_and_supports(
            build_sequence_database(dsyb, ratio, frontend="scalar")
        )
        assert columnar == scalar
        if reference is None:
            reference = scalar
        else:
            assert scalar == reference  # backends agree with each other

    _each_backend(check)


@given(raw_series(), st.sampled_from([2, 3, 5]))
@settings(max_examples=60, deadline=None)
def test_quantile_symbolization_byte_parity(series, n_bins):
    alphabet = Alphabet.levels([f"L{i}" for i in range(n_bins)])
    mapper = QuantileMapper(alphabet)
    streams = []

    def check():
        streams.append(mapper.encode(series).symbols)

    _each_backend(check)
    assert streams[0] == streams[1]


@given(raw_series(), st.sampled_from([2, 4]), st.sampled_from([1, 2, 3]))
@settings(max_examples=60, deadline=None)
def test_sax_symbolization_byte_parity(series, n_bins, frame):
    alphabet = Alphabet.levels([f"L{i}" for i in range(n_bins)])
    mapper = SaxMapper(alphabet, frame=frame)
    streams = []

    def check():
        streams.append(mapper.encode(series).symbols)

    _each_backend(check)
    assert streams[0] == streams[1]


@given(raw_series())
@settings(max_examples=60, deadline=None)
def test_threshold_symbolization_byte_parity(series):
    mapper = ThresholdMapper((0.0,), Alphabet.binary())
    streams = []

    def check():
        streams.append(mapper.encode(series).symbols)

    _each_backend(check)
    assert streams[0] == streams[1]


@given(
    support_sets(),
    st.integers(1, 6),
    st.integers(1, 8),
    st.sampled_from([None, 2, 3]),
)
@settings(max_examples=60, deadline=None)
def test_count_seasons_batch_matches_per_element(supports, max_period, min_density, stop_at):
    params = MiningParams(
        max_period=max_period,
        min_density=min_density,
        dist_interval=(1, 10),
        min_season=2,
    )

    def check():
        batched = count_seasons_batch(supports, params, stop_at=stop_at)
        singles = [
            count_seasons(support, params, stop_at=stop_at) for support in supports
        ]
        assert batched == singles

    _each_backend(check)


@given(databases())
@settings(max_examples=25, deadline=None)
def test_step21_results_equivalent_across_frontends(db_and_ratio):
    dsyb, ratio = db_and_ratio
    n_granules = dsyb.n_instants // ratio
    if n_granules < 2:
        return
    params = MiningParams(
        max_period=max(1, n_granules // 3),
        min_density=1,
        dist_interval=(1, max(2, n_granules // 2)),
        min_season=2,
        max_pattern_length=1,
    )
    results = []

    def check():
        for frontend in ("columnar", "scalar"):
            dseq = build_sequence_database(dsyb, ratio, frontend=frontend)
            results.append(ESTPM(dseq, params).mine())

    _each_backend(check)
    first = results[0]
    for other in results[1:]:
        assert results_equivalent(first, other)
