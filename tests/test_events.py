"""Unit tests for temporal events and instances (paper Def. 3.7)."""

import pytest

from repro.events import EventInstance, TemporalEvent
from repro.events.event import extract_event
from repro.exceptions import ReproError


class TestEventInstance:
    def test_duration_is_inclusive(self):
        assert EventInstance("C:1", 1, 2).duration == 2
        assert EventInstance("C:1", 4, 4).duration == 1

    def test_sort_key_orders_chronologically(self):
        a = EventInstance("A:1", 1, 3)
        b = EventInstance("B:1", 2, 2)
        assert a.sort_key() < b.sort_key()

    def test_sort_key_puts_container_first_on_tied_starts(self):
        longer = EventInstance("A:1", 1, 5)
        shorter = EventInstance("B:1", 1, 2)
        assert longer.sort_key() < shorter.sort_key()

    def test_describe_matches_paper_notation(self):
        assert EventInstance("C:1", 1, 2).describe() == "(C:1,[G1,G2])"


class TestTemporalEvent:
    def test_paper_example_event(self):
        # E = (C:1, {[G1,G2],[G4,G4],[G7,G8],[G19,G24],[G31,G31],[G34,G35],[G40,G41]})
        event = extract_event("C", tuple("110100110000000000111111000000100110000110"), "1")
        assert event.event == "C:1"
        assert event.intervals == (
            (1, 2), (4, 4), (7, 8), (19, 24), (31, 31), (34, 35), (40, 41),
        )

    def test_series_and_symbol_split(self):
        event = TemporalEvent("Temp:High", ((1, 2),))
        assert event.series == "Temp"
        assert event.symbol == "High"

    def test_instances(self):
        event = TemporalEvent("C:1", ((1, 2), (5, 6)))
        instances = event.instances()
        assert len(event) == 2
        assert instances[0] == EventInstance("C:1", 1, 2)

    def test_overlapping_intervals_rejected(self):
        with pytest.raises(ReproError):
            TemporalEvent("C:1", ((1, 3), (2, 5)))

    def test_inverted_interval_rejected(self):
        with pytest.raises(ReproError):
            TemporalEvent("C:1", ((3, 1),))

    def test_extract_event_handles_trailing_run(self):
        event = extract_event("X", ("1", "0", "1", "1"), "1")
        assert event.intervals == ((1, 1), (3, 4))

    def test_extract_event_absent_symbol(self):
        event = extract_event("X", ("0", "0"), "1")
        assert event.intervals == ()
