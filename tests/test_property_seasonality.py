"""Property-based tests for the seasonality machinery (Defs. 3.13-3.15)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MiningParams, compute_seasons, max_season
from repro.core.seasonality import split_near_support_sets

supports = st.lists(
    st.integers(1, 120), min_size=0, max_size=40, unique=True
).map(sorted)

params_strategy = st.builds(
    MiningParams,
    max_period=st.integers(1, 6),
    min_density=st.integers(1, 4),
    dist_interval=st.tuples(st.integers(0, 5), st.integers(5, 30)),
    min_season=st.integers(1, 5),
)


@given(supports, st.integers(1, 6))
def test_near_sets_partition_the_support(support, max_period):
    sets = split_near_support_sets(support, max_period)
    flattened = [g for near in sets for g in near]
    assert flattened == support


@given(supports, st.integers(1, 6))
def test_near_sets_are_maximal(support, max_period):
    sets = split_near_support_sets(support, max_period)
    for near in sets:
        for a, b in zip(near, near[1:]):
            assert b - a <= max_period
    for left, right in zip(sets, sets[1:]):
        assert right[0] - left[-1] > max_period


@given(supports, params_strategy)
def test_season_invariants(support, params):
    view = compute_seasons(support, params)
    support_set = set(support)
    seen: set[int] = set()
    for season in view.seasons:
        assert len(season) >= params.min_density
        assert set(season) <= support_set
        assert not (set(season) & seen)  # seasons are disjoint
        seen.update(season)
        for a, b in zip(season, season[1:]):
            assert b - a <= params.max_period
    for distance in view.distances():
        assert params.dist_min <= distance <= params.dist_max


@given(supports, params_strategy)
def test_max_season_upper_bounds_seasons(support, params):
    view = compute_seasons(support, params)
    assert view.n_seasons <= max_season(len(support), params.min_density) + 1e-12


@given(supports, supports, params_strategy)
@settings(max_examples=200)
def test_max_season_anti_monotone_under_subset(support_a, support_b, params):
    # Lemma 1: a subset support has at most the superset's maxSeason.
    union = sorted(set(support_a) | set(support_b))
    assert max_season(len(support_a), params.min_density) <= max_season(
        len(union), params.min_density
    )


@given(supports, params_strategy)
def test_adding_occurrences_never_lowers_max_season(support, params):
    extended = sorted(set(support) | {121, 125})
    assert max_season(len(extended), params.min_density) >= max_season(
        len(support), params.min_density
    )


@given(supports, params_strategy)
def test_chain_counter_equals_view(support, params):
    from repro.core.seasonality import count_seasons, is_frequent_seasonal

    view = compute_seasons(support, params)
    assert count_seasons(support, params) == view.n_seasons
    assert is_frequent_seasonal(support, params) == (
        view.n_seasons >= params.min_season
    )


@given(supports, params_strategy, st.integers(1, 6))
def test_chain_counter_early_exit_is_sound(support, params, stop_at):
    from repro.core.seasonality import count_seasons

    exact = compute_seasons(support, params).n_seasons
    stopped = count_seasons(support, params, stop_at=stop_at)
    assert (stopped >= stop_at) == (exact >= stop_at)
