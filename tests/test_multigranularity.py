"""Unit tests for multi-granularity mining (paper contribution (1)).

Since 1.3 :class:`MultiGranularityMiner` is a deprecation shim over
:class:`repro.multigrain.HierarchicalMiner`; these tests pin the legacy
surface (construction contract, per-level params, result shape) plus the
``dist_interval`` ceil bugfix and its ``legacy_dist_floor`` escape hatch.
"""

import warnings

import pytest

from repro import ESTPM, HierarchicalMiner, MultiGranularityMiner, SymbolicDatabase
from repro.core.results import results_equivalent
from repro.exceptions import ConfigError


@pytest.fixture(scope="module")
def dsyb():
    # 15 repetitions of a 12-granule motif: seasonal at several scales.
    return SymbolicDatabase.from_rows(
        {"A": "111000110000" * 15, "B": "110000111000" * 15}
    )


class TestLevelMining:
    def test_levels_are_mined_finest_first(self, dsyb):
        miner = MultiGranularityMiner(
            dsyb, ratios=[6, 3], dist_interval=(0, 120), min_season=2
        )
        levels = miner.mine_all()
        assert [level.ratio for level in levels] == [3, 6]
        assert levels[0].n_sequences == 60
        assert levels[1].n_sequences == 30

    def test_params_resolved_per_level(self, dsyb):
        miner = MultiGranularityMiner(
            dsyb, ratios=[3, 6], max_period_pct=5.0, min_density_pct=5.0,
            dist_interval=(6, 60), min_season=2,
        )
        levels = miner.mine_all()
        by_ratio = {level.ratio: level.params for level in levels}
        assert by_ratio[3].max_period == 3  # ceil(60 * 5%)
        assert by_ratio[6].max_period == 2  # ceil(30 * 5%)
        assert by_ratio[3].dist_interval == (2, 20)
        assert by_ratio[6].dist_interval == (1, 10)

    def test_each_level_matches_direct_mining(self, dsyb):
        miner = MultiGranularityMiner(
            dsyb, ratios=[3], dist_interval=(0, 120), min_season=2
        )
        level = miner.mine_all()[0]
        from repro.transform import build_sequence_database

        direct = ESTPM(build_sequence_database(dsyb, 3), level.params).mine()
        assert level.result.pattern_keys() == direct.pattern_keys()

    def test_coarser_levels_find_patterns_too(self, dsyb):
        miner = MultiGranularityMiner(
            dsyb, ratios=[3, 6, 12], dist_interval=(0, 600), min_season=1
        )
        levels = miner.mine_all()
        assert all(len(level.result) > 0 for level in levels)


class TestDistIntervalRounding:
    def test_upper_bound_is_ceiled(self, dsyb):
        # Regression: the old params_for floored both ends, so a season
        # distance of 10 fine granules (= 3.33 coarse at ratio 3) was
        # silently rejected at the coarse level even though it was valid
        # at the fine one.  The upper bound now rounds up.
        miner = MultiGranularityMiner(dsyb, ratios=[3], dist_interval=(0, 10))
        params = miner.params_for(3, 60)
        assert params.dist_interval == (0, 4)

    def test_lower_bound_still_floors(self, dsyb):
        params = MultiGranularityMiner(
            dsyb, ratios=[3], dist_interval=(7, 10)
        ).params_for(3, 60)
        assert params.dist_interval == (2, 4)

    def test_legacy_flag_restores_the_floor(self, dsyb):
        legacy = MultiGranularityMiner(
            dsyb, ratios=[3], dist_interval=(0, 10), legacy_dist_floor=True
        ).params_for(3, 60)
        assert legacy.dist_interval == (0, 3)

    def test_exact_divisions_are_unchanged(self, dsyb):
        params = MultiGranularityMiner(
            dsyb, ratios=[3], dist_interval=(6, 60)
        ).params_for(3, 60)
        assert params.dist_interval == (2, 20)

    def test_ceil_never_loses_coarse_patterns(self, dsyb):
        # The ceiled interval is a superset of the floored one, so every
        # pattern found under the legacy thresholds survives the fix.
        fixed = MultiGranularityMiner(
            dsyb, ratios=[6], dist_interval=(0, 45), min_season=2
        )
        legacy = MultiGranularityMiner(
            dsyb, ratios=[6], dist_interval=(0, 45), min_season=2,
            legacy_dist_floor=True,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            fixed_level = fixed.mine_all()[0]
            legacy_level = legacy.mine_all()[0]
        assert legacy_level.result.pattern_keys() <= fixed_level.result.pattern_keys()


class TestDeprecationShim:
    def test_mine_all_warns_once_per_call(self, dsyb):
        miner = MultiGranularityMiner(
            dsyb, ratios=[3], dist_interval=(0, 120), min_season=2
        )
        with pytest.warns(DeprecationWarning, match="HierarchicalMiner"):
            miner.mine_all()

    def test_shim_matches_the_hierarchical_engine(self, dsyb):
        shim = MultiGranularityMiner(
            dsyb, ratios=[3, 6], dist_interval=(0, 120), min_season=2
        )
        engine = HierarchicalMiner(
            dsyb, ratios=[3, 6], dist_interval=(0, 120), min_season=2
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy_levels = shim.mine_all()
        hierarchical = engine.mine()
        assert [level.ratio for level in legacy_levels] == hierarchical.ratios
        for legacy_level, level in zip(legacy_levels, hierarchical.levels):
            assert legacy_level.params == level.params
            assert legacy_level.n_sequences == level.n_sequences
            assert results_equivalent(legacy_level.result, level.result)


class TestValidation:
    def test_empty_ratios_rejected(self, dsyb):
        with pytest.raises(ConfigError):
            MultiGranularityMiner(dsyb, ratios=[])

    def test_duplicate_ratios_rejected(self, dsyb):
        with pytest.raises(ConfigError):
            MultiGranularityMiner(dsyb, ratios=[3, 3])

    def test_too_coarse_ratio_rejected(self, dsyb):
        miner = MultiGranularityMiner(dsyb, ratios=[100], min_season=1)
        with pytest.raises(ConfigError):
            miner.mine_all()
