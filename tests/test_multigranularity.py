"""Unit tests for multi-granularity mining (paper contribution (1))."""

import pytest

from repro import ESTPM, MultiGranularityMiner, SymbolicDatabase
from repro.exceptions import ConfigError


@pytest.fixture(scope="module")
def dsyb():
    # 15 repetitions of a 12-granule motif: seasonal at several scales.
    return SymbolicDatabase.from_rows(
        {"A": "111000110000" * 15, "B": "110000111000" * 15}
    )


class TestLevelMining:
    def test_levels_are_mined_finest_first(self, dsyb):
        miner = MultiGranularityMiner(
            dsyb, ratios=[6, 3], dist_interval=(0, 120), min_season=2
        )
        levels = miner.mine_all()
        assert [level.ratio for level in levels] == [3, 6]
        assert levels[0].n_sequences == 60
        assert levels[1].n_sequences == 30

    def test_params_resolved_per_level(self, dsyb):
        miner = MultiGranularityMiner(
            dsyb, ratios=[3, 6], max_period_pct=5.0, min_density_pct=5.0,
            dist_interval=(6, 60), min_season=2,
        )
        levels = miner.mine_all()
        by_ratio = {level.ratio: level.params for level in levels}
        assert by_ratio[3].max_period == 3  # ceil(60 * 5%)
        assert by_ratio[6].max_period == 2  # ceil(30 * 5%)
        assert by_ratio[3].dist_interval == (2, 20)
        assert by_ratio[6].dist_interval == (1, 10)

    def test_each_level_matches_direct_mining(self, dsyb):
        miner = MultiGranularityMiner(
            dsyb, ratios=[3], dist_interval=(0, 120), min_season=2
        )
        level = miner.mine_all()[0]
        from repro.transform import build_sequence_database

        direct = ESTPM(build_sequence_database(dsyb, 3), level.params).mine()
        assert level.result.pattern_keys() == direct.pattern_keys()

    def test_coarser_levels_find_patterns_too(self, dsyb):
        miner = MultiGranularityMiner(
            dsyb, ratios=[3, 6, 12], dist_interval=(0, 600), min_season=1
        )
        levels = miner.mine_all()
        assert all(len(level.result) > 0 for level in levels)


class TestValidation:
    def test_empty_ratios_rejected(self, dsyb):
        with pytest.raises(ConfigError):
            MultiGranularityMiner(dsyb, ratios=[])

    def test_duplicate_ratios_rejected(self, dsyb):
        with pytest.raises(ConfigError):
            MultiGranularityMiner(dsyb, ratios=[3, 3])

    def test_too_coarse_ratio_rejected(self, dsyb):
        miner = MultiGranularityMiner(dsyb, ratios=[100], min_season=1)
        with pytest.raises(ConfigError):
            miner.mine_all()
