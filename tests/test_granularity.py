"""Unit tests for the time granularity model (paper Defs. 3.1-3.4)."""

import pytest

from repro.exceptions import GranularityError
from repro.granularity import Granularity, GranularityHierarchy, Granule, TimeDomain


class TestTimeDomain:
    def test_length_and_membership(self):
        domain = TimeDomain(42, unit="5min")
        assert len(domain) == 42
        assert 0 in domain
        assert 41 in domain
        assert 42 not in domain
        assert -1 not in domain

    def test_instants_range(self):
        domain = TimeDomain(5)
        assert list(domain.instants()) == [0, 1, 2, 3, 4]

    def test_label(self):
        domain = TimeDomain(3, unit="minute", origin="2020-01-01")
        assert "minute[2]" in domain.label(2)

    def test_label_out_of_range_raises(self):
        with pytest.raises(GranularityError):
            TimeDomain(3).label(3)

    def test_empty_domain_rejected(self):
        with pytest.raises(GranularityError):
            TimeDomain(0)


class TestGranule:
    def test_width(self):
        granule = Granule(position=2, start=3, end=5)
        assert len(granule) == 3
        assert list(granule.instants()) == [3, 4, 5]

    def test_zero_based_position_rejected(self):
        with pytest.raises(GranularityError):
            Granule(position=0, start=0, end=1)

    def test_inverted_interval_rejected(self):
        with pytest.raises(GranularityError):
            Granule(position=1, start=5, end=3)


class TestGranularity:
    def test_paper_example_positions(self):
        # Minute granularity: position of Minute2 is 2; period between
        # Minute1 and Minute6 is 5 (paper Sec. III-A).
        domain = TimeDomain(10, unit="minute")
        minutes = Granularity(domain, 1, "Minute")
        assert minutes.granule(2).position == 2
        assert minutes.period(1, 6) == 5
        assert minutes.period(6, 1) == 5

    def test_partition_drops_trailing_partial_granule(self):
        domain = TimeDomain(10)
        coarse = Granularity(domain, 3, "H")
        assert coarse.n_granules == 3  # instant 9 is dropped

    def test_granule_instants(self):
        domain = TimeDomain(9)
        coarse = Granularity(domain, 3)
        assert list(coarse.granule(1).instants()) == [0, 1, 2]
        assert list(coarse.granule(3).instants()) == [6, 7, 8]

    def test_position_of_instant(self):
        domain = TimeDomain(9)
        coarse = Granularity(domain, 3)
        assert coarse.position_of_instant(0) == 1
        assert coarse.position_of_instant(5) == 2
        assert coarse.position_of_instant(8) == 3

    def test_position_of_instant_in_dropped_tail_raises(self):
        domain = TimeDomain(10)
        coarse = Granularity(domain, 3)
        with pytest.raises(GranularityError):
            coarse.position_of_instant(9)

    def test_finer_relation(self):
        # 5-Minutes is 3-Finer than 15-Minutes (paper Fig. 2).
        domain = TimeDomain(42)
        fine = Granularity(domain, 1, "5-Minutes")
        coarse = Granularity(domain, 3, "15-Minutes")
        assert fine.is_finer_than(coarse)
        assert fine.finer_ratio(coarse) == 3
        assert not coarse.is_finer_than(fine) or coarse.finer_ratio(fine) == 0

    def test_not_finer_when_not_dividing(self):
        domain = TimeDomain(42)
        two = Granularity(domain, 2)
        three = Granularity(domain, 3)
        assert not two.is_finer_than(three)
        with pytest.raises(GranularityError):
            two.finer_ratio(three)

    def test_invalid_widths_rejected(self):
        domain = TimeDomain(5)
        with pytest.raises(GranularityError):
            Granularity(domain, 0)
        with pytest.raises(GranularityError):
            Granularity(domain, 6)

    def test_period_validates_positions(self):
        domain = TimeDomain(9)
        coarse = Granularity(domain, 3)
        with pytest.raises(GranularityError):
            coarse.period(0, 2)
        with pytest.raises(GranularityError):
            coarse.period(1, 4)


class TestGranularityHierarchy:
    def test_paper_fig2_chain(self):
        # 5-Minutes -> 15-Minutes -> 30-Minutes.
        domain = TimeDomain(60)
        hierarchy = GranularityHierarchy.from_widths(
            domain, [1, 3, 6], ["5-Minutes", "15-Minutes", "30-Minutes"]
        )
        assert len(hierarchy) == 3
        assert hierarchy.finest.name == "5-Minutes"
        assert hierarchy.ratio(0, 1) == 3
        assert hierarchy.ratio(1, 2) == 2
        assert hierarchy.ratio(0, 2) == 6

    def test_by_name(self):
        domain = TimeDomain(60)
        hierarchy = GranularityHierarchy.from_widths(domain, [1, 2], ["a", "b"])
        assert hierarchy.by_name("b").instants_per_granule == 2
        with pytest.raises(GranularityError):
            hierarchy.by_name("zzz")

    def test_non_dividing_level_rejected(self):
        domain = TimeDomain(60)
        with pytest.raises(GranularityError):
            GranularityHierarchy.from_widths(domain, [2, 3])

    def test_mixed_domain_rejected(self):
        hierarchy = GranularityHierarchy.from_widths(TimeDomain(60), [1])
        with pytest.raises(GranularityError):
            hierarchy.add_level(Granularity(TimeDomain(30), 2))

    def test_iteration_and_level_bounds(self):
        hierarchy = GranularityHierarchy.from_widths(TimeDomain(12), [1, 4])
        assert [g.instants_per_granule for g in hierarchy] == [1, 4]
        with pytest.raises(GranularityError):
            hierarchy.level(5)

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(GranularityError):
            GranularityHierarchy.from_widths(TimeDomain(5), [])
        with pytest.raises(GranularityError):
            GranularityHierarchy(TimeDomain(5)).finest
