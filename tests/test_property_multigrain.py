"""Property-based tests for the coarsening fold (the multigrain hot path).

The soundness of the whole fold-derived engine rests on two equalities,
asserted here for random databases, ratios, and both support backends:

* ``SupportSet.coarsen(factor)`` on a fine event support equals the
  support recomputed by scanning a freshly rebuilt coarse DSEQ;
* ``TemporalSequenceDatabase.coarsen(factor)`` produces exactly the rows
  ``build_sequence_database`` would produce at the coarse ratio.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Alphabet, SymbolicDatabase, build_sequence_database
from repro.core.supportset import SUPPORT_BACKENDS, make_support_set

MAX_LENGTH = 48


@st.composite
def fold_cases(draw):
    """A random DSYB plus a fine ratio and a coarsening factor."""
    n_series = draw(st.integers(1, 3))
    length = draw(st.integers(8, MAX_LENGTH))
    alphabet = draw(st.sampled_from(["01", "abc"]))
    rows = {
        f"S{i}": "".join(
            draw(st.lists(st.sampled_from(alphabet), min_size=length, max_size=length))
        )
        for i in range(n_series)
    }
    base_ratio = draw(st.integers(1, 4).filter(lambda r: length // r >= 2))
    n_fine = length // base_ratio
    factor = draw(st.integers(1, 4).filter(lambda f: n_fine // f >= 1))
    dsyb = SymbolicDatabase.from_rows(rows, Alphabet(tuple(alphabet)))
    return dsyb, base_ratio, factor


@given(fold_cases())
@settings(max_examples=80, deadline=None)
def test_folded_supports_equal_rebuilt_coarse_supports(case):
    dsyb, base_ratio, factor = case
    fine = build_sequence_database(dsyb, base_ratio)
    coarse = build_sequence_database(dsyb, base_ratio * factor)
    n_coarse = len(coarse)
    for backend in SUPPORT_BACKENDS:
        fine_supports = fine.event_support(backend)
        recomputed = coarse.event_support(backend)
        folded = {
            event: support.coarsen(factor, n_coarse)
            for event, support in fine_supports.items()
        }
        folded = {event: support for event, support in folded.items() if support}
        assert set(folded) == set(recomputed)
        for event, support in folded.items():
            assert support.backend == backend
            assert support == recomputed[event]


@given(fold_cases())
@settings(max_examples=80, deadline=None)
def test_coarsened_rows_equal_rebuilt_rows(case):
    dsyb, base_ratio, factor = case
    fine = build_sequence_database(dsyb, base_ratio)
    derived = fine.coarsen(factor)
    rebuilt = build_sequence_database(dsyb, base_ratio * factor)
    assert derived.ratio == rebuilt.ratio == base_ratio * factor
    assert len(derived) == len(rebuilt)
    for derived_row, rebuilt_row in zip(derived.rows, rebuilt.rows):
        assert derived_row.position == rebuilt_row.position
        assert derived_row.instances == rebuilt_row.instances
        assert derived_row.events() == rebuilt_row.events()


@given(
    st.lists(st.integers(1, 200), min_size=0, max_size=40, unique=True),
    st.integers(1, 7),
)
@settings(max_examples=120, deadline=None)
def test_both_backends_fold_identically(positions, factor):
    ordered = sorted(positions)
    expected = sorted({(p - 1) // factor + 1 for p in ordered})
    for backend in SUPPORT_BACKENDS:
        folded = make_support_set(ordered, backend).coarsen(factor)
        assert list(folded) == expected
    limit = max(expected, default=0) // 2
    capped = [p for p in expected if p <= limit]
    for backend in SUPPORT_BACKENDS:
        folded = make_support_set(ordered, backend).coarsen(factor, limit)
        assert list(folded) == capped
