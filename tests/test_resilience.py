"""Chaos suite for the resilience layer.

Drives seeded :class:`FaultPlan` schedules -- worker kills, transient
raises, delays, interrupted writes -- through all three executors and
both miners, and asserts the recovery machinery's contract: a recovered
run lands on output *equivalent* (for retry-then-succeed schedules,
byte-identical) to an uninjected run, exhausted tasks quarantine into
``failures`` instead of killing the job, resume-from-checkpoint equals
a fresh run, and an interrupted atomic write leaves the previous file
intact.  The backoff schedule's determinism is pinned by a hypothesis
property test.
"""

from __future__ import annotations

import json
import os
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executor import ParallelExecutor, SerialExecutor, ThreadExecutor
from repro.core.results import results_equivalent
from repro.core.stpm import ESTPM
from repro.exceptions import ConfigError, FaultInjected, MiningError
from repro.io.atomic import write_text_atomic
from repro.io.job_checkpoint import JobCheckpoint
from repro.io.results_json import result_to_json
from repro.multigrain import HierarchicalMiner
from repro.obs import counters as metrics
from repro.obs import (
    disable_telemetry,
    enable_telemetry,
    reset_telemetry,
    summary as telemetry_summary,
    write_trace,
)
from repro.resilience import (
    FAULT_PLAN_ENV,
    DEFAULT_RETRY_POLICY,
    FailedTask,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    active_fault_plan,
    fault_task_scope,
    install_fault_plan,
    maybe_fault,
)
from repro.resilience.policy import task_key_of

#: Retries without sleeps, so chaos runs stay fast.
FAST_RETRY = RetryPolicy(backoff_base_s=0.0)


@pytest.fixture(autouse=True)
def _no_leaked_faults():
    """Every test leaves the process (and environment) fault-free."""
    yield
    install_fault_plan(None)


@pytest.fixture()
def counters():
    """Enable the metric registry for one test and return it."""
    metrics.enable_metrics()
    metrics.reset()
    try:
        yield metrics.registry()
    finally:
        metrics.disable_metrics()
        metrics.reset()


def _square(task):
    """Module-level task fn so process pools can pickle it."""
    return task * task


def _raise_plan(**constraints) -> FaultPlan:
    return FaultPlan(seed=7, faults=(FaultSpec(site="task", op="raise", **constraints),))


class TestRetryPolicy:
    def test_default_policy_bounds(self):
        assert DEFAULT_RETRY_POLICY.max_attempts == 3
        assert DEFAULT_RETRY_POLICY.timeout_s is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base_s": -1.0},
            {"backoff_multiplier": 0.5},
            {"jitter_pct": 1.0},
            {"jitter_pct": -0.1},
            {"timeout_s": 0.0},
            {"max_pool_breaks": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)

    def test_backoff_rejects_bad_attempt(self):
        with pytest.raises(ConfigError):
            DEFAULT_RETRY_POLICY.backoff_s("k", 0)

    def test_backoff_caps_without_jitter(self):
        policy = RetryPolicy(
            backoff_base_s=1.0, backoff_multiplier=2.0, backoff_max_s=3.0, jitter_pct=0.0
        )
        assert policy.backoff_s("k", 1) == 1.0
        assert policy.backoff_s("k", 2) == 2.0
        assert policy.backoff_s("k", 3) == 3.0  # capped, not 4.0
        assert policy.backoff_s("k", 9) == 3.0

    @given(
        key=st.text(max_size=30),
        attempt=st.integers(min_value=1, max_value=12),
        base=st.floats(min_value=0.001, max_value=2.0),
        jitter=st.floats(min_value=0.0, max_value=0.99),
    )
    @settings(max_examples=80, deadline=None)
    def test_backoff_deterministic_and_bounded(self, key, attempt, base, jitter):
        policy = RetryPolicy(
            backoff_base_s=base, jitter_pct=jitter, backoff_max_s=5.0
        )
        delay = policy.backoff_s(key, attempt)
        # Pure function of (key, attempt): same inputs, same delay --
        # including across a fresh policy object.
        assert delay == policy.backoff_s(key, attempt)
        assert delay == RetryPolicy(
            backoff_base_s=base, jitter_pct=jitter, backoff_max_s=5.0
        ).backoff_s(key, attempt)
        cap = min(base * policy.backoff_multiplier ** (attempt - 1), 5.0)
        assert cap * (1.0 - jitter) - 1e-12 <= delay <= cap * (1.0 + jitter) + 1e-12

    def test_failed_task_describe(self):
        failed = FailedTask(key="('a', 'b')", error="ValueError('x')", attempts=3)
        assert "('a', 'b')" in failed.describe()
        assert "3 attempts" in failed.describe()

    def test_task_key_is_repr(self):
        assert task_key_of(("a", 1)) == "('a', 1)"


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=42,
            faults=(
                FaultSpec(site="task", op="kill", index=3, attempt=0),
                FaultSpec(site="write", op="interrupt", key="ckpt"),
                FaultSpec(site="task", op="delay", delay_s=0.5),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_install_mirrors_environment(self):
        import repro.resilience.faults as faults_mod

        plan = _raise_plan(index=1)
        install_fault_plan(plan)
        assert FaultPlan.from_json(os.environ[FAULT_PLAN_ENV]) == plan
        # A worker process has no module global -- only the environment.
        faults_mod._ACTIVE = None
        assert active_fault_plan() == plan
        install_fault_plan(None)
        assert FAULT_PLAN_ENV not in os.environ
        assert active_fault_plan() is None

    @pytest.mark.parametrize(
        "kwargs", [{"site": "nope", "op": "raise"}, {"site": "task", "op": "nope"},
                   {"site": "task", "op": "delay", "delay_s": -1.0}]
    )
    def test_spec_validation(self, kwargs):
        with pytest.raises(ConfigError):
            FaultSpec(**kwargs)

    def test_bad_json_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_json("{not json")
        with pytest.raises(ConfigError):
            FaultPlan.from_json("[1, 2]")

    def test_matching_constraints(self):
        spec = FaultSpec(site="task", op="raise", index=2, key="pair", attempt=1)
        assert spec.matches("task", 2, "k2:pair:('a','b')", 1)
        assert not spec.matches("task", 3, "k2:pair:('a','b')", 1)
        assert not spec.matches("task", 2, "extension", 1)
        assert not spec.matches("task", 2, "k2:pair:('a','b')", 0)
        assert not spec.matches("write", 2, "k2:pair:('a','b')", 1)
        wildcard = FaultSpec(site="task", op="raise")
        assert wildcard.matches("task", 99, None, 7)

    @pytest.mark.parametrize(
        "value",
        [
            FaultSpec(site="task", op="kill", index=1),
            FaultPlan(seed=9, faults=(FaultSpec(site="write", op="interrupt"),)),
            FailedTask(key="('a',)", error="OSError()", attempts=2),
            RetryPolicy(max_attempts=5, timeout_s=1.5),
        ],
    )
    def test_pickles_across_executor_boundary(self, value):
        assert pickle.loads(pickle.dumps(value)) == value

    def test_maybe_fault_noop_without_plan(self):
        with fault_task_scope():
            maybe_fault("task", index=0, key="k", attempt=0)  # must not raise

    def test_raise_fires_at_depth_one_only(self):
        install_fault_plan(_raise_plan(index=0))
        with fault_task_scope():
            with pytest.raises(FaultInjected):
                maybe_fault("task", index=0, key="k", attempt=0)
            with fault_task_scope():
                # Depth 2: a miner nested inside a worker never re-fires.
                maybe_fault("task", index=0, key="k", attempt=0)

    def test_kill_degrades_to_raise_outside_pool_workers(self):
        install_fault_plan(
            FaultPlan(faults=(FaultSpec(site="task", op="kill", index=0),))
        )
        with fault_task_scope():
            with pytest.raises(FaultInjected):
                maybe_fault("task", index=0, key="k", attempt=0)


class TestAtomicWrites:
    def test_round_trip_creates_parents(self, tmp_path):
        target = tmp_path / "nested" / "dir" / "out.json"
        written = write_text_atomic(target, '{"ok": true}\n')
        assert written == target
        assert target.read_text() == '{"ok": true}\n'

    def test_overwrite_replaces(self, tmp_path):
        target = tmp_path / "state.json"
        write_text_atomic(target, "first")
        write_text_atomic(target, "second")
        assert target.read_text() == "second"

    def test_interrupted_write_keeps_previous_file(self, tmp_path):
        target = tmp_path / "state.json"
        write_text_atomic(target, "previous")
        install_fault_plan(
            FaultPlan(
                seed=3,
                faults=(FaultSpec(site="write", op="interrupt", key="state.json"),),
            )
        )
        with pytest.raises(FaultInjected):
            write_text_atomic(target, "partial new content")
        install_fault_plan(None)
        # The crash hit between the temp write and the atomic rename:
        # the previous contents survive and the temp file is cleaned up.
        assert target.read_text() == "previous"
        assert [p.name for p in tmp_path.iterdir()] == ["state.json"]
        write_text_atomic(target, "new")
        assert target.read_text() == "new"


def _executors():
    return [
        ("serial", lambda: SerialExecutor(retry=FAST_RETRY)),
        ("threads", lambda: ThreadExecutor(max_workers=2, retry=FAST_RETRY)),
        ("parallel", lambda: ParallelExecutor(max_workers=2, retry=FAST_RETRY)),
    ]


class TestExecutorRecovery:
    @pytest.mark.parametrize(
        "name,factory", _executors(), ids=[name for name, _ in _executors()]
    )
    def test_retry_then_succeed_matches_unfaulted(self, name, factory):
        tasks = list(range(6))
        expected = [task * task for task in tasks]
        install_fault_plan(_raise_plan(index=1, attempt=0))
        runner = factory()
        try:
            assert list(runner.map_tasks(_square, tasks, None)) == expected
        finally:
            runner.close()

    @pytest.mark.parametrize(
        "name,factory", _executors(), ids=[name for name, _ in _executors()]
    )
    def test_exhausted_task_quarantines_in_place(self, name, factory):
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.0)
        install_fault_plan(_raise_plan(index=2))  # every attempt of task 2
        runner = factory()
        runner.retry = policy
        try:
            outcomes = list(runner.map_tasks(_square, list(range(5)), None))
        finally:
            runner.close()
        quarantined = outcomes[2]
        assert isinstance(quarantined, FailedTask)
        assert quarantined.attempts == 2
        assert "FaultInjected" in quarantined.error
        assert [o for i, o in enumerate(outcomes) if i != 2] == [0, 1, 9, 16]

    def test_pool_break_recovery_fork(self, counters):
        install_fault_plan(
            FaultPlan(faults=(FaultSpec(site="task", op="kill", index=0, attempt=0),))
        )
        runner = ParallelExecutor(max_workers=2, retry=FAST_RETRY)
        try:
            tasks = list(range(8))
            assert list(runner.map_tasks(_square, tasks, None)) == [
                task * task for task in tasks
            ]
        finally:
            runner.close()
        assert counters.snapshot()["counters"].get("executor.pool_breaks", 0) >= 1

    def test_pool_break_recovery_spawn(self):
        # task_key_of is importable from a spawn worker, unlike test fns.
        install_fault_plan(
            FaultPlan(faults=(FaultSpec(site="task", op="kill", index=1, attempt=0),))
        )
        runner = ParallelExecutor(
            max_workers=2, start_method="spawn", retry=FAST_RETRY
        )
        try:
            tasks = list(range(4))
            assert list(runner.map_tasks(task_key_of, tasks, None)) == [
                repr(task) for task in tasks
            ]
        finally:
            runner.close()

    def test_persistent_breaks_degrade_to_serial(self, counters):
        # Task 0 dies on *every* attempt: the pool keeps breaking until
        # the degradation threshold, then the serial fallback turns the
        # kill into a retryable raise and finally quarantines the task.
        install_fault_plan(
            FaultPlan(faults=(FaultSpec(site="task", op="kill", index=0),))
        )
        runner = ParallelExecutor(
            max_workers=2,
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0, max_pool_breaks=1),
        )
        try:
            outcomes = list(runner.map_tasks(_square, list(range(4)), None))
        finally:
            runner.close()
        assert isinstance(outcomes[0], FailedTask)
        assert outcomes[1:] == [1, 4, 9]
        snapshot = counters.snapshot()["counters"]
        assert snapshot.get("executor.serial_degradations", 0) >= 1
        assert snapshot.get("executor.pool_breaks", 0) >= 2

    def test_stalled_task_times_out_and_recovers(self, counters):
        install_fault_plan(
            FaultPlan(
                faults=(
                    FaultSpec(site="task", op="delay", index=0, attempt=0, delay_s=5.0),
                ),
            )
        )
        runner = ParallelExecutor(
            max_workers=2,
            retry=RetryPolicy(backoff_base_s=0.0, timeout_s=0.3),
        )
        try:
            assert list(runner.map_tasks(_square, [0, 1], None)) == [0, 1]
        finally:
            runner.close()
        assert counters.snapshot()["counters"].get("executor.task_timeouts", 0) >= 1

    def test_close_is_idempotent(self):
        runner = ParallelExecutor(max_workers=2)
        assert list(runner.map_tasks(_square, [1, 2], None)) == [1, 4]
        runner.close()
        runner.close()  # second close is a no-op, not an error


class TestMiningChaos:
    @pytest.fixture(scope="class")
    def baseline(self, paper_dseq, paper_params):
        return ESTPM(paper_dseq, paper_params).mine()

    @pytest.mark.parametrize(
        "name,factory", _executors(), ids=[name for name, _ in _executors()]
    )
    def test_retry_then_succeed_byte_identical(
        self, name, factory, paper_dseq, paper_params, baseline
    ):
        # Fail the *first* attempt of every task; retries succeed, and
        # the recovered result is byte-identical to the unfaulted run.
        install_fault_plan(_raise_plan(attempt=0))
        runner = factory()
        try:
            result = ESTPM(paper_dseq, paper_params, executor=runner).mine()
        finally:
            runner.close()
        assert not result.failures and result.complete
        assert results_equivalent(result, baseline)
        assert (
            json.loads(result_to_json(result))["patterns"]
            == json.loads(result_to_json(baseline))["patterns"]
        )

    def test_quarantine_strict_raises(self, paper_dseq, paper_params):
        install_fault_plan(_raise_plan(index=0))
        runner = SerialExecutor(retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0))
        with pytest.raises(MiningError, match="failed after retries"):
            ESTPM(paper_dseq, paper_params, executor=runner).mine()

    def test_quarantine_partial_result_not_equivalent(
        self, paper_dseq, paper_params, baseline
    ):
        install_fault_plan(_raise_plan(index=0))
        runner = SerialExecutor(retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0))
        result = ESTPM(
            paper_dseq, paper_params, executor=runner, strict=False
        ).mine()
        assert result.failures and not result.complete
        assert result.failures[0].attempts == 2
        assert not results_equivalent(result, baseline)
        assert not results_equivalent(baseline, result)

    def test_resume_after_crash_equals_fresh_run(
        self, tmp_path, paper_dseq, paper_params, baseline, counters
    ):
        ckpt = str(tmp_path / "estpm.ckpt.json")
        install_fault_plan(_raise_plan(index=0))
        crashing = ESTPM(
            paper_dseq,
            paper_params,
            executor=SerialExecutor(retry=RetryPolicy(max_attempts=1, backoff_base_s=0.0)),
            checkpoint_path=ckpt,
        )
        with pytest.raises(MiningError):
            crashing.mine()
        assert os.path.exists(ckpt)  # completed groups were persisted
        install_fault_plan(None)
        resumed = ESTPM(paper_dseq, paper_params, checkpoint_path=ckpt).mine()
        assert counters.snapshot()["counters"].get("resume.tasks_skipped", 0) >= 1
        assert results_equivalent(resumed, baseline)
        assert (
            json.loads(result_to_json(resumed))["patterns"]
            == json.loads(result_to_json(baseline))["patterns"]
        )

    def test_checkpoint_rejects_different_job(self, tmp_path, paper_dseq, paper_params):
        ckpt = str(tmp_path / "estpm.ckpt.json")
        ESTPM(paper_dseq, paper_params, checkpoint_path=ckpt).mine()
        from dataclasses import replace

        other = replace(paper_params, min_season=paper_params.min_season + 1)
        with pytest.raises(ConfigError, match="fingerprint"):
            ESTPM(paper_dseq, other, checkpoint_path=ckpt).mine()

    @pytest.mark.parametrize("dataset_name", ["tiny_re", "tiny_inf"])
    def test_seed_dataset_chaos_parity(self, dataset_name, request):
        dataset = request.getfixturevalue(dataset_name)
        params = dataset.params(
            max_period_pct=0.4, min_density_pct=0.75, min_season=4
        )
        baseline = ESTPM(dataset.dseq(), params).mine()
        install_fault_plan(_raise_plan(attempt=0))
        runner = SerialExecutor(retry=FAST_RETRY)
        result = ESTPM(dataset.dseq(), params, executor=runner).mine()
        assert not result.failures
        assert results_equivalent(result, baseline)


class TestMultigrainChaos:
    def _miner(self, dsyb, **kwargs):
        return HierarchicalMiner(
            dsyb,
            ratios=[3, 6],
            dist_interval=(12, 30),
            min_season=2,
            max_pattern_length=2,
            **kwargs,
        )

    @pytest.fixture(scope="class")
    def baseline(self, paper_dsyb):
        return self._miner(paper_dsyb).mine()

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_chaos_parity_kill_one_worker_per_level(
        self, start_method, paper_dsyb, baseline, tmp_path
    ):
        # The acceptance scenario: a seeded plan kills the first attempt
        # of every level task; the job completes via pool-break recovery
        # with output equivalent to the uninjected run, under both start
        # methods, and the recovery counters land in the trace JSON.
        install_fault_plan(
            FaultPlan(seed=42, faults=(FaultSpec(site="task", op="kill", attempt=0),))
        )
        runner = ParallelExecutor(
            max_workers=2, start_method=start_method, retry=FAST_RETRY
        )
        reset_telemetry()
        enable_telemetry()
        try:
            result = self._miner(paper_dsyb, executor=runner).mine()
            trace_path = tmp_path / f"chaos-{start_method}.json"
            write_trace(trace_path, command="chaos", counters=telemetry_summary())
        finally:
            disable_telemetry()
            reset_telemetry()
            runner.close()
            install_fault_plan(None)
        assert not result.failures
        assert len(result.levels) == len(baseline.levels)
        for mine, theirs in zip(result, baseline):
            assert mine.ratio == theirs.ratio
            assert results_equivalent(mine.result, theirs.result)
        trace = json.loads(trace_path.read_text())
        counter_names = set(trace["counters"]["counters"])
        assert "faults.injected.kill" in counter_names or (
            counter_names & {"executor.pool_breaks", "executor.retries"}
        )

    def test_level_quarantine_strict_and_partial(self, paper_dsyb, baseline):
        install_fault_plan(_raise_plan(index=1))
        runner = SerialExecutor(retry=RetryPolicy(max_attempts=1, backoff_base_s=0.0))
        with pytest.raises(MiningError, match="level task"):
            self._miner(paper_dsyb, executor=runner).mine()
        partial = self._miner(paper_dsyb, executor=runner, strict=False).mine()
        assert len(partial.failures) == 1
        assert not partial.complete
        assert len(partial.levels) == len(baseline.levels) - 1

    def test_resume_equals_fresh_hierarchy(
        self, tmp_path, paper_dsyb, baseline, counters
    ):
        ckpt = str(tmp_path / "multigrain.ckpt.json")
        install_fault_plan(_raise_plan(index=1))
        crashing = self._miner(
            paper_dsyb,
            executor=SerialExecutor(retry=RetryPolicy(max_attempts=1, backoff_base_s=0.0)),
            checkpoint_path=ckpt,
        )
        with pytest.raises(MiningError):
            crashing.mine()
        install_fault_plan(None)
        resumed = self._miner(paper_dsyb, checkpoint_path=ckpt).mine()
        assert counters.snapshot()["counters"].get("resume.tasks_skipped", 0) >= 1
        assert len(resumed.levels) == len(baseline.levels)
        for mine, theirs in zip(resumed, baseline):
            assert results_equivalent(mine.result, theirs.result)


class TestJobCheckpoint:
    def test_record_flush_reload(self, tmp_path):
        path = tmp_path / "job.json"
        fingerprint = {"job": "test", "n": 3}
        ckpt = JobCheckpoint(path, fingerprint)
        ckpt.record("k2:('a','b')", {"support": [1, 2]})
        ckpt.flush()
        reloaded = JobCheckpoint(path, fingerprint)
        assert len(reloaded) == 1
        assert "k2:('a','b')" in reloaded
        assert reloaded.get("k2:('a','b')") == {"support": [1, 2]}

    def test_flush_every_autoflushes(self, tmp_path):
        path = tmp_path / "job.json"
        ckpt = JobCheckpoint(path, {"job": "test"}, flush_every=1)
        ckpt.record("a", 1)
        assert path.exists()
        assert "a" in JobCheckpoint(path, {"job": "test"})

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = tmp_path / "job.json"
        JobCheckpoint(path, {"job": "test", "n": 3}).flush()
        with pytest.raises(ConfigError, match="fingerprint"):
            JobCheckpoint(path, {"job": "test", "n": 4})

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "job.json"
        path.write_text(
            json.dumps({"format_version": 99, "fingerprint": {}, "outcomes": {}})
        )
        with pytest.raises(ConfigError, match="version"):
            JobCheckpoint(path, {})


class TestStreamingAutosave:
    def _service(self, tmp_path, **kwargs):
        from repro import (
            MiningParams,
            StreamingDatabase,
            StreamingMiningService,
        )
        from repro.symbolic import Alphabet

        database = StreamingDatabase(
            2, {"T": Alphabet.binary(), "W": Alphabet.binary()}
        )
        params = MiningParams(
            max_period=3, min_density=2, dist_interval=(0, 12), min_season=2
        )
        return StreamingMiningService(database, params, **kwargs)

    def test_validation(self, tmp_path):
        with pytest.raises(MiningError, match="checkpoint_every"):
            self._service(tmp_path, checkpoint_path=tmp_path / "s.json", checkpoint_every=0)
        with pytest.raises(MiningError, match="checkpoint_path"):
            self._service(tmp_path, checkpoint_every=2)

    def test_autosave_and_restore_parity(self, tmp_path):
        from repro import StreamingMiningService

        path = tmp_path / "stream.json"
        service = self._service(tmp_path, checkpoint_path=path, checkpoint_every=1)
        service.push_symbols({"T": "110010", "W": "101101"})
        assert path.exists()
        restored = StreamingMiningService.restore(path)
        assert restored.n_granules == service.n_granules
        assert results_equivalent(restored.result(), service.result())

    def test_manual_save_uses_default_path(self, tmp_path):
        path = tmp_path / "stream.json"
        service = self._service(tmp_path, checkpoint_path=path)
        service.push_symbols({"T": "1100", "W": "1011"})
        assert not path.exists()  # no checkpoint_every: manual only
        service.save_checkpoint()
        assert path.exists()


class TestCLIInterrupt:
    def test_interrupt_exits_130_and_writes_trace(self, tmp_path, monkeypatch):
        from repro.harness import cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_dispatch", interrupted)
        trace_path = tmp_path / "trace.json"
        assert cli.main(["multigrain", "--trace", str(trace_path)]) == 130
        # The partial trace still lands on disk on the way out.
        assert trace_path.exists()
        assert "counters" in json.loads(trace_path.read_text())


def test_resilience_modules_registered_for_ep_checks():
    from repro.analysis.rules.base import EXECUTOR_BOUNDARY_MODULES

    assert "repro.resilience.policy" in EXECUTOR_BOUNDARY_MODULES
    assert "repro.resilience.faults" in EXECUTOR_BOUNDARY_MODULES
