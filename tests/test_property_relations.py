"""Property-based tests for the temporal relations (Property 1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import CONTAINS, FOLLOWS, OVERLAPS, EventInstance, RelationConfig
from repro.events.relations import order_pair, relation_between, relation_of_pair

intervals = st.tuples(st.integers(1, 30), st.integers(0, 10)).map(
    lambda t: (t[0], t[0] + t[1])
)
configs = st.builds(
    RelationConfig, epsilon=st.integers(0, 3), min_overlap=st.integers(1, 4)
)


def _pair(interval_a, interval_b):
    a = EventInstance("A:1", *interval_a)
    b = EventInstance("B:1", *interval_b)
    return order_pair(a, b)


@given(intervals, intervals)
def test_relation_is_one_of_the_three_or_none(interval_a, interval_b):
    earlier, later = _pair(interval_a, interval_b)
    assert relation_between(earlier, later) in (FOLLOWS, CONTAINS, OVERLAPS, None)


@given(intervals, intervals)
def test_epsilon_zero_matches_table_iii_conditions(interval_a, interval_b):
    config = RelationConfig(epsilon=0, min_overlap=1)
    earlier, later = _pair(interval_a, interval_b)
    relation = relation_between(earlier, later, config)
    # Re-derive from the paper's raw conditions on half-open ends.
    si, ei = earlier.start, earlier.end + 1
    sj, ej = later.start, later.end + 1
    if si <= sj and ei >= ej:
        assert relation == CONTAINS
    elif ei <= sj:
        assert relation == FOLLOWS
    elif si < sj and ei < ej and ei - sj >= 1:
        assert relation == OVERLAPS
    else:
        assert relation is None


@given(intervals, intervals, configs)
def test_order_invariance_of_relation_of_pair(interval_a, interval_b, config):
    a = EventInstance("A:1", *interval_a)
    b = EventInstance("B:1", *interval_b)
    assert relation_of_pair(a, b, config) == relation_of_pair(b, a, config)


@given(intervals, configs)
def test_instance_relates_to_itself_as_contains(interval, config):
    instance = EventInstance("A:1", *interval)
    assert relation_between(instance, instance, config) == CONTAINS


@given(intervals, intervals, st.integers(0, 3))
@settings(max_examples=300)
def test_growing_epsilon_never_turns_a_follows_into_nothing(
    interval_a, interval_b, epsilon
):
    # epsilon only widens tolerance: a Follows at eps=0 stays a relation.
    earlier, later = _pair(interval_a, interval_b)
    base = relation_between(earlier, later, RelationConfig(0, 1))
    wide = relation_between(earlier, later, RelationConfig(epsilon, 1))
    if base is not None:
        assert wide is not None
