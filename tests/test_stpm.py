"""Unit tests for the E-STPM miner beyond the golden example."""

import pytest

from repro import ESTPM, MiningParams, PruningConfig, SymbolicDatabase, build_sequence_database
from repro.core.hlh import HLH1, GroupEntry, HLHk
from repro.core.pattern import single_event_pattern
from repro.core.stpm import mine_seasonal_patterns, series_of
from repro.events import EventInstance
from repro.exceptions import MiningError


def _dseq(rows, ratio=2):
    return build_sequence_database(SymbolicDatabase.from_rows(rows), ratio)


def _params(**overrides):
    base = {"max_period": 2, "min_density": 1, "dist_interval": (0, 20), "min_season": 1}
    base.update(overrides)
    return MiningParams(**base)


class TestSeriesOf:
    def test_simple(self):
        assert series_of("C:1") == "C"

    def test_colon_in_series_name(self):
        assert series_of("a:b:1") == "a:b"


class TestFilters:
    def test_series_filter_restricts_events(self):
        dseq = _dseq({"A": "1100", "B": "0011"})
        result = ESTPM(dseq, _params(), series_filter={"A"}).mine()
        events = {e for sp in result.patterns for e in sp.pattern.events}
        assert all(event.startswith("A:") for event in events)
        assert result.stats.n_events_pruned == 2

    def test_pair_filter_blocks_cross_series_groups(self):
        dseq = _dseq({"A": "1100", "B": "1100"})
        result = ESTPM(dseq, _params(), pair_filter=set()).mine()
        for sp in result.patterns:
            series = {series_of(event) for event in sp.pattern.events}
            assert len(series) == 1  # same-series groups always allowed

    def test_pair_filter_allows_listed_pairs(self):
        dseq = _dseq({"A": "1100", "B": "1100", "C": "0110"})
        allowed = {frozenset(("A", "B"))}
        result = ESTPM(dseq, _params(), pair_filter=allowed).mine()
        for sp in result.patterns:
            series = {series_of(event) for event in sp.pattern.events}
            assert not ({"A", "C"} <= series or {"B", "C"} <= series)


class TestMaxPatternLength:
    def test_length_one_returns_only_single_events(self):
        dseq = _dseq({"A": "1100", "B": "1100"})
        result = ESTPM(dseq, _params(max_pattern_length=1)).mine()
        assert result.patterns
        assert all(sp.size == 1 for sp in result.patterns)

    def test_length_two_excludes_triples(self):
        dseq = _dseq({"A": "110011", "B": "110011", "C": "110011"})
        result = ESTPM(dseq, _params(max_pattern_length=2)).mine()
        assert result.by_size(2)
        assert not result.by_size(3)

    def test_longer_patterns_nest(self):
        dseq = _dseq({"A": "110110", "B": "110110", "C": "110110"}, ratio=3)
        result = ESTPM(dseq, _params(max_pattern_length=3)).mine()
        for sp in result.by_size(3):
            assert len(sp.pattern.triples) == 3


class TestStats:
    def test_counters_populated(self, paper_dseq, paper_params):
        result = ESTPM(paper_dseq, paper_params).mine()
        assert result.stats.n_granules == 14
        assert result.stats.n_groups_generated[2] > 0
        assert result.stats.n_candidate_patterns[2] > 0
        assert result.stats.mining_seconds > 0
        assert sum(result.stats.n_frequent.values()) == len(result)

    def test_pruning_reduces_generated_groups(self, paper_dseq, paper_params):
        pruned = ESTPM(paper_dseq, paper_params, PruningConfig.all()).mine()
        unpruned = ESTPM(paper_dseq, paper_params, PruningConfig.none()).mine()
        assert (
            pruned.stats.n_groups_generated[2]
            <= unpruned.stats.n_groups_generated[2]
        )


class TestSelfPairs:
    def test_same_event_pattern_found(self):
        # Event A:1 recurs twice inside each sequence -> A:1 -> A:1 pattern.
        dseq = _dseq({"A": "101101"}, ratio=3)
        result = ESTPM(dseq, _params()).mine()
        self_pairs = [
            sp for sp in result.by_size(2) if sp.pattern.events == ("A:1", "A:1")
        ]
        assert self_pairs

    def test_self_pair_requires_distinct_instances(self):
        # Only one instance of A:1 per sequence -> no self-pair pattern.
        dseq = _dseq({"A": "1100"}, ratio=2)
        result = ESTPM(dseq, _params()).mine()
        assert not [
            sp for sp in result.by_size(2) if sp.pattern.events == ("A:1", "A:1")
        ]


class TestWrapperValidation:
    def test_empty_dseq_rejected(self):
        from repro.transform.sequence_db import TemporalSequenceDatabase

        empty = TemporalSequenceDatabase(rows=[], ratio=1)
        with pytest.raises(MiningError):
            mine_seasonal_patterns(empty, _params())


class TestHLHStructures:
    def test_hlh1_roundtrip(self):
        hlh1 = HLH1()
        instance = EventInstance("A:1", 1, 2)
        hlh1.add_event("A:1", [1, 3], {1: [instance], 3: []})
        assert "A:1" in hlh1
        assert hlh1.support_of("A:1") == [1, 3]
        assert hlh1.instances_of("A:1", 1) == [instance]
        assert hlh1.instances_of("A:1", 99) == []
        assert hlh1.candidates == ["A:1"]
        assert len(hlh1) == 1

    def test_hlhk_group_and_pattern_linkage(self):
        hlhk = HLHk(k=2)
        entry = hlhk.add_group(("A:1", "B:1"), [1, 2, 3])
        assert isinstance(entry, GroupEntry)
        pattern = single_event_pattern("A:1")  # stand-in with event_group ('A:1',)
        hlhk.add_pattern(pattern, [1, 2], {1: [], 2: []})
        assert hlhk.support_of(pattern) == [1, 2]
        assert hlhk.assignments_of(pattern, 1) == []
        assert hlhk.patterns == [pattern]
        assert hlhk.events_in_patterns() == {"A:1"}
        assert len(hlhk) == 1
