"""Unit tests for entropy / mutual information (paper Defs. 5.1-5.3)."""

import pytest

from repro import (
    conditional_entropy,
    entropy,
    mutual_information,
    normalized_mutual_information,
)
from repro.core.mi import joint_probabilities, min_pairwise_nmi
from repro.exceptions import MiningError
from repro.symbolic import Alphabet, SymbolicSeries


def _series(name, symbols):
    return SymbolicSeries(name, tuple(symbols), Alphabet.binary())


class TestEntropy:
    def test_fair_coin_is_one_bit(self):
        assert entropy(_series("X", "0101")) == pytest.approx(1.0)

    def test_constant_series_is_zero(self):
        assert entropy(_series("X", "1111")) == 0.0

    def test_biased_series(self):
        # H(0.25) = 0.8113 bits.
        assert entropy(_series("X", "0111")) == pytest.approx(0.8113, abs=1e-4)


class TestJointAndConditional:
    def test_joint_probabilities(self):
        x = _series("X", "0011")
        y = _series("Y", "0101")
        joint = joint_probabilities(x, y)
        assert joint == {
            ("0", "0"): 0.25, ("0", "1"): 0.25, ("1", "0"): 0.25, ("1", "1"): 0.25,
        }

    def test_alignment_enforced(self):
        with pytest.raises(MiningError):
            joint_probabilities(_series("X", "01"), _series("Y", "010"))

    def test_conditional_entropy_of_identical_series_is_zero(self):
        x = _series("X", "0101")
        assert conditional_entropy(x, x) == pytest.approx(0.0, abs=1e-12)

    def test_conditional_entropy_of_independent_series(self):
        x = _series("X", "0011")
        y = _series("Y", "0101")
        assert conditional_entropy(x, y) == pytest.approx(1.0)

    def test_chain_rule(self):
        # I(X;Y) = H(X) - H(X|Y).
        x = _series("X", "00110110")
        y = _series("Y", "01010011")
        assert mutual_information(x, y) == pytest.approx(
            entropy(x) - conditional_entropy(x, y), abs=1e-12
        )


class TestMutualInformation:
    def test_identical_series(self):
        x = _series("X", "0101")
        assert mutual_information(x, x) == pytest.approx(1.0)

    def test_independent_series(self):
        x = _series("X", "0011")
        y = _series("Y", "0101")
        assert mutual_information(x, y) == pytest.approx(0.0, abs=1e-12)

    def test_symmetry(self):
        x = _series("X", "00110101")
        y = _series("Y", "01010011")
        assert mutual_information(x, y) == pytest.approx(mutual_information(y, x))

    def test_bounded_by_min_entropy(self):
        x = _series("X", "00110101")
        y = _series("Y", "01110111")
        assert mutual_information(x, y) <= min(entropy(x), entropy(y)) + 1e-12


class TestNormalizedMI:
    def test_perfect_dependency_is_one(self):
        x = _series("X", "0101")
        assert normalized_mutual_information(x, x) == 1.0

    def test_asymmetry(self):
        # Y determines X but not vice versa when Y is a refinement of X.
        alphabet4 = Alphabet(("a", "b", "c", "d"))
        y = SymbolicSeries("Y", tuple("abcd"), alphabet4)
        x = _series("X", "0011")
        nmi_xy = normalized_mutual_information(x, y)  # knowing Y removes all of X
        nmi_yx = normalized_mutual_information(y, x)
        assert nmi_xy == pytest.approx(1.0)
        assert nmi_yx == pytest.approx(0.5)

    def test_constant_series_defined_as_zero(self):
        constant = _series("X", "1111")
        other = _series("Y", "0101")
        assert normalized_mutual_information(constant, other) == 0.0

    def test_min_pairwise(self):
        x = _series("X", "0011")
        y = _series("Y", "0101")
        assert min_pairwise_nmi(x, y) == pytest.approx(0.0, abs=1e-12)


class TestOnPaperExample:
    def test_all_pairs_have_valid_nmi(self, paper_dsyb):
        names = paper_dsyb.names
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                value = normalized_mutual_information(paper_dsyb[a], paper_dsyb[b])
                assert 0.0 <= value <= 1.0
