"""Unit tests for temporal patterns (paper Def. 3.8)."""

import pytest

from repro import TemporalPattern, Triple
from repro.core.pattern import (
    extend_pattern,
    oriented_triple,
    pattern_from_instances,
    single_event_pattern,
    splice_triples,
)
from repro.events import CONTAINS, FOLLOWS, OVERLAPS, EventInstance, RelationConfig
from repro.exceptions import MiningError

CONFIG = RelationConfig()


def _instances(*specs):
    return [EventInstance(event, start, end) for event, start, end in specs]


class TestTriple:
    def test_describe(self):
        assert Triple(CONTAINS, "C:1", "D:1").describe() == "C:1 >= D:1"

    def test_equality_with_plain_tuple(self):
        # The mining hot path relies on NamedTuple/tuple interchangeability.
        assert Triple(FOLLOWS, "a", "b") == (FOLLOWS, "a", "b")
        assert hash(Triple(FOLLOWS, "a", "b")) == hash((FOLLOWS, "a", "b"))


class TestTemporalPattern:
    def test_sizes(self):
        single = single_event_pattern("C:1")
        assert single.size == 1
        assert single.triples == ()
        pair = TemporalPattern(("A", "B"), (Triple(FOLLOWS, "A", "B"),))
        assert pair.size == 2

    def test_triple_count_validated(self):
        with pytest.raises(MiningError):
            TemporalPattern(("A", "B"), ())
        with pytest.raises(MiningError):
            TemporalPattern(("A",), (Triple(FOLLOWS, "A", "A"),))

    def test_event_group_is_sorted_multiset(self):
        pattern = TemporalPattern(("B", "A"), (Triple(FOLLOWS, "B", "A"),))
        assert pattern.event_group == ("A", "B")

    def test_contains_event(self):
        pattern = TemporalPattern(("A", "B"), (Triple(FOLLOWS, "A", "B"),))
        assert pattern.contains_event("A")
        assert not pattern.contains_event("C")

    def test_describe_joins_triples(self):
        triples = (
            Triple(CONTAINS, "A", "B"),
            Triple(FOLLOWS, "A", "C"),
            Triple(FOLLOWS, "B", "C"),
        )
        pattern = TemporalPattern(("A", "B", "C"), triples)
        assert pattern.describe() == "A >= B; A -> C; B -> C"

    def test_subpattern_positive(self):
        triples = (
            Triple(CONTAINS, "A", "B"),
            Triple(FOLLOWS, "A", "C"),
            Triple(FOLLOWS, "B", "C"),
        )
        big = TemporalPattern(("A", "B", "C"), triples)
        small = TemporalPattern(("A", "C"), (Triple(FOLLOWS, "A", "C"),))
        assert small.is_subpattern_of(big)
        assert big.is_subpattern_of(big)

    def test_subpattern_negative_on_relation_mismatch(self):
        triples = (
            Triple(CONTAINS, "A", "B"),
            Triple(FOLLOWS, "A", "C"),
            Triple(FOLLOWS, "B", "C"),
        )
        big = TemporalPattern(("A", "B", "C"), triples)
        wrong = TemporalPattern(("A", "B"), (Triple(OVERLAPS, "A", "B"),))
        assert not wrong.is_subpattern_of(big)

    def test_subpattern_negative_on_size(self):
        small = TemporalPattern(("A", "B"), (Triple(FOLLOWS, "A", "B"),))
        assert not small.is_subpattern_of(single_event_pattern("A"))


class TestPatternFromInstances:
    def test_paper_fig1_shape(self):
        # Low Temp overlaps High Humidity; both followed by High Influenza.
        instances = _instances(
            ("Temp:Low", 1, 6), ("Hum:High", 4, 10), ("Flu:High", 12, 14)
        )
        pattern = pattern_from_instances(instances, CONFIG)
        assert pattern is not None
        assert pattern.events == ("Temp:Low", "Hum:High", "Flu:High")
        assert pattern.triples == (
            Triple(OVERLAPS, "Temp:Low", "Hum:High"),
            Triple(FOLLOWS, "Temp:Low", "Flu:High"),
            Triple(FOLLOWS, "Hum:High", "Flu:High"),
        )

    def test_orders_instances_chronologically(self):
        instances = _instances(("B:1", 5, 6), ("A:1", 1, 2))
        pattern = pattern_from_instances(instances, CONFIG)
        assert pattern.events == ("A:1", "B:1")
        assert pattern.triples[0] == Triple(FOLLOWS, "A:1", "B:1")

    def test_unrelated_pair_voids_pattern(self):
        config = RelationConfig(min_overlap=4)
        instances = _instances(("A:1", 1, 4), ("B:1", 3, 9))
        assert pattern_from_instances(instances, config) is None


class TestIncrementalExtension:
    def test_oriented_triple_orientation(self):
        early = EventInstance("A:1", 1, 2)
        late = EventInstance("B:1", 5, 6)
        assert oriented_triple(early, late, CONFIG) == (True, Triple(FOLLOWS, "A:1", "B:1"))
        assert oriented_triple(late, early, CONFIG) == (False, Triple(FOLLOWS, "A:1", "B:1"))

    def test_oriented_triple_none(self):
        config = RelationConfig(min_overlap=5)
        a = EventInstance("A:1", 1, 4)
        b = EventInstance("B:1", 3, 9)
        assert oriented_triple(a, b, config) is None

    @pytest.mark.parametrize("position", [0, 1, 2])
    def test_splice_matches_full_construction_k3(self, position):
        base = _instances(("A:1", 2, 4), ("B:1", 6, 9))
        starts = {0: (1, 1), 1: (5, 5), 2: (11, 12)}[position]
        new = EventInstance("C:1", *starts)
        full = pattern_from_instances(base + [new], CONFIG)
        extended = extend_pattern(
            ("A:1", "B:1"),
            (Triple(FOLLOWS, "A:1", "B:1"),),
            tuple(base),
            new,
            CONFIG,
        )
        assert extended is not None
        events, triples, ordered, _ = extended
        assert (events, triples) == (full.events, full.triples)
        assert ordered == tuple(sorted(base + [new], key=EventInstance.sort_key))

    def test_splice_matches_full_construction_k4(self):
        base = _instances(("A:1", 1, 3), ("B:1", 5, 7), ("C:1", 9, 12))
        parent = pattern_from_instances(base, CONFIG)
        new = EventInstance("D:1", 6, 14)
        full = pattern_from_instances(base + [new], CONFIG)
        extended = extend_pattern(
            parent.events, parent.triples, tuple(base), new, CONFIG
        )
        if full is None:
            assert extended is None
        else:
            events, triples, _, _ = extended
            assert (events, triples) == (full.events, full.triples)

    def test_splice_triples_general_path(self):
        prev = (Triple(FOLLOWS, "A", "B"),)
        partner = [Triple(FOLLOWS, "A", "C"), Triple(FOLLOWS, "B", "C")]
        assert splice_triples(prev, partner, position=2, k=3) == (
            Triple(FOLLOWS, "A", "B"),
            Triple(FOLLOWS, "A", "C"),
            Triple(FOLLOWS, "B", "C"),
        )
