"""Unit tests for MiningResult / MiningStats / SeasonalPattern helpers."""

from repro.core.pattern import single_event_pattern
from repro.core.results import MiningResult, MiningStats, SeasonalPattern
from repro.core.seasonality import SeasonView


def _sp(event, seasons):
    flat = tuple(g for season in seasons for g in season)
    view = SeasonView(
        support=flat,
        near_sets=tuple(tuple(s) for s in seasons),
        seasons=tuple(tuple(s) for s in seasons),
    )
    return SeasonalPattern(single_event_pattern(event), view)


class TestSeasonalPattern:
    def test_accessors(self):
        sp = _sp("A:1", [(1, 2, 3), (9, 10)])
        assert sp.size == 1
        assert sp.n_seasons == 2
        assert sp.support == (1, 2, 3, 9, 10)
        assert "seasons=2" in sp.describe()


class TestMiningStats:
    def test_bump(self):
        stats = MiningStats()
        stats.bump(stats.n_frequent, 2)
        stats.bump(stats.n_frequent, 2, 4)
        assert stats.n_frequent == {2: 5}


class TestMiningResult:
    def test_len_and_by_size(self):
        result = MiningResult(
            patterns=[_sp("A:1", [(1, 2)]), _sp("B:1", [(3, 4)])],
            stats=MiningStats(),
        )
        assert len(result) == 2
        assert len(result.by_size(1)) == 2
        assert result.by_size(2) == []
        assert result.multi_event_keys() == set()

    def test_describe_limits(self):
        result = MiningResult(
            patterns=[_sp(f"S{i}:1", [(i, i + 1)]) for i in range(1, 30)],
            stats=MiningStats(),
        )
        text = result.describe(limit=3)
        assert "and 26 more" in text

    def test_describe_orders_by_seasons(self):
        weak = _sp("Weak:1", [(1, 2)])
        strong = _sp("Strong:1", [(1, 2), (9, 10), (19, 20)])
        result = MiningResult(patterns=[weak, strong], stats=MiningStats())
        text = result.describe()
        assert text.index("Strong") < text.index("Weak")
