"""Tests for the hierarchical multi-granularity engine (repro.multigrain).

The engine's hard guarantee: every level of a hierarchical run is
equivalent (``results_equivalent``) to mining that level standalone with
a fresh sequence mapping -- asserted here on all four seed datasets for
both support backends, for E-STPM and A-STPM, for the fold and rebuild
strategies, and for both executors.
"""

import pytest

from repro import ESTPM, PruningConfig, SymbolicDatabase
from repro.core.approximate import ASTPM
from repro.core.results import results_equivalent
from repro.core.supportset import SUPPORT_BACKENDS
from repro.datasets import load_dataset
from repro.exceptions import ConfigError, TransformError
from repro.granularity import GranularityHierarchy, TimeDomain
from repro.multigrain import HierarchicalMiner, screen_level
from repro.transform import build_sequence_database

#: Per-dataset thresholds keeping the tiny profiles fast *and* fruitful
#: (every dataset finds patterns at some level under these settings).
DATASET_SETTINGS = {
    "RE": {"min_density_pct": 1.0, "min_season": 4},
    "SC": {"min_density_pct": 1.0, "min_season": 3},
    "INF": {"min_density_pct": 1.0, "min_season": 4},
    "HFM": {"min_density_pct": 1.0, "min_season": 4},
}


def hierarchy_miner(dataset, backend, **overrides):
    """A three-level miner over a dataset's native/2x/4x granularities."""
    settings = {**DATASET_SETTINGS[dataset.name], **overrides}
    return HierarchicalMiner(
        dataset.dsyb,
        ratios=[dataset.ratio, dataset.ratio * 2, dataset.ratio * 4],
        max_period_pct=0.4,
        dist_interval=(
            dataset.dist_interval[0] * dataset.ratio,
            dataset.dist_interval[1] * dataset.ratio,
        ),
        max_pattern_length=2,
        support_backend=backend,
        **settings,
    )


@pytest.fixture(scope="module")
def motif_dsyb():
    # 15 repetitions of a 12-granule motif: seasonal at several scales.
    return SymbolicDatabase.from_rows(
        {"A": "111000110000" * 15, "B": "110000111000" * 15}
    )


@pytest.fixture(scope="module")
def sparse_prunable_dsyb():
    # B:1 occurs in exactly four early fine granules and nowhere after,
    # so the apriori gate prunes it at coarse levels -- the screening /
    # NoPrune regression surface.
    return SymbolicDatabase.from_rows(
        {
            "A": "101010101010" * 10,
            "B": "111100000000" + "0" * 108,
        }
    )


class TestLevelParity:
    @pytest.mark.parametrize("backend", SUPPORT_BACKENDS)
    @pytest.mark.parametrize("name", sorted(DATASET_SETTINGS))
    def test_every_level_matches_standalone_mining(self, name, backend):
        dataset = load_dataset(name, "tiny")
        hierarchical = hierarchy_miner(dataset, backend).mine()
        assert hierarchical.ratios == [
            dataset.ratio, dataset.ratio * 2, dataset.ratio * 4,
        ]
        for level in hierarchical:
            standalone = ESTPM(
                build_sequence_database(dataset.dsyb, level.ratio),
                level.params,
                support_backend=backend,
            ).mine()
            assert results_equivalent(level.result, standalone), (
                f"{name} level {level.ratio} ({backend}) diverged from "
                "standalone mining"
            )

    def test_coarse_levels_are_fold_derived(self):
        dataset = load_dataset("INF", "tiny")
        hierarchical = hierarchy_miner(dataset, "bitset").mine()
        assert hierarchical.finest.derived_from is None
        assert all(
            level.derived_from == dataset.ratio
            for level in hierarchical.levels[1:]
        )

    @pytest.mark.parametrize("backend", SUPPORT_BACKENDS)
    def test_astpm_levels_match_standalone_astpm(self, backend):
        dataset = load_dataset("INF", "tiny")
        hierarchical = hierarchy_miner(
            dataset, backend, miner="approximate"
        ).mine()
        for level in hierarchical:
            standalone = ASTPM(
                dataset.dsyb,
                level.ratio,
                level.params,
                support_backend=backend,
            ).mine()
            assert results_equivalent(level.result, standalone)

    def test_rebuild_strategy_matches_fold(self):
        dataset = load_dataset("HFM", "tiny")
        fold = hierarchy_miner(dataset, "bitset").mine()
        rebuild = hierarchy_miner(dataset, "bitset", strategy="rebuild").mine()
        assert fold.ratios == rebuild.ratios
        for fold_level, rebuild_level in zip(fold, rebuild):
            assert results_equivalent(fold_level.result, rebuild_level.result)
        assert all(level.derived_from is None for level in rebuild)

    def test_parallel_level_dispatch_matches_serial(self, motif_dsyb):
        def mine(executor):
            return HierarchicalMiner(
                motif_dsyb,
                ratios=[3, 6, 12],
                dist_interval=(0, 600),
                min_season=1,
                executor=executor,
                n_workers=2,
            ).mine()

        serial, parallel = mine("serial"), mine("parallel")
        for serial_level, parallel_level in zip(serial, parallel):
            assert results_equivalent(serial_level.result, parallel_level.result)

    @pytest.mark.parametrize(
        "pruning",
        [PruningConfig.none(), PruningConfig.transitivity_only()],
        ids=["none", "transitivity-only"],
    )
    def test_fold_with_apriori_disabled_matches_standalone(
        self, sparse_prunable_dsyb, pruning
    ):
        # Regression: with apriori off, ESTPM builds instance tables for
        # *every* event, so the fold must materialize every granule row
        # (the screening gate is exactly what NoPrune disables).
        hierarchical = HierarchicalMiner(
            sparse_prunable_dsyb,
            ratios=[1, 4],
            dist_interval=(0, 240),
            min_season=3,
            min_density_pct=1.0,
            max_pattern_length=2,
            pruning=pruning,
        ).mine()
        coarse = hierarchical.level(4)
        assert coarse.n_granules_skipped == 0
        assert coarse.n_events_screened == 0
        standalone = ESTPM(
            build_sequence_database(sparse_prunable_dsyb, 4),
            coarse.params,
            pruning,
        ).mine()
        assert results_equivalent(coarse.result, standalone)

    def test_non_divisible_ratio_falls_back_to_rebuild(self, motif_dsyb):
        hierarchical = HierarchicalMiner(
            motif_dsyb, ratios=[2, 3], dist_interval=(0, 120), min_season=2
        ).mine()
        by_ratio = {level.ratio: level for level in hierarchical}
        assert by_ratio[3].derived_from is None  # 3 is not a multiple of 2
        for level in hierarchical:
            standalone = ESTPM(
                build_sequence_database(motif_dsyb, level.ratio), level.params
            ).mine()
            assert results_equivalent(level.result, standalone)


class TestScreening:
    def test_folded_gate_screens_events_before_mining(self, sparse_prunable_dsyb):
        hierarchical = HierarchicalMiner(
            sparse_prunable_dsyb,
            ratios=[1, 4],
            dist_interval=(0, 240),
            min_season=3,
            min_density_pct=1.0,
        ).mine()
        coarse = hierarchical.level(4)
        assert coarse.n_events_screened > 0
        standalone = ESTPM(
            build_sequence_database(sparse_prunable_dsyb, 4), coarse.params
        ).mine()
        assert results_equivalent(coarse.result, standalone)

    def test_screened_granules_stay_unmaterialized(self, sparse_prunable_dsyb):
        dseq = build_sequence_database(sparse_prunable_dsyb, 1)
        params = HierarchicalMiner(
            sparse_prunable_dsyb, ratios=[4], min_season=3, min_density_pct=1.0
        ).params_for(4, len(dseq) // 4)
        screening = screen_level(
            dseq.event_support(), 4, len(dseq) // 4, params, 4
        )
        assert screening.n_screened_out > 0
        derived = dseq.coarsen(4, granules=screening.granules)
        skipped = sorted(
            set(range(1, len(derived) + 1)) - set(screening.granules)
        )
        if skipped:
            with pytest.raises(TransformError):
                derived.sequence_at(skipped[0]).events()
        # Materialized granules equal the standalone rows exactly.
        rebuilt = build_sequence_database(sparse_prunable_dsyb, 4)
        for position in sorted(screening.granules):
            assert derived.sequence_at(position) == rebuilt.sequence_at(position)

    def test_screening_is_exact_for_events(self, sparse_prunable_dsyb):
        fine = build_sequence_database(sparse_prunable_dsyb, 1)
        coarse = build_sequence_database(sparse_prunable_dsyb, 4)
        params = HierarchicalMiner(
            sparse_prunable_dsyb, ratios=[4], min_season=3
        ).params_for(4, len(coarse))
        screening = screen_level(
            fine.event_support(), 4, len(coarse), params, 4
        )
        recomputed = coarse.event_support()
        assert set(screening.supports) == set(recomputed)
        for event, folded in screening.supports.items():
            assert folded == recomputed[event]


class TestMultiGranularityResult:
    @pytest.fixture(scope="class")
    def hierarchical(self, motif_dsyb):
        return HierarchicalMiner(
            motif_dsyb, ratios=[3, 6, 12], dist_interval=(0, 600), min_season=1
        ).mine()

    def test_levels_sorted_finest_first(self, hierarchical):
        assert hierarchical.ratios == [3, 6, 12]
        assert hierarchical.finest.ratio == 3

    def test_persistence_maps_patterns_to_their_levels(self, hierarchical):
        persistence = hierarchical.persistence()
        for level in hierarchical:
            for sp in level.result.patterns:
                assert level.ratio in persistence[sp.pattern]

    def test_persistent_patterns_span_all_requested_levels(self, hierarchical):
        across_all = hierarchical.persistent_patterns()
        assert across_all  # the motif is seasonal at every scale
        keys_by_ratio = {
            level.ratio: level.result.pattern_keys() for level in hierarchical
        }
        for pattern in across_all:
            assert all(pattern in keys for keys in keys_by_ratio.values())
        coarse_pair = hierarchical.persistent_patterns(6, 12)
        assert set(across_all) <= set(coarse_pair)

    def test_exclusive_patterns_live_at_one_level_only(self, hierarchical):
        persistence = hierarchical.persistence()
        for pattern in hierarchical.exclusive_patterns(12):
            assert persistence[pattern] == (12,)

    def test_seasonal_trajectory_tracks_one_pattern(self, hierarchical):
        pattern = hierarchical.persistent_patterns()[0]
        trajectory = hierarchical.seasonal_trajectory(pattern)
        assert sorted(trajectory) == [3, 6, 12]
        assert all(sp.pattern == pattern for sp in trajectory.values())

    def test_unknown_level_rejected(self, hierarchical):
        with pytest.raises(ConfigError):
            hierarchical.level(5)
        with pytest.raises(ConfigError):
            hierarchical.persistent_patterns(3, 5)

    def test_describe_mentions_every_level(self, hierarchical):
        text = hierarchical.describe()
        for ratio in hierarchical.ratios:
            assert f"ratio {ratio:4d}" in text


class TestFromHierarchy:
    def test_ratios_follow_the_hierarchy(self, motif_dsyb):
        domain = TimeDomain(motif_dsyb.n_instants, unit="5min")
        hierarchy = GranularityHierarchy.from_widths(
            domain, [1, 3, 6], names=["5min", "15min", "30min"]
        )
        miner = HierarchicalMiner.from_hierarchy(
            motif_dsyb, hierarchy, dist_interval=(0, 600), min_season=1
        )
        assert sorted(miner.ratios) == [1, 3, 6]
        hierarchical = miner.mine()
        assert hierarchical.ratios == [1, 3, 6]


class TestValidation:
    def test_empty_ratios_rejected(self, motif_dsyb):
        with pytest.raises(ConfigError):
            HierarchicalMiner(motif_dsyb, ratios=[])

    def test_duplicate_ratios_rejected(self, motif_dsyb):
        with pytest.raises(ConfigError):
            HierarchicalMiner(motif_dsyb, ratios=[3, 3])

    def test_nonpositive_ratio_rejected(self, motif_dsyb):
        with pytest.raises(ConfigError):
            HierarchicalMiner(motif_dsyb, ratios=[0, 3])

    def test_unknown_miner_kind_rejected(self, motif_dsyb):
        with pytest.raises(ConfigError):
            HierarchicalMiner(motif_dsyb, ratios=[3], miner="quantum")

    def test_unknown_strategy_rejected(self, motif_dsyb):
        with pytest.raises(ConfigError):
            HierarchicalMiner(motif_dsyb, ratios=[3], strategy="clone")

    def test_too_coarse_ratio_rejected_at_mine_time(self, motif_dsyb):
        miner = HierarchicalMiner(motif_dsyb, ratios=[100], min_season=1)
        with pytest.raises(ConfigError):
            miner.mine()
