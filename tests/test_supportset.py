"""Property and unit tests for the SupportSet engine.

The bitset representation must be observationally equivalent to the
classical sorted-list algebra on every operation the miners use:
intersection, cardinality, ascending iteration, membership, equality.
The machine-word kernels (``bit_positions`` / ``coarsen_bits`` /
``_pack_bits`` and the vectorized ``coarsen_positions``) must match
their scalar reference semantics on masks straddling the small/large
cutovers and on every compute backend.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import set_compute_backend
from repro.core.support import intersect_sorted
from repro.core.supportset import (
    _COARSEN_CHUNK,
    _NUMPY_MIN_POSITIONS,
    _SMALL_BITS,
    BACKEND_BITSET,
    BACKEND_LIST,
    SUPPORT_BACKENDS,
    BitsetSupportSet,
    ListSupportSet,
    SupportSet,
    _pack_bits,
    as_positions,
    as_support_list,
    bit_positions,
    coarsen_bits,
    coarsen_positions,
    coerce_support_set,
    default_backend,
    make_support_set,
    set_default_backend,
    validate_backend,
)
from repro.exceptions import ConfigError

positions_lists = st.lists(
    st.integers(min_value=1, max_value=400), unique=True, max_size=60
).map(sorted)


@given(positions_lists)
@settings(max_examples=100, deadline=None)
def test_roundtrip_equivalence(positions):
    for backend in SUPPORT_BACKENDS:
        support = make_support_set(positions, backend)
        assert support.backend == backend
        assert list(support) == positions
        assert support.positions() == tuple(positions)
        assert len(support) == len(positions)
        assert bool(support) == bool(positions)
        assert support == positions
        assert as_support_list(support) == positions


@given(positions_lists, positions_lists)
@settings(max_examples=100, deadline=None)
def test_intersection_matches_list_algebra(left, right):
    expected = intersect_sorted(left, right)
    bitset = make_support_set(left, BACKEND_BITSET) & make_support_set(
        right, BACKEND_BITSET
    )
    listset = make_support_set(left, BACKEND_LIST) & make_support_set(
        right, BACKEND_LIST
    )
    assert list(bitset) == expected
    assert list(listset) == expected
    assert len(bitset) == len(expected)
    assert len(listset) == len(expected)
    # The two representations agree with each other too.
    assert bitset == listset


@given(positions_lists, positions_lists)
@settings(max_examples=50, deadline=None)
def test_cross_backend_intersection(left, right):
    expected = intersect_sorted(left, right)
    bitset_left = make_support_set(left, BACKEND_BITSET)
    list_right = make_support_set(right, BACKEND_LIST)
    assert list(bitset_left & list_right) == expected
    assert list(list_right & bitset_left) == expected
    # Intersecting with a plain list works as well.
    assert list(bitset_left & right) == expected


@given(positions_lists, st.integers(min_value=0, max_value=401))
@settings(max_examples=100, deadline=None)
def test_membership_matches(positions, probe):
    for backend in SUPPORT_BACKENDS:
        support = make_support_set(positions, backend)
        assert (probe in support) == (probe in positions)


@given(positions_lists)
@settings(max_examples=50, deadline=None)
def test_indexing_and_slicing(positions):
    for backend in SUPPORT_BACKENDS:
        support = make_support_set(positions, backend)
        if positions:
            assert support[0] == positions[0]
            assert support[-1] == positions[-1]
        assert support[1:] == positions[1:]
        assert support[:3] == positions[:3]


@given(positions_lists)
@settings(max_examples=50, deadline=None)
def test_pickle_roundtrip(positions):
    for backend in SUPPORT_BACKENDS:
        support = make_support_set(positions, backend)
        clone = pickle.loads(pickle.dumps(support))
        assert clone == support
        assert clone.backend == backend


class TestUnits:
    def test_bitset_stores_big_int(self):
        support = make_support_set([1, 3, 5], BACKEND_BITSET)
        assert isinstance(support, BitsetSupportSet)
        assert support.bits == 0b101010
        assert len(support) == 3

    def test_list_backend_type(self):
        support = make_support_set([1, 3], BACKEND_LIST)
        assert isinstance(support, ListSupportSet)

    def test_backends_agree_on_unsorted_duplicated_input(self):
        raw = [9, 3, 5, 3, 9]
        as_list = make_support_set(raw, BACKEND_LIST)
        as_bitset = make_support_set(raw, BACKEND_BITSET)
        assert list(as_list) == [3, 5, 9]
        assert as_list == as_bitset

    def test_equality_against_lists_and_tuples(self):
        support = make_support_set([2, 4], BACKEND_BITSET)
        assert support == [2, 4]
        assert support == (2, 4)
        assert [2, 4] == support  # reflected comparison
        assert support != [2, 5]
        assert support != "24"

    def test_hash_consistent_across_backends(self):
        a = make_support_set([1, 9], BACKEND_BITSET)
        b = make_support_set([1, 9], BACKEND_LIST)
        assert hash(a) == hash(b)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            make_support_set([1], "roaring")
        with pytest.raises(ConfigError):
            validate_backend("nope")

    def test_negative_bits_rejected(self):
        with pytest.raises(ConfigError):
            BitsetSupportSet(-1)

    def test_as_positions_passthrough(self):
        raw = [1, 2, 3]
        assert as_positions(raw) is raw
        assert as_positions(make_support_set(raw)) == (1, 2, 3)

    def test_coerce_preserves_matching_backend(self):
        support = make_support_set([1, 2], BACKEND_BITSET)
        assert coerce_support_set(support, BACKEND_BITSET) is support
        converted = coerce_support_set(support, BACKEND_LIST)
        assert isinstance(converted, ListSupportSet)
        assert converted == support

    def test_default_backend_switch(self):
        assert default_backend() == BACKEND_BITSET
        previous = set_default_backend(BACKEND_LIST)
        try:
            assert previous == BACKEND_BITSET
            assert isinstance(make_support_set([1]), ListSupportSet)
        finally:
            set_default_backend(previous)
        assert default_backend() == BACKEND_BITSET

    def test_abstract_interface_guards(self):
        base = SupportSet()
        with pytest.raises(NotImplementedError):
            base.positions()
        with pytest.raises(NotImplementedError):
            len(base)


# ---------------------------------------------------------------------------
# Machine-word kernels vs their scalar reference semantics
# ---------------------------------------------------------------------------

#: Position lists that straddle the small/large cutovers of the chunked
#: kernels: masks shorter and longer than ``_SMALL_BITS`` bits, position
#: lists shorter and longer than ``_NUMPY_MIN_POSITIONS``, and chunk
#: boundaries of ``_COARSEN_CHUNK`` coarse granules.
kernel_positions = st.lists(
    st.one_of(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=_SMALL_BITS - 64, max_value=_SMALL_BITS + 64),
        st.integers(min_value=1, max_value=4 * _SMALL_BITS),
    ),
    unique=True,
    max_size=80,
).map(sorted)

coarsen_factors = st.integers(min_value=1, max_value=9)
granule_caps = st.one_of(
    st.none(), st.integers(min_value=0, max_value=2 * _SMALL_BITS)
)


def _reference_coarse(positions, factor, n_granules):
    """Scalar semantics reference: fine p -> (p - 1) // factor + 1."""
    coarse = sorted({(p - 1) // factor + 1 for p in positions})
    if n_granules is not None:
        coarse = [q for q in coarse if q <= n_granules]
    return coarse


@given(kernel_positions)
@settings(max_examples=150, deadline=None)
def test_pack_bits_and_bit_positions_roundtrip(positions):
    bits = _pack_bits(positions)
    assert bits == sum(1 << p for p in positions)
    assert bit_positions(bits) == positions


@given(kernel_positions, coarsen_factors, granule_caps)
@settings(max_examples=200, deadline=None)
def test_coarsen_bits_matches_scalar_semantics(positions, factor, n_granules):
    expected = _reference_coarse(positions, factor, n_granules)
    folded = coarsen_bits(_pack_bits(positions), factor, n_granules)
    assert bit_positions(folded) == expected


@given(kernel_positions, coarsen_factors, granule_caps)
@settings(max_examples=150, deadline=None)
def test_coarsen_positions_matches_scalar_semantics(positions, factor, n_granules):
    expected = _reference_coarse(positions, factor, n_granules)
    assert coarsen_positions(positions, factor, n_granules) == expected
    # Non-list iterables are accepted too.
    assert coarsen_positions(iter(positions), factor, n_granules) == expected


@given(kernel_positions, coarsen_factors, granule_caps)
@settings(max_examples=100, deadline=None)
def test_supportset_coarsen_agrees_across_backends(positions, factor, n_granules):
    expected = _reference_coarse(positions, factor, n_granules)
    for backend in SUPPORT_BACKENDS:
        folded = make_support_set(positions, backend).coarsen(factor, n_granules)
        assert folded.backend == backend
        assert list(folded) == expected


@pytest.mark.parametrize("backend", ["python", "auto"])
def test_long_coarsen_positions_on_both_compute_backends(backend):
    """The numpy stride-merge (when enabled) and the scalar loop agree on
    inputs past the ``_NUMPY_MIN_POSITIONS`` vectorization threshold."""
    positions = [3 * i + 1 for i in range(2 * _NUMPY_MIN_POSITIONS)]
    expected = _reference_coarse(positions, 5, None)
    capped = _reference_coarse(positions, 5, 100)
    previous = set_compute_backend(backend)
    try:
        assert coarsen_positions(positions, 5, None) == expected
        assert coarsen_positions(positions, 5, 100) == capped
    finally:
        set_compute_backend(previous)


def test_large_mask_kernels_cross_chunk_boundaries():
    """One deterministic case pinning the chunked large-mask paths: every
    coarse chunk boundary of ``coarsen_bits`` and every 64-bit word
    boundary of ``bit_positions`` is straddled."""
    factor = 3
    positions = list(range(1, factor * _COARSEN_CHUNK * 3 + 7, 2))
    bits = _pack_bits(positions)
    assert bits.bit_length() > _SMALL_BITS
    assert bit_positions(bits) == positions
    for n_granules in (None, _COARSEN_CHUNK - 1, _COARSEN_CHUNK, 2 * _COARSEN_CHUNK + 5):
        assert bit_positions(coarsen_bits(bits, factor, n_granules)) == (
            _reference_coarse(positions, factor, n_granules)
        )


def test_pack_bits_rejects_negative_positions():
    with pytest.raises(ConfigError):
        _pack_bits([4, -1])
    with pytest.raises(ConfigError):
        BitsetSupportSet.from_positions([-2])


def test_coarsen_rejects_bad_factor():
    with pytest.raises(ConfigError):
        coarsen_bits(0b10, 0)
    with pytest.raises(ConfigError):
        coarsen_positions([1], -1)
