"""Property and unit tests for the SupportSet engine.

The bitset representation must be observationally equivalent to the
classical sorted-list algebra on every operation the miners use:
intersection, cardinality, ascending iteration, membership, equality.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.support import intersect_sorted
from repro.core.supportset import (
    BACKEND_BITSET,
    BACKEND_LIST,
    SUPPORT_BACKENDS,
    BitsetSupportSet,
    ListSupportSet,
    SupportSet,
    as_positions,
    as_support_list,
    coerce_support_set,
    default_backend,
    make_support_set,
    set_default_backend,
    validate_backend,
)
from repro.exceptions import ConfigError

positions_lists = st.lists(
    st.integers(min_value=1, max_value=400), unique=True, max_size=60
).map(sorted)


@given(positions_lists)
@settings(max_examples=100, deadline=None)
def test_roundtrip_equivalence(positions):
    for backend in SUPPORT_BACKENDS:
        support = make_support_set(positions, backend)
        assert support.backend == backend
        assert list(support) == positions
        assert support.positions() == tuple(positions)
        assert len(support) == len(positions)
        assert bool(support) == bool(positions)
        assert support == positions
        assert as_support_list(support) == positions


@given(positions_lists, positions_lists)
@settings(max_examples=100, deadline=None)
def test_intersection_matches_list_algebra(left, right):
    expected = intersect_sorted(left, right)
    bitset = make_support_set(left, BACKEND_BITSET) & make_support_set(
        right, BACKEND_BITSET
    )
    listset = make_support_set(left, BACKEND_LIST) & make_support_set(
        right, BACKEND_LIST
    )
    assert list(bitset) == expected
    assert list(listset) == expected
    assert len(bitset) == len(expected)
    assert len(listset) == len(expected)
    # The two representations agree with each other too.
    assert bitset == listset


@given(positions_lists, positions_lists)
@settings(max_examples=50, deadline=None)
def test_cross_backend_intersection(left, right):
    expected = intersect_sorted(left, right)
    bitset_left = make_support_set(left, BACKEND_BITSET)
    list_right = make_support_set(right, BACKEND_LIST)
    assert list(bitset_left & list_right) == expected
    assert list(list_right & bitset_left) == expected
    # Intersecting with a plain list works as well.
    assert list(bitset_left & right) == expected


@given(positions_lists, st.integers(min_value=0, max_value=401))
@settings(max_examples=100, deadline=None)
def test_membership_matches(positions, probe):
    for backend in SUPPORT_BACKENDS:
        support = make_support_set(positions, backend)
        assert (probe in support) == (probe in positions)


@given(positions_lists)
@settings(max_examples=50, deadline=None)
def test_indexing_and_slicing(positions):
    for backend in SUPPORT_BACKENDS:
        support = make_support_set(positions, backend)
        if positions:
            assert support[0] == positions[0]
            assert support[-1] == positions[-1]
        assert support[1:] == positions[1:]
        assert support[:3] == positions[:3]


@given(positions_lists)
@settings(max_examples=50, deadline=None)
def test_pickle_roundtrip(positions):
    for backend in SUPPORT_BACKENDS:
        support = make_support_set(positions, backend)
        clone = pickle.loads(pickle.dumps(support))
        assert clone == support
        assert clone.backend == backend


class TestUnits:
    def test_bitset_stores_big_int(self):
        support = make_support_set([1, 3, 5], BACKEND_BITSET)
        assert isinstance(support, BitsetSupportSet)
        assert support.bits == 0b101010
        assert len(support) == 3

    def test_list_backend_type(self):
        support = make_support_set([1, 3], BACKEND_LIST)
        assert isinstance(support, ListSupportSet)

    def test_backends_agree_on_unsorted_duplicated_input(self):
        raw = [9, 3, 5, 3, 9]
        as_list = make_support_set(raw, BACKEND_LIST)
        as_bitset = make_support_set(raw, BACKEND_BITSET)
        assert list(as_list) == [3, 5, 9]
        assert as_list == as_bitset

    def test_equality_against_lists_and_tuples(self):
        support = make_support_set([2, 4], BACKEND_BITSET)
        assert support == [2, 4]
        assert support == (2, 4)
        assert [2, 4] == support  # reflected comparison
        assert support != [2, 5]
        assert support != "24"

    def test_hash_consistent_across_backends(self):
        a = make_support_set([1, 9], BACKEND_BITSET)
        b = make_support_set([1, 9], BACKEND_LIST)
        assert hash(a) == hash(b)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            make_support_set([1], "roaring")
        with pytest.raises(ConfigError):
            validate_backend("nope")

    def test_negative_bits_rejected(self):
        with pytest.raises(ConfigError):
            BitsetSupportSet(-1)

    def test_as_positions_passthrough(self):
        raw = [1, 2, 3]
        assert as_positions(raw) is raw
        assert as_positions(make_support_set(raw)) == (1, 2, 3)

    def test_coerce_preserves_matching_backend(self):
        support = make_support_set([1, 2], BACKEND_BITSET)
        assert coerce_support_set(support, BACKEND_BITSET) is support
        converted = coerce_support_set(support, BACKEND_LIST)
        assert isinstance(converted, ListSupportSet)
        assert converted == support

    def test_default_backend_switch(self):
        assert default_backend() == BACKEND_BITSET
        previous = set_default_backend(BACKEND_LIST)
        try:
            assert previous == BACKEND_BITSET
            assert isinstance(make_support_set([1]), ListSupportSet)
        finally:
            set_default_backend(previous)
        assert default_backend() == BACKEND_BITSET

    def test_abstract_interface_guards(self):
        base = SupportSet()
        with pytest.raises(NotImplementedError):
            base.positions()
        with pytest.raises(NotImplementedError):
            len(base)
