"""Unit tests for MiningParams (paper Sec. III-E / Table VI)."""

import pytest

from repro import MiningParams
from repro.events.relations import RelationConfig
from repro.exceptions import ConfigError


class TestValidation:
    def test_valid_construction(self):
        params = MiningParams(2, 3, (4, 10), 2)
        assert params.dist_min == 4
        assert params.dist_max == 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_period": 0},
            {"min_density": 0},
            {"dist_interval": (5, 4)},
            {"dist_interval": (-1, 4)},
            {"min_season": 0},
            {"max_pattern_length": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        base = {"max_period": 2, "min_density": 3, "dist_interval": (4, 10), "min_season": 2}
        base.update(kwargs)
        with pytest.raises(ConfigError):
            MiningParams(**base)


class TestPercentResolution:
    def test_table6_style_values(self):
        # 0.4% maxPeriod / 0.5% minDensity of 1460 sequences.
        params = MiningParams.from_percentages(
            n_granules=1460,
            max_period_pct=0.4,
            min_density_pct=0.5,
            dist_interval=(90, 270),
            min_season=4,
        )
        assert params.max_period == 6  # ceil(1460 * 0.004)
        assert params.min_density == 8  # ceil(1460 * 0.005)
        assert params.min_season == 4

    def test_floors_at_one(self):
        params = MiningParams.from_percentages(
            n_granules=10,
            max_period_pct=0.1,
            min_density_pct=0.1,
            dist_interval=(0, 5),
            min_season=1,
        )
        assert params.max_period == 1
        assert params.min_density == 1

    def test_invalid_percentages(self):
        with pytest.raises(ConfigError):
            MiningParams.from_percentages(100, 0.0, 0.5, (0, 5), 1)
        with pytest.raises(ConfigError):
            MiningParams.from_percentages(0, 0.5, 0.5, (0, 5), 1)

    def test_custom_relation_config_passthrough(self):
        relation = RelationConfig(epsilon=2, min_overlap=3)
        params = MiningParams.from_percentages(
            100, 1.0, 1.0, (0, 5), 1, relation=relation
        )
        assert params.relation.epsilon == 2
        assert params.relation.min_overlap == 3


class TestWithUpdates:
    def test_sweep_helper(self):
        params = MiningParams(2, 3, (4, 10), 2)
        swept = params.with_updates(min_season=5)
        assert swept.min_season == 5
        assert swept.max_period == 2
        assert params.min_season == 2  # original untouched


class TestComputeBackend:
    """The numpy-optional compute-backend switch of the array kernels."""

    def test_validate_rejects_unknown(self):
        from repro.core.config import validate_compute_backend

        assert validate_compute_backend("auto") == "auto"
        with pytest.raises(ConfigError):
            validate_compute_backend("cupy")

    def test_python_backend_disables_numpy(self):
        from repro.core.config import (
            compute_backend,
            get_numpy,
            set_compute_backend,
        )

        previous = set_compute_backend("python")
        try:
            assert compute_backend() == "python"
            assert get_numpy() is None
        finally:
            set_compute_backend(previous)

    def test_environment_override(self, monkeypatch):
        from repro.core import config
        from repro.core.config import (
            COMPUTE_ENV_VAR,
            compute_backend,
            get_numpy,
            set_compute_backend,
        )

        previous = set_compute_backend(None)
        monkeypatch.setenv(COMPUTE_ENV_VAR, "python")
        monkeypatch.setattr(config, "_NUMPY_MODULE", ...)
        try:
            assert compute_backend() == "python"
            assert get_numpy() is None
        finally:
            set_compute_backend(previous)

    def test_numpy_backend_when_available(self):
        from repro.core.config import get_numpy, set_compute_backend

        try:
            import numpy  # noqa: F401
        except ImportError:
            pytest.skip("numpy not installed in this environment")
        previous = set_compute_backend("numpy")
        try:
            assert get_numpy() is not None
        finally:
            set_compute_backend(previous)
