"""The telemetry layer: counters, spans, logging, and cross-process merge.

The two guarantees worth their own suites:

* **Parity.**  The ``mine.*`` / ``kernel.*`` counters are identical
  whether the mining work ran in-process, in a thread pool, or in a
  process pool -- worker-side counts ship back in the task envelope and
  merge losslessly (tested on every seed dataset).
* **Zero cost when off.**  With telemetry disabled, the instrumented
  hot paths allocate nothing in the obs modules and ``span()`` returns
  one shared singleton.
"""

import io
import json
import logging as stdlib_logging
import pickle
import threading
import tracemalloc
from pathlib import Path

import pytest

import repro.obs
from repro.core.executor import ParallelExecutor, ThreadExecutor
from repro.core.results import results_equivalent
from repro.core.stpm import ESTPM
from repro.datasets import load_dataset
from repro.obs import counters
from repro.obs import trace
from repro.obs.counters import Histogram, MetricRegistry, capture
from repro.obs.logging import (
    JsonLinesFormatter,
    KeyValueFormatter,
    configure_logging,
    get_logger,
)
from repro.obs.trace import phase_summary, reset_trace, span, trace_tree, write_trace


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Every test starts and ends with telemetry globally disabled."""
    repro.obs.disable_telemetry()
    repro.obs.reset_telemetry()
    yield
    repro.obs.disable_telemetry()
    repro.obs.reset_telemetry()


class TestCounters:
    def test_disabled_calls_record_nothing(self):
        counters.inc("mine.groups.pair")
        counters.set_gauge("x", 1.0)
        counters.observe("y", 2.0)
        assert counters.summary() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_enabled_recording_and_summary(self):
        counters.enable_metrics()
        counters.inc("a", 2)
        counters.inc("a")
        counters.set_gauge("g", 7.5)
        counters.observe("h", 3.0)
        counters.observe("h", 5.0)
        snapshot = counters.summary()
        assert snapshot["counters"] == {"a": 3}
        assert snapshot["gauges"] == {"g": 7.5}
        assert snapshot["histograms"]["h"]["count"] == 2
        assert snapshot["histograms"]["h"]["mean"] == 4.0

    def test_capture_isolates_and_restores(self):
        counters.enable_metrics()
        counters.inc("outer")
        with capture() as captured:
            counters.inc("inner")
            assert captured.counters == {"inner": 1}
        assert counters.summary()["counters"] == {"outer": 1}

    def test_capture_force_enables_for_spawn_workers(self):
        assert not counters.metrics_enabled()
        with capture() as captured:
            assert counters.metrics_enabled()
            counters.inc("worker.side")
        assert not counters.metrics_enabled()
        assert captured.counters == {"worker.side": 1}

    def test_merge_folds_a_shipped_snapshot(self):
        shipped = MetricRegistry()
        shipped.inc("a", 5)
        shipped.observe("h", 2.0)
        counters.enable_metrics()
        counters.inc("a")
        counters.observe("h", 8.0)
        counters.merge(shipped.snapshot())
        snapshot = counters.summary()
        assert snapshot["counters"] == {"a": 6}
        histogram = snapshot["histograms"]["h"]
        assert histogram["count"] == 2
        assert histogram["min"] == 2.0
        assert histogram["max"] == 8.0

    def test_histogram_merge_is_exact(self):
        left, right = Histogram(), Histogram()
        values = [0.5, 1.0, 3.0, 64.0, 1000.0]
        for value in values[:2]:
            left.observe(value)
        for value in values[2:]:
            right.observe(value)
        left.merge(right.as_dict())
        combined = Histogram()
        for value in values:
            combined.observe(value)
        assert left.as_dict() == combined.as_dict()

    def test_snapshot_pickles(self):
        registry = MetricRegistry()
        registry.inc("a")
        registry.observe("h", 4.2)
        registry.set_gauge("g", 1.0)
        snapshot = registry.snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot
        json.dumps(snapshot)  # and it is JSON-able as written


class TestTrace:
    def test_disabled_span_is_one_shared_singleton(self):
        assert span("estpm/mine") is span("anything/else", attr=1)
        with span("noop") as sp:
            sp.set(ignored=True)
        assert trace_tree() == []

    def test_spans_nest_into_a_tree(self):
        trace.enable_tracing()
        with span("outer", level=1) as outer:
            with span("inner"):
                pass
            outer.set(discovered="late")
        (root,) = trace_tree()
        assert root["name"] == "outer"
        assert root["attrs"] == {"level": 1, "discovered": "late"}
        assert [child["name"] for child in root["children"]] == ["inner"]
        assert root["seconds"] >= root["children"][0]["seconds"] >= 0.0

    def test_each_thread_gets_its_own_stack(self):
        trace.enable_tracing()

        def worker():
            with span("thread-root"):
                pass

        with span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        names = sorted(root["name"] for root in trace_tree())
        # The thread's span completed while main-root was open, yet it
        # is a root of its own, not a child of the main thread's span.
        assert names == ["main-root", "thread-root"]

    def test_memory_span_records_a_peak(self):
        trace.enable_tracing()
        with span("alloc", memory=True):
            block = [0] * 200_000
            del block
        (root,) = trace_tree()
        assert root["memory_peak_bytes"] > 200_000 * 4
        assert not tracemalloc.is_tracing()

    def test_phase_summary_separates_self_time(self):
        trace.enable_tracing()
        with span("outer"), span("inner"):
            pass
        rows = {row["name"]: row for row in phase_summary()}
        assert rows["outer"]["calls"] == 1
        assert rows["inner"]["seconds"] <= rows["outer"]["seconds"]
        assert (
            rows["outer"]["self_seconds"]
            == pytest.approx(rows["outer"]["seconds"] - rows["inner"]["seconds"])
        )

    def test_write_trace_schema(self, tmp_path):
        trace.enable_tracing()
        with span("root", k=2):
            pass
        target = write_trace(
            tmp_path / "trace.json", command="unit", counters=counters.summary()
        )
        payload = json.loads(target.read_text())
        assert payload["version"] == trace.TRACE_VERSION
        assert payload["command"] == "unit"
        assert payload["spans"][0]["name"] == "root"
        assert payload["spans"][0]["attrs"] == {"k": 2}
        assert payload["summary"][0]["name"] == "root"
        assert set(payload["counters"]) == {"counters", "gauges", "histograms"}

    def test_reset_trace_clears_roots(self):
        trace.enable_tracing()
        with span("gone"):
            pass
        reset_trace()
        assert trace_tree() == []


class TestLogging:
    def _configured(self, **kwargs):
        stream = io.StringIO()
        configure_logging(stream=stream, **kwargs)
        return stream

    def teardown_method(self):
        # Return the repro hierarchy to its stderr default after each test.
        configure_logging()

    def test_key_value_format(self):
        stream = self._configured(level="info")
        get_logger("harness.cli").info(
            "pool spawned", extra={"workers": 4, "backend": "parallel"}
        )
        line = stream.getvalue().strip()
        assert " INFO repro.harness.cli pool spawned " in line
        assert "backend=parallel" in line and "workers=4" in line

    def test_json_lines_format(self):
        stream = self._configured(level="debug", json_lines=True)
        get_logger("core.executor").debug("dispatching", extra={"tasks": 12})
        record = json.loads(stream.getvalue())
        assert record["level"] == "DEBUG"
        assert record["logger"] == "repro.core.executor"
        assert record["message"] == "dispatching"
        assert record["tasks"] == 12

    def test_level_threshold(self):
        stream = self._configured(level="warning")
        get_logger("x").info("quiet")
        get_logger("x").warning("loud")
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()

    def test_reconfigure_replaces_the_handler(self):
        self._configured(level="info")
        stream = self._configured(level="info")
        get_logger("x").info("once")
        handlers = [
            h
            for h in stdlib_logging.getLogger("repro").handlers
            if getattr(h, "_repro_handler", False)
        ]
        assert len(handlers) == 1
        assert stream.getvalue().count("once") == 1

    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            configure_logging(level="chatty")

    def test_get_logger_name_forms(self):
        assert get_logger("repro.core.stpm").name == "repro.core.stpm"
        assert get_logger("core.stpm").name == "repro.core.stpm"
        assert get_logger(None).name == "repro"

    def test_formatters_are_exported(self):
        assert isinstance(KeyValueFormatter(), stdlib_logging.Formatter)
        assert isinstance(JsonLinesFormatter(), stdlib_logging.Formatter)


class TestCrossProcessParity:
    """Worker-side counters shipped through the envelope match serial."""

    @pytest.mark.parametrize("name", ["RE", "SC", "INF", "HFM"])
    @pytest.mark.parametrize("backend", ["parallel", "threads"])
    def test_seed_dataset_counter_parity(self, name, backend):
        dataset = load_dataset(name, "tiny")
        params = dataset.params(
            max_period_pct=0.4, min_density_pct=0.75, min_season=4
        )
        dseq = dataset.dseq()
        with capture() as serial_captured:
            serial = ESTPM(dseq, params).mine()
        if backend == "parallel":
            executor = ParallelExecutor(max_workers=2, min_tasks=1)
        else:
            executor = ThreadExecutor(max_workers=2, min_tasks=1)
        with capture() as pooled_captured, executor:
            pooled = ESTPM(dseq, params, executor=executor).mine()
        assert results_equivalent(serial, pooled)

        def mining_only(registry):
            return {
                key: value
                for key, value in registry.counters.items()
                if key.startswith(("mine.", "kernel."))
            }

        serial_counts = mining_only(serial_captured)
        assert serial_counts.get("mine.groups.pair", 0) > 0
        assert serial_counts == mining_only(pooled_captured)

    def test_executor_counters_record_dispatch(self):
        dataset = load_dataset("INF", "tiny")
        params = dataset.params(
            max_period_pct=0.4, min_density_pct=0.75, min_season=4
        )
        dseq = dataset.dseq()
        with capture() as serial_captured:
            ESTPM(dseq, params).mine()
        assert "executor.map_calls" not in serial_captured.counters
        with capture() as captured, ThreadExecutor(
            max_workers=2, min_tasks=1
        ) as executor:
            ESTPM(dseq, params, executor=executor).mine()
        assert captured.counters["executor.map_calls"] > 0
        assert captured.counters["executor.tasks_dispatched"] > 0
        assert captured.counters["executor.pool_spawns"] == 1
        assert (
            captured.counters["executor.pool_reuses"]
            == captured.counters["executor.map_calls"] - 1
        )


class TestDisabledPathCost:
    def test_disabled_mining_allocates_nothing_in_obs(self):
        """The step-2.2 hot loop must not touch obs state when disabled."""
        dataset = load_dataset("INF", "tiny")
        params = dataset.params(
            max_period_pct=0.4, min_density_pct=0.75, min_season=4
        )
        dseq = dataset.dseq()  # warm every cache before tracing starts
        ESTPM(dseq, params).mine()
        obs_dir = Path(repro.obs.__file__).parent
        tracemalloc.start()
        try:
            ESTPM(dseq, params).mine()
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        obs_stats = snapshot.filter_traces(
            [tracemalloc.Filter(True, str(obs_dir / "*"))]
        ).statistics("filename")
        assert obs_stats == []

    def test_disabled_mining_result_matches_enabled(self):
        dataset = load_dataset("INF", "tiny")
        params = dataset.params(
            max_period_pct=0.4, min_density_pct=0.75, min_season=4
        )
        dseq = dataset.dseq()
        disabled = ESTPM(dseq, params).mine()
        repro.obs.enable_telemetry()
        try:
            enabled = ESTPM(dseq, params).mine()
        finally:
            repro.obs.disable_telemetry()
        assert results_equivalent(disabled, enabled)
        assert counters.summary()["counters"]["mine.groups.pair"] > 0
        names = {root["name"] for root in trace_tree()}
        assert "estpm/mine" in names
