"""Unit tests for the PS-tree substrate (Kiran et al. [40])."""

import pytest

from repro.baselines.pstree import PeriodSummary, PSTree
from repro.exceptions import MiningError


class TestPeriodSummary:
    def test_runs_merge_within_max_per(self):
        summary = PeriodSummary(max_per=2)
        for tid in (1, 2, 4, 9, 10):
            summary.add_tid(tid)
        assert summary.runs == [(1, 4, 3), (9, 10, 2)]
        assert summary.support == 5

    def test_tids_must_increase(self):
        summary = PeriodSummary(max_per=2)
        summary.add_tid(5)
        with pytest.raises(MiningError):
            summary.add_tid(5)

    def test_merged_with(self):
        a = PeriodSummary(2)
        for tid in (1, 2):
            a.add_tid(tid)
        b = PeriodSummary(2)
        for tid in (4, 10):
            b.add_tid(tid)
        merged = a.merged_with(b)
        assert merged.runs == [(1, 4, 3), (10, 10, 1)]
        assert merged.support == 4

    def test_merge_rejects_mismatched_max_per(self):
        with pytest.raises(MiningError):
            PeriodSummary(1).merged_with(PeriodSummary(2))

    def test_max_inter_run_gap_includes_boundaries(self):
        summary = PeriodSummary(max_per=2)
        for tid in (3, 4):
            summary.add_tid(tid)
        # Leading boundary 3, trailing boundary 10 - 4 = 6.
        assert summary.max_inter_run_gap(n_transactions=10) == 6

    def test_is_periodic(self):
        summary = PeriodSummary(max_per=3)
        for tid in (2, 4, 7, 9):
            summary.add_tid(tid)
        assert summary.is_periodic(n_transactions=10)
        assert not summary.is_periodic(n_transactions=20)

    def test_empty_summary_gap_is_database_length(self):
        assert PeriodSummary(2).max_inter_run_gap(7) == 7


class TestPSTree:
    def _tree(self):
        order = {"a": 0, "b": 1, "c": 2}
        tree = PSTree(max_per=100, item_order=order)
        tree.n_transactions = 4
        tree.insert_transaction(1, ["a", "b"])
        tree.insert_transaction(2, ["a", "b", "c"])
        tree.insert_transaction(3, ["b"])
        tree.insert_transaction(4, ["a"])
        return tree

    def test_node_count_shares_prefixes(self):
        tree = self._tree()
        # Paths: a, a-b, a-b-c, b -> nodes a, b(under a), c, b(root) = 4.
        assert tree.n_nodes() == 4

    def test_header_links_cover_all_item_nodes(self):
        tree = self._tree()
        assert len(list(tree.nodes_of("b"))) == 2
        assert len(list(tree.nodes_of("a"))) == 1

    def test_item_summary_counts_descendant_tails(self):
        tree = self._tree()
        assert tree.item_summary("a").support == 3  # tids 1, 2, 4
        assert tree.item_summary("b").support == 3  # tids 1, 2, 3
        assert tree.item_summary("c").support == 1

    def test_items_not_in_order_are_skipped(self):
        tree = PSTree(max_per=10, item_order={"a": 0})
        tree.insert_transaction(1, ["a", "zzz"])
        assert tree.n_nodes() == 1

    def test_path_to_root(self):
        tree = self._tree()
        c_node = next(tree.nodes_of("c"))
        assert tree.path_to_root(c_node) == ["a", "b"]
