"""Checks of the paper's analytical claims on concrete data.

These tests pin the quantitative statements of Secs. IV-V to the running
example and to random inputs: search-space counting, the anti-monotone
behaviour of maxSeason along pattern extensions, and the lossless-ness of
the candidate gates.
"""

import pytest

from repro import ESTPM, PruningConfig
from repro.core.seasonality import max_season


class TestSearchSpaceCounting:
    def test_two_event_group_count_matches_analysis(self, paper_dseq, paper_params):
        # N2 = P(n,2) + n over the candidate events (Appendix E): with the
        # 8 candidates of Fig. 6, the Cartesian step enumerates
        # C(8,2) + 8 = 36 unordered groups (self-pairs included).
        result = ESTPM(paper_dseq, paper_params).mine()
        assert result.stats.n_groups_generated[2] == 36

    def test_pattern_count_bounded_by_3_relations_per_group(
        self, paper_dseq, paper_params
    ):
        # Each 2-event group admits at most 3 relations per event order;
        # candidate 2-event patterns can never exceed 2 * 3 * N2.
        result = ESTPM(paper_dseq, paper_params).mine()
        n_groups = result.stats.n_groups_generated[2]
        assert result.stats.n_candidate_patterns[2] <= 6 * n_groups


class TestMaxSeasonAntiMonotonicity:
    def test_lemma2_along_real_patterns(self, paper_dseq, paper_params):
        # maxSeason(P) <= maxSeason of each of its events (Lemma 2).
        result = ESTPM(paper_dseq, paper_params).mine()
        event_support = paper_dseq.event_support()
        for sp in result.patterns:
            pattern_ms = max_season(len(sp.support), paper_params.min_density)
            for event in sp.pattern.events:
                event_ms = max_season(
                    len(event_support[event]), paper_params.min_density
                )
                assert pattern_ms <= event_ms + 1e-12

    def test_lemma1_along_subpatterns(self, paper_dseq, paper_params):
        # For frequent P' ⊆ P found in the same run, |SUP_P'| >= |SUP_P|.
        result = ESTPM(paper_dseq, paper_params).mine()
        multi = [sp for sp in result.patterns if sp.size >= 2]
        for small in multi:
            for big in multi:
                if small.size < big.size and small.pattern.is_subpattern_of(
                    big.pattern
                ):
                    assert len(small.support) >= len(big.support)


class TestSupportMeaning:
    def test_pattern_support_within_event_support_intersection(
        self, paper_dseq, paper_params
    ):
        result = ESTPM(paper_dseq, paper_params).mine()
        event_support = paper_dseq.event_support()
        for sp in result.patterns:
            if sp.size < 2:
                continue
            common = set(event_support[sp.pattern.events[0]])
            for event in sp.pattern.events[1:]:
                common &= set(event_support[event])
            assert set(sp.support) <= common


class TestCandidateGateIsLossless:
    @pytest.mark.parametrize("min_season", [1, 2, 3])
    def test_gate_never_changes_output(self, paper_dseq, paper_params, min_season):
        params = paper_params.with_updates(min_season=min_season)
        gated = ESTPM(paper_dseq, params, PruningConfig.apriori_only()).mine()
        ungated = ESTPM(paper_dseq, params, PruningConfig.none()).mine()
        assert gated.pattern_keys() == ungated.pattern_keys()
