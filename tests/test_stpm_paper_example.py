"""Golden tests: E-STPM on the paper's running example (Secs. IV-B/IV-C).

The paper states exact facts about mining Table IV with maxPeriod = 2,
minDensity = 3, distInterval = [4, 10], minSeason = 2:

* eight candidate single events enter HLH1 -- C:1, C:0, D:1, D:0, F:1,
  F:0, M:1, N:1 -- while M:0 and N:0 fail the maxSeason gate (Fig. 6);
* M:1 is a candidate but has only one season, so it is not frequent;
* the pattern C:1 >= D:1 has the three near support sets of Fig. 3;
* the anti-monotonicity counterexample: M:1 has one season while the
  2-event pattern M:1 >= N:1 has two.
"""

import pytest

from repro import ESTPM, PruningConfig, TemporalPattern, Triple, compute_seasons
from repro.core.seasonality import is_candidate
from repro.core.stpm import mine_seasonal_patterns
from repro.events import CONTAINS


@pytest.fixture(scope="module")
def mined(paper_dseq, paper_params):
    return ESTPM(paper_dseq, paper_params).mine()


class TestCandidateEvents:
    def test_fig6_candidate_set(self, paper_dseq, paper_params):
        support = paper_dseq.event_support()
        candidates = {
            event for event, sup in support.items() if is_candidate(len(sup), paper_params)
        }
        assert candidates == {"C:1", "C:0", "D:1", "D:0", "F:1", "F:0", "M:1", "N:1"}

    def test_m0_and_n0_fail_the_gate(self, paper_dseq, paper_params):
        support = paper_dseq.event_support()
        assert not is_candidate(len(support["M:0"]), paper_params)
        assert not is_candidate(len(support["N:0"]), paper_params)

    def test_hlh1_stats(self, mined):
        assert mined.stats.n_candidate_events == 8
        assert mined.stats.n_events_scanned == 10


class TestSingleEventResults:
    def test_m1_candidate_but_not_frequent(self, paper_dseq, paper_params, mined):
        # season(M:1) = 1 < minSeason = 2 (Sec. IV-C).
        support = paper_dseq.event_support()["M:1"]
        assert compute_seasons(support, paper_params).n_seasons == 1
        frequent_singles = {sp.pattern.events[0] for sp in mined.by_size(1)}
        assert "M:1" not in frequent_singles

    def test_frequent_single_events(self, mined):
        frequent_singles = {sp.pattern.events[0] for sp in mined.by_size(1)}
        assert frequent_singles == {"C:0", "C:1", "D:0", "D:1", "F:0", "F:1", "N:1"}


class TestPatternResults:
    def test_c1_contains_d1_is_frequent_with_two_seasons(self, mined):
        pattern = TemporalPattern(("C:1", "D:1"), (Triple(CONTAINS, "C:1", "D:1"),))
        matches = [sp for sp in mined.patterns if sp.pattern == pattern]
        assert len(matches) == 1
        assert matches[0].n_seasons == 2
        assert matches[0].support == (1, 2, 3, 7, 8, 11, 12, 14)
        assert matches[0].seasons.near_sets == ((1, 2, 3), (7, 8), (11, 12, 14))

    def test_antimonotonicity_counterexample(self, mined, paper_dseq, paper_params):
        # M:1 is not seasonal (1 season) but M:1 >= N:1 is (2 seasons):
        # the Sec. IV-B counterexample.
        pattern = TemporalPattern(("M:1", "N:1"), (Triple(CONTAINS, "M:1", "N:1"),))
        matches = [sp for sp in mined.patterns if sp.pattern == pattern]
        assert len(matches) == 1
        assert matches[0].n_seasons == 2

    def test_all_pruning_variants_agree(self, paper_dseq, paper_params, mined):
        for variant in (
            PruningConfig.none(),
            PruningConfig.apriori_only(),
            PruningConfig.transitivity_only(),
        ):
            result = ESTPM(paper_dseq, paper_params, variant).mine()
            assert result.pattern_keys() == mined.pattern_keys(), variant.label

    def test_every_reported_pattern_meets_thresholds(self, mined, paper_params):
        for sp in mined.patterns:
            assert sp.n_seasons >= paper_params.min_season
            for density in sp.seasons.densities():
                assert density >= paper_params.min_density
            for distance in sp.seasons.distances():
                assert paper_params.dist_min <= distance <= paper_params.dist_max

    def test_convenience_wrapper(self, paper_dseq, paper_params, mined):
        result = mine_seasonal_patterns(paper_dseq, paper_params)
        assert result.pattern_keys() == mined.pattern_keys()

    def test_three_event_patterns_exist(self, mined):
        assert mined.by_size(3), "the example admits 3-event seasonal patterns"
        for sp in mined.by_size(3):
            assert len(sp.pattern.triples) == 3
