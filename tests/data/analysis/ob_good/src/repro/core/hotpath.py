"""Fixture: telemetry through the guarded zero-overhead helpers (clean)."""

from repro.obs import inc, span


def record(value):
    inc("hot.calls")
    with span("hot.step"):
        return value
