"""Fixture: shared module state handled correctly (clean).

Covers all three accepted shapes: lock-guarded mutation, thread-local
state, and module-scope initialization (single-threaded by definition).
"""

import threading

_LOCK = threading.Lock()
_CACHE = {}
_CACHE["seed"] = ()  # module-scope init: fine without a lock
_SCRATCH = threading.local()


def intern(key, value):
    with _LOCK:
        if key not in _CACHE:
            _CACHE[key] = value
        return _CACHE[key]


def scratch_pad():
    if not hasattr(_SCRATCH, "pad"):
        _SCRATCH.pad = {}
    return _SCRATCH.pad
