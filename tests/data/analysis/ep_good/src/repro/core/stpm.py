"""Fixture: the picklability contract respected (clean)."""


def mine_task(task):
    return task


def mine(executor, tasks, context):
    executor.map_tasks(mine_task, tasks, context)


class LevelState:
    def __init__(self):
        self.values = []
        self._column_cache = {}

    def __getstate__(self):
        return {"values": self.values}

    def __setstate__(self, state):
        self.values = state["values"]
        self._column_cache = {}


MINERS = {"exact": mine_task}
