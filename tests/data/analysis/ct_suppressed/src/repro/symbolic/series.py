"""Fixture: a CT001 violation silenced by a line suppression."""

import numpy as np  # repro: ignore[CT001] -- fixture exercising suppressions


def as_array(values):
    return np.asarray(values)
