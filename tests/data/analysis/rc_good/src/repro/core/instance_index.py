"""Fixture: kernel-name constants (consistent tree)."""

KERNEL_ARRAY = "array"
KERNEL_SWEEP = "sweep"
STEP2_KERNELS = (KERNEL_ARRAY, KERNEL_SWEEP)
