"""Fixture: conformant kernel registry and export surface (clean)."""

from repro.core.instance_index import KERNEL_ARRAY, KERNEL_SWEEP

__all__ = ["mine"]


def array_pair(hlh1, event_a, event_b):
    return ()


def array_extend(hlh1, previous, event):
    return ()


def sweep_pair(hlh1, event_a, event_b):
    return ()


def sweep_extend(hlh1, previous, event):
    return ()


def mine():
    return ()


_KERNEL_FUNCTIONS = {
    KERNEL_ARRAY: (array_pair, array_extend),
    KERNEL_SWEEP: (sweep_pair, sweep_extend),
}
