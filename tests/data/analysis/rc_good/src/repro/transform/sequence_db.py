"""Fixture: front-end registry with both dispatch targets (clean)."""

FRONTEND_COLUMNAR = "columnar"
FRONTEND_SCALAR = "scalar"
FRONTEND_KERNELS = (FRONTEND_COLUMNAR, FRONTEND_SCALAR)


def _build_columnar(dsyb, ratio, n_granules):
    return ()


def _build_scalar(dsyb, ratio, n_granules):
    return ()
