"""Fixture: every executor-picklability violation (EP001/EP002/EP003)."""


def mine(executor, tasks, context):
    def local_task(task):  # closure -- cannot pickle by qualified name
        return task

    executor.map_tasks(lambda task: task, tasks, context)  # EP001: lambda
    executor.map_tasks(local_task, tasks, context)  # EP001: closure
    return None


class LevelState:
    """EP002: per-process cache shipped by default pickling."""

    def __init__(self):
        self.values = []
        self._column_cache = {}


MINERS = {"exact": lambda dseq: dseq}  # EP003: lambda registry value
