"""Fixture: direct telemetry access from a hot path (OB001)."""

import repro.obs as obs
from repro.obs import registry


def record(value):
    registry().counter("hot.calls").inc()
    with obs.Span("hot.step"):
        return value
