"""Fixture: front-end registry without its dispatch target (RC002)."""

FRONTEND_COLUMNAR = "columnar"
FRONTEND_SCALAR = "scalar"
FRONTEND_KERNELS = (FRONTEND_COLUMNAR, FRONTEND_SCALAR)


def _build_columnar(dsyb, ratio, n_granules):
    return ()


# RC002: no _build_scalar despite FRONTEND_SCALAR being declared.
