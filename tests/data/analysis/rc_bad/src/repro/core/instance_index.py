"""Fixture: kernel-name constants for the registry-conformance rules."""

KERNEL_ARRAY = "array"
KERNEL_SWEEP = "sweep"
STEP2_KERNELS = (KERNEL_ARRAY, KERNEL_SWEEP)
