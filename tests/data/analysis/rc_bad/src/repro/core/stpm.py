"""Fixture: registry drift (RC001), broken export (RC003), broken import (RC101)."""

from repro.core.instance_index import (
    KERNEL_ARRAY,
    KERNEL_GONE,  # RC101: instance_index does not bind this
    KERNEL_SWEEP,
)

__all__ = ["mine", "vanished"]  # RC003: 'vanished' is unbound


def array_pair(hlh1, event_a, event_b):
    return ()


def array_extend(hlh1, previous, event):
    return ()


def sweep_pair(hlh1, event_a):  # RC001: pair-slot signature drift
    return ()


def sweep_extend(hlh1, previous, event):
    return ()


def mine():
    return ()


_KERNEL_FUNCTIONS = {
    KERNEL_ARRAY: (array_pair, array_extend),
    KERNEL_SWEEP: (sweep_pair, sweep_extend),
}
