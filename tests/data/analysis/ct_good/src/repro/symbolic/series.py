"""Fixture: numpy only through the backend registry (clean)."""

from repro.core.config import get_numpy


def as_array(values):
    np = get_numpy()
    if np is None:
        return [float(v) for v in values]
    return np.asarray(values, dtype=float)
