"""Fixture: unguarded mutation of shared module state (TS001)."""

_CACHE = {}


def intern(key, value):
    if key not in _CACHE:
        _CACHE[key] = value
    return _CACHE[key]


def clear():
    _CACHE.clear()
