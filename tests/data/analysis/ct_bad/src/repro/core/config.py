"""Fixture: the compute registry itself MAY import numpy (true negative)."""

import numpy  # noqa: F401


def get_numpy():
    return numpy
