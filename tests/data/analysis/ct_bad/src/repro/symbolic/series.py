"""Fixture: both numpy-import violations (CT001 + CT002)."""

import numpy as np  # CT001: module scope, outside the registry


def as_array(values):
    return np.asarray(values)


def bincount(values):
    import numpy  # CT002: function scope, bypasses get_numpy()

    return numpy.bincount(values)
