"""Unit tests for the experiment harness (tables, figures, registry, CLI)."""

import io

import pytest

from repro.harness import EXPERIMENTS, Figure, Table, run_experiment
from repro.harness.cli import main as cli_main
from repro.harness.runner import run_all


class TestTable:
    def test_render_alignment(self):
        table = Table("T", ["a", "long header"], notes="note")
        table.add_row(1, 2.5)
        table.add_row("xyz", "w")
        text = table.render()
        assert "T" in text
        assert "long header" in text
        assert "2.50" in text
        assert "note" in text
        lines = [line for line in text.splitlines() if "|" in line]
        assert len({line.index("|") for line in lines}) == 1  # aligned


class TestFigure:
    def test_render_series(self):
        figure = Figure("F", x_label="x", x_values=[1, 2], y_label="secs")
        figure.add_series("A", [1.0, 2.0])
        figure.add_series("B", [2.0, 4.0])
        text = figure.render()
        assert "F" in text
        assert "#" in text  # bars
        assert "secs" in text

    def test_series_length_validated(self):
        figure = Figure("F", x_label="x", x_values=[1, 2])
        with pytest.raises(ValueError):
            figure.add_series("A", [1.0])

    def test_empty_figure_renders(self):
        assert Figure("F", x_label="x", x_values=[]).render()


class TestRegistry:
    def test_every_paper_artifact_is_registered(self):
        expected = {
            "T5", "T7", "T8", "T9", "T10", "T11", "T12", "T13", "T14", "T19",
            "F7", "F8", "F9", "F10", "F11", "F12", "F13", "F14", "F15", "F16",
            "F17", "F18", "F19", "F20", "F21", "F22", "F23", "F24", "F25", "F26",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("T99")

    def test_t5_on_tiny_profile(self):
        table = run_experiment("T5", profile="tiny")
        assert isinstance(table, Table)
        assert len(table.rows) == 4

    def test_t19_epsilon_on_tiny_profile(self):
        table = run_experiment(
            "T19", profile="tiny", datasets=("INF",), epsilons=(0, 1)
        )
        rendered = table.render()
        assert "epsilon" in rendered
        # eps = 0 row has zero loss by construction.
        assert table.rows[0][-1] == "0.00"

    def test_f7_micro_sweep(self):
        figure = run_experiment("F7", profile="tiny", values=(2,))
        assert isinstance(figure, Figure)
        assert set(figure.series) == {"A-STPM", "E-STPM", "APS-growth"}

    def test_f15_micro_sweep(self):
        figure = run_experiment("F15", profile="tiny", values=(2,))
        assert set(figure.series) == {"NoPrune", "Apriori", "Trans", "All"}

    def test_runner_streams_outputs(self):
        stream = io.StringIO()
        outputs = run_all(["T5"], profile="tiny", stream=stream)
        assert "T5" in outputs
        assert "Table V" in stream.getvalue()

    def test_runner_summary_has_time_and_memory_columns(self):
        stream = io.StringIO()
        run_all(["T5"], profile="tiny", stream=stream)
        text = stream.getvalue()
        assert "Run summary" in text
        assert "Wall clock (s)" in text
        assert "Peak memory (MB)" in text

    def test_runner_summary_memory_column_optional(self):
        stream = io.StringIO()
        run_all(["T5"], profile="tiny", stream=stream, measure_memory=False)
        text = stream.getvalue()
        assert "Run summary" in text
        assert "Wall clock (s)" in text
        assert "Peak memory (MB)" not in text


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "T9" in out and "Datasets" in out

    def test_run_t5(self, capsys):
        assert cli_main(["run", "T5", "--profile", "tiny"]) == 0
        assert "Dataset characteristics" in capsys.readouterr().out

    def test_mine(self, capsys):
        assert (
            cli_main(
                [
                    "mine", "--dataset", "INF", "--profile", "tiny",
                    "--min-season", "2", "--min-density-pct", "1.0",
                ]
            )
            == 0
        )
        assert "frequent seasonal patterns" in capsys.readouterr().out

    def test_mine_approximate(self, capsys):
        assert (
            cli_main(
                [
                    "mine", "--dataset", "INF", "--profile", "tiny",
                    "--min-season", "2", "--approximate",
                ]
            )
            == 0
        )
        assert "frequent seasonal patterns" in capsys.readouterr().out

    def test_stream(self, capsys, tmp_path):
        checkpoint = tmp_path / "stream.json"
        assert (
            cli_main(
                [
                    "stream", "--dataset", "INF", "--profile", "tiny",
                    "--batch-granules", "30", "--min-season", "2",
                    "--verify", "--checkpoint", str(checkpoint),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "promoted" in out
        assert "parity verified" in out
        assert checkpoint.exists()

    def test_multigrain(self, capsys, tmp_path):
        archive = tmp_path / "multigrain.json"
        assert (
            cli_main(
                [
                    "multigrain", "--dataset", "INF", "--profile", "tiny",
                    "--multiples", "1", "2", "--min-season", "2",
                    "--min-density-pct", "1.0", "--limit", "3",
                    "--output", str(archive),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "hierarchical E-STPM" in out
        assert "fold-derived from ratio" in out
        assert archive.exists()

    def test_multigrain_query_level(self, capsys, tmp_path):
        archive = tmp_path / "multigrain.json"
        assert (
            cli_main(
                [
                    "multigrain", "--dataset", "INF", "--profile", "tiny",
                    "--multiples", "1", "2", "--min-season", "2",
                    "--min-density-pct", "1.0", "--output", str(archive),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert cli_main(["query", str(archive), "--level", "14"]) == 0
        out = capsys.readouterr().out
        assert "querying ratio 14" in out
        assert "archived patterns match" in out
        # Unknown level is a usage error, not a traceback.
        assert cli_main(["query", str(archive), "--level", "5"]) == 2
        # Without --level the finest archived level is queried.
        assert cli_main(["query", str(archive)]) == 0
        assert "querying ratio 7" in capsys.readouterr().out

    def test_query_level_rejected_on_flat_archives(self, capsys, tmp_path):
        from repro import ESTPM
        from repro.datasets import load_dataset
        from repro.io import result_to_json

        dataset = load_dataset("INF", "tiny")
        result = ESTPM(
            dataset.dseq(), dataset.params(min_season=2, min_density_pct=1.0)
        ).mine()
        path = tmp_path / "results.json"
        result_to_json(result, path)
        assert cli_main(["query", str(path), "--level", "7"]) == 2

    def test_query(self, capsys, tmp_path):
        from repro import ESTPM
        from repro.datasets import load_dataset
        from repro.io import result_to_json

        dataset = load_dataset("INF", "tiny")
        result = ESTPM(
            dataset.dseq(), dataset.params(min_season=2, min_density_pct=1.0)
        ).mine()
        path = tmp_path / "results.json"
        result_to_json(result, path)
        assert (
            cli_main(
                ["query", str(path), "--min-size", "2", "--relations", "Follows"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "archived patterns match" in out
