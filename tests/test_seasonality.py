"""Unit + golden tests for the seasonality measures (Defs. 3.13-3.15, Eq. 1)."""

from repro import MiningParams, compute_seasons, max_season
from repro.core.seasonality import (
    count_seasons,
    is_candidate,
    is_frequent_seasonal,
    season_distance,
    split_near_support_sets,
)


class TestMaxSeason:
    def test_eq1(self):
        assert max_season(12, 3) == 4.0
        assert max_season(5, 2) == 2.5

    def test_candidate_gate(self, paper_params):
        # minSeason=2, minDensity=3: support 6 is candidate, 5 is not.
        assert is_candidate(6, paper_params)
        assert not is_candidate(5, paper_params)


class TestNearSupportSets:
    def test_paper_fig3(self):
        # SUP(C:1 >= D:1) = {H1,H2,H3,H7,H8,H11,H12,H14}, maxPeriod=2 ->
        # three maximal near support sets (Fig. 3).
        support = [1, 2, 3, 7, 8, 11, 12, 14]
        assert split_near_support_sets(support, max_period=2) == [
            [1, 2, 3], [7, 8], [11, 12, 14],
        ]

    def test_single_run(self):
        assert split_near_support_sets([1, 3, 5], 2) == [[1, 3, 5]]

    def test_empty(self):
        assert split_near_support_sets([], 2) == []

    def test_every_gap_splits(self):
        assert split_near_support_sets([1, 5, 9], 2) == [[1], [5], [9]]


class TestSeasonDistance:
    def test_definition(self):
        # dist = |p(last of i) - p(first of j)|.
        assert season_distance([1, 2, 3], [7, 8]) == 4
        assert season_distance([7, 8], [11, 12, 14]) == 3


class TestComputeSeasons:
    def test_paper_pattern_example(self, paper_params):
        # C:1 >= D:1: NearSUP1 {H1,H2,H3} (season), NearSUP2 {H7,H8} (too
        # sparse), NearSUP3 {H11,H12,H14} (season): 2 seasons.
        view = compute_seasons([1, 2, 3, 7, 8, 11, 12, 14], paper_params)
        assert view.n_seasons == 2
        assert view.seasons == ((1, 2, 3), (11, 12, 14))
        assert view.densities() == [3, 3]
        assert view.distances() == [8]

    def test_paper_single_event_m1(self, paper_params):
        # M:1's support forms one near support set -> one season only.
        support = [1, 2, 3, 4, 5, 6, 8, 9, 10, 11, 13]
        view = compute_seasons(support, paper_params)
        assert view.near_sets == (tuple(support),)
        assert view.n_seasons == 1
        assert not is_frequent_seasonal(support, paper_params)

    def test_paper_h9_trimming(self):
        # Sec. IV-B: for P = M:1 >= N:1, H9 is dropped from the second
        # season because dist_min = 4.
        params = MiningParams(
            max_period=2, min_density=3, dist_interval=(4, 10), min_season=2
        )
        support = [1, 3, 4, 5, 6, 9, 10, 11, 13]
        view = compute_seasons(support, params)
        assert view.seasons == ((1, 3, 4, 5, 6), (10, 11, 13))
        assert view.n_seasons == 2

    def test_chain_breaks_on_distance_above_max(self):
        params = MiningParams(
            max_period=1, min_density=2, dist_interval=(1, 3), min_season=1
        )
        # Seasons at {1,2}, {10,11}: distance 8 > dist_max=3 breaks the
        # chain; the longest chain has one season.
        view = compute_seasons([1, 2, 10, 11], params)
        assert view.n_seasons == 1

    def test_longest_chain_wins_after_break(self):
        params = MiningParams(
            max_period=1, min_density=2, dist_interval=(1, 3), min_season=1
        )
        # {1,2} | gap 18 | {20,21}, {24,25}, {28,29}: second chain longer.
        view = compute_seasons([1, 2, 20, 21, 24, 25, 28, 29], params)
        assert view.n_seasons == 3
        assert view.seasons[0] == (20, 21)

    def test_sparse_sets_do_not_break_chains(self):
        params = MiningParams(
            max_period=1, min_density=2, dist_interval=(1, 6), min_season=1
        )
        # The singleton {5} is not a season; {1,2} and {8,9} still chain.
        view = compute_seasons([1, 2, 5, 8, 9], params)
        assert view.seasons == ((1, 2), (8, 9))

    def test_fully_trimmed_set_is_skipped(self):
        params = MiningParams(
            max_period=1, min_density=2, dist_interval=(5, 20), min_season=1
        )
        # {4,5} is closer than dist_min=5 to season {1,2} -> trimmed away.
        view = compute_seasons([1, 2, 4, 5, 10, 11], params)
        assert view.seasons == ((1, 2), (10, 11))

    def test_empty_support(self, paper_params):
        view = compute_seasons([], paper_params)
        assert view.n_seasons == 0
        assert count_seasons([], paper_params) == 0

    def test_count_matches_view(self, paper_params):
        support = [1, 2, 3, 7, 8, 11, 12, 14]
        assert count_seasons(support, paper_params) == 2


class TestChainCounter:
    """The early-exit chain counter mirrors compute_seasons exactly."""

    CASES = [
        # (support, params kwargs) exercising every chain-walk branch.
        ([1, 2, 3, 7, 8, 11, 12, 14], {"max_period": 2, "min_density": 3, "dist_interval": (0, 10), "min_season": 2}),
        ([1, 2, 5, 8, 9], {"max_period": 1, "min_density": 2, "dist_interval": (0, 10), "min_season": 1}),
        ([1, 2, 4, 5, 10, 11], {"max_period": 1, "min_density": 2, "dist_interval": (5, 20), "min_season": 1}),
        # dist_max break mid-chain, then a fresh chain.
        ([1, 2, 30, 31, 33, 60, 61], {"max_period": 2, "min_density": 2, "dist_interval": (0, 5), "min_season": 1}),
        # Trimming empties a set entirely.
        ([1, 2, 3, 4, 40, 41], {"max_period": 1, "min_density": 2, "dist_interval": (3, 50), "min_season": 1}),
        ([], {"max_period": 2, "min_density": 1, "dist_interval": (0, 5), "min_season": 1}),
        ([7], {"max_period": 2, "min_density": 1, "dist_interval": (0, 5), "min_season": 1}),
    ]

    def test_counter_equals_view(self):
        for support, kwargs in self.CASES:
            params = MiningParams(**kwargs)
            expected = compute_seasons(support, params).n_seasons
            assert count_seasons(support, params) == expected, (support, kwargs)

    def test_early_exit_stops_at_threshold(self):
        params = MiningParams(
            max_period=1, min_density=1, dist_interval=(0, 5), min_season=2
        )
        support = list(range(1, 60, 3))  # many seasons available
        assert compute_seasons(support, params).n_seasons > 2
        assert count_seasons(support, params, stop_at=2) == 2

    def test_frequency_gate_equivalence(self):
        for support, kwargs in self.CASES:
            params = MiningParams(**kwargs)
            expected = compute_seasons(support, params).n_seasons >= params.min_season
            assert is_frequent_seasonal(support, params) == expected, (support, kwargs)
