"""Unit + property tests for support-set algebra (paper Def. 3.12)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.support import intersect_many, intersect_sorted, is_sorted_strict

sorted_lists = st.sets(st.integers(0, 60), max_size=25).map(sorted)


class TestIntersectSorted:
    def test_basic(self):
        assert intersect_sorted([1, 3, 5, 7], [3, 4, 5, 8]) == [3, 5]

    def test_disjoint(self):
        assert intersect_sorted([1, 2], [3, 4]) == []

    def test_empty_operands(self):
        assert intersect_sorted([], [1]) == []
        assert intersect_sorted([1], []) == []

    def test_identical(self):
        assert intersect_sorted([1, 2, 3], [1, 2, 3]) == [1, 2, 3]

    @given(sorted_lists, sorted_lists)
    def test_matches_set_semantics(self, left, right):
        assert intersect_sorted(left, right) == sorted(set(left) & set(right))

    @given(sorted_lists, sorted_lists)
    def test_commutative(self, left, right):
        assert intersect_sorted(left, right) == intersect_sorted(right, left)


class TestIntersectMany:
    def test_no_operands(self):
        assert intersect_many([]) == []

    def test_single_operand(self):
        assert intersect_many([[1, 2]]) == [1, 2]

    @given(st.lists(sorted_lists, min_size=1, max_size=5))
    def test_matches_set_semantics(self, supports):
        expected = set(supports[0])
        for other in supports[1:]:
            expected &= set(other)
        assert intersect_many([list(s) for s in supports]) == sorted(expected)

    def test_short_circuits_on_empty(self):
        assert intersect_many([[1], [], [1]]) == []


class TestIsSortedStrict:
    def test_cases(self):
        assert is_sorted_strict([])
        assert is_sorted_strict([5])
        assert is_sorted_strict([1, 2, 9])
        assert not is_sorted_strict([1, 1])
        assert not is_sorted_strict([2, 1])
