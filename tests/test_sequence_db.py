"""Golden tests: Table II -> Table IV transformation (paper Defs. 3.9-3.11)."""

import pytest

from repro import SymbolicDatabase, build_sequence_database
from repro.events import EventInstance
from repro.exceptions import TransformError


class TestPaperTableIV:
    def test_row_count(self, paper_dseq):
        assert len(paper_dseq) == 14

    def test_h1_sequence_for_series_c(self, paper_dseq):
        # H1: (C:1,[G1,G2]), (C:0,[G3,G3]) per Table IV.
        row = paper_dseq.sequence_at(1)
        assert row.instances_of("C:1") == [EventInstance("C:1", 1, 2)]
        assert row.instances_of("C:0") == [EventInstance("C:0", 3, 3)]

    def test_h2_sequence_for_series_c(self, paper_dseq):
        row = paper_dseq.sequence_at(2)
        assert row.instances_of("C:1") == [EventInstance("C:1", 4, 4)]
        assert row.instances_of("C:0") == [EventInstance("C:0", 5, 6)]

    def test_h7_run_is_cut_at_granule_boundary(self, paper_dseq):
        # C is ON during G19..G24; Table IV shows (C:1,[G19,G21]) in H7 and
        # (C:1,[G22,G24]) in H8.
        assert paper_dseq.sequence_at(7).instances_of("C:1") == [
            EventInstance("C:1", 19, 21)
        ]
        assert paper_dseq.sequence_at(8).instances_of("C:1") == [
            EventInstance("C:1", 22, 24)
        ]

    def test_h5_all_series(self, paper_dseq):
        # H5: C:0, D:0, F:1, M:1, N:1 all spanning G13..G15.
        row = paper_dseq.sequence_at(5)
        expected = {
            "C:0": (13, 15), "D:0": (13, 15), "F:1": (13, 15),
            "M:1": (13, 15), "N:1": (13, 15),
        }
        for event, (start, end) in expected.items():
            assert row.instances_of(event) == [EventInstance(event, start, end)]
        assert len(row) == 5

    def test_event_support_of_m1(self, paper_dseq):
        # Sec. IV-B: SUP(M:1) = {H1..H6, H8..H11, H13}.
        assert paper_dseq.event_support()["M:1"] == [1, 2, 3, 4, 5, 6, 8, 9, 10, 11, 13]

    def test_event_support_of_n0_and_m0(self, paper_dseq):
        support = paper_dseq.event_support()
        assert support["N:0"] == [1, 4, 7, 8, 14]
        assert support["M:0"] == [2, 4, 7, 12, 14]

    def test_total_events(self, paper_dseq):
        # Five binary series -> 10 distinct events.
        assert len(paper_dseq.events()) == 10

    def test_describe_row(self, paper_dseq):
        text = paper_dseq.describe_row(1)
        assert "(C:1,[G1,G2])" in text
        assert "(M:1,[G1,G3])" in text


class TestBuildValidation:
    def test_trailing_partial_block_dropped(self):
        dsyb = SymbolicDatabase.from_rows({"C": "1101"})
        dseq = build_sequence_database(dsyb, ratio=3)
        assert len(dseq) == 1

    def test_instances_within_granule_sorted(self):
        dsyb = SymbolicDatabase.from_rows({"A": "01", "B": "11"})
        dseq = build_sequence_database(dsyb, ratio=2)
        row = dseq.sequence_at(1)
        # B:1 spans [1,2] and sorts before A:0 at [1,1].
        assert row.instances[0] == EventInstance("B:1", 1, 2)

    def test_ratio_validation(self):
        dsyb = SymbolicDatabase.from_rows({"C": "10"})
        with pytest.raises(TransformError):
            build_sequence_database(dsyb, ratio=0)
        with pytest.raises(TransformError):
            build_sequence_database(dsyb, ratio=3)

    def test_empty_dsyb_rejected(self):
        with pytest.raises(TransformError):
            build_sequence_database(SymbolicDatabase(), ratio=1)

    def test_sequence_at_bounds(self, paper_dseq):
        with pytest.raises(TransformError):
            paper_dseq.sequence_at(0)
        with pytest.raises(TransformError):
            paper_dseq.sequence_at(15)

    def test_total_instances(self):
        dsyb = SymbolicDatabase.from_rows({"C": "1100"})
        dseq = build_sequence_database(dsyb, ratio=2)
        assert dseq.total_instances() == 2

    def test_source_names_kept(self, paper_dseq):
        assert paper_dseq.source_names == ["C", "D", "F", "M", "N"]
