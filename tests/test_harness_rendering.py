"""Edge-case tests for table/figure rendering and dataset container."""

import pytest

from repro.datasets.dataset import symbolize
from repro.exceptions import DatasetError
from repro.harness.figures import Figure
from repro.harness.tables import Table


class TestTableEdges:
    def test_empty_table_renders_headers(self):
        table = Table("Empty", ["a", "b"])
        text = table.render()
        assert "Empty" in text and "a" in text

    def test_short_rows_padded(self):
        table = Table("T", ["a", "b", "c"])
        table.rows.append(["1"])  # deliberately short
        assert table.render().count("|") >= 4

    def test_float_formatting(self):
        table = Table("T", ["x"])
        table.add_row(1.23456)
        assert "1.23" in table.render()


class TestFigureEdges:
    def test_all_zero_values_skip_bars(self):
        figure = Figure("F", x_label="x", x_values=[1], y_label="y")
        figure.add_series("A", [0.0])
        text = figure.render()
        assert "#" not in text

    def test_notes_rendered(self):
        figure = Figure("F", x_label="x", x_values=[1], notes="hello note")
        figure.add_series("A", [1.0])
        assert "hello note" in figure.render()

    def test_bar_lengths_proportional(self):
        figure = Figure("F", x_label="x", x_values=[1])
        figure.add_series("slow", [4.0])
        figure.add_series("fast", [1.0])
        lines = figure.render().splitlines()
        slow_bar = next(line for line in lines if line.strip().startswith("slow"))
        fast_bar = next(line for line in lines if line.strip().startswith("fast"))
        assert slow_bar.count("#") > fast_bar.count("#")


class TestDatasetContainer:
    def test_symbolize_rejects_empty(self):
        with pytest.raises(DatasetError):
            symbolize("X", {}, {}, 1, (0, 1), "none")

    def test_dseq_is_cached(self, tiny_re):
        assert tiny_re.dseq() is tiny_re.dseq()

    def test_n_events_counts_occurring_events(self, tiny_re):
        assert tiny_re.n_events == len(tiny_re.dseq().events())

    def test_sequence_units(self, tiny_re, tiny_inf):
        assert tiny_re.sequence_unit == "day"
        assert tiny_inf.sequence_unit == "week"
