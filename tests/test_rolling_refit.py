"""Rolling-symbolizer refit: incremental, O(block), bit-identical.

The naive rolling refit re-sorted the full raw history on every push
(quadratic over a stream's life).  The incremental refit sorted-inserts
only the pushed block into a maintained sorted twin and interpolates the
breakpoints from it, so each push costs O(block x log history) while the
breakpoints stay bit-identical to a full re-fit over the whole history.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import set_compute_backend
from repro.streaming import StreamingSymbolizer
from repro.streaming.ingest import quantile_thresholds
from repro.symbolic.alphabet import Alphabet
from repro.symbolic.series import TimeSeries


@pytest.fixture
def alphabet():
    return Alphabet.levels(["L", "M", "H"])


def _push_blocks(symbolizer, blocks):
    out = []
    for block in blocks:
        out.append(symbolizer.push({"S": block})["S"])
    return out


class TestBitIdenticalBreakpoints:
    def test_matches_full_refit_after_every_push(self, alphabet):
        rng = random.Random(7)
        symbolizer = StreamingSymbolizer({"S": alphabet}, mode="rolling")
        history: list[float] = []
        for _ in range(40):
            block = [rng.uniform(-5.0, 5.0) for _ in range(rng.randint(1, 9))]
            symbolizer.push({"S": block})
            history.extend(block)
            refit = quantile_thresholds(history, alphabet)
            # _rolling_refit with an empty block re-interpolates from the
            # sorted twin without inserting anything.
            live = symbolizer._rolling_refit("S", alphabet, [])
            assert live.breakpoints == refit.breakpoints

    def test_symbols_match_fresh_symbolizer_per_push(self, alphabet):
        # Each push must encode with breakpoints fitted on ALL values seen
        # so far -- the same symbols a fresh rolling symbolizer replaying
        # the stream block by block would emit.
        rng = random.Random(13)
        blocks = [
            [rng.gauss(0.0, 2.0) for _ in range(rng.randint(1, 6))]
            for _ in range(25)
        ]
        incremental = _push_blocks(
            StreamingSymbolizer({"S": alphabet}, mode="rolling"), blocks
        )
        replayed = _push_blocks(
            StreamingSymbolizer({"S": alphabet}, mode="rolling"), blocks
        )
        assert incremental == replayed

    def test_parity_across_compute_backends(self, alphabet):
        rng = random.Random(99)
        blocks = [
            [rng.uniform(-1.0, 1.0) for _ in range(rng.randint(1, 5))]
            for _ in range(20)
        ]
        streams = []
        for backend in (None, "python"):
            set_compute_backend(backend)
            try:
                streams.append(
                    _push_blocks(
                        StreamingSymbolizer({"S": alphabet}, mode="rolling"), blocks
                    )
                )
            finally:
                set_compute_backend(None)
        assert streams[0] == streams[1]


class TestRefitCost:
    def test_cost_is_block_sized_not_history_sized(self, alphabet):
        # The regression this file pins: the refit's work units scale
        # with the pushed block (plus O(alphabet) interpolation), never
        # with the accumulated history.
        rng = random.Random(5)
        symbolizer = StreamingSymbolizer({"S": alphabet}, mode="rolling")
        symbolizer.push({"S": [rng.random() for _ in range(500)]})
        for block_size in (1, 3, 7):
            symbolizer.push({"S": [rng.random() for _ in range(block_size)]})
            assert symbolizer.last_refit_cost == block_size + (len(alphabet) - 1)
        assert len(symbolizer.history["S"]) == 511  # history kept growing

    def test_frozen_mode_never_refits(self, alphabet):
        symbolizer = StreamingSymbolizer({"S": alphabet}, mode="frozen")
        symbolizer.push({"S": [0.1, 0.5, 0.9, 0.3, 0.7]})
        symbolizer.push({"S": [0.2, 0.8]})
        assert symbolizer.last_refit_cost == 0


class TestCheckpointHeal:
    def test_restored_history_rebuilds_sorted_twin(self, alphabet):
        rng = random.Random(21)
        symbolizer = StreamingSymbolizer({"S": alphabet}, mode="rolling")
        symbolizer.push({"S": [rng.random() for _ in range(50)]})
        # Simulate a checkpoint restore: the history is swapped wholesale
        # and the sorted twin silently disagrees with it.
        restored = [rng.uniform(10.0, 20.0) for _ in range(30)]
        symbolizer.history["S"] = list(restored)
        block = [12.5, 17.0]
        symbols = symbolizer.push({"S": block})["S"]
        restored.extend(block)
        # The refit must have healed: breakpoints now reflect the restored
        # history plus the new block, exactly as a full refit computes.
        expected = quantile_thresholds(restored, alphabet)
        assert symbolizer._rolling_refit("S", alphabet, []).breakpoints == (
            expected.breakpoints
        )
        assert symbols == expected.encode(TimeSeries("S", tuple(block))).symbols
