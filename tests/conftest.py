"""Shared fixtures: the paper's running example and tiny datasets.

The running example is Tables II/IV of the paper: five binary device
series (C: Cooker, D: Dish washer, F: Food processor, M: Microwave,
N: Nespresso) over 42 five-minute granules, mapped 3-to-1 into fourteen
15-minute sequences.  The paper states several exact facts about it
(candidate events, season counts, near support sets) that the golden
tests assert.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro import MiningParams, SymbolicDatabase, build_sequence_database
from repro.datasets import load_dataset

def pytest_sessionstart(session):
    """Honor REPRO_TEST_START_METHOD (CI's chaos job sets ``spawn``).

    Process-pool tests default to the platform start method (fork on
    Linux); forcing ``spawn`` here runs the whole suite under the
    portable worker-boot semantics without per-test plumbing.
    """
    method = os.environ.get("REPRO_TEST_START_METHOD")
    if method:
        multiprocessing.set_start_method(method, force=True)


#: Table II, transcribed row by row (42 symbols each).
PAPER_ROWS = {
    "C": "110100110000000000111111000000100110000110",
    "D": "100100110110000000111111000000100100110110",
    "F": "001011001001111000000000111111001001001001",
    "M": "111100111110111111000111111111111000111000",
    "N": "110111111110111111000000111111111111111000",
}


@pytest.fixture(scope="session")
def paper_dsyb() -> SymbolicDatabase:
    """The symbolic database of Table II."""
    return SymbolicDatabase.from_rows(PAPER_ROWS)


@pytest.fixture(scope="session")
def paper_dseq(paper_dsyb):
    """The temporal sequence database of Table IV (ratio 3)."""
    return build_sequence_database(paper_dsyb, ratio=3)


@pytest.fixture(scope="session")
def paper_params() -> MiningParams:
    """The running example's thresholds (Secs. III-E / IV-B/IV-C)."""
    return MiningParams(
        max_period=2,
        min_density=3,
        dist_interval=(4, 10),
        min_season=2,
    )


@pytest.fixture(scope="session")
def tiny_re():
    """A tiny RE dataset for integration tests."""
    return load_dataset("RE", "tiny")


@pytest.fixture(scope="session")
def tiny_inf():
    """A tiny INF dataset for integration tests."""
    return load_dataset("INF", "tiny")
