"""Unit tests for Theorem 1 / Corollary 1.1 (paper Sec. V-B)."""

import pytest

from repro import MiningParams, SymbolicDatabase, build_sequence_database
from repro.core.bounds import max_season_lower_bound, mu_threshold, series_pair_mu
from repro.core.mi import normalized_mutual_information
from repro.core.seasonality import max_season
from repro.exceptions import MiningError
from repro.symbolic import Alphabet, SymbolicSeries


class TestMuThreshold:
    def test_within_unit_interval(self):
        for lambda1 in (0.1, 0.3, 0.5):
            for lambda2 in (0.2, 0.5, 0.9):
                mu = mu_threshold(lambda1, lambda2, 4, 8, 1460)
                assert 0.0 <= mu <= 1.0

    def test_monotone_in_min_season(self):
        # Stricter seasonality demands more correlation (higher mu) --
        # within the same Corollary case.
        lo = mu_threshold(0.33, 0.33, 2, 2, 400)
        hi = mu_threshold(0.33, 0.33, 20, 2, 400)
        assert hi >= lo

    def test_case2_engaged_for_large_rho(self):
        # rho = minSeason*minDensity/(lambda2*n) > 1/e.
        mu = mu_threshold(0.33, 0.33, 50, 4, 400)
        assert 0.0 <= mu <= 1.0

    def test_rho_above_one_requires_full_correlation(self):
        mu = mu_threshold(0.33, 0.33, 400, 4, 400)
        assert mu == 1.0

    def test_constant_series_needs_no_correlation(self):
        assert mu_threshold(1.0, 0.5, 4, 8, 1460) == 0.0

    def test_validation(self):
        with pytest.raises(MiningError):
            mu_threshold(0.0, 0.5, 4, 8, 100)
        with pytest.raises(MiningError):
            mu_threshold(0.5, 1.5, 4, 8, 100)
        with pytest.raises(MiningError):
            mu_threshold(0.5, 0.5, 0, 8, 100)


class TestLowerBound:
    def test_zero_when_branch_argument_below_minus_one_over_e(self):
        # Tiny lambda2 pushes the Lambert argument below -1/e: no constraint.
        assert max_season_lower_bound(0.01, 0.01, 0.0, 1000, 5) == 0.0

    def test_monotone_in_mu(self):
        # Stronger correlation guarantees at least as many seasons.
        lo = max_season_lower_bound(0.3, 0.5, 0.5, 1000, 5)
        hi = max_season_lower_bound(0.3, 0.5, 0.9, 1000, 5)
        assert hi >= lo

    def test_validation(self):
        with pytest.raises(MiningError):
            max_season_lower_bound(0.5, 0.5, 1.5, 100, 5)
        with pytest.raises(MiningError):
            max_season_lower_bound(0.0, 0.5, 0.5, 100, 5)

    def test_consistency_with_corollary(self):
        # If NMI >= mu_threshold(minSeason), the bound must reach minSeason.
        lambda1, lambda2 = 0.33, 0.4
        min_season, min_density, n = 4, 2, 400
        mu = mu_threshold(lambda1, lambda2, min_season, min_density, n)
        if mu < 1.0:
            bound = max_season_lower_bound(lambda1, lambda2, mu, n, min_density)
            assert bound >= min_season - 1e-6


class TestTheoremEmpirically:
    def test_bound_holds_on_correlated_pair(self):
        # Build two strongly dependent binary series and verify that the
        # observed maxSeason of every event pair respects Eq. (6).
        import random

        rng = random.Random(5)
        x_symbols = [rng.choice("01") for _ in range(600)]
        y_symbols = [
            s if rng.random() < 0.95 else ("1" if s == "0" else "0")
            for s in x_symbols
        ]
        dsyb = SymbolicDatabase.from_symbolic(
            [
                SymbolicSeries("X", tuple(x_symbols), Alphabet.binary()),
                SymbolicSeries("Y", tuple(y_symbols), Alphabet.binary()),
            ]
        )
        dseq = build_sequence_database(dsyb, ratio=2)
        min_density = 2
        nmi = normalized_mutual_information(dsyb["X"], dsyb["Y"])
        support = dseq.event_support()
        probabilities_x = dsyb["X"].probabilities()
        probabilities_y = dsyb["Y"].probabilities()
        lambda1 = min(p for p in probabilities_x.values() if p > 0)
        for y_symbol, lambda2 in probabilities_y.items():
            if lambda2 == 0:
                continue
            bound = max_season_lower_bound(lambda1, lambda2, nmi, len(dseq), min_density)
            for x_symbol in ("0", "1"):
                pair_support = [
                    g
                    for g in support[f"X:{x_symbol}"]
                    if g in set(support[f"Y:{y_symbol}"])
                ]
                observed = max_season(len(pair_support), min_density)
                # Theorem 1 lower-bounds the *specific* pair (X1, Y1) used
                # in its derivation; we check the max over x, which the
                # bound must not exceed either.
            best = max(
                max_season(
                    len(
                        [
                            g
                            for g in support[f"X:{x}"]
                            if g in set(support[f"Y:{y_symbol}"])
                        ]
                    ),
                    min_density,
                )
                for x in ("0", "1")
            )
            assert best >= bound - 1e-6


class TestSeriesPairMu:
    def test_uses_minimum_over_event_pairs(self):
        x = SymbolicSeries("X", tuple("00110101" * 10), Alphabet.binary())
        y = SymbolicSeries("Y", tuple("01010011" * 10), Alphabet.binary())
        params = MiningParams(2, 2, (0, 10), 2)
        mu = series_pair_mu(x, y, params, n_granules=40)
        candidates = [
            mu_threshold(0.5, lambda2, 2, 2, 40)
            for lambda2 in y.probabilities().values()
        ]
        assert mu == pytest.approx(min(candidates))
