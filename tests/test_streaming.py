"""Unit tests for the streaming subsystem: ingest, service, checkpoints."""

import json

import numpy as np
import pytest

from repro import (
    IncrementalSTPM,
    MiningParams,
    StreamingDatabase,
    StreamingMiningService,
    StreamingSymbolizer,
    build_sequence_database,
    replay_dataset,
)
from repro.core.results import results_equivalent
from repro.exceptions import MiningError, ReproError, SymbolizationError, TransformError
from repro.io import load_stream_checkpoint, save_stream_checkpoint
from repro.streaming.state import bit_positions, mask_upto
from repro.symbolic import Alphabet, QuantileMapper, TimeSeries

PARAMS = MiningParams(
    max_period=3, min_density=2, dist_interval=(0, 12), min_season=2
)


def _alphabets():
    return {"T": Alphabet.levels(("L", "M", "H")), "W": Alphabet.binary()}


def _service(rng=None, mode="frozen", **kwargs):
    alphabets = _alphabets()
    symbolizer = StreamingSymbolizer(alphabets, mode=mode)
    database = StreamingDatabase(2, alphabets)
    return StreamingMiningService(database, PARAMS, symbolizer=symbolizer, **kwargs)


class TestBitHelpers:
    def test_mask_and_positions(self):
        bits = (1 << 3) | (1 << 7) | (1 << 12)
        assert bit_positions(bits) == [3, 7, 12]
        assert bit_positions(bits & ~mask_upto(7)) == [12]
        assert bit_positions(0) == []


class TestStreamingDatabase:
    def test_matches_batch_sequence_mapping(self, paper_dsyb):
        streamed = StreamingDatabase.from_symbolic(paper_dsyb, ratio=3)
        batch = build_sequence_database(paper_dsyb, ratio=3)
        assert len(streamed.dseq) == len(batch)
        for mine, theirs in zip(streamed.dseq.rows, batch.rows):
            assert mine.position == theirs.position
            assert mine.instances == theirs.instances

    def test_granules_form_at_slowest_series(self):
        database = StreamingDatabase(2, _alphabets())
        assert database.append_symbols({"T": "LLMM", "W": "1"}) == []
        assert database.pending_instants() == 1
        rows = database.append_symbols({"W": "01"})
        assert [row.position for row in rows] == [1]
        assert database.pending_instants() == 1

    def test_partial_blocks_stay_buffered(self):
        database = StreamingDatabase(3, {"T": Alphabet.binary()})
        database.append_symbols({"T": "10110"})
        assert len(database.dseq) == 1
        assert database.pending_instants() == 2

    def test_unknown_series_rejected(self):
        database = StreamingDatabase(2, _alphabets())
        with pytest.raises(SymbolizationError):
            database.append_symbols({"X": "11"})

    def test_symbol_outside_alphabet_rejected(self):
        database = StreamingDatabase(2, _alphabets())
        with pytest.raises(SymbolizationError):
            database.append_symbols({"W": "2"})

    def test_bad_ratio_rejected(self):
        with pytest.raises(SymbolizationError):
            StreamingDatabase(0)

    def test_lazy_seed_with_alphabets_validates(self):
        # Regression: a stream seeded by its first push used to register
        # the series set but no alphabets, silently skipping symbol
        # validation forever.
        database = StreamingDatabase(2)
        database.append_symbols({"W": "01"}, alphabets={"W": Alphabet.binary()})
        with pytest.raises(SymbolizationError):
            database.append_symbols({"W": "2"})

    def test_lazy_seed_rejects_bad_symbols_immediately(self):
        database = StreamingDatabase(2)
        with pytest.raises(SymbolizationError):
            database.append_symbols({"W": "02"}, alphabets={"W": Alphabet.binary()})

    def test_register_alphabets_validates_buffered_history(self):
        database = StreamingDatabase(2)
        database.append_symbols({"W": "012"})  # lazily seeded, unvalidated
        with pytest.raises(SymbolizationError):
            database.register_alphabets({"W": Alphabet.binary()})

    def test_register_alphabets_rejects_conflicts_and_unknowns(self):
        database = StreamingDatabase(2, {"W": Alphabet.binary()})
        with pytest.raises(SymbolizationError):
            database.register_alphabets({"W": Alphabet.levels(("L", "H"))})
        with pytest.raises(SymbolizationError):
            database.register_alphabets({"X": Alphabet.binary()})
        # The inheritance path skips irrelevant series instead of raising.
        database.register_alphabets({"X": Alphabet.binary()}, ignore_unknown=True)
        assert "X" not in database.alphabets

    def test_service_inherits_symbolizer_alphabets(self):
        # A database constructed without alphabets (lazy seeding) inherits
        # them from the service's symbolizer, so pushed symbols validate.
        database = StreamingDatabase(2)
        service = StreamingMiningService(
            database, PARAMS, symbolizer=StreamingSymbolizer(_alphabets())
        )
        assert set(database.alphabets) == {"T", "W"}
        assert database.names == []  # the first push still fixes the set
        with pytest.raises(SymbolizationError):
            service.push_symbols({"W": "2"})

    def test_service_subset_stream_still_forms_granules(self):
        # Inheriting alphabets must not widen the series set: a stream
        # carrying only one of the symbolizer's series keeps forming
        # granules instead of waiting forever on the absent one.
        database = StreamingDatabase(2)
        service = StreamingMiningService(
            database, PARAMS, symbolizer=StreamingSymbolizer(_alphabets())
        )
        service.push_symbols({"T": "LMLM"})
        assert database.names == ["T"]
        assert len(database.dseq) == 2
        # The fixed series set also prunes unusable alphabets, so a
        # checkpoint restore re-seeds exactly this stream.
        assert set(database.alphabets) == {"T"}
        with pytest.raises(SymbolizationError):
            service.push_symbols({"T": "X"})

    def test_partial_alphabets_do_not_narrow_the_seeded_series(self):
        database = StreamingDatabase(2)
        database.append_symbols(
            {"T": "LL", "W": "01"}, alphabets={"W": Alphabet.binary()}
        )
        assert database.names == ["T", "W"]
        with pytest.raises(SymbolizationError):
            database.append_symbols({"W": "2"})  # registered: validated
        database.append_symbols({"T": "XY"})  # unregistered: unvalidated

    def test_append_row_position_validated(self, paper_dseq):
        with pytest.raises(TransformError):
            paper_dseq.append_row(paper_dseq.rows[0])

    def test_prefix_view(self, paper_dseq):
        prefix = paper_dseq.prefix(5)
        assert len(prefix) == 5
        assert prefix.rows[0] is paper_dseq.rows[0]
        with pytest.raises(TransformError):
            paper_dseq.prefix(len(paper_dseq) + 1)


class TestStreamingSymbolizer:
    def test_frozen_matches_quantile_mapper_on_window(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=60)
        alphabet = Alphabet.levels(("L", "M", "H"))
        symbolizer = StreamingSymbolizer.fit({"T": values}, {"T": alphabet})
        streamed = symbolizer.push({"T": values})["T"]
        batch = QuantileMapper(alphabet).encode(
            TimeSeries.from_array("T", values)
        )
        assert streamed == batch.symbols

    def test_frozen_breakpoints_do_not_drift(self):
        alphabet = Alphabet.binary()
        symbolizer = StreamingSymbolizer.fit({"T": [0.0, 1.0]}, {"T": alphabet})
        first = symbolizer.push({"T": [0.2, 0.8]})["T"]
        # Pushing extreme values must not re-fit the breakpoints.
        symbolizer.push({"T": [100.0] * 10})
        again = symbolizer.push({"T": [0.2, 0.8]})["T"]
        assert first == again

    def test_rolling_refits_on_history(self):
        alphabet = Alphabet.binary()
        symbolizer = StreamingSymbolizer({"T": alphabet}, mode="rolling")
        assert symbolizer.push({"T": [0.0, 1.0]})["T"] == ("0", "1")
        # After a much larger regime, old "high" values encode low.
        symbolizer.push({"T": [10.0] * 20})
        assert symbolizer.push({"T": [1.0]})["T"] == ("0",)

    def test_unknown_mode_and_series_rejected(self):
        with pytest.raises(SymbolizationError):
            StreamingSymbolizer({"T": Alphabet.binary()}, mode="sliding")
        symbolizer = StreamingSymbolizer({"T": Alphabet.binary()})
        with pytest.raises(SymbolizationError):
            symbolizer.push({"X": [1.0]})

    def test_frozen_constant_first_push_rejected(self):
        # Regression: a constant (or single-value) fitting window froze
        # all-equal breakpoints, silently binning every future value into
        # one symbol for the stream's whole lifetime.
        symbolizer = StreamingSymbolizer({"T": Alphabet.levels(("L", "M", "H"))})
        with pytest.raises(SymbolizationError, match="degenerate fitting window"):
            symbolizer.push({"T": [5.0] * 8})
        with pytest.raises(SymbolizationError, match="degenerate fitting window"):
            symbolizer.push({"T": [2.0]})
        # The rejected window left no trace: a proper window still fits.
        assert symbolizer.history["T"] == []
        assert symbolizer.push({"T": [0.0, 1.0, 2.0]})["T"] == ("L", "M", "H")

    def test_rejected_multi_series_push_is_atomic(self):
        # A degenerate window in ONE series must not commit the others:
        # the caller re-pushes the whole corrected batch, which would
        # otherwise duplicate the committed series' instants.
        symbolizer = StreamingSymbolizer(_alphabets())
        with pytest.raises(SymbolizationError, match="degenerate fitting window"):
            symbolizer.push({"T": [0.0, 1.0, 2.0], "W": [5.0, 5.0]})
        assert symbolizer.history["T"] == []
        assert "T" not in symbolizer.mappers
        out = symbolizer.push({"T": [0.0, 1.0, 2.0], "W": [0.0, 1.0]})
        assert out["T"] == ("L", "M", "H")
        assert symbolizer.history["T"] == [0.0, 1.0, 2.0]

    def test_frozen_fit_on_constant_window_rejected(self):
        with pytest.raises(SymbolizationError, match="degenerate fitting window"):
            StreamingSymbolizer.fit(
                {"T": [3.0, 3.0, 3.0, 3.0]}, {"T": Alphabet.binary()}
            )

    def test_rolling_constant_first_push_tolerated(self):
        # Rolling mode refits on every push, so an early constant window
        # heals itself once varied values arrive.
        symbolizer = StreamingSymbolizer({"T": Alphabet.binary()}, mode="rolling")
        symbolizer.push({"T": [5.0, 5.0]})
        assert symbolizer.push({"T": [0.0, 10.0]})["T"] == ("0", "1")

    def test_single_symbol_alphabet_is_not_degenerate(self):
        # One symbol means zero breakpoints: a constant window is the
        # expected shape, not a degenerate fit.
        symbolizer = StreamingSymbolizer({"T": Alphabet(("x",))})
        assert symbolizer.push({"T": [1.0, 1.0]})["T"] == ("x", "x")


class TestIncrementalSTPM:
    def test_advance_without_new_rows_is_a_noop(self, paper_dseq, paper_params):
        miner = IncrementalSTPM.empty(3, paper_params)
        delta = miner.advance()
        assert delta.new_granules == 0 and not delta.has_changes

    def test_deltas_report_promotions(self, paper_dseq, paper_params):
        miner = IncrementalSTPM.empty(3, paper_params)
        promoted: set = set()
        for row in paper_dseq.rows:
            delta = miner.advance([row])
            assert delta.n_granules == row.position
            for sp in delta.promoted:
                assert sp.pattern not in promoted
                promoted.add(sp.pattern)
            assert not delta.demoted
        assert promoted == miner.result().pattern_keys()

    def test_updated_views_change(self, paper_dseq, paper_params):
        miner = IncrementalSTPM.empty(3, paper_params)
        seen: dict = {}
        for row in paper_dseq.rows:
            delta = miner.advance([row])
            for sp in delta.updated:
                assert sp.pattern in seen
                assert seen[sp.pattern] != sp.seasons
            for sp in delta.promoted + delta.updated:
                seen[sp.pattern] = sp.seasons

    def test_border_patterns_one_season_short(self, paper_dseq, paper_params):
        miner = IncrementalSTPM.empty(3, paper_params)
        miner.advance(paper_dseq.rows)
        border = miner.border_patterns()
        threshold = paper_params.min_season - 1
        assert border, "the paper example has near-frequent candidates"
        assert all(sp.n_seasons == threshold for sp in border)
        frequent = miner.result().pattern_keys()
        assert not frequent & {sp.pattern for sp in border}

    def test_reanchor_every_advance(self, paper_dseq, paper_params):
        miner = IncrementalSTPM.empty(3, paper_params, reanchor_every=1)
        for row in paper_dseq.rows:
            miner.advance([row])  # raises MiningError on any divergence

    def test_describe_mentions_counts(self, paper_dseq, paper_params):
        miner = IncrementalSTPM.empty(3, paper_params)
        delta = miner.advance(paper_dseq.rows)
        assert "promoted" in delta.describe()
        assert f"granule {len(paper_dseq)}" in delta.describe()


class TestStreamingMiningService:
    def test_push_requires_symbolizer(self):
        database = StreamingDatabase(2, _alphabets())
        service = StreamingMiningService(database, PARAMS)
        with pytest.raises(MiningError):
            service.push({"T": [1.0], "W": [0.0]})

    def test_push_symbols_and_result(self):
        database = StreamingDatabase(2, _alphabets())
        service = StreamingMiningService(database, PARAMS)
        service.push_symbols({"T": "LMHLMHLMHLMH", "W": "101010101010"})
        assert service.n_granules == 6
        service.verify_parity()

    def test_push_points_end_to_end(self):
        rng = np.random.default_rng(11)
        service = _service()
        service.push({"T": rng.normal(size=30), "W": rng.normal(size=30)})
        for _ in range(6):
            service.push({"T": rng.normal(size=4), "W": rng.normal(size=4)})
        assert service.n_granules == 27
        service.verify_parity()

    def test_replay_dataset_batches(self, tiny_inf):
        params = tiny_inf.params(min_season=2, min_density_pct=0.5)
        deltas = []
        service = None
        for service, delta in replay_dataset(
            tiny_inf, params, batch_granules=26, initial_granules=26
        ):
            deltas.append(delta)
        assert service.n_granules == tiny_inf.n_sequences
        assert sum(d.new_granules for d in deltas) == tiny_inf.n_sequences
        batch = service.verify_parity()
        assert results_equivalent(service.result(), batch)

    def test_replay_validates_batch_size(self, tiny_inf):
        with pytest.raises(MiningError):
            next(iter(replay_dataset(tiny_inf, PARAMS, batch_granules=0)))
        with pytest.raises(MiningError):
            next(
                iter(
                    replay_dataset(
                        tiny_inf, PARAMS, batch_granules=4, initial_granules=-5
                    )
                )
            )


class TestStreamCheckpoint:
    def _seeded_service(self):
        rng = np.random.default_rng(5)
        service = _service()
        service.push({"T": rng.normal(size=40), "W": rng.normal(size=40)})
        for _ in range(4):
            service.push({"T": rng.normal(size=5), "W": rng.normal(size=5)})
        return service

    def test_roundtrip(self, tmp_path):
        service = self._seeded_service()
        path = tmp_path / "stream.json"
        service.save_checkpoint(path)
        restored = StreamingMiningService.restore(path)
        assert restored.n_granules == service.n_granules
        assert results_equivalent(restored.result(), service.result())
        # The restored stream keeps accepting identical input identically.
        points = {"T": [0.5] * 6, "W": [0.1] * 6}
        service.push(points)
        restored.push(points)
        assert results_equivalent(restored.result(), service.result())
        restored.verify_parity()

    def test_roundtrip_via_text(self):
        service = self._seeded_service()
        text = save_stream_checkpoint(service)
        restored = load_stream_checkpoint(text)
        assert results_equivalent(restored.result(), service.result())

    def test_unknown_version_rejected(self):
        with pytest.raises(ReproError) as excinfo:
            load_stream_checkpoint(json.dumps({"format_version": 99}))
        assert "99" in str(excinfo.value)

    def test_unserializable_mapper_rejected(self):
        # A frozen QuantileMapper would silently re-fit after restore,
        # so saving must refuse it instead of dropping the breakpoints.
        alphabet = Alphabet.binary()
        symbolizer = StreamingSymbolizer(
            {"T": alphabet}, mappers={"T": QuantileMapper(alphabet)}
        )
        database = StreamingDatabase(2, {"T": alphabet})
        service = StreamingMiningService(database, PARAMS, symbolizer=symbolizer)
        with pytest.raises(ReproError) as excinfo:
            save_stream_checkpoint(service)
        assert "QuantileMapper" in str(excinfo.value)

    def test_invalid_payloads_rejected(self):
        with pytest.raises(ReproError):
            load_stream_checkpoint("{not json")
        with pytest.raises(ReproError):
            load_stream_checkpoint(json.dumps([1, 2]))
        with pytest.raises(ReproError):
            load_stream_checkpoint(json.dumps({"format_version": 1}))
