"""Property-based streaming parity: random streams, every prefix.

On arbitrary small symbolic databases, feeding the granule stream one
granule at a time through :class:`IncrementalSTPM` must match batch
E-STPM after *every* prefix -- the property version of the seed-dataset
parity tests, exploring shapes (alphabets, ratios, thresholds) the seed
profiles do not.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ESTPM,
    IncrementalSTPM,
    MiningParams,
    SymbolicDatabase,
    build_sequence_database,
)
from repro.core.results import results_equivalent


@st.composite
def streaming_inputs(draw):
    n_series = draw(st.integers(1, 3))
    length = draw(st.integers(8, 28))
    alphabet = draw(st.sampled_from(["01", "abc"]))
    rows = {
        f"S{i}": "".join(
            draw(
                st.lists(
                    st.sampled_from(alphabet), min_size=length, max_size=length
                )
            )
        )
        for i in range(n_series)
    }
    ratio = draw(st.sampled_from([2, 3]))
    params = MiningParams(
        max_period=draw(st.integers(1, 3)),
        min_density=draw(st.integers(1, 2)),
        dist_interval=(draw(st.integers(0, 1)), draw(st.integers(4, 10))),
        min_season=draw(st.integers(1, 2)),
        max_pattern_length=draw(st.integers(1, 3)),
    )
    backend = draw(st.sampled_from(["bitset", "list"]))
    return rows, ratio, params, backend


@settings(max_examples=30, deadline=None)
@given(streaming_inputs())
def test_streaming_equals_batch_at_every_prefix(case):
    rows, ratio, params, backend = case
    from repro.symbolic import Alphabet

    observed = sorted({symbol for row in rows.values() for symbol in row})
    dsyb = SymbolicDatabase.from_rows(rows, Alphabet(tuple(observed)))
    dseq = build_sequence_database(dsyb, ratio)
    miner = IncrementalSTPM.empty(ratio, params, support_backend=backend)
    for position, row in enumerate(dseq.rows, start=1):
        miner.advance([row])
        batch = ESTPM(dseq.prefix(position), params, support_backend=backend).mine()
        assert results_equivalent(miner.result(), batch), (
            f"prefix {position} diverged (backend={backend}, ratio={ratio})"
        )
