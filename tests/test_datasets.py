"""Unit tests for the dataset simulators (paper Table V shapes)."""

import numpy as np
import pytest

from repro.datasets import (
    build_hfm,
    build_inf,
    build_re,
    build_sc,
    load_dataset,
    scale_sequences,
    scale_series,
)
from repro.datasets.registry import PROFILES
from repro.datasets.synthetic import (
    lagged_response,
    mix,
    noisy,
    seasonal_pulses,
    yearly_sinusoid,
)
from repro.exceptions import DatasetError


class TestTable5Shapes:
    @pytest.mark.parametrize(
        "builder,n_sequences,n_series",
        [(build_re, 1460, 21), (build_sc, 1249, 14), (build_inf, 608, 25), (build_hfm, 730, 24)],
    )
    def test_full_profile_shape(self, builder, n_sequences, n_series):
        dataset = builder()
        assert dataset.n_sequences == n_sequences
        assert dataset.n_series == n_series

    def test_summary_reports_events_and_instances(self):
        dataset = build_inf(n_sequences=60, n_series=6)
        summary = dataset.summary()
        assert summary["n_sequences"] == 60
        assert summary["n_time_series"] == 6
        assert summary["n_events"] > 6
        assert summary["instances_per_sequence"] >= 1


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = build_re(n_sequences=50, n_series=5, seed=42)
        b = build_re(n_sequences=50, n_series=5, seed=42)
        for name in a.dsyb.names:
            assert a.dsyb[name].symbols == b.dsyb[name].symbols

    def test_different_seed_differs(self):
        a = build_re(n_sequences=50, n_series=5, seed=1)
        b = build_re(n_sequences=50, n_series=5, seed=2)
        assert any(
            a.dsyb[name].symbols != b.dsyb[name].symbols for name in a.dsyb.names
        )


class TestValidation:
    def test_series_bounds(self):
        with pytest.raises(DatasetError):
            build_re(n_series=0)
        with pytest.raises(DatasetError):
            build_re(n_series=99)

    def test_sequence_bounds(self):
        with pytest.raises(DatasetError):
            build_inf(n_sequences=1)


class TestRegistry:
    def test_profiles_load(self):
        for profile in PROFILES:
            dataset = load_dataset("RE", profile)
            expected_sequences, expected_series = PROFILES[profile]["RE"]
            assert dataset.n_sequences == expected_sequences
            assert dataset.n_series == expected_series

    def test_case_insensitive_name(self):
        assert load_dataset("inf", "tiny").name == "INF"

    def test_unknown_name_and_profile(self):
        with pytest.raises(DatasetError):
            load_dataset("nope")
        with pytest.raises(DatasetError):
            load_dataset("RE", "nope")

    def test_params_resolution(self, tiny_re):
        params = tiny_re.params(min_season=3)
        assert params.min_season == 3
        assert params.dist_interval == tiny_re.dist_interval


class TestScaling:
    def test_scale_series_adds_derived_and_noise_series(self, tiny_re):
        scaled = scale_series(tiny_re, tiny_re.n_series + 4, seed=9)
        assert scaled.n_series == tiny_re.n_series + 4
        assert scaled.n_sequences == tiny_re.n_sequences
        assert any(name.startswith("Syn") for name in scaled.dsyb.names)

    def test_scale_series_below_base_rejected(self, tiny_re):
        with pytest.raises(DatasetError):
            scale_series(tiny_re, 1)

    def test_scale_sequences(self):
        scaled = scale_sequences(build_inf, 52, n_series=5)
        assert scaled.n_sequences == 52
        assert "syn-seq52" in scaled.name

    def test_scale_sequences_validation(self):
        with pytest.raises(DatasetError):
            scale_sequences(build_inf, 1)


class TestSyntheticBlocks:
    def test_yearly_sinusoid_peaks_at_phase(self):
        values = yearly_sinusoid(100, period=100, phase_frac=0.3, amplitude=2.0)
        assert np.argmax(values) == 30

    def test_seasonal_pulses_repeat(self):
        values = seasonal_pulses(200, period=50, center_frac=0.5, width_frac=0.1)
        assert values[25] == pytest.approx(values[75], rel=1e-9)
        assert values[25] > values[0]

    def test_lagged_response_shifts(self):
        base = np.arange(5.0)
        shifted = lagged_response(base, lag=2, gain=2.0, bias=1.0)
        assert shifted.tolist() == [1.0, 1.0, 1.0, 3.0, 5.0]

    def test_lag_zero_is_affine(self):
        base = np.arange(3.0)
        assert lagged_response(base, 0, 2.0, 1.0).tolist() == [1.0, 3.0, 5.0]

    def test_noisy_zero_scale_is_copy(self):
        rng = np.random.default_rng(0)
        base = np.ones(4)
        out = noisy(rng, base, 0.0)
        assert out.tolist() == base.tolist()
        assert out is not base

    def test_mix_validates_lengths(self):
        with pytest.raises(DatasetError):
            mix(np.ones(3), np.ones(4))

    def test_negative_parameters_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(DatasetError):
            noisy(rng, np.ones(3), -1.0)
        with pytest.raises(DatasetError):
            lagged_response(np.ones(3), lag=-1)
        with pytest.raises(DatasetError):
            seasonal_pulses(10, 5, 0.5, 1.5)


class TestQualitativeFidelity:
    def test_influenza_peaks_in_winter(self):
        # The paper's P4: very high influenza concentrates in Jan-Feb.
        from repro import ESTPM
        from repro.harness.calendar_map import season_months

        dataset = build_inf(n_sequences=208, n_series=2)
        params = dataset.params(min_season=2, max_period_pct=1.0, min_density_pct=0.5)
        result = ESTPM(dataset.dseq(), params).mine()
        peaks = [
            sp
            for sp in result.by_size(1)
            if sp.pattern.events[0] == "InfluenzaCases:VeryHigh"
        ]
        assert peaks, "very high influenza must be frequent seasonal"
        months = season_months(peaks[0].seasons, "week")
        assert {"January", "February"} & set(months)


class TestSeasonalStructure:
    def test_re_wind_power_family_is_symbol_identical_modulo_alphabet(self):
        dataset = build_re(n_sequences=60, n_series=4)
        # WindPower is an exact monotone transform of WindSpeed, and both
        # use the same 5-level alphabet -> identical symbols.
        assert dataset.dsyb["WindSpeed"].symbols == dataset.dsyb["WindPower"].symbols

    def test_inf_family_alignment(self):
        dataset = build_inf(n_sequences=60, n_series=2)
        assert (
            dataset.dsyb["InfluenzaCases"].symbols
            == dataset.dsyb["InfluenzaA"].symbols
        )
