"""Tests for the event-level A-STPM extension (the paper's future work)."""

from repro import ASTPM, ESTPM, MiningParams, SymbolicDatabase, build_sequence_database
from repro.core.approximate import screen_correlated_series, screen_events
from repro.symbolic import Alphabet, SymbolicSeries


def _skewed_pair_db(n=400, seed=7):
    """Two correlated 3-symbol series where symbol 'c' is very rare."""
    import random

    rng = random.Random(seed)
    base = [rng.choices("abc", weights=[48, 48, 4])[0] for _ in range(n)]
    noisy = [s if rng.random() < 0.985 else "a" for s in base]
    alphabet = Alphabet(("a", "b", "c"))
    return SymbolicDatabase.from_symbolic(
        [
            SymbolicSeries("X", tuple(base), alphabet),
            SymbolicSeries("Y", tuple(noisy), alphabet),
        ]
    )


def _params():
    return MiningParams(max_period=3, min_density=2, dist_interval=(0, 40), min_season=3)


class TestScreenEvents:
    def test_common_events_kept(self):
        dsyb = _skewed_pair_db()
        params = _params()
        n = dsyb.n_instants // 2
        report = screen_correlated_series(dsyb, params, n)
        assert report.correlated_pairs  # the pair passes the MI gate
        kept = screen_events(dsyb, params, n, report)
        assert {"X:a", "X:b", "Y:a", "Y:b"} <= kept

    def test_rare_events_can_be_pruned(self):
        dsyb = _skewed_pair_db()
        n = dsyb.n_instants // 2
        # Screen series with the lenient thresholds (the pair passes)...
        report = screen_correlated_series(dsyb, _params(), n)
        assert report.correlated_pairs
        # ...then demand many seasons at the event level: the rare symbol
        # 'c' cannot be certified by the retained correlation.
        strict = MiningParams(
            max_period=3, min_density=2, dist_interval=(0, 40), min_season=40
        )
        kept = screen_events(dsyb, strict, n, report)
        assert "X:c" not in kept
        assert "Y:c" not in kept


class TestEventLevelMining:
    def test_subset_of_plain_astpm(self):
        dsyb = _skewed_pair_db()
        params = _params()
        dseq = build_sequence_database(dsyb, 2)
        plain = ASTPM(dsyb, 2, params, dseq=dseq).mine()
        extended = ASTPM(dsyb, 2, params, dseq=dseq, event_level=True).mine()
        assert extended.pattern_keys() <= plain.pattern_keys()

    def test_subset_of_exact(self):
        dsyb = _skewed_pair_db()
        params = _params()
        dseq = build_sequence_database(dsyb, 2)
        exact = ESTPM(dseq, params).mine()
        extended = ASTPM(dsyb, 2, params, dseq=dseq, event_level=True).mine()
        assert extended.pattern_keys() <= exact.pattern_keys()

    def test_event_filter_counted_in_stats(self):
        dsyb = _skewed_pair_db()
        params = MiningParams(
            max_period=3, min_density=2, dist_interval=(0, 40), min_season=40
        )
        dseq = build_sequence_database(dsyb, 2)
        extended = ASTPM(dsyb, 2, params, dseq=dseq, event_level=True).mine()
        plain = ASTPM(dsyb, 2, params, dseq=dseq).mine()
        assert extended.stats.n_events_pruned >= plain.stats.n_events_pruned


class TestEventFilterInESTPM:
    def test_filter_restricts_single_events(self, paper_dseq, paper_params):
        restricted = ESTPM(
            paper_dseq, paper_params, event_filter={"C:1", "D:1"}
        ).mine()
        for sp in restricted.patterns:
            assert set(sp.pattern.events) <= {"C:1", "D:1"}
        assert restricted.stats.n_events_pruned == 8
