"""Front-end builder registry + columnar/scalar parity (Defs. 3.9-3.11).

The columnar front end (one pass per series, primed supports, lazy rows
and instance columns) must be observably identical to the scalar
granule-by-granule reference on every surface mining touches: rows,
per-event supports, prebuilt columns, streaming materialization, and the
final mining results -- under both compute backends.
"""

from __future__ import annotations

import pickle

import pytest

from repro import ESTPM, SymbolicDatabase, build_sequence_database
from repro.core.config import get_numpy, set_compute_backend
from repro.core.results import results_equivalent
from repro.datasets import load_dataset
from repro.events import EventInstance
from repro.exceptions import SymbolizationError, TransformError
from repro.obs import counters
from repro.obs.trace import (
    disable_tracing,
    enable_tracing,
    reset_trace,
    trace_tree,
)
from repro.streaming import StreamingDatabase
from repro.symbolic.alphabet import Alphabet
from repro.symbolic.series import SymbolicSeries
from repro.transform.sequence_db import (
    FRONTEND_COLUMNAR,
    FRONTEND_KERNELS,
    FRONTEND_SCALAR,
    default_frontend,
    set_default_frontend,
)


@pytest.fixture(params=[None, "python"], ids=["numpy", "pure"])
def compute_backend(request):
    """Run a test under both compute backends."""
    set_compute_backend(request.param)
    yield request.param
    set_compute_backend(None)


def _support_positions(dseq):
    return {
        event: list(support.positions())
        for event, support in dseq.event_support().items()
    }


class TestFrontendRegistry:
    def test_known_frontends(self):
        assert FRONTEND_COLUMNAR in FRONTEND_KERNELS
        assert FRONTEND_SCALAR in FRONTEND_KERNELS

    def test_unknown_frontend_rejected(self, paper_dsyb):
        with pytest.raises(TransformError, match="unknown front end"):
            build_sequence_database(paper_dsyb, ratio=3, frontend="simd")

    def test_default_round_trip(self):
        previous = set_default_frontend(FRONTEND_SCALAR)
        try:
            assert default_frontend() == FRONTEND_SCALAR
        finally:
            set_default_frontend(previous)
        assert default_frontend() == previous

    def test_set_default_rejects_unknown(self):
        with pytest.raises(TransformError):
            set_default_frontend("granular")

    def test_default_governs_builds(self, paper_dsyb):
        previous = set_default_frontend(FRONTEND_SCALAR)
        try:
            dseq = build_sequence_database(paper_dsyb, ratio=3)
            assert dseq.prebuilt_columns("C:1") is None
        finally:
            set_default_frontend(previous)


class TestColumnarScalarParity:
    def test_paper_rows_identical(self, paper_dsyb, compute_backend):
        columnar = build_sequence_database(paper_dsyb, 3, frontend="columnar")
        scalar = build_sequence_database(paper_dsyb, 3, frontend="scalar")
        assert len(columnar) == len(scalar)
        for left, right in zip(columnar.rows, scalar.rows):
            assert left.position == right.position
            assert left.instances == right.instances
            assert left.events() == right.events()
            for event in left.events():
                assert left.instances_of(event) == right.instances_of(event)

    def test_paper_supports_identical(self, paper_dsyb, compute_backend):
        columnar = build_sequence_database(paper_dsyb, 3, frontend="columnar")
        scalar = build_sequence_database(paper_dsyb, 3, frontend="scalar")
        assert _support_positions(columnar) == _support_positions(scalar)

    @pytest.mark.parametrize("name", ["RE", "INF"])
    def test_seed_dataset_rows_identical(self, name, compute_backend):
        dataset = load_dataset(name, "tiny")
        columnar = build_sequence_database(
            dataset.dsyb, dataset.ratio, frontend="columnar"
        )
        scalar = build_sequence_database(
            dataset.dsyb, dataset.ratio, frontend="scalar"
        )
        assert list(columnar.rows) == list(scalar.rows)
        assert _support_positions(columnar) == _support_positions(scalar)

    def test_mining_parity(self, paper_dsyb, paper_params, compute_backend):
        columnar = build_sequence_database(paper_dsyb, 3, frontend="columnar")
        scalar = build_sequence_database(paper_dsyb, 3, frontend="scalar")
        reference = ESTPM(scalar, paper_params).mine()
        mined = ESTPM(columnar, paper_params).mine()
        assert results_equivalent(mined, reference)

    @pytest.mark.parametrize("executor", ["serial", "threads"])
    @pytest.mark.parametrize("support_backend", ["bitset", "list"])
    def test_mining_parity_across_engines(
        self, paper_dsyb, paper_params, executor, support_backend
    ):
        columnar = build_sequence_database(paper_dsyb, 3, frontend="columnar")
        scalar = build_sequence_database(paper_dsyb, 3, frontend="scalar")
        reference = ESTPM(scalar, paper_params).mine()
        mined = ESTPM(
            columnar,
            paper_params,
            executor=executor,
            support_backend=support_backend,
        ).mine()
        assert results_equivalent(mined, reference)


@pytest.fixture(scope="module")
def long_dsyb(paper_dsyb):
    """The paper's streams tiled 8x -- long enough for the numpy tables
    (``_NUMPY_MIN_SYMBOLS``), preserving the binary run structure."""
    database = SymbolicDatabase()
    for series in paper_dsyb:
        database.add(
            SymbolicSeries(series.name, series.symbols * 8, series.alphabet)
        )
    return database


class TestPrebuiltColumns:
    def test_scalar_build_has_none(self, long_dsyb):
        scalar = build_sequence_database(long_dsyb, 3, frontend="scalar")
        assert scalar.prebuilt_columns("C:1") is None

    def test_short_streams_have_none(self, paper_dsyb):
        # Below _NUMPY_MIN_SYMBOLS the columnar builder stays scalar and
        # primes supports only.
        columnar = build_sequence_database(paper_dsyb, 3, frontend="columnar")
        assert columnar.prebuilt_columns("C:1") is None
        scalar = build_sequence_database(paper_dsyb, 3, frontend="scalar")
        assert _support_positions(columnar) == _support_positions(scalar)

    @pytest.mark.skipif(get_numpy() is None, reason="needs the numpy backend")
    def test_columns_match_row_walks(self, long_dsyb):
        columnar = build_sequence_database(long_dsyb, 3, frontend="columnar")
        scalar = build_sequence_database(long_dsyb, 3, frontend="scalar")
        for event, support in scalar.event_support().items():
            columns = columnar.prebuilt_columns(event)
            assert columns is not None
            assert sorted(columns) == list(support.positions())
            for granule, column in columns.items():
                instances = scalar.instances_at(granule, event)
                assert list(column.instances) == instances
                assert list(column.starts) == [i.start for i in instances]
                assert list(column.ends) == [i.end for i in instances]

    @pytest.mark.skipif(get_numpy() is None, reason="needs the numpy backend")
    def test_columns_cached_per_event(self, long_dsyb):
        columnar = build_sequence_database(long_dsyb, 3, frontend="columnar")
        first = columnar.prebuilt_columns("C:1")
        assert first is not None
        assert columnar.prebuilt_columns("C:1") is first

    def test_pure_columnar_has_none(self, long_dsyb):
        set_compute_backend("python")
        try:
            columnar = build_sequence_database(long_dsyb, 3, frontend="columnar")
            assert columnar.prebuilt_columns("C:1") is None
        finally:
            set_compute_backend(None)

    @pytest.mark.skipif(get_numpy() is None, reason="needs the numpy backend")
    def test_append_invalidates(self, long_dsyb):
        columnar = build_sequence_database(long_dsyb, 3, frontend="columnar")
        assert columnar.prebuilt_columns("C:1") is not None
        from repro.events.sequence import TemporalSequence

        columnar.append_row(
            TemporalSequence(position=len(columnar) + 1).finalize()
        )
        assert columnar.prebuilt_columns("C:1") is None


class TestLazyRows:
    """The columnar builders defer row materialization behind a thunk."""

    def test_len_before_materialization(self, paper_dsyb, compute_backend):
        columnar = build_sequence_database(paper_dsyb, 3, frontend="columnar")
        assert len(columnar) == 14  # no row access yet

    def test_supports_without_rows(self, paper_dsyb, compute_backend):
        # event_support must come from the primed positions, not a row
        # scan: compute it first, then check rows match the reference.
        columnar = build_sequence_database(paper_dsyb, 3, frontend="columnar")
        supports = _support_positions(columnar)
        scalar = build_sequence_database(paper_dsyb, 3, frontend="scalar")
        assert supports == _support_positions(scalar)
        assert list(columnar.rows) == list(scalar.rows)

    def test_rows_materialize_on_index(self, paper_dsyb, compute_backend):
        columnar = build_sequence_database(paper_dsyb, 3, frontend="columnar")
        row = columnar.sequence_at(7)
        assert row.instances_of("C:1") == [EventInstance("C:1", 19, 21)]

    def test_append_after_lazy_build(self, paper_dsyb, compute_backend):
        from repro.events.sequence import TemporalSequence

        columnar = build_sequence_database(paper_dsyb, 3, frontend="columnar")
        columnar.append_row(TemporalSequence(position=15).finalize())
        assert len(columnar) == 15
        assert columnar.sequence_at(7).instances_of("C:1") == [
            EventInstance("C:1", 19, 21)
        ]

    def test_rows_equality_between_builds(self, paper_dsyb, compute_backend):
        one = build_sequence_database(paper_dsyb, 3, frontend="columnar")
        two = build_sequence_database(paper_dsyb, 3, frontend="scalar")
        assert one.rows == two.rows

    def test_pickle_degrades_to_plain_rows(self, paper_dsyb, compute_backend):
        columnar = build_sequence_database(paper_dsyb, 3, frontend="columnar")
        restored = pickle.loads(pickle.dumps(columnar.rows))
        assert isinstance(restored, list)
        scalar = build_sequence_database(paper_dsyb, 3, frontend="scalar")
        assert restored == list(scalar.rows)

    def test_prefix_and_coarsen_still_work(self, paper_dsyb, compute_backend):
        columnar = build_sequence_database(paper_dsyb, 3, frontend="columnar")
        scalar = build_sequence_database(paper_dsyb, 3, frontend="scalar")
        assert list(columnar.prefix(5).rows) == list(scalar.prefix(5).rows)
        assert list(columnar.coarsen(2).rows) == list(scalar.coarsen(2).rows)


class TestFromCodes:
    """The vectorized mappers' integer-code constructor."""

    @pytest.fixture
    def alphabet(self):
        return Alphabet.levels(["L", "M", "H"])

    @pytest.mark.skipif(get_numpy() is None, reason="needs the numpy backend")
    def test_matches_symbol_constructor(self, alphabet):
        np = get_numpy()
        codes = np.asarray([0, 0, 2, 1, 1, 2, 0])
        fast = SymbolicSeries.from_codes("S", codes, alphabet)
        slow = SymbolicSeries("S", tuple(alphabet.symbols[c] for c in codes), alphabet)
        assert fast.symbols == slow.symbols
        assert fast.probabilities() == slow.probabilities()
        assert fast.observed_symbols() == slow.observed_symbols()
        assert fast.event_keys() == slow.event_keys()

    @pytest.mark.skipif(get_numpy() is None, reason="needs the numpy backend")
    def test_out_of_range_codes_rejected(self, alphabet):
        np = get_numpy()
        with pytest.raises(SymbolizationError, match="outside"):
            SymbolicSeries.from_codes("S", np.asarray([0, 3]), alphabet)
        with pytest.raises(SymbolizationError):
            SymbolicSeries.from_codes("S", np.asarray([-1, 0]), alphabet)

    @pytest.mark.skipif(get_numpy() is None, reason="needs the numpy backend")
    def test_empty_codes_rejected(self, alphabet):
        np = get_numpy()
        with pytest.raises(SymbolizationError, match="empty"):
            SymbolicSeries.from_codes("S", np.asarray([], dtype=np.int64), alphabet)


class TestStreamingFrontends:
    def test_streamed_rows_match_batch(self, paper_dsyb, compute_backend):
        batch = build_sequence_database(paper_dsyb, 3, frontend="scalar")
        for frontend in FRONTEND_KERNELS:
            streamed = StreamingDatabase.from_symbolic(
                paper_dsyb, 3, frontend=frontend
            )
            assert list(streamed.dseq.rows) == list(batch.rows)

    def test_ragged_pushes_match(self, paper_dsyb, compute_backend):
        reference = build_sequence_database(paper_dsyb, 3, frontend="scalar")
        streams = {s.name: s.symbols for s in paper_dsyb}
        for frontend in FRONTEND_KERNELS:
            database = StreamingDatabase(
                3, {s.name: s.alphabet for s in paper_dsyb}, frontend=frontend
            )
            cut = 0
            for step in (5, 1, 11, 8, 17):
                database.append_symbols(
                    {name: sym[cut : cut + step] for name, sym in streams.items()}
                )
                cut += step
            database.append_symbols(
                {name: sym[cut:] for name, sym in streams.items()}
            )
            assert list(database.dseq.rows) == list(reference.rows)


class TestInstrumentation:
    def test_build_span_carries_frontend(self, paper_dsyb):
        reset_trace()
        enable_tracing()
        try:
            build_sequence_database(paper_dsyb, 3, frontend="columnar")
            roots = trace_tree()
        finally:
            disable_tracing()
            reset_trace()
        builds = [root for root in roots if root["name"] == "transform/build_dseq"]
        assert builds and builds[0]["attrs"]["frontend"] == "columnar"

    def test_columnar_counters(self, paper_dsyb):
        counters.reset()
        counters.enable_metrics()
        try:
            build_sequence_database(paper_dsyb, 3, frontend="columnar")
            recorded = counters.summary()["counters"]
        finally:
            counters.disable_metrics()
            counters.reset()
        assert recorded["frontend.columnar.runs"] > 0
        assert recorded["frontend.columnar.events"] == 10  # 5 series x {0,1}
