"""Unit + failure-injection tests for the result validator."""

import pytest

from repro import ESTPM, TemporalPattern, Triple, validate_result, validate_seasonal_pattern
from repro.core.results import SeasonalPattern
from repro.core.seasonality import SeasonView
from repro.core.validation import pattern_occurs_at, true_support
from repro.events import CONTAINS, FOLLOWS


@pytest.fixture(scope="module")
def mined(paper_dseq, paper_params):
    return ESTPM(paper_dseq, paper_params).mine()


class TestHonestResultsPass:
    def test_full_result_validates(self, mined, paper_dseq, paper_params):
        assert validate_result(mined, paper_dseq, paper_params) == []

    def test_true_support_matches_miner(self, mined, paper_dseq, paper_params):
        for sp in mined.patterns:
            assert (
                true_support(sp.pattern, paper_dseq, paper_params)
                == list(sp.support)
            )

    def test_pattern_occurs_at(self, paper_dseq, paper_params):
        pattern = TemporalPattern(("C:1", "D:1"), (Triple(CONTAINS, "C:1", "D:1"),))
        assert pattern_occurs_at(pattern, paper_dseq, 1, paper_params)
        assert not pattern_occurs_at(pattern, paper_dseq, 5, paper_params)


class TestFailureInjection:
    def _tamper(self, sp, **changes):
        view = sp.seasons
        new_view = SeasonView(
            support=changes.get("support", view.support),
            near_sets=changes.get("near_sets", view.near_sets),
            seasons=changes.get("seasons", view.seasons),
        )
        return SeasonalPattern(changes.get("pattern", sp.pattern), new_view)

    def test_inflated_support_detected(self, mined, paper_dseq, paper_params):
        sp = next(s for s in mined.by_size(2))
        forged = self._tamper(sp, support=sp.support + (99,))
        problems = validate_seasonal_pattern(forged, paper_dseq, paper_params)
        assert any("support" in p for p in problems)

    def test_missing_occurrence_detected(self, mined, paper_dseq, paper_params):
        sp = next(s for s in mined.by_size(2))
        forged = self._tamper(sp, support=sp.support[:-1])
        problems = validate_seasonal_pattern(forged, paper_dseq, paper_params)
        assert any("support" in p for p in problems)

    def test_forged_seasons_detected(self, mined, paper_dseq, paper_params):
        sp = next(s for s in mined.by_size(2))
        forged = self._tamper(sp, seasons=sp.seasons.seasons[:-1])
        problems = validate_seasonal_pattern(forged, paper_dseq, paper_params)
        assert any("decomposition" in p or "seasons" in p for p in problems)

    def test_wrong_relation_detected(self, mined, paper_dseq, paper_params):
        sp = next(
            s
            for s in mined.by_size(2)
            if s.pattern.triples[0].relation == CONTAINS
        )
        triple = sp.pattern.triples[0]
        forged_pattern = TemporalPattern(
            sp.pattern.events, (Triple(FOLLOWS, triple.first, triple.second),)
        )
        forged = self._tamper(sp, pattern=forged_pattern)
        problems = validate_seasonal_pattern(forged, paper_dseq, paper_params)
        assert problems  # support cannot match the forged relation

    def test_limit_parameter(self, mined, paper_dseq, paper_params):
        assert validate_result(mined, paper_dseq, paper_params, limit=3) == []


class TestOnDataset:
    def test_tiny_dataset_result_validates(self, tiny_inf):
        params = tiny_inf.params(
            min_season=2, max_period_pct=1.0, min_density_pct=1.0
        ).with_updates(max_pattern_length=2)
        result = ESTPM(tiny_inf.dseq(), params).mine()
        assert validate_result(result, tiny_inf.dseq(), params, limit=30) == []
