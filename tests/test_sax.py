"""Unit tests for the SAX mapper (Lin et al. [41])."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.exceptions import SymbolizationError
from repro.symbolic import Alphabet, SaxMapper, TimeSeries, sax_breakpoints
from repro.symbolic.sax import inverse_normal_cdf, paa


class TestInverseNormalCdf:
    @pytest.mark.parametrize("p", [0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999])
    def test_matches_scipy(self, p):
        assert inverse_normal_cdf(p) == pytest.approx(norm.ppf(p), abs=1e-8)

    @pytest.mark.parametrize("p", [0.0, 1.0, -0.1, 1.1])
    def test_domain_enforced(self, p):
        with pytest.raises(SymbolizationError):
            inverse_normal_cdf(p)


class TestBreakpoints:
    def test_equiprobable(self):
        # Classic SAX table for alphabet size 4: -0.67, 0, 0.67.
        points = sax_breakpoints(4)
        assert points == pytest.approx([-0.6745, 0.0, 0.6745], abs=1e-3)

    def test_sizes(self):
        assert len(sax_breakpoints(2)) == 1
        assert len(sax_breakpoints(8)) == 7

    def test_too_small_alphabet(self):
        with pytest.raises(SymbolizationError):
            sax_breakpoints(1)


class TestPaa:
    def test_exact_frames(self):
        values = np.array([1.0, 3.0, 5.0, 7.0])
        assert paa(values, 2).tolist() == [2.0, 6.0]

    def test_trailing_partial_frame_is_averaged(self):
        values = np.array([2.0, 2.0, 8.0])
        assert paa(values, 2).tolist() == [2.0, 8.0]

    def test_frame_one_is_identity(self):
        values = np.array([1.0, 2.0])
        assert paa(values, 1).tolist() == [1.0, 2.0]

    def test_invalid_frame(self):
        with pytest.raises(SymbolizationError):
            paa(np.array([1.0]), 0)


class TestSaxMapper:
    def test_balanced_bins_on_gaussian_data(self):
        rng = np.random.default_rng(1)
        series = TimeSeries.from_array("X", rng.normal(size=3000))
        alphabet = Alphabet.levels(["a", "b", "c", "d"])
        encoded = SaxMapper(alphabet).encode(series)
        counts = np.array([encoded.symbols.count(s) for s in alphabet])
        # Equiprobable breakpoints: each bin ~25%.
        assert (abs(counts / 3000 - 0.25) < 0.05).all()

    def test_constant_series_maps_to_middle_symbol(self):
        series = TimeSeries("X", (5.0, 5.0, 5.0))
        alphabet = Alphabet.levels(["a", "b", "c"])
        encoded = SaxMapper(alphabet).encode(series)
        assert set(encoded.symbols) == {"b"}

    def test_output_length_preserved_with_paa(self):
        series = TimeSeries.from_array("X", np.arange(10, dtype=float))
        encoded = SaxMapper(Alphabet.levels(["a", "b"]), frame=3).encode(series)
        assert len(encoded) == 10

    def test_scale_invariance(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=200)
        alphabet = Alphabet.levels(["a", "b", "c"])
        base = SaxMapper(alphabet).encode(TimeSeries.from_array("X", values))
        scaled = SaxMapper(alphabet).encode(
            TimeSeries.from_array("Y", 7.0 * values + 3.0)
        )
        assert base.symbols == scaled.symbols
