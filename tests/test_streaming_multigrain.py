"""Tests for the multi-granularity streaming service."""

import pytest

from repro import ESTPM, MiningParams, SymbolicDatabase
from repro.core.results import results_equivalent
from repro.core.supportset import SUPPORT_BACKENDS
from repro.exceptions import MiningError
from repro.streaming import MultiGrainStreamingService, StreamingDatabase
from repro.transform import build_sequence_database


@pytest.fixture(scope="module")
def motif_dsyb():
    return SymbolicDatabase.from_rows(
        {"A": "111000110000" * 15, "B": "110000111000" * 15}
    )


PARAMS_BY_RATIO = {
    3: MiningParams(max_period=3, min_density=1, dist_interval=(0, 40), min_season=2),
    6: MiningParams(max_period=2, min_density=1, dist_interval=(0, 20), min_season=2),
    12: MiningParams(max_period=2, min_density=1, dist_interval=(0, 10), min_season=1),
}


def fresh_service(dsyb, backend=None):
    database = StreamingDatabase(3, {s.name: s.alphabet for s in dsyb})
    return MultiGrainStreamingService(
        database, dict(PARAMS_BY_RATIO), support_backend=backend
    )


def stream_blocks(dsyb, block=24):
    streams = {series.name: series.symbols for series in dsyb}
    for start in range(0, dsyb.n_instants, block):
        yield {
            name: symbols[start : start + block]
            for name, symbols in streams.items()
        }


class TestMultiGrainStreaming:
    @pytest.mark.parametrize("backend", SUPPORT_BACKENDS)
    def test_every_level_matches_batch_mining(self, motif_dsyb, backend):
        service = fresh_service(motif_dsyb, backend)
        for block in stream_blocks(motif_dsyb):
            deltas = service.push_symbols(block)
            assert sorted(deltas) == [3, 6, 12]
        assert [service.n_granules(r) for r in service.ratios] == [60, 30, 15]
        for ratio in service.ratios:
            batch = ESTPM(
                build_sequence_database(motif_dsyb, ratio),
                PARAMS_BY_RATIO[ratio],
                support_backend=backend,
            ).mine()
            assert results_equivalent(service.result(ratio), batch)

    def test_verify_parity_passes_per_level(self, motif_dsyb):
        service = fresh_service(motif_dsyb)
        for block in stream_blocks(motif_dsyb, block=30):
            service.push_symbols(block)
        batch_results = service.verify_parity()
        assert sorted(batch_results) == [3, 6, 12]

    def test_coarse_granules_lag_the_fine_level(self, motif_dsyb):
        service = fresh_service(motif_dsyb)
        # 15 instants = 5 base granules = 2 ratio-6 granules = 1 ratio-12.
        blocks = stream_blocks(motif_dsyb, block=15)
        service.push_symbols(next(blocks))
        assert service.n_granules(3) == 5
        assert service.n_granules(6) == 2
        assert service.n_granules(12) == 1

    def test_results_returns_every_level(self, motif_dsyb):
        service = fresh_service(motif_dsyb)
        service.push_symbols(next(stream_blocks(motif_dsyb, block=36)))
        results = service.results()
        assert sorted(results) == [3, 6, 12]

    def test_warm_start_consumes_existing_granules(self, motif_dsyb):
        database = StreamingDatabase.from_symbolic(motif_dsyb, 3)
        service = MultiGrainStreamingService(database, dict(PARAMS_BY_RATIO))
        assert service.n_granules(3) == 60
        assert service.n_granules(12) == 15
        service.verify_parity()

    def test_border_patterns_exposed_per_level(self, motif_dsyb):
        service = fresh_service(motif_dsyb)
        for block in stream_blocks(motif_dsyb):
            service.push_symbols(block)
        for ratio in service.ratios:
            for sp in service.border_patterns(ratio):
                assert sp.n_seasons == PARAMS_BY_RATIO[ratio].min_season - 1


class TestValidation:
    def test_base_ratio_params_required(self, motif_dsyb):
        database = StreamingDatabase(3, {s.name: s.alphabet for s in motif_dsyb})
        with pytest.raises(MiningError):
            MultiGrainStreamingService(database, {6: PARAMS_BY_RATIO[6]})

    def test_non_multiple_ratio_rejected(self, motif_dsyb):
        database = StreamingDatabase(3, {s.name: s.alphabet for s in motif_dsyb})
        with pytest.raises(MiningError):
            MultiGrainStreamingService(
                database, {3: PARAMS_BY_RATIO[3], 7: PARAMS_BY_RATIO[6]}
            )

    def test_unknown_level_rejected(self, motif_dsyb):
        service = fresh_service(motif_dsyb)
        with pytest.raises(MiningError):
            service.result(5)
