"""Property-based tests for serialization round trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pattern import TemporalPattern, pattern_from_instances
from repro.core.results import MiningResult, MiningStats, SeasonalPattern
from repro.core.seasonality import SeasonView
from repro.events import EventInstance, RelationConfig
from repro.io import load_csv_series, result_from_json, result_to_json, save_csv_series
from repro.symbolic import TimeSeries

events = st.sampled_from(["A:1", "B:0", "Sensor:High", "X:c"])


@st.composite
def seasonal_patterns(draw):
    # Build a realizable pattern from random instances.
    n = draw(st.integers(1, 4))
    instances = []
    cursor = 1
    for _ in range(n):
        start = cursor + draw(st.integers(0, 3))
        end = start + draw(st.integers(0, 4))
        instances.append(EventInstance(draw(events), start, end))
        cursor = start + 1
    pattern = pattern_from_instances(instances, RelationConfig())
    if pattern is None:
        pattern = TemporalPattern((instances[0].event,), ())
    support = tuple(sorted(draw(st.sets(st.integers(1, 50), min_size=1, max_size=8))))
    return SeasonalPattern(
        pattern,
        SeasonView(support=support, near_sets=(support,), seasons=(support,)),
    )


@given(st.lists(seasonal_patterns(), max_size=6))
@settings(max_examples=60, deadline=None)
def test_result_json_roundtrip(patterns):
    result = MiningResult(patterns=patterns, stats=MiningStats(n_granules=50))
    restored = result_from_json(result_to_json(result))
    assert restored.pattern_keys() == result.pattern_keys()
    assert len(restored) == len(result)
    for original, loaded in zip(result.patterns, restored.patterns):
        assert loaded.pattern == original.pattern
        assert loaded.support == original.support
        assert loaded.seasons == original.seasons


finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(
    st.lists(
        st.lists(finite_floats, min_size=1, max_size=10),
        min_size=1,
        max_size=4,
    ).filter(lambda cols: len({len(c) for c in cols}) == 1)
)
@settings(max_examples=60, deadline=None)
def test_csv_roundtrip(tmp_path_factory, columns):
    path = tmp_path_factory.mktemp("csv") / "data.csv"
    series = [
        TimeSeries(f"S{i}", tuple(column)) for i, column in enumerate(columns)
    ]
    save_csv_series(series, path)
    loaded = load_csv_series(path)
    assert [s.name for s in loaded] == [s.name for s in series]
    for original, restored in zip(series, loaded):
        for a, b in zip(original.values, restored.values):
            assert abs(a - b) <= 1e-9 * max(1.0, abs(a))
