"""Property-based tests for the DSYB -> DSEQ transformation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SymbolicDatabase, build_sequence_database


@st.composite
def databases(draw):
    n_series = draw(st.integers(1, 3))
    length = draw(st.integers(4, 40))
    alphabet = draw(st.sampled_from(["01", "abc"]))
    rows = {
        f"S{i}": "".join(
            draw(st.lists(st.sampled_from(alphabet), min_size=length, max_size=length))
        )
        for i in range(n_series)
    }
    ratio = draw(st.integers(1, 5).filter(lambda r: r <= length))
    return SymbolicDatabase.from_rows(
        rows, __import__("repro").Alphabet(tuple(alphabet))
    ), ratio


@given(databases())
@settings(max_examples=80, deadline=None)
def test_instances_tile_each_granule(db_and_ratio):
    dsyb, ratio = db_and_ratio
    dseq = build_sequence_database(dsyb, ratio)
    for row in dseq:
        for name in dsyb.names:
            spans = sorted(
                (inst.start, inst.end)
                for inst in row.instances
                if inst.event.startswith(f"{name}:")
            )
            # The series' instances tile the granule exactly: contiguous,
            # non-overlapping, covering all `ratio` fine granules.
            granule_start = (row.position - 1) * ratio + 1
            assert spans[0][0] == granule_start
            assert spans[-1][1] == granule_start + ratio - 1
            for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
                assert start_b == end_a + 1


@given(databases())
@settings(max_examples=80, deadline=None)
def test_instances_reproduce_the_symbols(db_and_ratio):
    dsyb, ratio = db_and_ratio
    dseq = build_sequence_database(dsyb, ratio)
    for name in dsyb.names:
        reconstructed: dict[int, str] = {}
        for row in dseq:
            for instance in row.instances:
                series, _, symbol = instance.event.rpartition(":")
                if series != name:
                    continue
                for position in range(instance.start, instance.end + 1):
                    reconstructed[position] = symbol
        symbols = dsyb[name].symbols
        for position, symbol in reconstructed.items():
            assert symbols[position - 1] == symbol


@given(databases())
@settings(max_examples=80, deadline=None)
def test_event_support_consistent_with_rows(db_and_ratio):
    dsyb, ratio = db_and_ratio
    dseq = build_sequence_database(dsyb, ratio)
    support = dseq.event_support()
    for event, positions in support.items():
        assert positions == sorted(set(positions))
        for position in positions:
            assert dseq.instances_at(position, event)


@given(databases())
@settings(max_examples=80, deadline=None)
def test_runs_inside_granules_are_maximal(db_and_ratio):
    dsyb, ratio = db_and_ratio
    dseq = build_sequence_database(dsyb, ratio)
    for row in dseq:
        by_series: dict[str, list] = {}
        for instance in row.instances:
            series, _, _ = instance.event.rpartition(":")
            by_series.setdefault(series, []).append(instance)
        for instances in by_series.values():
            instances.sort(key=lambda inst: inst.start)
            for a, b in zip(instances, instances[1:]):
                # Adjacent runs of the same series must differ in symbol,
                # otherwise the run split was not maximal.
                assert a.event != b.event
