"""Property-based equivalence tests: the miners agree on random inputs.

These are the strongest correctness guarantees in the suite: on arbitrary
small symbolic databases,

* E-STPM equals the brute-force oracle (NaiveSTPM);
* every pruning variant of E-STPM returns the same pattern set
  (the prunings are lossless, Lemmas 1-4);
* APS-growth (the baseline) also returns the same pattern set;
* A-STPM returns a subset, exact on the series it keeps.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ASTPM,
    ESTPM,
    MiningParams,
    PruningConfig,
    SymbolicDatabase,
    build_sequence_database,
)
from repro.baselines import APSGrowth, NaiveSTPM


@st.composite
def mining_inputs(draw):
    n_series = draw(st.integers(1, 3))
    length = draw(st.integers(8, 30))
    rows = {
        f"S{i}": "".join(
            draw(st.lists(st.sampled_from("01"), min_size=length, max_size=length))
        )
        for i in range(n_series)
    }
    ratio = draw(st.sampled_from([2, 3]))
    params = MiningParams(
        max_period=draw(st.integers(1, 3)),
        min_density=draw(st.integers(1, 2)),
        dist_interval=(draw(st.integers(0, 2)), draw(st.integers(3, 10))),
        min_season=draw(st.integers(1, 2)),
        max_pattern_length=3,
    )
    dseq = build_sequence_database(SymbolicDatabase.from_rows(rows), ratio)
    return SymbolicDatabase.from_rows(rows), dseq, ratio, params


@given(mining_inputs())
@settings(max_examples=40, deadline=None)
def test_estpm_equals_bruteforce_oracle(inputs):
    _, dseq, _, params = inputs
    exact = ESTPM(dseq, params).mine().pattern_keys()
    oracle = NaiveSTPM(dseq, params).mine().pattern_keys()
    assert exact == oracle


@given(mining_inputs())
@settings(max_examples=25, deadline=None)
def test_pruning_variants_are_lossless(inputs):
    _, dseq, _, params = inputs
    reference = ESTPM(dseq, params, PruningConfig.all()).mine().pattern_keys()
    for variant in (
        PruningConfig.none(),
        PruningConfig.apriori_only(),
        PruningConfig.transitivity_only(),
    ):
        assert ESTPM(dseq, params, variant).mine().pattern_keys() == reference


@given(mining_inputs())
@settings(max_examples=25, deadline=None)
def test_apsgrowth_equals_estpm(inputs):
    _, dseq, _, params = inputs
    exact = ESTPM(dseq, params).mine().pattern_keys()
    baseline = APSGrowth(dseq, params).mine().pattern_keys()
    assert baseline == exact


@given(mining_inputs())
@settings(max_examples=25, deadline=None)
def test_astpm_is_subset_and_exact_on_kept_series(inputs):
    dsyb, dseq, ratio, params = inputs
    exact = ESTPM(dseq, params).mine().pattern_keys()
    miner = ASTPM(dsyb, ratio, params, dseq=dseq)
    report = miner.screening()
    approx = miner.mine().pattern_keys()
    assert approx <= exact
    kept = set(report.correlated_series)
    expected = {
        p
        for p in exact
        if all(event.rsplit(":", 1)[0] in kept for event in p.events)
    }
    assert approx == expected


@given(mining_inputs())
@settings(max_examples=25, deadline=None)
def test_every_frequent_pattern_meets_all_thresholds(inputs):
    _, dseq, _, params = inputs
    result = ESTPM(dseq, params).mine()
    for sp in result.patterns:
        assert sp.n_seasons >= params.min_season
        assert all(d >= params.min_density for d in sp.seasons.densities())
        assert all(
            params.dist_min <= dist <= params.dist_max
            for dist in sp.seasons.distances()
        )
        # Support is strictly increasing granule positions.
        assert list(sp.support) == sorted(set(sp.support))
