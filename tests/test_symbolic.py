"""Unit tests for alphabets, series, mappers and DSYB (paper Sec. III-B)."""

import numpy as np
import pytest

from repro.exceptions import SymbolizationError
from repro.symbolic import (
    Alphabet,
    QuantileMapper,
    SymbolicDatabase,
    SymbolicSeries,
    ThresholdMapper,
    TimeSeries,
)
from repro.symbolic.mapping import ExplicitMapper


class TestAlphabet:
    def test_binary(self):
        alphabet = Alphabet.binary()
        assert list(alphabet) == ["0", "1"]
        assert "1" in alphabet
        assert alphabet.index("1") == 1

    def test_levels(self):
        alphabet = Alphabet.levels(["Low", "High"])
        assert len(alphabet) == 2
        assert alphabet.index("Low") == 0

    def test_unknown_symbol(self):
        with pytest.raises(SymbolizationError):
            Alphabet.binary().index("x")

    def test_duplicates_rejected(self):
        with pytest.raises(SymbolizationError):
            Alphabet(("a", "a"))

    def test_empty_rejected(self):
        with pytest.raises(SymbolizationError):
            Alphabet(())


class TestTimeSeries:
    def test_from_array(self):
        series = TimeSeries.from_array("X", np.array([1, 2, 3]))
        assert len(series) == 3
        assert series.values == (1.0, 2.0, 3.0)
        assert series.as_array().dtype == float

    def test_empty_rejected(self):
        with pytest.raises(SymbolizationError):
            TimeSeries("X", ())

    def test_unnamed_rejected(self):
        with pytest.raises(SymbolizationError):
            TimeSeries("", (1.0,))


class TestSymbolicSeries:
    def test_paper_device_example(self):
        # X = 1.82, 1.25, 0.46, 0.0 with ON/OFF symbols gives 1,1,1,0.
        raw = TimeSeries("X", (1.82, 1.25, 0.46, 0.0))
        mapper = ThresholdMapper((0.0,), Alphabet.binary())
        encoded = mapper.encode(raw)
        assert encoded.symbols == ("1", "1", "1", "0")

    def test_event_keys(self):
        series = SymbolicSeries("C", tuple("110"), Alphabet.binary())
        assert series.event_key("1") == "C:1"
        assert series.event_keys() == ["C:0", "C:1"]
        with pytest.raises(SymbolizationError):
            series.event_key("x")

    def test_probabilities(self):
        series = SymbolicSeries("C", tuple("1100"), Alphabet.binary())
        assert series.probability("1") == 0.5
        assert series.probabilities() == {"0": 0.5, "1": 0.5}

    def test_observed_symbols(self):
        series = SymbolicSeries("C", tuple("111"), Alphabet.binary())
        assert series.observed_symbols() == ["1"]

    def test_symbols_outside_alphabet_rejected(self):
        with pytest.raises(SymbolizationError):
            SymbolicSeries("C", ("2",), Alphabet.binary())


class TestMappers:
    def test_threshold_breakpoint_count_validated(self):
        mapper = ThresholdMapper((0.0, 1.0), Alphabet.binary())
        with pytest.raises(SymbolizationError):
            mapper.encode(TimeSeries("X", (1.0,)))

    def test_threshold_breakpoints_must_be_sorted(self):
        alphabet = Alphabet.levels(["a", "b", "c"])
        mapper = ThresholdMapper((2.0, 1.0), alphabet)
        with pytest.raises(SymbolizationError):
            mapper.encode(TimeSeries("X", (1.0,)))

    def test_quantile_balances_bins(self):
        alphabet = Alphabet.levels(["Low", "Medium", "High"])
        series = TimeSeries.from_array("X", np.arange(300))
        encoded = QuantileMapper(alphabet).encode(series)
        counts = {s: encoded.symbols.count(s) for s in alphabet}
        assert max(counts.values()) - min(counts.values()) <= 2

    def test_quantile_single_symbol(self):
        alphabet = Alphabet.levels(["only"])
        encoded = QuantileMapper(alphabet).encode(TimeSeries("X", (1.0, 2.0)))
        assert set(encoded.symbols) == {"only"}

    def test_quantile_preserves_monotone_transforms(self):
        # The property A-STPM's duplicate families rely on.
        alphabet = Alphabet.levels(["L", "M", "H"])
        rng = np.random.default_rng(0)
        values = rng.normal(size=500)
        a = QuantileMapper(alphabet).encode(TimeSeries.from_array("A", values))
        b = QuantileMapper(alphabet).encode(
            TimeSeries.from_array("B", 3.5 * values + 11.0)
        )
        assert a.symbols == b.symbols

    def test_explicit_mapper(self):
        mapper = ExplicitMapper(("1", "0"), Alphabet.binary())
        encoded = mapper.encode(TimeSeries("X", (9.0, 9.0)))
        assert encoded.symbols == ("1", "0")
        with pytest.raises(SymbolizationError):
            mapper.encode(TimeSeries("X", (9.0,)))


class TestSymbolicDatabase:
    def test_from_rows(self):
        dsyb = SymbolicDatabase.from_rows({"C": "110", "D": "011"})
        assert len(dsyb) == 2
        assert dsyb.n_instants == 3
        assert dsyb.names == ["C", "D"]
        assert dsyb["C"].symbols == ("1", "1", "0")
        assert "C" in dsyb and "Z" not in dsyb

    def test_event_keys(self):
        dsyb = SymbolicDatabase.from_rows({"C": "10"})
        assert dsyb.event_keys() == ["C:0", "C:1"]

    def test_subset(self):
        dsyb = SymbolicDatabase.from_rows({"C": "10", "D": "01", "E": "11"})
        subset = dsyb.subset(["C", "E"])
        assert subset.names == ["C", "E"]

    def test_length_mismatch_rejected(self):
        dsyb = SymbolicDatabase.from_rows({"C": "10"})
        with pytest.raises(SymbolizationError):
            dsyb.add(SymbolicSeries("D", tuple("101"), Alphabet.binary()))

    def test_duplicate_name_rejected(self):
        dsyb = SymbolicDatabase.from_rows({"C": "10"})
        with pytest.raises(SymbolizationError):
            dsyb.add(SymbolicSeries("C", tuple("01"), Alphabet.binary()))

    def test_missing_series_raises(self):
        dsyb = SymbolicDatabase.from_rows({"C": "10"})
        with pytest.raises(SymbolizationError):
            dsyb["missing"]

    def test_empty_database_guards(self):
        with pytest.raises(SymbolizationError):
            SymbolicDatabase().n_instants

    def test_from_raw_uses_shared_mapper(self):
        raws = [TimeSeries("A", (0.0, 2.0)), TimeSeries("B", (3.0, 0.0))]
        dsyb = SymbolicDatabase.from_raw(raws, ThresholdMapper((1.0,), Alphabet.binary()))
        assert dsyb["A"].symbols == ("0", "1")
        assert dsyb["B"].symbols == ("1", "0")
