"""Executor backends: unit behavior + serial/parallel mining parity.

The headline guarantee: a :class:`MiningResult` is *identical* -- same
patterns, same supports, same season views, same order, same counters --
whichever executor and support representation ran the mining.  The parity
tests assert it on the paper's running example and on every seed dataset.

The lifecycle guarantee of the persistent runtime: one pool serves many
``map_tasks`` calls and many jobs (same worker processes throughout),
``close()`` releases it and leaves no task context behind, and a closed
executor respawns lazily on next use.
"""

import os

import pytest

from repro.core.executor import (
    ParallelExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_executor,
    executor_scope,
    get_task_context,
    resolve_executor,
    set_default_executor,
)
from repro.core.results import results_equivalent
from repro.core.stpm import ESTPM
from repro.core.approximate import ASTPM
from repro.datasets import load_dataset
from repro.exceptions import ConfigError
from repro.multigrain import HierarchicalMiner


def _double(task):
    """Module-level task fn so the process pool can pickle it."""
    return task * 2


def _read_context(task):
    """Return the installed task context plus the task."""
    return (get_task_context(), task)


def _worker_pid(task):
    """The PID of the worker that ran the task (pool-identity probe)."""
    return os.getpid()


def _context_identity(task):
    """id() of the installed context (zero-copy probe, threads only)."""
    return id(get_task_context())


def _result_key(result):
    """Everything observable about a mining result, order-sensitive."""
    return (
        [(sp.pattern, sp.seasons) for sp in result.patterns],
        result.stats.n_granules,
        result.stats.n_events_scanned,
        result.stats.n_candidate_events,
        result.stats.n_groups_generated,
        result.stats.n_candidate_groups,
        result.stats.n_candidate_patterns,
        result.stats.n_frequent,
    )


class TestExecutors:
    def test_serial_preserves_order_and_context(self):
        outcomes = list(
            SerialExecutor().map_tasks(_read_context, [1, 2, 3], "ctx")
        )
        assert outcomes == [("ctx", 1), ("ctx", 2), ("ctx", 3)]

    def test_serial_clears_context_after_exhaustion(self):
        list(SerialExecutor().map_tasks(_double, [1], {"big": "state"}))
        assert get_task_context() is None

    def test_serial_is_lazy(self):
        seen = []

        def _record(task):
            seen.append(task)
            return task

        iterator = SerialExecutor().map_tasks(_record, [1, 2, 3], None)
        assert seen == []  # nothing ran yet
        assert next(iterator) == 1
        assert seen == [1]  # one group at a time, classical memory profile
        assert list(iterator) == [2, 3]

    def test_parallel_preserves_order(self):
        outcomes = list(
            ParallelExecutor(max_workers=2, min_tasks=1).map_tasks(
                _double, list(range(20)), None
            )
        )
        assert outcomes == [task * 2 for task in range(20)]

    def test_parallel_ships_context_to_workers(self):
        outcomes = list(
            ParallelExecutor(max_workers=2, min_tasks=1).map_tasks(
                _read_context, [7], {"key": "value"}
            )
        )
        assert outcomes == [({"key": "value"}, 7)]

    def test_parallel_small_levels_run_serially(self):
        executor = ParallelExecutor(max_workers=4, min_tasks=100)
        assert list(executor.map_tasks(_double, [3], None)) == [6]

    def test_parallel_rejects_bad_settings(self):
        with pytest.raises(ConfigError):
            ParallelExecutor(max_workers=0)
        with pytest.raises(ConfigError):
            ParallelExecutor(chunk_size=0)
        with pytest.raises(ConfigError):
            ParallelExecutor(min_tasks=0)
        with pytest.raises(ConfigError):
            ParallelExecutor(min_tasks=-3)
        with pytest.raises(ConfigError):
            ParallelExecutor(start_method="gpu")

    def test_threads_rejects_bad_settings(self):
        with pytest.raises(ConfigError):
            ThreadExecutor(max_workers=0)
        with pytest.raises(ConfigError):
            ThreadExecutor(min_tasks=0)

    def test_chunk_heuristic(self):
        executor = ParallelExecutor(max_workers=2)
        assert executor._chunk(8) == 1
        assert executor._chunk(800) == 100
        assert ParallelExecutor(max_workers=2, chunk_size=5)._chunk(800) == 5
        # Skewed small levels re-balance with single-task chunks; huge
        # levels cap the chunk so stragglers can shed load.
        assert executor._chunk(7) == 1
        assert executor._chunk(4000) == 128

    def test_resolve_specs(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("parallel"), ParallelExecutor)
        assert isinstance(resolve_executor("threads"), ThreadExecutor)
        assert resolve_executor("parallel", n_workers=3).max_workers == 3
        assert resolve_executor("threads", n_workers=3).max_workers == 3
        instance = SerialExecutor()
        assert resolve_executor(instance) is instance
        with pytest.raises(ConfigError):
            resolve_executor("gpu")

    def test_resolve_rejects_instance_plus_workers(self):
        # Silently ignoring n_workers would mine with the wrong pool size.
        with pytest.raises(ConfigError):
            resolve_executor(ParallelExecutor(max_workers=2), n_workers=4)
        with pytest.raises(ConfigError):
            resolve_executor(SerialExecutor(), n_workers=2)

    def test_default_instance_tolerates_worker_preference(self):
        # Only an *explicit* instance conflicts with n_workers: a job that
        # merely carries a worker-count preference must still run on a
        # harness-installed shared default pool.
        executor = SerialExecutor()
        previous = set_default_executor(executor)
        try:
            assert resolve_executor(None, n_workers=4) is executor
        finally:
            set_default_executor(previous)

    def test_default_executor_switch(self):
        previous = set_default_executor("parallel")
        try:
            assert default_executor() == "parallel"
            assert isinstance(resolve_executor(None), ParallelExecutor)
        finally:
            set_default_executor(previous)
        assert isinstance(resolve_executor(None), SerialExecutor)


class TestExecutorLifecycle:
    """The persistent runtime: one pool, many calls and jobs; clean close."""

    def test_pool_reused_across_map_tasks_calls(self):
        with ParallelExecutor(max_workers=2, min_tasks=1, reuse_pool=True) as executor:
            first = set(executor.map_tasks(_worker_pid, range(8), None))
            pool = executor._pool
            assert pool is not None  # spawned lazily on first use
            second = set(executor.map_tasks(_worker_pid, range(8), "other-ctx"))
            third = set(executor.map_tasks(_worker_pid, range(8), None))
            assert executor._pool is pool  # same pool object...
            # ...and the same worker processes: were a pool spawned per
            # call, three calls would have shown up to six distinct PIDs.
            assert len(first | second | third) <= 2
            assert os.getpid() not in first  # genuinely out-of-process

    def test_broadcast_replaces_worker_context(self):
        with ParallelExecutor(max_workers=2, min_tasks=1, reuse_pool=True) as executor:
            first = executor.map_tasks(_read_context, [0], {"level": 1})
            second = executor.map_tasks(_read_context, [0], {"level": 2})
            assert list(first) == [({"level": 1}, 0)]
            assert list(second) == [({"level": 2}, 0)]

    def test_close_releases_pool_and_leaves_no_context(self):
        executor = ParallelExecutor(max_workers=2, min_tasks=1, reuse_pool=True)
        assert list(executor.map_tasks(_double, [1, 2], {"big": "ctx"})) == [2, 4]
        executor.close()
        assert executor._pool is None
        assert get_task_context() is None  # no context leak between jobs
        executor.close()  # idempotent
        # A closed executor respawns lazily on its next use.
        assert list(executor.map_tasks(_double, [3, 4], None)) == [6, 8]
        executor.close()

    def test_release_context_clears_worker_state(self):
        with ParallelExecutor(max_workers=2, min_tasks=1, reuse_pool=True) as executor:
            list(executor.map_tasks(_double, [1, 2], {"big": "ctx"}))
            pool = executor._pool
            executor.release_context()
            assert executor._pool is pool  # pool survives, context does not
            futures = [pool.submit(_read_context, 0) for _ in range(2)]
            assert all(f.result()[0] is None for f in futures)

    def test_threads_pool_reused_and_context_zero_copy(self):
        sentinel = {"level": "ctx"}
        with ThreadExecutor(max_workers=2, min_tasks=1) as executor:
            identities = set(
                executor.map_tasks(_context_identity, range(8), sentinel)
            )
            assert identities == {id(sentinel)}  # shared by reference
            pool = executor._pool
            assert pool is not None
            executor.map_tasks(_double, range(4), None)
            assert executor._pool is pool
        assert executor._pool is None
        assert get_task_context() is None

    def test_executor_scope_owns_name_resolved_backends(self):
        with executor_scope("threads", n_workers=2) as runner:
            assert isinstance(runner, ThreadExecutor)
            assert list(runner.map_tasks(_double, [1, 2, 3], None)) == [2, 4, 6]
            assert runner._pool is not None
        assert runner._pool is None  # the scope owned and closed it

    def test_executor_scope_leaves_instances_open(self):
        executor = ThreadExecutor(max_workers=2, min_tasks=1)
        try:
            with executor_scope(executor) as runner:
                assert runner is executor
                runner.map_tasks(_double, [1, 2], None)
            assert executor._pool is not None  # caller owns the pool
        finally:
            executor.close()

    def test_engine_defaults_owns_named_executor(self, monkeypatch):
        from repro.harness.runner import engine_defaults

        # A name resolved on a single-core host would pin max_workers=1
        # and never spawn a pool; pretend we have two cores so the
        # ownership (spawn here, close on scope exit) is observable.
        monkeypatch.setattr("repro.core.executor.os.cpu_count", lambda: 2)
        with engine_defaults(executor="threads"):
            installed = default_executor()
            assert isinstance(installed, ThreadExecutor)
            list(installed.map_tasks(_double, [1, 2, 3], None))
            assert installed._pool is not None
        assert default_executor() == "serial"
        assert installed._pool is None  # harness closed the run's pool


class TestPoolReuseParity:
    """One persistent pool across whole jobs stays equivalent to serial."""

    @pytest.mark.parametrize("name", ["RE", "SC", "INF", "HFM"])
    def test_seed_dataset_jobs_share_one_pool(self, shared_pool, name):
        dataset = load_dataset(name, "tiny")
        params = dataset.params(
            max_period_pct=0.4, min_density_pct=0.75, min_season=4
        )
        dseq = dataset.dseq()
        serial = ESTPM(dseq, params).mine()
        assert serial.patterns, f"parity run on {name} mined nothing"
        pooled = ESTPM(dseq, params, executor=shared_pool).mine()
        assert results_equivalent(serial, pooled)
        assert shared_pool._pool is not None  # the job did not close it

    def test_hierarchical_job_shares_the_pool(self, shared_pool):
        dataset = load_dataset("INF", "tiny")
        settings = {
            "ratios": [dataset.ratio, dataset.ratio * 2], "min_season": 4
        }
        serial = HierarchicalMiner(dataset.dsyb, **settings).mine()
        pooled = HierarchicalMiner(
            dataset.dsyb, executor=shared_pool, **settings
        ).mine()
        assert [level.ratio for level in serial.levels] == [
            level.ratio for level in pooled.levels
        ]
        for mine, theirs in zip(serial.levels, pooled.levels):
            assert results_equivalent(mine.result, theirs.result)


@pytest.fixture(scope="class")
def shared_pool():
    """One persistent parallel executor shared by a whole test class."""
    with ParallelExecutor(max_workers=2, min_tasks=1, reuse_pool=True) as executor:
        yield executor


class TestMiningParity:
    def test_paper_example_parity(self, paper_dseq, paper_params):
        serial = ESTPM(paper_dseq, paper_params, executor="serial").mine()
        parallel = ESTPM(
            paper_dseq,
            paper_params,
            executor=ParallelExecutor(max_workers=2, min_tasks=1),
        ).mine()
        assert _result_key(serial) == _result_key(parallel)

    @pytest.mark.parametrize("name", ["RE", "SC", "INF", "HFM"])
    def test_seed_dataset_parity_across_engines(self, name):
        dataset = load_dataset(name, "tiny")
        params = dataset.params(
            max_period_pct=0.4, min_density_pct=0.75, min_season=4
        )
        dseq = dataset.dseq()
        baseline = ESTPM(dseq, params).mine()
        assert baseline.patterns, f"parity run on {name} mined nothing"
        parallel = ESTPM(dseq, params, executor="parallel").mine()
        assert _result_key(baseline) == _result_key(parallel)
        threaded = ESTPM(
            dseq, params, executor=ThreadExecutor(max_workers=2, min_tasks=1)
        ).mine()
        assert _result_key(baseline) == _result_key(threaded)
        list_backend = ESTPM(dseq, params, support_backend="list").mine()
        assert _result_key(baseline) == _result_key(list_backend)

    def test_astpm_forwards_engine_knobs(self, tiny_inf):
        params = tiny_inf.params(
            max_period_pct=0.4, min_density_pct=0.75, min_season=4
        )
        serial = ASTPM(
            tiny_inf.dsyb, tiny_inf.ratio, params, dseq=tiny_inf.dseq()
        ).mine()
        parallel = ASTPM(
            tiny_inf.dsyb,
            tiny_inf.ratio,
            params,
            dseq=tiny_inf.dseq(),
            executor="parallel",
            support_backend="list",
        ).mine()
        assert [(sp.pattern, sp.seasons) for sp in serial.patterns] == [
            (sp.pattern, sp.seasons) for sp in parallel.patterns
        ]
