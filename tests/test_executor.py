"""Executor backends: unit behavior + serial/parallel mining parity.

The headline guarantee: a :class:`MiningResult` is *identical* -- same
patterns, same supports, same season views, same order, same counters --
whichever executor and support representation ran the mining.  The parity
tests assert it on the paper's running example and on every seed dataset.
"""

import pytest

from repro.core.executor import (
    ParallelExecutor,
    SerialExecutor,
    default_executor,
    get_task_context,
    resolve_executor,
    set_default_executor,
)
from repro.core.stpm import ESTPM
from repro.core.approximate import ASTPM
from repro.datasets import load_dataset
from repro.exceptions import ConfigError


def _double(task):
    """Module-level task fn so the process pool can pickle it."""
    return task * 2


def _read_context(task):
    """Return the installed task context plus the task."""
    return (get_task_context(), task)


def _result_key(result):
    """Everything observable about a mining result, order-sensitive."""
    return (
        [(sp.pattern, sp.seasons) for sp in result.patterns],
        result.stats.n_granules,
        result.stats.n_events_scanned,
        result.stats.n_candidate_events,
        result.stats.n_groups_generated,
        result.stats.n_candidate_groups,
        result.stats.n_candidate_patterns,
        result.stats.n_frequent,
    )


class TestExecutors:
    def test_serial_preserves_order_and_context(self):
        outcomes = list(
            SerialExecutor().map_tasks(_read_context, [1, 2, 3], "ctx")
        )
        assert outcomes == [("ctx", 1), ("ctx", 2), ("ctx", 3)]

    def test_serial_clears_context_after_exhaustion(self):
        list(SerialExecutor().map_tasks(_double, [1], {"big": "state"}))
        assert get_task_context() is None

    def test_serial_is_lazy(self):
        seen = []

        def _record(task):
            seen.append(task)
            return task

        iterator = SerialExecutor().map_tasks(_record, [1, 2, 3], None)
        assert seen == []  # nothing ran yet
        assert next(iterator) == 1
        assert seen == [1]  # one group at a time, classical memory profile
        assert list(iterator) == [2, 3]

    def test_parallel_preserves_order(self):
        outcomes = list(
            ParallelExecutor(max_workers=2, min_tasks=1).map_tasks(
                _double, list(range(20)), None
            )
        )
        assert outcomes == [task * 2 for task in range(20)]

    def test_parallel_ships_context_to_workers(self):
        outcomes = list(
            ParallelExecutor(max_workers=2, min_tasks=1).map_tasks(
                _read_context, [7], {"key": "value"}
            )
        )
        assert outcomes == [({"key": "value"}, 7)]

    def test_parallel_small_levels_run_serially(self):
        executor = ParallelExecutor(max_workers=4, min_tasks=100)
        assert list(executor.map_tasks(_double, [3], None)) == [6]

    def test_parallel_rejects_bad_settings(self):
        with pytest.raises(ConfigError):
            ParallelExecutor(max_workers=0)
        with pytest.raises(ConfigError):
            ParallelExecutor(chunk_size=0)

    def test_chunk_heuristic(self):
        executor = ParallelExecutor(max_workers=2)
        assert executor._chunk(8) == 1
        assert executor._chunk(800) == 100
        assert ParallelExecutor(max_workers=2, chunk_size=5)._chunk(800) == 5

    def test_resolve_specs(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("parallel"), ParallelExecutor)
        assert resolve_executor("parallel", n_workers=3).max_workers == 3
        instance = SerialExecutor()
        assert resolve_executor(instance) is instance
        with pytest.raises(ConfigError):
            resolve_executor("gpu")

    def test_default_executor_switch(self):
        previous = set_default_executor("parallel")
        try:
            assert default_executor() == "parallel"
            assert isinstance(resolve_executor(None), ParallelExecutor)
        finally:
            set_default_executor(previous)
        assert isinstance(resolve_executor(None), SerialExecutor)


class TestMiningParity:
    def test_paper_example_parity(self, paper_dseq, paper_params):
        serial = ESTPM(paper_dseq, paper_params, executor="serial").mine()
        parallel = ESTPM(
            paper_dseq,
            paper_params,
            executor=ParallelExecutor(max_workers=2, min_tasks=1),
        ).mine()
        assert _result_key(serial) == _result_key(parallel)

    @pytest.mark.parametrize("name", ["RE", "SC", "INF", "HFM"])
    def test_seed_dataset_parity_across_engines(self, name):
        dataset = load_dataset(name, "tiny")
        params = dataset.params(
            max_period_pct=0.4, min_density_pct=0.75, min_season=4
        )
        dseq = dataset.dseq()
        baseline = ESTPM(dseq, params).mine()
        assert baseline.patterns, f"parity run on {name} mined nothing"
        parallel = ESTPM(dseq, params, executor="parallel").mine()
        assert _result_key(baseline) == _result_key(parallel)
        list_backend = ESTPM(dseq, params, support_backend="list").mine()
        assert _result_key(baseline) == _result_key(list_backend)

    def test_astpm_forwards_engine_knobs(self, tiny_inf):
        params = tiny_inf.params(
            max_period_pct=0.4, min_density_pct=0.75, min_season=4
        )
        serial = ASTPM(
            tiny_inf.dsyb, tiny_inf.ratio, params, dseq=tiny_inf.dseq()
        ).mine()
        parallel = ASTPM(
            tiny_inf.dsyb,
            tiny_inf.ratio,
            params,
            dseq=tiny_inf.dseq(),
            executor="parallel",
            support_backend="list",
        ).mine()
        assert [(sp.pattern, sp.seasons) for sp in serial.patterns] == [
            (sp.pattern, sp.seasons) for sp in parallel.patterns
        ]
