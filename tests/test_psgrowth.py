"""Unit tests for PS-growth, cross-checked against brute force."""

from itertools import combinations

import pytest

from repro.baselines.psgrowth import PSGrowth
from repro.exceptions import MiningError


def brute_force_itemsets(transactions, min_sup, max_per, max_size=None):
    """Reference periodic-frequent itemset miner using raw tid lists."""
    items = sorted({item for tids in transactions.values() for item in tids})
    n = max(transactions, default=0)
    results = {}
    for size in range(1, (max_size or len(items)) + 1):
        for itemset in combinations(items, size):
            tids = sorted(
                tid
                for tid, present in transactions.items()
                if set(itemset) <= set(present)
            )
            if len(tids) < min_sup:
                continue
            gaps = [tids[0]] + [b - a for a, b in zip(tids, tids[1:])] + [n - tids[-1]]
            if max(gaps) <= max_per:
                results[itemset] = len(tids)
    return results


SMALL_DB = {
    1: ["a", "b"],
    2: ["a", "b", "c"],
    3: ["b", "c"],
    4: ["a", "b"],
    5: ["a", "c"],
    6: ["a", "b", "c"],
}


class TestAgainstBruteForce:
    @pytest.mark.parametrize("min_sup,max_per", [(2, 2), (3, 2), (2, 3), (4, 6)])
    def test_small_database(self, min_sup, max_per):
        mined = {
            r.items: r.support
            for r in PSGrowth(SMALL_DB, min_sup=min_sup, max_per=max_per).mine()
        }
        expected = brute_force_itemsets(SMALL_DB, min_sup, max_per)
        assert mined == expected

    def test_randomized_databases(self):
        import random

        for seed in range(12):
            rng = random.Random(seed)
            n = rng.randint(6, 20)
            items = "abcde"[: rng.randint(2, 5)]
            transactions = {
                tid: [item for item in items if rng.random() < 0.5]
                for tid in range(1, n + 1)
            }
            transactions = {t: i for t, i in transactions.items() if i}
            if not transactions:
                continue
            min_sup = rng.randint(1, 3)
            max_per = rng.randint(2, n)
            mined = {
                r.items: r.support
                for r in PSGrowth(transactions, min_sup=min_sup, max_per=max_per).mine()
            }
            expected = brute_force_itemsets(transactions, min_sup, max_per)
            # Supports are always exact; the period-summary representation
            # can only err toward acceptance (see pstree docstring).
            for itemset, support in expected.items():
                assert mined.get(itemset) == support, (seed, itemset)
            for itemset in mined:
                tids = sorted(
                    tid
                    for tid, present in transactions.items()
                    if set(itemset) <= set(present)
                )
                assert len(tids) >= min_sup


class TestOptions:
    def test_max_itemset_size(self):
        mined = PSGrowth(SMALL_DB, min_sup=2, max_per=6, max_itemset_size=1).mine()
        assert all(len(r) == 1 for r in mined)
        assert {r.items[0] for r in mined} == {"a", "b", "c"}

    def test_max_period_is_summary_visible(self):
        # With max_per=6 the tids 1,2,4,5,6 of 'a' compress into one run,
        # so the visible max period is the boundary gap (tid 1 from 0) --
        # the period-summary approximation documented in pstree.
        mined = {r.items: r for r in PSGrowth(SMALL_DB, min_sup=2, max_per=6).mine()}
        assert mined[("a",)].max_period == 1

    def test_max_period_exact_when_runs_split(self):
        # With max_per=1, tid gaps above 1 split runs, making the visible
        # periods exact: item 'c' occurs at 2, 3, 5, 6 -> max gap 2 > 1,
        # so 'c' is not periodic.
        db = {1: ["a"], 2: ["c"], 3: ["c"], 4: ["a"], 5: ["c"], 6: ["c"]}
        mined = {r.items for r in PSGrowth(db, min_sup=2, max_per=1).mine()}
        assert ("c",) not in mined

    def test_validation(self):
        with pytest.raises(MiningError):
            PSGrowth(SMALL_DB, min_sup=0, max_per=2)
        with pytest.raises(MiningError):
            PSGrowth(SMALL_DB, min_sup=1, max_per=0)

    def test_empty_database(self):
        assert PSGrowth({}, min_sup=1, max_per=1).mine() == []
