"""Smoke tests: the runnable examples execute cleanly.

The two fast examples run end-to-end as subprocesses (their internal
assertions double as checks); the slower dataset-driven examples are
compile- and import-checked so a broken API surface fails the suite
without multi-minute mining runs.
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))
FAST_EXAMPLES = [
    "quickstart.py",
    "custom_data.py",
    "streaming_updates.py",
    "multi_granularity.py",
    "tracing_run.py",
]


def test_every_expected_example_exists():
    names = {path.name for path in ALL_EXAMPLES}
    assert {
        "quickstart.py",
        "custom_data.py",
        "energy_seasonality.py",
        "influenza_surveillance.py",
        "traffic_incidents.py",
        "advanced_workflow.py",
        "streaming_updates.py",
        "multi_granularity.py",
        "tracing_run.py",
    } <= names


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_examples_run(name):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_examples_compile(path):
    py_compile.compile(str(path), doraise=True)


def test_package_doctest():
    import doctest

    import repro

    failures, _ = doctest.testmod(repro, verbose=False)
    assert failures == 0
