"""The streaming subsystem's hard guarantee: prefix parity with batch E-STPM.

Feeding any prefix of a granule stream through :class:`IncrementalSTPM`
must produce a mining result equivalent to running batch E-STPM on that
prefix -- same frequent patterns, same supports, near support sets, and
seasons -- for every seed dataset profile, both support backends, and
both single-granule and multi-granule batches.
"""

import pytest

from repro import ESTPM, IncrementalSTPM
from repro.core.results import results_equivalent
from repro.datasets.registry import DATASET_BUILDERS


def _assert_prefix_parity(
    dseq, params, backend, batch_granules, check_every=1, kernel=None
):
    """Stream ``dseq`` in batches, asserting parity at sampled prefixes."""
    miner = IncrementalSTPM.empty(
        dseq.ratio, params, support_backend=backend, kernel=kernel
    )
    position = 0
    n_batches = 0
    checked = 0
    while position < len(dseq):
        rows = dseq.rows[position : position + batch_granules]
        position += len(rows)
        delta = miner.advance(rows)
        assert delta.n_granules == position
        n_batches += 1
        if n_batches % check_every == 0 or position == len(dseq):
            batch = ESTPM(
                dseq.prefix(position), params, support_backend=backend
            ).mine()
            streaming = miner.result()
            assert results_equivalent(streaming, batch), (
                f"prefix {position}: streaming diverged from batch "
                f"(backend={backend}, batch_granules={batch_granules})"
            )
            checked += 1
    assert checked >= 2, "the parity loop must actually compare prefixes"
    return miner


class TestPaperExampleParity:
    """Every prefix of the paper's running example, both backends."""

    @pytest.mark.parametrize("backend", ["bitset", "list"])
    @pytest.mark.parametrize("batch_granules", [1, 3])
    def test_every_prefix(self, paper_dseq, paper_params, backend, batch_granules):
        miner = _assert_prefix_parity(
            paper_dseq, paper_params, backend, batch_granules
        )
        assert len(miner.result()) == 25  # the golden pattern count


class TestSeedDatasetParity:
    """All four seed dataset profiles, both backends, batches of 1 and k."""

    @pytest.fixture(scope="class")
    def streams(self):
        datasets = {}
        for name in DATASET_BUILDERS:
            dataset = DATASET_BUILDERS[name](n_sequences=44, n_series=4)
            params = dataset.params(min_season=2, min_density_pct=0.6)
            datasets[name] = (dataset.dseq(), params)
        return datasets

    @pytest.mark.parametrize("name", sorted(DATASET_BUILDERS))
    def test_granule_by_granule(self, streams, name):
        dseq, params = streams[name]
        miner = _assert_prefix_parity(dseq, params, "bitset", 1, check_every=8)
        assert len(miner.result()) > 0, "parity must be checked on real patterns"

    @pytest.mark.parametrize("name", sorted(DATASET_BUILDERS))
    def test_multi_granule_batches(self, streams, name):
        dseq, params = streams[name]
        _assert_prefix_parity(dseq, params, "list", 9, check_every=2)

    def test_deeper_patterns(self, streams):
        dseq, params = streams["INF"]
        deeper = params.with_updates(max_pattern_length=4)
        _assert_prefix_parity(dseq, deeper, "bitset", 7, check_every=3)


class TestKernelParity:
    """Every step-2.2 kernel preserves streaming/batch prefix parity.

    The incremental miner threads its ``kernel`` selection through both
    the pair-collection and the group-extension calls; the batch side of
    the comparison mines with the default kernel, so this also pins
    array == sweep == reference end to end over growing prefixes."""

    @pytest.mark.parametrize("kernel", ["array", "sweep", "reference"])
    def test_paper_example_all_kernels(self, paper_dseq, paper_params, kernel):
        miner = _assert_prefix_parity(
            paper_dseq, paper_params, "bitset", 3, kernel=kernel
        )
        assert miner.kernel == kernel
        assert len(miner.result()) == 25

    def test_seed_dataset_array_kernel(self):
        dataset = DATASET_BUILDERS["INF"](n_sequences=44, n_series=4)
        params = dataset.params(min_season=2, min_density_pct=0.6)
        _assert_prefix_parity(
            dataset.dseq(), params, "bitset", 9, check_every=2, kernel="array"
        )
