"""Columnar instance index + sweep-join kernels: units and kernel parity.

The headline guarantee of the columnar engine: a whole mining job run on
the sweep kernels is ``results_equivalent`` to the same job on the
pre-index reference kernels -- on every seed dataset, for both miners,
under both executors.  Plus the unit surface: column construction and
caching, flyweight interning, compact assignment decoding, and the
``event_a == event_b`` self-pair paths.
"""

import pickle

import pytest

from repro import ESTPM, MiningParams, SymbolicDatabase, build_sequence_database
from repro.core.approximate import ASTPM
from repro.core.executor import ParallelExecutor
from repro.core.hlh import HLH1
from repro.core.instance_index import (
    EMPTY_COLUMN,
    InstanceColumn,
    decode_assignment,
    intern_pair_pattern,
    intern_pattern,
    intern_triple,
    validate_kernel,
)
from repro.core.pattern import pattern_from_instances
from repro.core.results import results_equivalent
from repro.datasets import load_dataset
from repro.events.event import EventInstance
from repro.events.relations import FOLLOWS
from repro.exceptions import ConfigError, MiningError
from repro.streaming import IncrementalSTPM


def _dseq(rows: dict[str, str], ratio: int):
    return build_sequence_database(SymbolicDatabase.from_rows(rows), ratio)


def _params(**overrides):
    defaults = {
        "max_period": 2,
        "min_density": 1,
        "dist_interval": (0, 8),
        "min_season": 1,
        "max_pattern_length": 3,
    }
    defaults.update(overrides)
    return MiningParams(**defaults)


class TestInstanceColumn:
    def test_columns_are_start_sorted(self):
        instances = [
            EventInstance("A:1", 5, 6),
            EventInstance("A:1", 1, 2),
            EventInstance("A:1", 3, 3),
        ]
        column = InstanceColumn.from_instances(instances)
        assert column.starts == (1, 3, 5)
        assert column.ends == (2, 3, 6)
        assert [i.start for i in column.instances] == [1, 3, 5]

    def test_partial_overlap_allowed_nesting_rejected(self):
        # Partial overlap keeps both columns monotone -- fine.  Nesting
        # breaks the ends monotonicity the sweep bounds rely on, so a
        # hand-built structure violating Def. 3.10 is rejected loudly.
        column = InstanceColumn.from_instances(
            [EventInstance("A:1", 1, 5), EventInstance("A:1", 3, 8)]
        )
        assert column.ends == (5, 8)
        with pytest.raises(MiningError):
            InstanceColumn.from_instances(
                [EventInstance("A:1", 1, 30), EventInstance("A:1", 2, 3)]
            )

    def test_hlh1_caches_columns(self):
        hlh1 = HLH1()
        instance = EventInstance("A:1", 1, 2)
        hlh1.add_event("A:1", [1], {1: [instance]})
        column = hlh1.column_of("A:1", 1)
        assert column.starts == (1,)
        assert hlh1.column_of("A:1", 1) is column  # cached
        assert hlh1.column_of("A:1", 99) is EMPTY_COLUMN
        assert hlh1.column_of("B:1", 1) is EMPTY_COLUMN

    def test_add_event_invalidates_columns(self):
        hlh1 = HLH1()
        hlh1.add_event("A:1", [1], {1: [EventInstance("A:1", 1, 2)]})
        stale = hlh1.column_of("A:1", 1)
        hlh1.add_event("A:1", [1], {1: [EventInstance("A:1", 3, 4)]})
        fresh = hlh1.column_of("A:1", 1)
        assert fresh is not stale
        assert fresh.starts == (3,)

    def test_pickle_drops_the_cache(self):
        hlh1 = HLH1()
        hlh1.add_event("A:1", [1], {1: [EventInstance("A:1", 1, 2)]})
        hlh1.column_of("A:1", 1)
        clone = pickle.loads(pickle.dumps(hlh1))
        assert clone._columns == {}
        assert clone.eh == hlh1.eh
        assert clone.gh == hlh1.gh
        assert clone.column_of("A:1", 1).starts == (1,)


class TestInterning:
    def test_triples_and_patterns_are_flyweights(self):
        t1 = intern_triple(FOLLOWS, "A:1", "B:1")
        t2 = intern_triple(FOLLOWS, "A:1", "B:1")
        assert t1 is t2
        p1 = intern_pair_pattern(FOLLOWS, "A:1", "B:1")
        p2 = intern_pattern(("A:1", "B:1"), (t1,))
        assert p1 is p2

    def test_clear_intern_caches(self):
        from repro.core import instance_index

        intern_triple(FOLLOWS, "A:1", "B:1")
        intern_pair_pattern(FOLLOWS, "A:1", "B:1")
        assert instance_index._TRIPLE_CACHE and instance_index._PATTERN_CACHE
        instance_index.clear_intern_caches()
        assert not instance_index._TRIPLE_CACHE
        assert not instance_index._PATTERN_CACHE

    def test_intern_caches_are_hard_bounded(self, monkeypatch):
        from repro.core import instance_index

        instance_index.clear_intern_caches()
        monkeypatch.setattr(instance_index, "_INTERN_CACHE_LIMIT", 4)
        for i in range(10):
            intern_triple(FOLLOWS, f"A:{i}", "B:1")
        assert len(instance_index._TRIPLE_CACHE) <= 4
        # A reset only costs re-construction; equality is unaffected.
        again = intern_triple(FOLLOWS, "A:0", "B:1")
        assert again == intern_triple(FOLLOWS, "A:0", "B:1")
        instance_index.clear_intern_caches()

    def test_release_context_clears_worker_intern_caches(self):
        """The end-of-job release broadcast (PR 4's 'idle kept pool pins
        no mining state') also drops the flyweight caches in workers."""
        import multiprocessing

        from repro.core import executor as executor_module
        from repro.core import instance_index
        from repro.core.executor import _receive_context, get_task_context

        intern_triple(FOLLOWS, "A:1", "B:1")
        executor_module._init_worker(multiprocessing.Barrier(1))
        try:
            _receive_context(pickle.dumps(None))
        finally:
            executor_module._init_worker(None)
        assert get_task_context() is None
        assert not instance_index._TRIPLE_CACHE

    def test_validate_kernel(self):
        assert validate_kernel("array") == "array"
        assert validate_kernel("sweep") == "sweep"
        assert validate_kernel("reference") == "reference"
        with pytest.raises(ConfigError):
            validate_kernel("vectorized")
        with pytest.raises(ConfigError):
            ESTPM(_dseq({"A": "0101"}, 2), _params(), kernel="nope").mine()


class TestEncodedAssignments:
    def test_ghk_assignments_decode_to_realizing_instances(self):
        """Every encoded GHk assignment decodes to an instance tuple
        that realizes exactly its pattern (pair and extension levels)."""
        miner = IncrementalSTPM(
            _dseq(
                {
                    "A": "110100110100110100",
                    "B": "011010011010011010",
                    "C": "101101101101101101",
                },
                3,
            ),
            _params(),
        )
        miner.advance()
        state = miner.state
        checked = 0
        for k, mirror in state.hlhk.items():
            for pattern, by_granule in mirror.ghk.items():
                assert pattern.size == k
                for granule, encoded_list in by_granule.items():
                    decoded_list = mirror.decoded_assignments_of(
                        pattern, granule, state.hlh1
                    )
                    assert len(decoded_list) == len(encoded_list)
                    for encoded, decoded in zip(encoded_list, decoded_list):
                        assert decoded == decode_assignment(
                            state.hlh1, pattern.events, granule, encoded
                        )
                        assert tuple(i.event for i in decoded) == pattern.events
                        realized = pattern_from_instances(
                            decoded, miner.params.relation
                        )
                        assert realized == pattern
                        checked += 1
        assert checked > 0


class TestSelfPairPaths:
    """The event_a == event_b paths of both kernels (pairs + extension)."""

    ROWS = {
        # A:1 occurs twice per granule (ratio 6) -> self pairs everywhere.
        "A": "110110" * 6,
        "B": "011011" * 6,
    }

    def test_self_pair_patterns_match_reference(self):
        dseq = _dseq(self.ROWS, 6)
        params = _params(max_pattern_length=3)
        sweep = ESTPM(dseq, params).mine()
        reference = ESTPM(dseq, params, kernel="reference").mine()
        assert results_equivalent(sweep, reference)
        self_pairs = [
            sp for sp in sweep.patterns if sp.pattern.events == ("A:1", "A:1")
        ]
        assert self_pairs, "workload must exercise the self-pair kernel path"
        repeated_triples = [
            sp
            for sp in sweep.patterns
            if sp.size == 3 and sp.pattern.events.count("A:1") >= 2
        ]
        assert repeated_triples, (
            "workload must exercise the repeated-event extension path"
        )

    def test_extension_never_pairs_an_instance_with_itself(self):
        dseq = _dseq(self.ROWS, 6)
        miner = IncrementalSTPM(dseq, _params(max_pattern_length=3))
        miner.advance()
        state = miner.state
        for k, mirror in state.hlhk.items():
            if k < 3:
                continue
            for pattern, by_granule in mirror.ghk.items():
                for granule in by_granule:
                    for decoded in mirror.decoded_assignments_of(
                        pattern, granule, state.hlh1
                    ):
                        assert len(set(decoded)) == len(decoded)


class TestKernelParity:
    """Array == sweep == reference on all seed datasets x miners x executors."""

    @pytest.fixture(scope="class")
    def pool(self):
        with ParallelExecutor(max_workers=2) as executor:
            yield executor

    @pytest.mark.parametrize("name", ["RE", "SC", "INF", "HFM"])
    def test_estpm_parity(self, pool, name):
        dataset = load_dataset(name, "tiny")
        params = dataset.params(
            max_period_pct=0.4, min_density_pct=0.75, min_season=4
        )
        dseq = dataset.dseq()
        baseline = ESTPM(dseq, params, kernel="reference").mine()
        assert baseline.patterns, f"parity run on {name} mined nothing"
        for kernel, executor in (
            ("array", "serial"),
            ("array", pool),
            ("sweep", "serial"),
            ("sweep", pool),
            ("reference", pool),
        ):
            result = ESTPM(dseq, params, kernel=kernel, executor=executor).mine()
            assert results_equivalent(result, baseline), (name, kernel, executor)

    @pytest.mark.parametrize("name", ["RE", "SC", "INF", "HFM"])
    def test_astpm_parity(self, pool, name):
        dataset = load_dataset(name, "tiny")
        params = dataset.params(
            max_period_pct=0.4, min_density_pct=0.75, min_season=4
        )
        dseq = dataset.dseq()
        baseline = ASTPM(
            dataset.dsyb, dataset.ratio, params, dseq=dseq, kernel="reference"
        ).mine()
        for kernel, executor in (
            ("array", "serial"),
            ("array", pool),
            ("sweep", "serial"),
            ("sweep", pool),
            ("reference", pool),
        ):
            result = ASTPM(
                dataset.dsyb,
                dataset.ratio,
                params,
                dseq=dseq,
                kernel=kernel,
                executor=executor,
            ).mine()
            assert results_equivalent(result, baseline), (name, kernel, executor)
