"""Property tests: the sweep-join kernel equals the naive enumeration.

On random instance sets and random ``epsilon`` / ``min_overlap``
configurations (small coordinate ranges, so exact epsilon-boundary pairs
are generated constantly), the columnar sweep join must reproduce the
naive ``product`` + ``relation_of_pair`` enumeration exactly: same
patterns (relation + orientation), same supports, same deduplicated
assignments.  A second property runs whole random mining jobs through
both kernels and compares the results, covering the extension kernel's
Iterative Check against the pre-index loops.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ESTPM, MiningParams, SymbolicDatabase, build_sequence_database
from repro.core._kernel_reference import reference_collect_pair_patterns
from repro.core.hlh import HLH1
from repro.core.instance_index import decode_assignment
from repro.core.results import results_equivalent
from repro.core.stpm import collect_pair_patterns
from repro.events.event import EventInstance
from repro.events.relations import RelationConfig, relation_between, relation_of_bounds


@st.composite
def instance_runs(draw, event: str, horizon: int = 14):
    """Disjoint ascending runs of one event inside one granule."""
    instances = []
    position = draw(st.integers(1, 4))
    while position <= horizon:
        end = draw(st.integers(position, min(position + 3, horizon)))
        instances.append(EventInstance(event, position, end))
        position = end + 1 + draw(st.integers(1, 4))
    return instances


relation_configs = st.builds(
    RelationConfig, epsilon=st.integers(0, 3), min_overlap=st.integers(1, 3)
)


def _hlh1_with(columns: dict[str, dict[int, list[EventInstance]]]) -> HLH1:
    hlh1 = HLH1()
    for event, by_granule in columns.items():
        hlh1.add_event(event, sorted(by_granule), by_granule)
    return hlh1


def _run_both(hlh1, event_a, event_b, granules, config):
    sweep_support, sweep_assignments = {}, {}
    collect_pair_patterns(
        hlh1, event_a, event_b, granules, config, sweep_support, sweep_assignments
    )
    naive_support, naive_assignments = {}, {}
    reference_collect_pair_patterns(
        hlh1, event_a, event_b, granules, config, naive_support, naive_assignments
    )
    return (sweep_support, sweep_assignments), (naive_support, naive_assignments)


def _assert_kernels_agree(hlh1, event_a, event_b, granules, config):
    (sweep_support, sweep_assignments), (naive_support, naive_assignments) = _run_both(
        hlh1, event_a, event_b, granules, config
    )
    assert sweep_support == naive_support
    assert set(sweep_assignments) == set(naive_assignments)
    for pattern, by_granule in sweep_assignments.items():
        naive_by_granule = naive_assignments[pattern]
        assert set(by_granule) == set(naive_by_granule)
        for granule, encoded_list in by_granule.items():
            decoded = [
                decode_assignment(hlh1, pattern.events, granule, encoded)
                for encoded in encoded_list
            ]
            # Same related pairs (orientation included), same dedup.
            assert sorted(decoded) == sorted(naive_by_granule[granule])
            assert len(set(decoded)) == len(decoded)


@given(
    instance_runs("A:1"),
    instance_runs("B:1"),
    instance_runs("A:1"),
    instance_runs("B:1"),
    relation_configs,
)
@settings(max_examples=200, deadline=None)
def test_sweep_join_equals_naive_product(a1, b1, a2, b2, config):
    hlh1 = _hlh1_with(
        {"A:1": {1: a1, 2: a2}, "B:1": {1: b1, 2: b2}}
    )
    _assert_kernels_agree(hlh1, "A:1", "B:1", [1, 2], config)


@given(instance_runs("A:1"), instance_runs("A:1"), relation_configs)
@settings(max_examples=150, deadline=None)
def test_sweep_self_join_equals_naive_combinations(a1, a2, config):
    hlh1 = _hlh1_with({"A:1": {1: a1, 2: a2}})
    _assert_kernels_agree(hlh1, "A:1", "A:1", [1, 2], config)


@given(
    st.integers(1, 8),
    st.integers(1, 8),
    st.integers(1, 8),
    st.integers(1, 8),
    st.integers(0, 3),
    st.integers(1, 3),
)
@settings(max_examples=200, deadline=None)
def test_relation_of_bounds_matches_relation_between(
    start_i, dur_i, start_j, dur_j, epsilon, min_overlap
):
    """The scalar bounds classifier (inlined by the kernels) is exactly
    relation_between on the ordered pair -- boundary values included."""
    a = EventInstance("A:1", start_i, start_i + dur_i - 1)
    b = EventInstance("B:1", start_j, start_j + dur_j - 1)
    earlier, later = (a, b) if a.sort_key() <= b.sort_key() else (b, a)
    config = RelationConfig(epsilon=epsilon, min_overlap=min_overlap)
    assert relation_of_bounds(
        earlier.start, earlier.end, later.start, later.end, epsilon, min_overlap
    ) == relation_between(earlier, later, config)


@st.composite
def mining_inputs(draw):
    n_series = draw(st.integers(2, 3))
    length = draw(st.integers(12, 30))
    rows = {
        f"S{i}": "".join(
            draw(st.lists(st.sampled_from("01"), min_size=length, max_size=length))
        )
        for i in range(n_series)
    }
    params = MiningParams(
        max_period=draw(st.integers(1, 3)),
        min_density=1,
        dist_interval=(draw(st.integers(0, 2)), draw(st.integers(3, 10))),
        min_season=1,
        relation=draw(relation_configs),
        max_pattern_length=3,
    )
    dseq = build_sequence_database(
        SymbolicDatabase.from_rows(rows), draw(st.sampled_from([2, 3]))
    )
    return dseq, params


@given(mining_inputs())
@settings(max_examples=40, deadline=None)
def test_whole_jobs_agree_across_kernels(inputs):
    """End-to-end kernel parity under random epsilon/min_overlap configs
    (exercises the extension kernel's verdict rows + Iterative Check)."""
    dseq, params = inputs
    sweep = ESTPM(dseq, params).mine()
    reference = ESTPM(dseq, params, kernel="reference").mine()
    assert results_equivalent(sweep, reference)
