#!/usr/bin/env python3
"""CI smoke for the resilience layer: crash a multigrain job, resume it.

Runs the ``freqstpfts multigrain`` CLI in subprocesses, end to end:

1. uninjected, archiving the baseline multi-level result;
2. with a ``REPRO_FAULT_PLAN`` that fails one level task after all its
   retries -- the strict job must exit non-zero, leaving its
   ``--resume`` job-progress checkpoint holding the completed level;
3. with the fault cleared and the same ``--resume`` path -- the job
   must skip the checkpointed level, mine the one that failed, and
   archive a result equivalent to the baseline;
4. with a worker-kill plan on a parallel pool -- the pool-break
   recovery must absorb the dead worker and the job must *succeed*
   in one go, again with an equivalent archive.

Exit code 0 on success, 1 on failure, with one verdict line per leg.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

# Allow running straight from a checkout without installing.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.results import results_equivalent  # noqa: E402
from repro.io.results_json import load_results_archive  # noqa: E402
from repro.resilience import FAULT_PLAN_ENV, FaultPlan, FaultSpec  # noqa: E402

#: One small two-level hierarchy job; every leg runs these arguments.
JOB = [
    "multigrain",
    "--dataset", "RE",
    "--profile", "tiny",
    "--multiples", "1", "2",
    "--min-season", "4",
]

#: Fails every attempt of the second level task (the first level is the
#: completed work the resume must skip).
CRASH_PLAN = FaultPlan(
    seed=42, faults=(FaultSpec(site="task", op="raise", index=1),)
)

#: Kills the worker running the first attempt of every level task; the
#: pool-break recovery resubmits and the retry succeeds.
KILL_PLAN = FaultPlan(
    seed=42, faults=(FaultSpec(site="task", op="kill", attempt=0),)
)


def run_cli(extra: list[str], plan: FaultPlan | None = None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC)
    env.pop(FAULT_PLAN_ENV, None)
    if plan is not None:
        env[FAULT_PLAN_ENV] = plan.to_json()
    return subprocess.run(
        [sys.executable, "-m", "repro.harness.cli", *JOB, *extra],
        env=env,
        capture_output=True,
        text=True,
    )


def archives_equivalent(left_path: Path, right_path: Path) -> bool:
    left, right = load_results_archive(left_path), load_results_archive(right_path)
    if left.ratios != right.ratios:
        return False
    return all(
        results_equivalent(mine.result, theirs.result)
        for mine, theirs in zip(left, right)
    )


def fail(message: str) -> int:
    print(f"chaos smoke: FAIL -- {message}")
    return 1


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        tmpdir = Path(tmp)
        baseline = tmpdir / "baseline.json"
        resumed = tmpdir / "resumed.json"
        recovered = tmpdir / "recovered.json"
        checkpoint = tmpdir / "job.ckpt.json"

        leg = run_cli(["--output", str(baseline)])
        if leg.returncode != 0:
            return fail(f"baseline run exited {leg.returncode}:\n{leg.stderr}")
        print("chaos smoke: baseline archived")

        leg = run_cli(
            ["--resume", str(checkpoint), "--max-retries", "1"], plan=CRASH_PLAN
        )
        if leg.returncode == 0:
            return fail("injected run succeeded; expected the strict job to abort")
        if not checkpoint.exists():
            return fail("crashed run left no job checkpoint")
        completed = json.loads(checkpoint.read_text())["outcomes"]
        print(
            f"chaos smoke: injected run aborted (exit {leg.returncode}) "
            f"with {len(completed)} level(s) checkpointed"
        )

        leg = run_cli(["--resume", str(checkpoint), "--output", str(resumed)])
        if leg.returncode != 0:
            return fail(f"resumed run exited {leg.returncode}:\n{leg.stderr}")
        if not archives_equivalent(resumed, baseline):
            return fail("resumed archive differs from the baseline")
        print("chaos smoke: resume == fresh run")

        leg = run_cli(
            ["--executor", "parallel", "--workers", "2", "--output", str(recovered)],
            plan=KILL_PLAN,
        )
        if leg.returncode != 0:
            return fail(
                f"worker-kill run exited {leg.returncode}; pool-break recovery "
                f"should have absorbed it:\n{leg.stderr}"
            )
        if not archives_equivalent(recovered, baseline):
            return fail("recovered archive differs from the baseline")
        print("chaos smoke: worker-kill recovery == baseline")

    print("chaos smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
