#!/usr/bin/env python3
"""Profile one harness experiment and print the hottest functions.

The perf-PR starting point: run a paper experiment under cProfile and
see where the time actually goes before touching any kernel.

Examples
--------
    python scripts/profile_mining.py F7
    python scripts/profile_mining.py T9 --profile tiny -n 40
    python scripts/profile_mining.py F11 --sort tottime --executor serial
    python scripts/profile_mining.py F7 --trace /tmp/f7.json
    python scripts/profile_mining.py --phases /tmp/f7.json
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
from pathlib import Path

# Allow running straight from a checkout without installing.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def print_phase_table(rows: list[dict], stream=sys.stdout) -> None:
    """Render ``phase_summary`` rows (or a trace file's ``summary``) as a table."""
    width = max([len("phase")] + [len(row["name"]) for row in rows])
    print(
        f"{'phase':<{width}}  {'calls':>8}  {'seconds':>10}  {'self_s':>10}",
        file=stream,
    )
    for row in rows:
        print(
            f"{row['name']:<{width}}  {row['calls']:>8d}  "
            f"{row['seconds']:>10.4f}  {row['self_seconds']:>10.4f}",
            file=stream,
        )


def main(argv: list[str] | None = None) -> int:
    from repro.harness.experiments import EXPERIMENTS, run_experiment

    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "artifact_id",
        nargs="?",
        help=f"experiment to profile; one of {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument(
        "--profile",
        default="bench",
        choices=("full", "bench", "tiny"),
        help="dataset profile (default: bench)",
    )
    parser.add_argument(
        "-n",
        "--top",
        type=int,
        default=25,
        help="number of functions to print (default: 25)",
    )
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=("cumulative", "tottime", "ncalls"),
        help="pstats sort key (default: cumulative)",
    )
    parser.add_argument(
        "--executor",
        default=None,
        choices=(None, "serial", "parallel", "threads"),
        help="mining executor backend (default: engine default; note that "
        "work dispatched to pool workers is invisible to the parent's "
        "profile -- use serial to see the kernels)",
    )
    parser.add_argument(
        "--support-backend",
        default=None,
        choices=(None, "bitset", "list"),
        help="support-set representation (default: engine default)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also dump raw pstats data to this file (for snakeviz etc.)",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="FILE",
        help="also record the span/counter telemetry of the profiled run "
        "and write the trace JSON here (phase attribution to complement "
        "the function-level cProfile view)",
    )
    parser.add_argument(
        "--phases",
        type=Path,
        default=None,
        metavar="TRACE",
        help="print the per-phase table (name / calls / seconds / self "
        "seconds) of a trace JSON previously written with --trace, then "
        "exit without profiling anything",
    )
    args = parser.parse_args(argv)

    if args.phases is not None:
        payload = json.loads(args.phases.read_text())
        print_phase_table(payload.get("summary", []))
        return 0
    if args.artifact_id is None:
        parser.error("artifact_id is required unless --phases TRACE is given")

    if args.trace is not None:
        from repro.obs import enable_telemetry, reset_telemetry

        reset_telemetry()
        enable_telemetry()

    profiler = cProfile.Profile()
    profiler.enable()
    run_experiment(
        args.artifact_id,
        profile=args.profile,
        executor=args.executor,
        support_backend=args.support_backend,
    )
    profiler.disable()

    if args.trace is not None:
        from repro.obs import disable_telemetry, summary, write_trace

        write_trace(
            args.trace,
            command=f"profile_mining {args.artifact_id} --profile {args.profile}",
            counters=summary(),
        )
        disable_telemetry()
        print(f"trace written to {args.trace}", file=sys.stderr)

    stats = pstats.Stats(profiler)
    if args.output is not None:
        stats.dump_stats(args.output)
        print(f"raw profile written to {args.output}", file=sys.stderr)
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
