#!/usr/bin/env python3
"""CI smoke checks for the telemetry layer.

Two modes:

``validate TRACE.json``
    Assert the trace file written by ``--trace`` matches the documented
    schema (version, nested spans with names/durations, counter summary)
    and covers the mining phases end to end.

``overhead [--budget PCT]``
    Mine a dense workload with telemetry off (best of 3) and on (best of
    3) and fail when the enabled/disabled wall-clock ratio exceeds the
    budget (default 5%).  Guards the zero-overhead-when-disabled
    discipline from quietly regressing into always-on instrumentation
    cost.

Exit code 0 on success, 1 on failure, with a one-line verdict either
way.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

# Allow running straight from a checkout without installing.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

#: Span names a full mining run must produce (symbolization through the
#: step-2.2 pattern growth).
REQUIRED_SPANS = (
    "dataset/symbolize",
    "estpm/mine",
    "estpm/step2.1",
    "estpm/step2.1/hlh1_scan",
    "estpm/step2.2/pairs",
)


def _collect_names(spans: list[dict], names: set[str]) -> None:
    for node in spans:
        names.add(node["name"])
        _collect_names(node.get("children", []), names)


def _check_span(node: dict, path: str) -> list[str]:
    problems = []
    if not isinstance(node.get("name"), str) or not node.get("name"):
        problems.append(f"{path}: span without a name")
    if not isinstance(node.get("seconds"), (int, float)) or node["seconds"] < 0:
        problems.append(f"{path}: span without a non-negative 'seconds'")
    if not isinstance(node.get("attrs"), dict):
        problems.append(f"{path}: span 'attrs' is not a dict")
    children = node.get("children")
    if not isinstance(children, list):
        problems.append(f"{path}: span 'children' is not a list")
        return problems
    for index, child in enumerate(children):
        problems.extend(_check_span(child, f"{path}/{index}"))
    return problems


def validate(trace_path: Path) -> int:
    """Schema-check one trace JSON; returns the process exit code."""
    payload = json.loads(trace_path.read_text())
    problems: list[str] = []
    if payload.get("version") != 1:
        problems.append(f"unexpected trace version: {payload.get('version')!r}")
    spans = payload.get("spans")
    if not isinstance(spans, list) or not spans:
        problems.append("'spans' missing or empty")
        spans = []
    for index, node in enumerate(spans):
        problems.extend(_check_span(node, f"spans/{index}"))
    if not isinstance(payload.get("summary"), list):
        problems.append("'summary' missing or not a list")
    counters = payload.get("counters")
    if not isinstance(counters, dict) or not isinstance(
        counters.get("counters"), dict
    ):
        problems.append("'counters' summary missing")
    elif not any(name.startswith("mine.") for name in counters["counters"]):
        problems.append("no mine.* counters recorded")
    names: set[str] = set()
    _collect_names(spans, names)
    for required in REQUIRED_SPANS:
        if required not in names:
            problems.append(f"required span missing: {required}")
    if problems:
        for problem in problems:
            print(f"telemetry validate: {problem}", file=sys.stderr)
        print(f"FAIL: {trace_path} ({len(problems)} schema problems)")
        return 1
    print(
        f"OK: {trace_path} -- {len(names)} span names, "
        f"{len(counters['counters'])} counters"
    )
    return 0


def _mine_once() -> float:
    """One dense EXT5-style mining run; returns its wall-clock seconds."""
    from repro.core.stpm import ESTPM
    from repro.datasets.registry import load_dataset

    dataset = load_dataset("RE", "tiny")
    params = dataset.params(min_season=4, min_density_pct=0.5)
    started = time.perf_counter()
    ESTPM(dataset.dseq(), params).mine()
    return time.perf_counter() - started


def overhead(budget_pct: float, rounds: int) -> int:
    """Compare disabled vs enabled telemetry; returns the exit code."""
    from repro.obs import disable_telemetry, enable_telemetry, reset_telemetry

    _mine_once()  # warm caches (imports, dataset build) outside both arms
    disable_telemetry()
    baseline = min(_mine_once() for _ in range(rounds))
    reset_telemetry()
    enable_telemetry()
    try:
        enabled = min(_mine_once() for _ in range(rounds))
    finally:
        disable_telemetry()
        reset_telemetry()
    ratio = enabled / baseline if baseline else float("inf")
    overhead_pct = (ratio - 1.0) * 100.0
    verdict = "OK" if overhead_pct <= budget_pct else "FAIL"
    print(
        f"{verdict}: telemetry overhead {overhead_pct:+.1f}% "
        f"(disabled best-of-{rounds} {baseline:.3f}s, "
        f"enabled {enabled:.3f}s, budget {budget_pct:.1f}%)"
    )
    return 0 if verdict == "OK" else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode", required=True)
    validate_parser = sub.add_parser("validate", help="schema-check a trace JSON")
    validate_parser.add_argument("trace", type=Path)
    overhead_parser = sub.add_parser(
        "overhead", help="measure enabled-vs-disabled mining overhead"
    )
    overhead_parser.add_argument(
        "--budget", type=float, default=5.0, metavar="PCT",
        help="maximum tolerated overhead percentage (default: 5)",
    )
    overhead_parser.add_argument(
        "--rounds", type=int, default=3,
        help="runs per arm; the best is compared (default: 3)",
    )
    args = parser.parse_args(argv)
    if args.mode == "validate":
        return validate(args.trace)
    return overhead(args.budget, args.rounds)


if __name__ == "__main__":
    raise SystemExit(main())
