"""Wall-clock timing of callables and code blocks.

:class:`Timer` is the primary API -- a context manager over
``time.perf_counter_ns()`` whose integer arithmetic avoids the float
rounding that ``perf_counter()`` deltas accumulate on long runs.
:func:`time_call` is the legacy wrapper, kept for existing callers; it
delegates to :class:`Timer` internally.
"""

from __future__ import annotations

import time
from typing import Callable, TypeVar

T = TypeVar("T")


class Timer:
    """Measure a block's wall-clock with nanosecond integer arithmetic.

    ::

        with Timer() as timer:
            work()
        print(timer.seconds)

    ``start()``/``stop()`` are also exposed for non-``with`` call sites;
    ``stop()`` returns the elapsed seconds.  Re-entering restarts the
    measurement.
    """

    __slots__ = ("elapsed_ns", "_started_ns")

    def __init__(self) -> None:
        self.elapsed_ns = 0
        self._started_ns: int | None = None

    def start(self) -> "Timer":
        self._started_ns = time.perf_counter_ns()
        return self

    def stop(self) -> float:
        if self._started_ns is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed_ns = time.perf_counter_ns() - self._started_ns
        self._started_ns = None
        return self.seconds

    @property
    def seconds(self) -> float:
        return self.elapsed_ns / 1e9

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.stop()


def time_call(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` and return ``(result, elapsed_seconds)``.

    .. deprecated:: 1.7
        Prefer :class:`Timer`; ``time_call`` remains for existing
        callers and simply wraps it.
    """
    timer = Timer().start()
    result = fn()
    return result, timer.stop()
