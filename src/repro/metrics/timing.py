"""Wall-clock timing of callables."""

from __future__ import annotations

import time
from typing import Callable, TypeVar

T = TypeVar("T")


def time_call(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` and return ``(result, elapsed_seconds)``."""
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started
