"""Peak memory measurement via :mod:`tracemalloc`.

The paper's Figs. 9-10 compare miner memory footprints.  We measure the
peak *traced* Python allocation during a call -- a faithful relative
measure across miners running identical inputs (absolute numbers differ
from RSS, which the paper reports, but the comparison shape is preserved).
"""

from __future__ import annotations

import gc
import tracemalloc
from typing import Callable, TypeVar

T = TypeVar("T")


def measure_peak_memory(fn: Callable[[], T]) -> tuple[T, int]:
    """Run ``fn`` and return ``(result, peak_allocated_bytes)``.

    Nested use is not supported (tracemalloc is process-global); the
    helper raises if tracing is already active so measurements never
    silently include someone else's allocations.
    """
    if tracemalloc.is_tracing():
        raise RuntimeError("measure_peak_memory does not support nesting")
    gc.collect()
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak
