"""Peak memory measurement via :mod:`tracemalloc`.

The paper's Figs. 9-10 compare miner memory footprints.  We measure the
peak *traced* Python allocation during a call -- a faithful relative
measure across miners running identical inputs (absolute numbers differ
from RSS, which the paper reports, but the comparison shape is preserved).

Measurements nest: the harness runner wraps whole experiments while some
experiments measure individual mining calls inside.  Nesting is
implemented with a frame stack over ``tracemalloc.reset_peak()``: each
segment's peak (between two frame boundaries) is folded into every frame
open during that segment, so every frame reports the true peak observed
over its own window.  A nested frame's peak is reported *relative to the
traced size at its entry*, so an inner measurement returns (nearly) the
same number it would standalone instead of being floored at the outer
frame's live allocations.  Tracing starts at the outermost frame and
stops when it exits, so an outermost measurement keeps its historical
semantics (entry size is zero).  Note that tracing itself slows the
measured code; wall-clock numbers taken around a traced call include
that overhead.
"""

from __future__ import annotations

import gc
import tracemalloc
from typing import Callable, TypeVar

T = TypeVar("T")


class _Frame:
    """One open measurement window: its running absolute peak and the
    traced size when it opened (subtracted from the reported peak)."""

    __slots__ = ("peak", "baseline")

    def __init__(self, baseline: int):
        self.peak = 0
        self.baseline = baseline


#: Currently open measurement frames, outermost first.
_FRAMES: list[_Frame] = []


def _fold_segment() -> None:
    """Fold the current tracing segment's peak into every open frame and
    reset the peak counter so the next segment starts fresh (still
    counting live allocations)."""
    _, peak = tracemalloc.get_traced_memory()
    for frame in _FRAMES:
        if peak > frame.peak:
            frame.peak = peak
    tracemalloc.reset_peak()


def open_frame() -> None:
    """Open a measurement frame (see module docstring for nesting).

    Starts tracing at the outermost frame.  Raises if tracemalloc was
    started outside this module, so measurements never silently include
    (or stop) someone else's tracing session.  Frames are a single
    process-global stack: open/close them from one thread at a time.
    """
    if tracemalloc.is_tracing() and not _FRAMES:
        raise RuntimeError(
            "tracemalloc already active outside measure_peak_memory"
        )
    gc.collect()
    if not _FRAMES:
        tracemalloc.start()
    else:
        _fold_segment()
    _FRAMES.append(_Frame(tracemalloc.get_traced_memory()[0]))


def measure_peak_memory(fn: Callable[[], T]) -> tuple[T, int]:
    """Run ``fn`` and return ``(result, peak_allocated_bytes)``.

    Calls nest (see module docstring); a nested frame reports its peak
    net of the allocations already live when it opened.
    """
    open_frame()
    try:
        result = fn()
    except BaseException:
        close_frame()
        raise
    peak = close_frame()
    return result, peak


def close_frame() -> int:
    """Pop the innermost frame, folding its final segment everywhere."""
    _, segment_peak = tracemalloc.get_traced_memory()
    frame = _FRAMES.pop()
    absolute = frame.peak if frame.peak > segment_peak else segment_peak
    for open_frame in _FRAMES:
        if segment_peak > open_frame.peak:
            open_frame.peak = segment_peak
    if _FRAMES:
        tracemalloc.reset_peak()
    else:
        tracemalloc.stop()
    return max(0, absolute - frame.baseline)
