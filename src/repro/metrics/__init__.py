"""Measurement utilities for the experimental evaluation (paper Sec. VI).

* :mod:`repro.metrics.timing` -- wall-clock runtime of a mining call.
* :mod:`repro.metrics.memory` -- peak memory via :mod:`tracemalloc`.
* :mod:`repro.metrics.accuracy` -- the A-STPM accuracy metric
  (pattern-set recall against E-STPM).
"""

from repro.metrics.accuracy import accuracy_pct, pattern_set_overlap
from repro.metrics.memory import close_frame, measure_peak_memory, open_frame
from repro.metrics.timing import Timer, time_call

__all__ = [
    "Timer",
    "time_call",
    "measure_peak_memory",
    "open_frame",
    "close_frame",
    "accuracy_pct",
    "pattern_set_overlap",
]
