"""Measurement utilities for the experimental evaluation (paper Sec. VI).

* :mod:`repro.metrics.timing` -- wall-clock runtime of a mining call.
* :mod:`repro.metrics.memory` -- peak memory via :mod:`tracemalloc`.
* :mod:`repro.metrics.accuracy` -- the A-STPM accuracy metric
  (pattern-set recall against E-STPM).
"""

from repro.metrics.accuracy import accuracy_pct, pattern_set_overlap
from repro.metrics.memory import measure_peak_memory
from repro.metrics.timing import time_call

__all__ = [
    "time_call",
    "measure_peak_memory",
    "accuracy_pct",
    "pattern_set_overlap",
]
