"""The A-STPM accuracy metric (paper Sec. VI-C4, Tables VII/XII).

A-STPM returns a subset of E-STPM's patterns (both apply identical
seasonal checks; A-STPM merely mines fewer series), so accuracy is the
recall of the approximate pattern set against the exact one, in percent.
"""

from __future__ import annotations

from repro.core.results import MiningResult


def pattern_set_overlap(exact: MiningResult, approximate: MiningResult) -> tuple[int, int]:
    """``(shared, total_exact)`` pattern identity counts."""
    exact_keys = exact.pattern_keys()
    return len(exact_keys & approximate.pattern_keys()), len(exact_keys)


def accuracy_pct(exact: MiningResult, approximate: MiningResult) -> float:
    """Accuracy of the approximate result in percent (100.0 if the exact
    result is empty, since nothing was missed)."""
    shared, total = pattern_set_overlap(exact, approximate)
    if total == 0:
        return 100.0
    return 100.0 * shared / total
