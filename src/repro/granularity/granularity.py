"""Time granularity and granules (paper Def. 3.2).

A granularity partitions a :class:`~repro.granularity.domain.TimeDomain`
into equal, non-overlapping granules.  Granules are identified by their
1-based *position* ``p(Gi)`` (the paper counts granules "before and up to,
including, Gi"), and the *period* between two granules of the same
granularity is ``|p(Gi) - p(Gj)|``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import GranularityError
from repro.granularity.domain import TimeDomain


@dataclass(frozen=True)
class Granule:
    """A single granule: a contiguous block of time instants.

    ``position`` is 1-based per the paper; ``start``/``end`` are the
    inclusive instant indices covered by the granule.
    """

    position: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.position < 1:
            raise GranularityError(f"granule positions are 1-based, got {self.position}")
        if self.start > self.end:
            raise GranularityError(
                f"granule start {self.start} must not exceed end {self.end}"
            )

    def __len__(self) -> int:
        return self.end - self.start + 1

    def instants(self) -> range:
        """All instant indices covered by this granule."""
        return range(self.start, self.end + 1)


@dataclass(frozen=True)
class Granularity:
    """A complete, non-overlapping, equal partition of a time domain.

    Parameters
    ----------
    domain:
        The underlying time domain.
    instants_per_granule:
        Width of one granule, in domain instants.  The domain length does
        not need to be an exact multiple; a trailing partial granule is
        dropped, matching how a sequence mapping consumes whole blocks of
        ``m`` symbols only.
    name:
        Label used in reports (e.g. ``"15-Minutes"``).
    """

    domain: TimeDomain
    instants_per_granule: int = 1
    name: str = "G"

    def __post_init__(self) -> None:
        if self.instants_per_granule < 1:
            raise GranularityError(
                f"granule width must be >= 1 instant, got {self.instants_per_granule}"
            )
        if self.instants_per_granule > len(self.domain):
            raise GranularityError(
                f"granule width {self.instants_per_granule} exceeds the domain "
                f"of {len(self.domain)} instants"
            )

    @property
    def n_granules(self) -> int:
        """Number of complete granules in the partition."""
        return len(self.domain) // self.instants_per_granule

    def __len__(self) -> int:
        return self.n_granules

    def granule(self, position: int) -> Granule:
        """Return the granule at 1-based ``position``."""
        if not 1 <= position <= self.n_granules:
            raise GranularityError(
                f"position {position} outside [1, {self.n_granules}] of {self.name}"
            )
        start = (position - 1) * self.instants_per_granule
        return Granule(position, start, start + self.instants_per_granule - 1)

    def granules(self) -> list[Granule]:
        """All granules in position order."""
        return [self.granule(p) for p in range(1, self.n_granules + 1)]

    def position_of_instant(self, instant: int) -> int:
        """1-based position of the granule containing ``instant``."""
        if instant not in self.domain:
            raise GranularityError(f"instant {instant} outside the time domain")
        position = instant // self.instants_per_granule + 1
        if position > self.n_granules:
            raise GranularityError(
                f"instant {instant} falls in the dropped trailing partial granule"
            )
        return position

    def period(self, position_i: int, position_j: int) -> int:
        """Period between two granules: ``|p(Gi) - p(Gj)|`` (paper Def. 3.2)."""
        for position in (position_i, position_j):
            if not 1 <= position <= self.n_granules:
                raise GranularityError(
                    f"position {position} outside [1, {self.n_granules}] of {self.name}"
                )
        return abs(position_i - position_j)

    def is_finer_than(self, other: "Granularity") -> bool:
        """True if ``self`` is m-Finer than ``other`` for some integer m >= 1."""
        if self.domain != other.domain:
            return False
        return other.instants_per_granule % self.instants_per_granule == 0

    def finer_ratio(self, other: "Granularity") -> int:
        """The m of the m-Finer relation ``self ⊴m other`` (paper Def. 3.3)."""
        if not self.is_finer_than(other):
            raise GranularityError(
                f"{self.name} is not finer than {other.name} on the same domain"
            )
        return other.instants_per_granule // self.instants_per_granule
