"""Time granularity hierarchy (paper Def. 3.4, Fig. 2).

A hierarchy is a chain of granularities over one time domain, ordered from
the finest (level 0) upwards, where every level is m-Finer than the next.
The paper's Fig. 2 example is the chain 5-Minutes ⊴3 15-Minutes ⊴2
30-Minutes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import GranularityError
from repro.granularity.domain import TimeDomain
from repro.granularity.granularity import Granularity


@dataclass
class GranularityHierarchy:
    """An ordered chain of granularities over one time domain."""

    domain: TimeDomain
    levels: list[Granularity] = field(default_factory=list)

    @classmethod
    def from_widths(
        cls,
        domain: TimeDomain,
        widths: list[int],
        names: list[str] | None = None,
    ) -> "GranularityHierarchy":
        """Build a hierarchy from granule widths (finest first).

        Each width must divide the next, e.g. ``[1, 3, 6]`` for the paper's
        5-Minutes / 15-Minutes / 30-Minutes chain with a 5-minute instant.
        """
        if not widths:
            raise GranularityError("a hierarchy needs at least one level")
        if names is not None and len(names) != len(widths):
            raise GranularityError("names and widths must have equal length")
        hierarchy = cls(domain)
        for index, width in enumerate(widths):
            name = names[index] if names else f"L{index}"
            hierarchy.add_level(Granularity(domain, width, name))
        return hierarchy

    def add_level(self, granularity: Granularity) -> None:
        """Append a coarser level; it must be on the same domain and the
        current top level must be finer than it."""
        if granularity.domain != self.domain:
            raise GranularityError("all hierarchy levels must share one time domain")
        if self.levels and not self.levels[-1].is_finer_than(granularity):
            raise GranularityError(
                f"{self.levels[-1].name} is not finer than {granularity.name}; "
                "levels must be added finest-first with dividing widths"
            )
        self.levels.append(granularity)

    @property
    def finest(self) -> Granularity:
        """The finest granularity (level 0)."""
        if not self.levels:
            raise GranularityError("empty hierarchy has no finest level")
        return self.levels[0]

    def level(self, index: int) -> Granularity:
        """Granularity at hierarchy level ``index`` (0 = finest)."""
        if not 0 <= index < len(self.levels):
            raise GranularityError(
                f"level {index} outside [0, {len(self.levels) - 1}]"
            )
        return self.levels[index]

    def by_name(self, name: str) -> Granularity:
        """Look up a level by its name."""
        for granularity in self.levels:
            if granularity.name == name:
                return granularity
        raise GranularityError(f"no hierarchy level named {name!r}")

    def ratio(self, finer_index: int, coarser_index: int) -> int:
        """The m of ``levels[finer_index] ⊴m levels[coarser_index]``."""
        finer = self.level(finer_index)
        coarser = self.level(coarser_index)
        return finer.finer_ratio(coarser)

    def __len__(self) -> int:
        return len(self.levels)

    def __iter__(self):
        return iter(self.levels)
