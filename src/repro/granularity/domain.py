"""Time domain (paper Def. 3.1).

A time domain is an ordered set of time instants isomorphic to the natural
numbers, carrying a *time unit* that states how instants are measured
(e.g. ``"minute"``).  Instants are represented by their integer index
``0, 1, 2, ...``; the mapping to wall-clock timestamps is
``origin + index * unit`` and is kept purely descriptive here -- all mining
arithmetic happens on indices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import GranularityError


@dataclass(frozen=True)
class TimeDomain:
    """An ordered, integer-indexed set of time instants.

    Parameters
    ----------
    n_instants:
        Number of instants in the observation window (must be positive).
    unit:
        Human-readable time unit of one instant, e.g. ``"5min"`` or
        ``"day"``.  Only used for labelling.
    origin:
        Free-form description of instant 0 (e.g. an ISO timestamp).
    """

    n_instants: int
    unit: str = "instant"
    origin: str = "t0"

    def __post_init__(self) -> None:
        if self.n_instants <= 0:
            raise GranularityError(
                f"a time domain needs at least one instant, got {self.n_instants}"
            )

    def __len__(self) -> int:
        return self.n_instants

    def __contains__(self, instant: int) -> bool:
        return 0 <= instant < self.n_instants

    def instants(self) -> range:
        """Return the instants as a ``range`` (cheap, no allocation)."""
        return range(self.n_instants)

    def label(self, instant: int) -> str:
        """Human-readable label of ``instant`` for reports and examples."""
        if instant not in self:
            raise GranularityError(
                f"instant {instant} outside domain of {self.n_instants} instants"
            )
        return f"{self.unit}[{instant}] since {self.origin}"
