"""Time-domain and time-granularity model (paper Defs. 3.1-3.4).

The paper grounds everything in a *time domain* (an ordered set of time
instants isomorphic to the natural numbers), partitions of the domain called
*granularities*, and a *granularity hierarchy* relating finer and coarser
granularities.  This subpackage provides those three abstractions:

* :class:`~repro.granularity.domain.TimeDomain` -- the instant axis.
* :class:`~repro.granularity.granularity.Granularity` -- an equal,
  non-overlapping partition of the domain into granules, with position and
  period arithmetic.
* :class:`~repro.granularity.hierarchy.GranularityHierarchy` -- a chain of
  granularities ordered by the m-Finer relation.
"""

from repro.granularity.domain import TimeDomain
from repro.granularity.granularity import Granularity, Granule
from repro.granularity.hierarchy import GranularityHierarchy

__all__ = [
    "TimeDomain",
    "Granularity",
    "Granule",
    "GranularityHierarchy",
]
