"""FreqSTPfTS -- Frequent Seasonal Temporal Pattern Mining from Time Series.

A faithful reproduction of "Mining Seasonal Temporal Patterns in Time
Series" (Ho, Ho, Pedersen -- ICDE 2023, arXiv:2206.14604).

Quickstart
----------
>>> from repro import (
...     Alphabet, SymbolicDatabase, build_sequence_database,
...     MiningParams, ESTPM,
... )
>>> dsyb = SymbolicDatabase.from_rows({"C": "110100", "D": "100110"})
>>> dseq = build_sequence_database(dsyb, ratio=3)
>>> params = MiningParams(max_period=2, min_density=1,
...                       dist_interval=(0, 10), min_season=1)
>>> result = ESTPM(dseq, params).mine()
>>> len(result) > 0
True

The public API re-exports the main building blocks; see DESIGN.md for the
module map and EXPERIMENTS.md for the paper-reproduction results.
"""

from repro.core.approximate import (
    ASTPM,
    CorrelationReport,
    screen_correlated_series,
    screen_events,
)
from repro.core.config import MiningParams
from repro.core.executor import (
    MiningExecutor,
    ParallelExecutor,
    SerialExecutor,
    ThreadExecutor,
    executor_scope,
    resolve_executor,
    set_default_executor,
)
from repro.core.multigranularity import GranularityLevelResult, MultiGranularityMiner
from repro.multigrain import (
    GranularityLevel,
    HierarchicalMiner,
    LevelScreening,
    MultiGranularityResult,
    resolve_level_params,
    screen_level,
)
from repro.core.supportset import (
    BitsetSupportSet,
    ListSupportSet,
    SupportSet,
    make_support_set,
    set_default_backend,
)
from repro.core.query import PatternQuery, subpatterns_of, superpatterns_of
from repro.core.validation import validate_result, validate_seasonal_pattern
from repro.core.mi import (
    conditional_entropy,
    entropy,
    mutual_information,
    normalized_mutual_information,
)
from repro.core.pattern import TemporalPattern, Triple
from repro.core.prune import PruningConfig
from repro.core.results import MiningResult, SeasonalPattern
from repro.core.seasonality import SeasonView, compute_seasons, max_season
from repro.core.stpm import ESTPM, mine_seasonal_patterns
from repro.streaming import (
    IncrementalSTPM,
    MultiGrainStreamingService,
    PatternDelta,
    StreamingDatabase,
    StreamingMiningService,
    StreamingSymbolizer,
    replay_dataset,
)
from repro.events import (
    CONTAINS,
    FOLLOWS,
    OVERLAPS,
    EventInstance,
    RelationConfig,
    TemporalEvent,
    TemporalSequence,
    relation_between,
)
from repro.granularity import Granularity, GranularityHierarchy, Granule, TimeDomain
from repro.symbolic import (
    Alphabet,
    QuantileMapper,
    SaxMapper,
    SymbolicDatabase,
    SymbolicSeries,
    ThresholdMapper,
    TimeSeries,
)
from repro.resilience import (
    FailedTask,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    install_fault_plan,
)
from repro.transform import TemporalSequenceDatabase, build_sequence_database

__version__ = "1.10.0"

__all__ = [
    # granularity
    "TimeDomain",
    "Granularity",
    "Granule",
    "GranularityHierarchy",
    # symbolic
    "Alphabet",
    "TimeSeries",
    "SymbolicSeries",
    "SymbolicDatabase",
    "ThresholdMapper",
    "QuantileMapper",
    "SaxMapper",
    # events
    "TemporalEvent",
    "EventInstance",
    "TemporalSequence",
    "RelationConfig",
    "relation_between",
    "FOLLOWS",
    "CONTAINS",
    "OVERLAPS",
    # transform
    "TemporalSequenceDatabase",
    "build_sequence_database",
    # core
    "MiningParams",
    "PruningConfig",
    "ESTPM",
    "ASTPM",
    "mine_seasonal_patterns",
    "screen_correlated_series",
    "screen_events",
    "CorrelationReport",
    "MultiGranularityMiner",
    "GranularityLevelResult",
    # multigrain engine
    "HierarchicalMiner",
    "GranularityLevel",
    "MultiGranularityResult",
    "LevelScreening",
    "screen_level",
    "resolve_level_params",
    "PatternQuery",
    "superpatterns_of",
    "subpatterns_of",
    "validate_result",
    "validate_seasonal_pattern",
    "TemporalPattern",
    "Triple",
    "MiningResult",
    "SeasonalPattern",
    "SeasonView",
    "compute_seasons",
    "max_season",
    # support-set engine
    "SupportSet",
    "BitsetSupportSet",
    "ListSupportSet",
    "make_support_set",
    "set_default_backend",
    # resilience
    "RetryPolicy",
    "FailedTask",
    "FaultPlan",
    "FaultSpec",
    "install_fault_plan",
    # execution backends
    "MiningExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "ThreadExecutor",
    "executor_scope",
    "resolve_executor",
    "set_default_executor",
    # streaming
    "IncrementalSTPM",
    "PatternDelta",
    "StreamingDatabase",
    "StreamingMiningService",
    "MultiGrainStreamingService",
    "StreamingSymbolizer",
    "replay_dataset",
    # mi
    "entropy",
    "conditional_entropy",
    "mutual_information",
    "normalized_mutual_information",
    "__version__",
]
