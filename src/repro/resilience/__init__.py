"""Fault tolerance for the mining runtime: retries, quarantine, chaos.

The package is stdlib-only and splits into two halves:

* :mod:`repro.resilience.policy` -- the *recovery* side: a configurable
  :class:`RetryPolicy` (bounded attempts, exponential backoff with
  deterministic jitter, optional per-task timeouts, pool-break budget)
  and the :class:`FailedTask` quarantine record that a task failing all
  its attempts collapses into instead of killing the whole job.
* :mod:`repro.resilience.faults` -- the *chaos* side: a seeded,
  declarative :class:`FaultPlan` (kill this worker, delay that task,
  raise a transient error, interrupt a durable write) injectable into
  the executors and the atomic writer, including into spawn-started
  worker processes via the ``REPRO_FAULT_PLAN`` environment variable.
  This is how every recovery path in this package is tested.

Both halves ship across the executor boundary (fault plans ride the
environment into workers; quarantine records ride task outcomes back),
so everything here is deliberately plain frozen dataclasses of
primitives -- picklable under every start method, checked by the EP
analyzer rules and the spawn round-trip tests.
"""

from __future__ import annotations

from repro.resilience.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    active_fault_plan,
    fault_task_scope,
    install_fault_plan,
    maybe_fault,
)
from repro.resilience.policy import (
    DEFAULT_RETRY_POLICY,
    FailedTask,
    RetryPolicy,
)

__all__ = [
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultSpec",
    "active_fault_plan",
    "fault_task_scope",
    "install_fault_plan",
    "maybe_fault",
    "DEFAULT_RETRY_POLICY",
    "FailedTask",
    "RetryPolicy",
]
