"""Retry policies and failure quarantine records.

A :class:`RetryPolicy` describes how the executors respond to task
failures: how many attempts each task gets, how long to back off between
attempts (exponential with *deterministic* jitter -- the schedule is a
pure function of the task key and attempt number, so chaos runs and
their re-runs sleep identically), an optional per-task timeout, and how
many pool breaks a parallel job tolerates before degrading to serial
execution.

A task that exhausts its attempts is *quarantined* into a
:class:`FailedTask` record instead of aborting the job: the executor
yields the record in the outcome stream, the miner collects it into
``MiningResult.failures``, and the job's ``strict`` flag decides whether
that surfaces as an exception (the default) or as a partial result.

Both classes are frozen dataclasses of primitives only: they cross the
executor boundary (policies ride into the serial-degradation path,
quarantine records ride outcome streams and job checkpoints), so they
must pickle under every start method.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.exceptions import ConfigError

__all__ = ["RetryPolicy", "FailedTask", "DEFAULT_RETRY_POLICY", "task_key_of"]


def task_key_of(task: object) -> str:
    """The stable string identity of one task.

    Tasks are plain key tuples (event pairs, ``(group, event)`` pairs,
    level indexes), so ``repr`` is deterministic across processes and
    runs -- unlike ``hash()``, which is salted per interpreter.
    """
    return repr(task)


@dataclass(frozen=True)
class RetryPolicy:
    """How the executors respond to task failures and pool breaks.

    Parameters
    ----------
    max_attempts:
        Total attempts per task (>= 1).  ``1`` disables retries: the
        first failure quarantines immediately.
    backoff_base_s:
        Delay before the first retry; each further retry multiplies it
        by ``backoff_multiplier``, capped at ``backoff_max_s``.
    jitter_pct:
        Fraction of the base delay added/subtracted deterministically
        per ``(task, attempt)`` (see :meth:`backoff_s`), so retry storms
        de-synchronize without making runs irreproducible.
    timeout_s:
        Optional per-task wall-clock budget.  Enforced by the process
        pool (a timed-out task counts as a failed attempt and its pool
        is recycled -- a stuck worker cannot be preempted any other
        way); the serial and thread backends cannot preempt a running
        task and document the budget as unenforced.
    max_pool_breaks:
        Consecutive pool breaks (dead worker, broken broadcast barrier,
        task timeout) a parallel ``map_tasks`` call absorbs by
        respawning the pool before it degrades to in-process serial
        execution for the remaining tasks.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 5.0
    jitter_pct: float = 0.25
    timeout_s: float | None = None
    max_pool_breaks: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigError("backoff delays must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter_pct < 1.0:
            raise ConfigError(
                f"jitter_pct must be in [0, 1), got {self.jitter_pct}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError(f"timeout_s must be > 0, got {self.timeout_s}")
        if self.max_pool_breaks < 0:
            raise ConfigError(
                f"max_pool_breaks must be >= 0, got {self.max_pool_breaks}"
            )

    def backoff_s(self, task_key: str, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based) of one task.

        Pure function of ``(task_key, attempt)``: the exponential base is
        jittered by a fraction drawn from a stable BLAKE2 digest rather
        than a process RNG, so two runs of the same chaos schedule sleep
        the same amounts (the hypothesis suite pins this determinism).
        """
        if attempt < 1:
            raise ConfigError(f"attempt must be >= 1, got {attempt}")
        base = self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)
        base = min(base, self.backoff_max_s)
        if base == 0.0 or self.jitter_pct == 0.0:
            return base
        digest = hashlib.blake2b(
            f"{task_key}#{attempt}".encode(), digest_size=8
        ).digest()
        fraction = int.from_bytes(digest, "big") / 2.0**64  # [0, 1)
        return base * (1.0 + self.jitter_pct * (2.0 * fraction - 1.0))


#: The policy used when an executor is built without one: bounded
#: retries with sub-second backoff, pool-break recovery on, no timeout.
#: With no faults injected and no failing tasks this is byte-for-byte
#: the pre-resilience behavior (nothing ever retries).
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass(frozen=True)
class FailedTask:
    """The quarantine record of one task that failed all its attempts.

    Carries the stable task key, the ``repr`` of the last exception (a
    string, not the exception object -- reprs pickle and JSON-serialize
    under every start method), and how many attempts were consumed.
    Appears in the executor outcome stream in the failed task's slot and
    is collected into ``MiningResult.failures`` / raised by strict jobs.
    """

    key: str
    error: str
    attempts: int

    def describe(self) -> str:
        """Readable one-line rendering."""
        return f"{self.key}: {self.error} (after {self.attempts} attempts)"
