"""Deterministic fault injection for the mining runtime.

A :class:`FaultPlan` is a seeded, declarative schedule of failures --
"kill the worker running task 3", "delay the first attempt of every
pair task", "interrupt the second durable write" -- that the executors
and the atomic writer consult at well-known *sites*.  Because the plan
is data (frozen dataclasses of primitives with a JSON round-trip), the
same schedule replays exactly: the chaos suite runs a job twice with
the same plan and asserts the recovery machinery lands on identical
results.

Plans travel two ways.  In-process, :func:`install_fault_plan` sets a
module global.  Across the executor boundary, installation also exports
the plan's JSON into the ``REPRO_FAULT_PLAN`` environment variable, so
pool workers -- including spawn-started ones that inherit nothing but
the environment -- reconstruct the active plan lazily on their first
:func:`maybe_fault` call.

Injection sites:

``task``
    Consulted by all three executors immediately before running a task
    attempt.  Matched by task index, task key substring, and attempt
    number.  Gated to dispatch depth 1 (see :func:`fault_task_scope`):
    miners nested inside worker processes run their own serial
    dispatch loops, and without the gate a kill-on-attempt-0 fault
    would re-fire on every outer retry, forever.
``write``
    Consulted by :func:`repro.io.atomic.write_text_atomic` between
    writing the temp file and the atomic rename.  Matched by write
    index and target-path substring; an ``interrupt`` here simulates a
    crash mid-write and must leave the previous file intact.

Ops:

``kill``
    ``os._exit(70)`` when running inside a real pool worker process
    (``multiprocessing.parent_process() is not None``) -- the only way
    to produce a genuine ``BrokenProcessPool``.  In the parent process
    or a thread it degrades to raising :class:`FaultInjected` instead,
    so serial/thread chaos runs exercise the retry path rather than
    killing the test process.
``raise`` / ``interrupt``
    Raise :class:`FaultInjected` (transient task failure / simulated
    crash mid-write).
``delay``
    ``time.sleep(delay_s)`` -- drives the per-task timeout path.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.exceptions import ConfigError, FaultInjected
from repro.obs import counters as metrics

__all__ = [
    "FAULT_PLAN_ENV",
    "FaultSpec",
    "FaultPlan",
    "install_fault_plan",
    "active_fault_plan",
    "maybe_fault",
    "fault_task_scope",
]

#: Environment variable carrying the active plan's JSON into workers.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

_SITES = ("task", "write")
_OPS = ("kill", "raise", "delay", "interrupt")

#: Exit code used by ``kill`` faults so a dead worker is attributable.
KILL_EXIT_CODE = 70


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled failure.

    A spec *matches* a site consultation when the site names agree and
    every constraint that is not ``None`` agrees too: ``index`` equals
    the dispatch index, ``key`` is a substring of the task key / target
    path, ``attempt`` equals the attempt number.  An unconstrained spec
    (``index=key=attempt=None``) matches every consultation of its
    site -- useful with ``attempt=0`` to mean "fail the first try of
    everything, then let retries succeed".
    """

    site: str
    op: str
    index: int | None = None
    key: str | None = None
    attempt: int | None = None
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.site not in _SITES:
            raise ConfigError(f"unknown fault site {self.site!r}; expected one of {_SITES}")
        if self.op not in _OPS:
            raise ConfigError(f"unknown fault op {self.op!r}; expected one of {_OPS}")
        if self.delay_s < 0:
            raise ConfigError(f"delay_s must be >= 0, got {self.delay_s}")

    def matches(self, site: str, index: int | None, key: str | None, attempt: int | None) -> bool:
        if site != self.site:
            return False
        if self.index is not None and index != self.index:
            return False
        if self.key is not None and (key is None or self.key not in key):
            return False
        if self.attempt is not None and attempt != self.attempt:
            return False
        return True

    def as_dict(self) -> dict[str, object]:
        return {
            "site": self.site,
            "op": self.op,
            "index": self.index,
            "key": self.key,
            "attempt": self.attempt,
            "delay_s": self.delay_s,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "FaultSpec":
        return cls(
            site=str(data["site"]),
            op=str(data["op"]),
            index=None if data.get("index") is None else int(data["index"]),  # type: ignore[arg-type]
            key=None if data.get("key") is None else str(data["key"]),
            attempt=None if data.get("attempt") is None else int(data["attempt"]),  # type: ignore[arg-type]
            delay_s=float(data.get("delay_s", 0.05)),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of :class:`FaultSpec` entries.

    The ``seed`` does not drive an RNG -- the schedule itself is fully
    explicit -- it labels the scenario so traces, checkpoints, and test
    parametrizations can name which chaos schedule produced a run.
    """

    seed: int = 0
    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # Tolerate list literals in hand-written plans.
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))

    def matching(self, site: str, *, index: int | None = None, key: str | None = None, attempt: int | None = None) -> tuple[FaultSpec, ...]:
        return tuple(
            spec for spec in self.faults if spec.matches(site, index, key, attempt)
        )

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "faults": [spec.as_dict() for spec in self.faults]},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid fault plan JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ConfigError("fault plan JSON must be an object")
        faults = tuple(
            FaultSpec.from_dict(entry) for entry in data.get("faults", [])
        )
        return cls(seed=int(data.get("seed", 0)), faults=faults)


# The in-process plan.  ``None`` means "consult the environment" --
# workers never have the global set and fall through to the env var.
_ACTIVE: FaultPlan | None = None

# Parsed-environment cache: (raw json string, parsed plan).  Workers
# call maybe_fault() in hot dispatch loops; parsing JSON once per call
# would be absurd, and the env var never changes mid-worker.
_ENV_CACHE: tuple[str, FaultPlan] | None = None

_TLS = threading.local()


def install_fault_plan(plan: FaultPlan | None) -> None:
    """Install *plan* process-wide (or uninstall with ``None``).

    Also mirrors the plan into ``REPRO_FAULT_PLAN`` so pool workers --
    fork or spawn -- see the same schedule.  Call with ``None`` in a
    ``finally`` block to restore production behavior.
    """
    global _ACTIVE, _ENV_CACHE
    _ACTIVE = plan
    _ENV_CACHE = None
    if plan is None:
        os.environ.pop(FAULT_PLAN_ENV, None)
    else:
        os.environ[FAULT_PLAN_ENV] = plan.to_json()


def active_fault_plan() -> FaultPlan | None:
    """The currently effective plan: installed global, else environment."""
    global _ENV_CACHE
    if _ACTIVE is not None:
        return _ACTIVE
    raw = os.environ.get(FAULT_PLAN_ENV)
    if not raw:
        return None
    if _ENV_CACHE is not None and _ENV_CACHE[0] == raw:
        return _ENV_CACHE[1]
    plan = FaultPlan.from_json(raw)
    _ENV_CACHE = (raw, plan)
    return plan


def _depth() -> int:
    return getattr(_TLS, "depth", 0)


@contextmanager
def fault_task_scope() -> Iterator[int]:
    """Mark one level of task dispatch; yields the new depth.

    Executors wrap every task attempt in this scope.  ``task``-site
    faults fire only at depth 1, so a miner running *inside* a worker
    process (its own serial dispatch loop, depth 2) never re-triggers
    the attempt-0 faults that the outer dispatch already absorbed --
    without the gate, kill-on-first-attempt schedules would loop
    forever because every outer retry restarts the inner attempts at 0.
    """
    depth = _depth() + 1
    _TLS.depth = depth
    try:
        yield depth
    finally:
        _TLS.depth = depth - 1


def maybe_fault(site: str, *, index: int | None = None, key: str | None = None, attempt: int | None = None) -> None:
    """Consult the active plan at an injection site; no-op without one.

    Fires every matching spec in plan order: ``delay`` sleeps and keeps
    going (so a spec list can delay *and then* raise), the terminal ops
    stop the consultation by raising or exiting.
    """
    plan = active_fault_plan()
    if plan is None:
        return
    if site == "task" and _depth() != 1:
        return
    for spec in plan.matching(site, index=index, key=key, attempt=attempt):
        metrics.inc(f"faults.injected.{spec.op}")
        if spec.op == "delay":
            time.sleep(spec.delay_s)
            continue
        if spec.op == "kill":
            if multiprocessing.parent_process() is not None:
                # A real pool worker: die hard, producing the genuine
                # BrokenProcessPool the recovery path must absorb.
                os._exit(KILL_EXIT_CODE)
            raise FaultInjected(
                f"fault plan (seed={plan.seed}): kill at {site} index={index} key={key!r} attempt={attempt}"
            )
        # "raise" and "interrupt" both surface as FaultInjected; the
        # distinction is the site they are aimed at.
        raise FaultInjected(
            f"fault plan (seed={plan.seed}): {spec.op} at {site} index={index} key={key!r} attempt={attempt}"
        )
