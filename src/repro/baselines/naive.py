"""A brute-force seasonal temporal pattern miner.

This miner enumerates k-event groups directly from the event list, scans
*all* granules of DSEQ for every group (no support-set intersection), and
materializes every realizing instance assignment before the seasonal
checks -- i.e. it does everything E-STPM's data structures avoid.  Two
roles:

* the **ground-truth oracle** for the property-based equivalence tests
  (its output must match E-STPM exactly -- both implement Defs. 3.12-3.15);
* the engine of **APS-growth's phase 2** (the paper's baseline mines
  temporal patterns from PS-growth's events without HLH tables, Apriori
  maxSeason gates on groups, or transitivity filtering).

``support_gate`` optionally applies the bare minimum candidate filter
``|SUP_P| >= minSeason * minDensity`` (equivalent to the maxSeason gate) to
patterns before they are *extended* -- without it the enumeration explodes
exponentially; with it the output is provably unchanged (Lemma 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations, combinations_with_replacement, product

from repro.core.config import MiningParams
from repro.core.pattern import TemporalPattern, pattern_from_instances, single_event_pattern
from repro.core.results import MiningResult, MiningStats, SeasonalPattern
from repro.core.seasonality import compute_seasons
from repro.events.event import EventInstance
from repro.transform.sequence_db import TemporalSequenceDatabase

#: One occurrence record: granule position plus the realizing instances.
Occurrence = tuple[int, tuple[EventInstance, ...]]


@dataclass
class NaiveSTPM:
    """Brute-force miner with optional event whitelist and support gate.

    Parameters
    ----------
    dseq:
        The temporal sequence database.
    params:
        The seasonal thresholds.
    events:
        Whitelist of events to mine from (APS-growth passes PS-growth's
        recurring events here); ``None`` mines every event in DSEQ.
    support_gate:
        Apply the minimal lossless support filter before extending
        patterns.  The oracle tests run with it both on and off.
    """

    dseq: TemporalSequenceDatabase
    params: MiningParams
    events: list[str] | None = None
    support_gate: bool = True
    _occurrences: dict[TemporalPattern, list[Occurrence]] = field(
        default_factory=dict, repr=False
    )

    def mine(self) -> MiningResult:
        """Enumerate, verify, and seasonally filter all patterns."""
        params = self.params
        stats = MiningStats(n_granules=len(self.dseq))
        patterns: list[SeasonalPattern] = []
        event_list = sorted(
            self.events if self.events is not None else self.dseq.events()
        )
        support = self.dseq.event_support()
        min_support = params.min_season * params.min_density

        # --- single events -------------------------------------------------
        for event in event_list:
            event_sup = support.get(event, [])
            stats.n_events_scanned += 1
            view = compute_seasons(event_sup, params)
            if view.n_seasons >= params.min_season:
                patterns.append(SeasonalPattern(single_event_pattern(event), view))
                stats.bump(stats.n_frequent, 1)

        # --- 2-event patterns: full DSEQ scan per pair ----------------------
        level: dict[TemporalPattern, list[Occurrence]] = {}
        for event_a, event_b in combinations_with_replacement(event_list, 2):
            stats.bump(stats.n_groups_generated, 2)
            for row in self.dseq:
                instances_a = row.instances_of(event_a)
                if event_a == event_b:
                    pairs = combinations(instances_a, 2)
                else:
                    pairs = product(instances_a, row.instances_of(event_b))
                for pair in pairs:
                    built = pattern_from_instances(pair, params.relation)
                    if built is None:
                        continue
                    ordered = tuple(sorted(pair, key=EventInstance.sort_key))
                    level.setdefault(built, []).append((row.position, ordered))
        patterns.extend(self._flush_level(level, 2, stats))

        # --- k >= 3: extend every stored occurrence with every event --------
        k = 3
        while k <= params.max_pattern_length and level:
            next_level: dict[TemporalPattern, list[Occurrence]] = {}
            for pattern, occurrences in level.items():
                if self.support_gate:
                    distinct = len({granule for granule, _ in occurrences})
                    if distinct < min_support:
                        continue
                for event in event_list:
                    stats.bump(stats.n_groups_generated, k)
                    for granule, assignment in occurrences:
                        for instance in self.dseq.instances_at(granule, event):
                            if instance in assignment:
                                continue
                            built = pattern_from_instances(
                                assignment + (instance,), params.relation
                            )
                            if built is None:
                                continue
                            ordered = tuple(
                                sorted(
                                    assignment + (instance,),
                                    key=EventInstance.sort_key,
                                )
                            )
                            records = next_level.setdefault(built, [])
                            if (granule, ordered) not in records[-8:]:
                                records.append((granule, ordered))
            # Deduplicate occurrences reached through different parents.
            for pattern in next_level:
                next_level[pattern] = sorted(set(next_level[pattern]))
            patterns.extend(self._flush_level(next_level, k, stats))
            level = next_level
            k += 1

        return MiningResult(patterns=patterns, stats=stats)

    def _flush_level(
        self,
        level: dict[TemporalPattern, list[Occurrence]],
        k: int,
        stats: MiningStats,
    ) -> list[SeasonalPattern]:
        """Seasonal check for every pattern of one level."""
        found: list[SeasonalPattern] = []
        for pattern, occurrences in level.items():
            stats.bump(stats.n_candidate_patterns, k)
            support: list[int] = []
            for granule, _ in occurrences:
                if not support or support[-1] != granule:
                    support.append(granule)
            support = sorted(set(support))
            view = compute_seasons(support, self.params)
            if view.n_seasons >= self.params.min_season:
                found.append(SeasonalPattern(pattern, view))
                stats.bump(stats.n_frequent, k)
        return found
