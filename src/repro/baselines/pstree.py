"""The Periodic-Summary tree (PS-tree) of Kiran et al. [40].

PS-growth's key idea is to replace the full tid-lists of PF-tree tail
nodes with compact *period summaries*: runs of transaction ids whose
consecutive gaps stay within ``max_per`` are stored as a single triple
``(first, last, count)``.  The tree itself is an FP-tree style prefix tree
over items in descending support order, with node-links chaining the
occurrences of each item for the header table.

Summaries are an interval compression: when two summaries from different
branches interleave in time, the merged run can hide an above-``max_per``
gap.  This is inherent to the period-summary representation (it is what
buys the memory reduction); supports are always exact, and periodicity
verdicts err only toward acceptance.  The APS-growth adapter sidesteps the
issue entirely by running with ``max_per = |D|``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import MiningError


@dataclass
class PeriodSummary:
    """A compressed occurrence list: runs of tids with gaps <= ``max_per``."""

    max_per: int
    runs: list[tuple[int, int, int]] = field(default_factory=list)

    def add_tid(self, tid: int) -> None:
        """Append a transaction id (tids must arrive in increasing order)."""
        if self.runs:
            first, last, count = self.runs[-1]
            if tid <= last:
                raise MiningError(f"tids must be strictly increasing, got {tid}")
            if tid - last <= self.max_per:
                self.runs[-1] = (first, tid, count + 1)
                return
        self.runs.append((tid, tid, 1))

    @property
    def support(self) -> int:
        """Total number of occurrences (exact)."""
        return sum(count for _, _, count in self.runs)

    def merged_with(self, other: "PeriodSummary") -> "PeriodSummary":
        """Union of two summaries, re-compressed under ``max_per``."""
        if self.max_per != other.max_per:
            raise MiningError("cannot merge summaries with different max_per")
        merged = PeriodSummary(self.max_per)
        runs = sorted(self.runs + other.runs)
        for first, last, count in runs:
            if merged.runs and first - merged.runs[-1][1] <= self.max_per:
                m_first, m_last, m_count = merged.runs[-1]
                merged.runs[-1] = (m_first, max(m_last, last), m_count + count)
            else:
                merged.runs.append((first, last, count))
        return merged

    def max_inter_run_gap(self, n_transactions: int) -> int:
        """Largest period *visible* to the summary: gaps between runs plus
        the leading/trailing boundary periods (periodic-frequent semantics
        count the distance from tid 0 and to tid ``n_transactions``)."""
        if not self.runs:
            return n_transactions
        gaps = [self.runs[0][0]]  # boundary: first occurrence
        for (_, last, _), (first, _, _) in zip(self.runs, self.runs[1:]):
            gaps.append(first - last)
        gaps.append(n_transactions - self.runs[-1][1])  # trailing boundary
        return max(gaps)

    def is_periodic(self, n_transactions: int) -> bool:
        """Periodicity check: every visible period <= ``max_per``."""
        return self.max_inter_run_gap(n_transactions) <= self.max_per


@dataclass
class PSNode:
    """One PS-tree node."""

    item: str | None
    parent: "PSNode | None" = None
    children: dict[str, "PSNode"] = field(default_factory=dict)
    summary: PeriodSummary | None = None  # tail-node occurrence summary
    node_link: "PSNode | None" = None  # header-table chain


@dataclass
class PSTree:
    """FP-tree style prefix tree with period summaries at tail nodes.

    ``item_order`` maps item -> rank (descending support), fixing the
    insertion order of every transaction.
    """

    max_per: int
    item_order: dict[str, int]
    root: PSNode = field(init=False)
    header: dict[str, PSNode] = field(default_factory=dict)
    header_tail: dict[str, PSNode] = field(default_factory=dict, repr=False)
    n_transactions: int = 0

    def __post_init__(self) -> None:
        self.root = PSNode(item=None)

    def insert_transaction(self, tid: int, items: list[str]) -> None:
        """Insert one transaction; items are filtered/sorted by item_order."""
        ordered = sorted(
            (item for item in items if item in self.item_order),
            key=self.item_order.__getitem__,
        )
        if not ordered:
            return
        node = self.root
        for item in ordered:
            child = node.children.get(item)
            if child is None:
                child = PSNode(item=item, parent=node)
                node.children[item] = child
                self._link(child)
            node = child
        if node.summary is None:
            node.summary = PeriodSummary(self.max_per)
        node.summary.add_tid(tid)

    def insert_conditional(self, path: list[str], summary: PeriodSummary) -> None:
        """Insert a conditional-pattern-base path carrying a summary."""
        node = self.root
        for item in path:
            child = node.children.get(item)
            if child is None:
                child = PSNode(item=item, parent=node)
                node.children[item] = child
                self._link(child)
            node = child
        if node.summary is None:
            node.summary = PeriodSummary(self.max_per)
        node.summary = node.summary.merged_with(summary)

    def _link(self, node: PSNode) -> None:
        item = node.item
        assert item is not None
        if item not in self.header:
            self.header[item] = node
        else:
            self.header_tail[item].node_link = node
        self.header_tail[item] = node

    def nodes_of(self, item: str):
        """Iterate all nodes of ``item`` via the node-link chain."""
        node = self.header.get(item)
        while node is not None:
            yield node
            node = node.node_link

    def item_summary(self, item: str) -> PeriodSummary:
        """Merged occurrence summary of an item over the whole tree.

        A node's occurrences are its own tail summary plus the summaries of
        every tail node *below* it (descendant transactions pass through).
        """
        total = PeriodSummary(self.max_per)
        for node in self.nodes_of(item):
            for summary in self._descendant_summaries(node):
                total = total.merged_with(summary)
        return total

    def _descendant_summaries(self, node: PSNode):
        stack = [node]
        while stack:
            current = stack.pop()
            if current.summary is not None:
                yield current.summary
            stack.extend(current.children.values())

    def path_to_root(self, node: PSNode) -> list[str]:
        """Items on the path from ``node``'s parent up to (not incl.) root,
        returned root-first."""
        path: list[str] = []
        current = node.parent
        while current is not None and current.item is not None:
            path.append(current.item)
            current = current.parent
        path.reverse()
        return path

    def n_nodes(self) -> int:
        """Total node count (memory proxy for the evaluation)."""
        count = 0
        stack = [self.root]
        while stack:
            current = stack.pop()
            count += 1
            stack.extend(current.children.values())
        return count - 1  # exclude root
