"""Baselines (paper Sec. VI-A).

The paper adapts the state-of-the-art periodic-frequent itemset miner
**PS-growth** (Kiran et al. [40]) into **APS-growth**: a 2-phase baseline
that (1) extracts frequent recurring events with PS-growth and (2) mines
temporal patterns from those events without E-STPM's data structures or
prunings.  This subpackage builds the full substrate:

* :mod:`repro.baselines.pstree` -- the Periodic-Summary tree (PS-tree).
* :mod:`repro.baselines.psgrowth` -- PS-growth itemset mining.
* :mod:`repro.baselines.apsgrowth` -- the APS-growth adaptation.
* :mod:`repro.baselines.naive` -- a brute-force seasonal temporal pattern
  miner used both inside APS-growth's phase 2 and as the ground-truth
  oracle in the property-based tests.
"""

from repro.baselines.apsgrowth import APSGrowth
from repro.baselines.naive import NaiveSTPM
from repro.baselines.psgrowth import PSGrowth, PeriodicFrequentItemset
from repro.baselines.pstree import PeriodSummary, PSTree

__all__ = [
    "PSTree",
    "PeriodSummary",
    "PSGrowth",
    "PeriodicFrequentItemset",
    "APSGrowth",
    "NaiveSTPM",
]
