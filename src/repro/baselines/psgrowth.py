"""PS-growth: periodic-frequent itemset mining (Kiran et al. [40]).

Mines all itemsets whose support is at least ``min_sup`` and whose visible
periods (per the period-summary representation) are at most ``max_per``
from a temporal transaction database (tid -> item set).

The algorithm is the classic pattern-growth recursion over the PS-tree:

1. One scan counts item supports; items below ``min_sup`` are dropped and
   the rest ordered by descending support.
2. A second scan builds the PS-tree with period summaries at tail nodes.
3. Items are mined least-frequent-first; each item's conditional pattern
   base (prefix paths with the item's occurrence summaries) builds a
   conditional PS-tree, recursing for longer itemsets.  After an item is
   mined, its tail summaries are pushed to the parents, keeping the
   remaining tree consistent (the standard PF-tree tail-pushing step).

``max_per = n_transactions`` disables the periodicity constraint, which is
how the APS-growth adapter uses this miner (seasonal gaps do not map to a
global periodicity bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.baselines.pstree import PeriodSummary, PSTree
from repro.exceptions import MiningError


@dataclass(frozen=True)
class PeriodicFrequentItemset:
    """One mined itemset with its exact support and visible max period."""

    items: tuple[str, ...]
    support: int
    max_period: int

    def __len__(self) -> int:
        return len(self.items)


@dataclass
class PSGrowth:
    """Periodic-frequent itemset miner over a tid -> items database.

    Parameters
    ----------
    transactions:
        Mapping from transaction id (1-based granule position) to the item
        collection of that transaction.
    min_sup:
        Minimal support count.
    max_per:
        Maximal period; also the summary compression threshold.
    max_itemset_size:
        Optional cap on itemset length (None = unbounded).
    """

    transactions: Mapping[int, Iterable[str]]
    min_sup: int
    max_per: int
    max_itemset_size: int | None = None

    def __post_init__(self) -> None:
        if self.min_sup < 1:
            raise MiningError(f"min_sup must be >= 1, got {self.min_sup}")
        if self.max_per < 1:
            raise MiningError(f"max_per must be >= 1, got {self.max_per}")

    def mine(self) -> list[PeriodicFrequentItemset]:
        """Run PS-growth and return all periodic-frequent itemsets."""
        n_transactions = max(self.transactions, default=0)
        supports: dict[str, int] = {}
        for items in self.transactions.values():
            for item in set(items):
                supports[item] = supports.get(item, 0) + 1
        frequent = {item: s for item, s in supports.items() if s >= self.min_sup}
        # Descending support; name tiebreak keeps the order deterministic.
        order = {
            item: rank
            for rank, item in enumerate(
                sorted(frequent, key=lambda it: (-frequent[it], it))
            )
        }
        tree = PSTree(max_per=self.max_per, item_order=order)
        tree.n_transactions = n_transactions
        for tid in sorted(self.transactions):
            tree.insert_transaction(tid, list(set(self.transactions[tid])))
        results: list[PeriodicFrequentItemset] = []
        self._mine_tree(tree, suffix=(), results=results)
        return results

    # ------------------------------------------------------------------

    def _mine_tree(
        self,
        tree: PSTree,
        suffix: tuple[str, ...],
        results: list[PeriodicFrequentItemset],
    ) -> None:
        n_transactions = tree.n_transactions
        # Least-frequent-first: reverse of the rank order of items present.
        items_present = sorted(
            tree.header, key=lambda it: tree.item_order.get(it, 0), reverse=True
        )
        for item in items_present:
            nodes = list(tree.nodes_of(item))
            # Occurrence summary of the item in this (conditional) tree.
            total = PeriodSummary(self.max_per)
            bases: list[tuple[list[str], PeriodSummary]] = []
            for node in nodes:
                if node.summary is None:
                    continue
                total = total.merged_with(node.summary)
                path = tree.path_to_root(node)
                if path:
                    bases.append((path, node.summary))
            support = total.support
            if support >= self.min_sup:
                itemset = (item,) + suffix
                if total.is_periodic(n_transactions):
                    results.append(
                        PeriodicFrequentItemset(
                            items=tuple(sorted(itemset)),
                            support=support,
                            max_period=total.max_inter_run_gap(n_transactions),
                        )
                    )
                if (
                    self.max_itemset_size is None
                    or len(itemset) < self.max_itemset_size
                ):
                    conditional = self._conditional_tree(tree, bases)
                    if conditional.header:
                        self._mine_tree(conditional, itemset, results)
            # Tail-pushing: move the item's summaries to the parents so the
            # remaining items of this tree still see those transactions.
            for node in nodes:
                if node.summary is None:
                    continue
                parent = node.parent
                assert parent is not None
                if parent.item is not None:
                    if parent.summary is None:
                        parent.summary = PeriodSummary(self.max_per)
                    parent.summary = parent.summary.merged_with(node.summary)
                node.summary = None

    def _conditional_tree(
        self, tree: PSTree, bases: list[tuple[list[str], PeriodSummary]]
    ) -> PSTree:
        # Conditional supports decide which prefix items survive.
        cond_supports: dict[str, int] = {}
        for path, summary in bases:
            for prefix_item in path:
                cond_supports[prefix_item] = (
                    cond_supports.get(prefix_item, 0) + summary.support
                )
        keep = {it for it, s in cond_supports.items() if s >= self.min_sup}
        order = {
            item: rank
            for rank, item in enumerate(
                sorted(keep, key=lambda it: (-cond_supports[it], it))
            )
        }
        conditional = PSTree(max_per=self.max_per, item_order=order)
        conditional.n_transactions = tree.n_transactions
        for path, summary in bases:
            filtered = sorted(
                (it for it in path if it in keep), key=order.__getitem__
            )
            if filtered:
                conditional.insert_conditional(filtered, summary)
        return conditional
