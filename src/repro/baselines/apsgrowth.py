"""APS-growth: the paper's experimental baseline (Sec. VI-A).

The adaptation of PS-growth to seasonal temporal patterns is a 2-phase
process:

* **Phase 1** runs PS-growth over the transaction view of DSEQ (granule ->
  occurring events) to extract the frequent recurring events.  The support
  threshold is ``minSeason * minDensity`` -- the weakest lossless filter a
  frequent seasonal pattern's events must pass (a frequent pattern has at
  least ``minSeason`` disjoint seasons of at least ``minDensity`` granules
  each).  The periodicity constraint is disabled (``max_per = |DSEQ|``)
  because seasonal gap structure does not map to a global maximum period.
* **Phase 2** mines temporal patterns from the extracted events with the
  brute-force miner: no HLH tables, no support-set intersections, no
  transitivity filtering -- every group rescans DSEQ and every occurrence
  assignment is materialized.  This is what makes the baseline slower and
  more memory-hungry than E-STPM while returning the *same* pattern set
  (asserted by the test suite).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.naive import NaiveSTPM
from repro.baselines.psgrowth import PSGrowth
from repro.core.config import MiningParams
from repro.core.results import MiningResult
from repro.transform.sequence_db import TemporalSequenceDatabase


def transactions_from_dseq(dseq: TemporalSequenceDatabase) -> dict[int, list[str]]:
    """The transaction view of DSEQ: granule position -> occurring events."""
    return {row.position: row.events() for row in dseq}


@dataclass
class APSGrowth:
    """The adapted PS-growth baseline."""

    dseq: TemporalSequenceDatabase
    params: MiningParams
    phase1_itemsets: int = field(init=False, default=0)

    def recurring_events(self) -> list[str]:
        """Phase 1: frequent recurring events via PS-growth."""
        transactions = transactions_from_dseq(self.dseq)
        miner = PSGrowth(
            transactions=transactions,
            min_sup=self.params.min_season * self.params.min_density,
            max_per=max(len(self.dseq), 1),
            max_itemset_size=1,
        )
        itemsets = miner.mine()
        self.phase1_itemsets = len(itemsets)
        return sorted(itemset.items[0] for itemset in itemsets)

    def mine(self) -> MiningResult:
        """Run both phases and return the frequent seasonal patterns."""
        started = time.perf_counter()
        events = self.recurring_events()
        result = NaiveSTPM(
            dseq=self.dseq,
            params=self.params,
            events=events,
            support_gate=True,
        ).mine()
        result.stats.mining_seconds = time.perf_counter() - started
        return result
