"""Exception hierarchy for the :mod:`repro` library.

All library errors derive from :class:`ReproError` so that callers can catch
a single exception type at API boundaries while still being able to handle
the specific failure modes individually.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class GranularityError(ReproError):
    """Raised for invalid time-granularity constructions or conversions."""


class SymbolizationError(ReproError):
    """Raised when a raw series cannot be mapped to a symbolic series."""


class TransformError(ReproError):
    """Raised when building a temporal sequence database fails."""


class ConfigError(ReproError):
    """Raised for invalid mining parameter combinations."""


class MiningError(ReproError):
    """Raised when a mining run cannot proceed."""


class DatasetError(ReproError):
    """Raised by the dataset generators for invalid specifications."""


class FaultInjected(ReproError):
    """Raised by the deterministic fault-injection layer.

    Never raised in production runs: a :class:`~repro.resilience.faults.FaultPlan`
    must be explicitly installed (or arrive via ``REPRO_FAULT_PLAN``) for
    this to fire.  The retry/recovery machinery treats it like any other
    transient task failure, which is exactly how the chaos suite proves
    the recovery paths work.
    """
