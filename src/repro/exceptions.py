"""Exception hierarchy for the :mod:`repro` library.

All library errors derive from :class:`ReproError` so that callers can catch
a single exception type at API boundaries while still being able to handle
the specific failure modes individually.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class GranularityError(ReproError):
    """Raised for invalid time-granularity constructions or conversions."""


class SymbolizationError(ReproError):
    """Raised when a raw series cannot be mapped to a symbolic series."""


class TransformError(ReproError):
    """Raised when building a temporal sequence database fails."""


class ConfigError(ReproError):
    """Raised for invalid mining parameter combinations."""


class MiningError(ReproError):
    """Raised when a mining run cannot proceed."""


class DatasetError(ReproError):
    """Raised by the dataset generators for invalid specifications."""
