"""Run experiments in bulk and collect a report."""

from __future__ import annotations

import sys
import time
from typing import Iterable, TextIO

from repro.core.executor import MiningExecutor
from repro.harness.experiments import (
    EXPERIMENTS,
    engine_defaults,
    run_experiment,
)
from repro.harness.tables import Table
from repro.metrics.memory import measure_peak_memory

__all__ = ["engine_defaults", "run_all"]


def run_all(
    artifact_ids: Iterable[str] | None = None,
    profile: str = "bench",
    stream: TextIO | None = None,
    executor: MiningExecutor | str | None = None,
    support_backend: str | None = None,
    kernel: str | None = None,
    measure_memory: bool = True,
) -> dict[str, str]:
    """Run the requested experiments and return ``{id: rendered_output}``.

    Outputs are streamed to ``stream`` (default stdout) as they complete so
    long runs show progress, followed by a run summary table with each
    experiment's wall-clock time and (by default) peak traced memory.
    ``measure_memory=False`` drops the memory column and runs untraced --
    tracemalloc slows allocation-heavy mining, so use that when the
    summary's wall-clock numbers themselves are the point of the run.
    ``executor`` / ``support_backend`` / ``kernel`` select the mining
    engine backends for the whole run (see :func:`engine_defaults`).
    """
    stream = stream or sys.stdout
    ids = list(artifact_ids) if artifact_ids is not None else sorted(EXPERIMENTS)
    outputs: dict[str, str] = {}
    headers = ["Experiment", "Wall clock (s)"]
    if measure_memory:
        headers.append("Peak memory (MB)")
    summary = Table(title=f"Run summary ({profile} profile)", headers=headers)
    with engine_defaults(executor, support_backend, kernel):
        for artifact_id in ids:
            started = time.perf_counter()
            if measure_memory:
                result, peak_bytes = measure_peak_memory(
                    # B023 does not apply: the lambda is invoked synchronously
                    # inside this iteration, before artifact_id rebinds.
                    lambda: run_experiment(artifact_id, profile=profile)  # noqa: B023
                )
            else:
                result = run_experiment(artifact_id, profile=profile)
            elapsed = time.perf_counter() - started
            rendered = result.render()
            outputs[artifact_id] = rendered
            row: list = [artifact_id, elapsed]
            if measure_memory:
                row.append(peak_bytes / 1024 / 1024)
            summary.add_row(*row)
            print(f"\n### {artifact_id} (completed in {elapsed:.1f}s)\n", file=stream)
            print(rendered, file=stream)
            stream.flush()
    print(f"\n{summary.render()}", file=stream)
    stream.flush()
    return outputs
