"""Run experiments in bulk and collect a report."""

from __future__ import annotations

import sys
import time
from typing import Iterable, TextIO

from repro.harness.experiments import EXPERIMENTS, run_experiment


def run_all(
    artifact_ids: Iterable[str] | None = None,
    profile: str = "bench",
    stream: TextIO | None = None,
) -> dict[str, str]:
    """Run the requested experiments and return ``{id: rendered_output}``.

    Outputs are streamed to ``stream`` (default stdout) as they complete so
    long runs show progress.
    """
    stream = stream or sys.stdout
    ids = list(artifact_ids) if artifact_ids is not None else sorted(EXPERIMENTS)
    outputs: dict[str, str] = {}
    for artifact_id in ids:
        started = time.perf_counter()
        result = run_experiment(artifact_id, profile=profile)
        rendered = result.render()
        elapsed = time.perf_counter() - started
        outputs[artifact_id] = rendered
        print(f"\n### {artifact_id} (completed in {elapsed:.1f}s)\n", file=stream)
        print(rendered, file=stream)
        stream.flush()
    return outputs
