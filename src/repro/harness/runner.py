"""Run experiments in bulk and collect a report.

Machine-readable output (the rendered tables/figures and the run
summary) goes to ``stream``/stdout exactly as before; diagnostics go to
the ``repro.harness.runner`` logger on stderr.  ``trace_path`` is the
harness telemetry hook: when set, the whole run executes with tracing
and counters enabled and the collected span tree + counter summary is
written as trace JSON next to the results.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Iterable, TextIO

from repro.core.executor import MiningExecutor
from repro.harness.experiments import (
    EXPERIMENTS,
    engine_defaults,
    run_experiment,
)
from repro.harness.tables import Table
from repro.metrics.memory import measure_peak_memory
from repro.obs import (
    disable_telemetry,
    enable_telemetry,
    reset_telemetry,
    summary as metrics_summary,
    write_trace,
)
from repro.obs.logging import get_logger

__all__ = ["engine_defaults", "run_all"]

logger = get_logger(__name__)


def run_all(
    artifact_ids: Iterable[str] | None = None,
    profile: str = "bench",
    stream: TextIO | None = None,
    executor: MiningExecutor | str | None = None,
    support_backend: str | None = None,
    kernel: str | None = None,
    frontend: str | None = None,
    measure_memory: bool = True,
    trace_path: str | Path | None = None,
) -> dict[str, str]:
    """Run the requested experiments and return ``{id: rendered_output}``.

    Outputs are streamed to ``stream`` (default stdout) as they complete so
    long runs show progress, followed by a run summary table with each
    experiment's wall-clock time and (by default) peak traced memory.
    ``measure_memory=False`` drops the memory column and runs untraced --
    tracemalloc slows allocation-heavy mining, so use that when the
    summary's wall-clock numbers themselves are the point of the run.
    ``executor`` / ``support_backend`` / ``kernel`` / ``frontend`` select
    the mining engine backends for the whole run (see
    :func:`engine_defaults`).
    ``trace_path`` enables telemetry for the run and writes the span tree
    plus counter summary there when the run finishes (even on error).
    """
    stream = stream or sys.stdout
    ids = list(artifact_ids) if artifact_ids is not None else sorted(EXPERIMENTS)
    outputs: dict[str, str] = {}
    headers = ["Experiment", "Wall clock (s)"]
    if measure_memory:
        headers.append("Peak memory (MB)")
    summary = Table(title=f"Run summary ({profile} profile)", headers=headers)
    if trace_path is not None:
        reset_telemetry()
        enable_telemetry()
    try:
        with engine_defaults(executor, support_backend, kernel, frontend):
            for artifact_id in ids:
                logger.info(
                    "experiment starting",
                    extra={"experiment": artifact_id, "profile": profile},
                )
                started = time.perf_counter()
                if measure_memory:
                    result, peak_bytes = measure_peak_memory(
                        # B023 does not apply: the lambda is invoked synchronously
                        # inside this iteration, before artifact_id rebinds.
                        lambda: run_experiment(artifact_id, profile=profile)  # noqa: B023
                    )
                else:
                    result = run_experiment(artifact_id, profile=profile)
                elapsed = time.perf_counter() - started
                logger.info(
                    "experiment finished",
                    extra={
                        "experiment": artifact_id,
                        "seconds": round(elapsed, 3),
                    },
                )
                rendered = result.render()
                outputs[artifact_id] = rendered
                row: list = [artifact_id, elapsed]
                if measure_memory:
                    row.append(peak_bytes / 1024 / 1024)
                summary.add_row(*row)
                print(f"\n### {artifact_id} (completed in {elapsed:.1f}s)\n", file=stream)
                print(rendered, file=stream)
                stream.flush()
        print(f"\n{summary.render()}", file=stream)
        stream.flush()
    finally:
        if trace_path is not None:
            path = write_trace(
                trace_path,
                command=f"run_all --profile {profile}",
                counters=metrics_summary(),
            )
            disable_telemetry()
            logger.info("trace written", extra={"path": str(path)})
    return outputs
