"""ASCII figure rendering: one data series per miner/variant.

The paper's figures plot runtime/memory against a swept threshold with one
line per method.  We render the same data as a value table followed by
normalized horizontal bars, which preserves the comparisons (who wins,
ordering, trends) in plain text.
"""

from __future__ import annotations

from dataclasses import dataclass, field

_BAR_WIDTH = 40


@dataclass
class Figure:
    """A titled multi-series plot over a shared x axis."""

    title: str
    x_label: str
    x_values: list = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)
    y_label: str = "value"
    notes: str = ""

    def add_series(self, name: str, values: list[float]) -> None:
        """Attach one line of the figure (length must match x_values)."""
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points, "
                f"expected {len(self.x_values)}"
            )
        self.series[name] = list(values)

    def render(self) -> str:
        """Value table + normalized bars per x position."""
        lines = [self.title, "=" * len(self.title)]
        name_width = max((len(n) for n in self.series), default=6)
        x_width = max(
            [len(str(x)) for x in self.x_values] + [len(self.x_label)]
        )
        header = str(self.x_label).ljust(x_width) + " | " + " | ".join(
            name.rjust(10) for name in self.series
        )
        lines.append(f"{self.y_label}:")
        lines.append(header)
        lines.append("-" * len(header))
        for index, x in enumerate(self.x_values):
            cells = " | ".join(
                f"{values[index]:10.3f}" for values in self.series.values()
            )
            lines.append(f"{str(x).ljust(x_width)} | {cells}")
        peak = max(
            (v for values in self.series.values() for v in values), default=0.0
        )
        if peak > 0:
            lines.append("")
            for index, x in enumerate(self.x_values):
                lines.append(f"{self.x_label} = {x}:")
                for name, values in self.series.items():
                    bar = "#" * max(1, round(_BAR_WIDTH * values[index] / peak))
                    lines.append(f"  {name.ljust(name_width)} {bar} {values[index]:.3f}")
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
