"""Command-line interface: ``freqstpfts``.

Subcommands
-----------
``list``
    List the available experiments and datasets.
``run T9 F7 --profile bench``
    Run specific experiments and print their tables/figures.
``all --profile bench``
    Run every experiment.
``mine --dataset RE --min-season 6 ...``
    One-off mining run printing the found seasonal patterns.
``multigrain --dataset RE --multiples 1 2 4 ...``
    Mine a dataset at several granularities through the hierarchical
    fold-derived engine and report which patterns persist across levels.
``stream --dataset RE --batch-granules 8 ...``
    Replay a dataset as a live stream through the incremental miner,
    printing the per-batch pattern deltas and update latencies.
``query results.json --series WindSpeed --min-size 2 ...``
    Filter an archived results JSON with the PatternQuery API
    (``--level`` selects one level of a multigrain archive).
``lint``
    Run the static contract analyzer (compute-twin, picklability,
    thread-safety, zero-overhead telemetry, registry conformance) over
    the tree; same engine as ``python -m repro.analysis``, see
    DESIGN.md ("Static contracts") for the rule catalog, suppression
    comments, and the baseline workflow.

Engine selection
----------------
Every mining subcommand accepts ``--executor serial|parallel|threads``
(with ``--workers N`` for the pool size), ``--support-backend
bitset|list`` for the physical support-set representation, and
``--kernel array|sweep|reference`` for the step-2.2
instance-enumeration kernel (``array`` = the vectorized bulk-boundary
engine, the default; ``sweep`` = the columnar tuple sweep join;
``reference`` = the object-at-a-time parity loops), and ``--frontend
columnar|scalar`` for the step-1 DSEQ builder (``columnar`` = one-pass
vectorized run detection that also primes the step-2.1 supports and
instance columns, the default; ``scalar`` = the granule-by-granule
parity reference).  ``--keep-pool`` keeps one persistent worker pool
alive for the whole command, so multi-level and multi-experiment runs
reuse the same workers instead of spawning a pool per mining level.
All combinations return identical pattern sets.

Resilience
----------
``--max-retries N`` / ``--task-timeout SECONDS`` configure the executor
retry policy: transient task failures retry with deterministic
exponential backoff, tasks that exhaust their attempts are quarantined
into the result's ``failures`` (and re-raised, strict mode being the
engine default), and a stalled parallel pool is recycled after the
timeout.  ``mine`` and ``multigrain`` take ``--resume PATH``, a
job-progress checkpoint written atomically as groups/levels complete;
re-running the same command with the same PATH skips the completed
work.  Ctrl-C closes open pools, still writes ``--trace``, and exits
with status 130.

Telemetry
---------
Every mining subcommand also accepts ``--log-level
debug|info|warning|error`` and ``--log-json`` (JSON-lines instead of
key=value) controlling the ``repro.*`` stderr diagnostics, plus
``--trace FILE`` which enables the span/counter telemetry for the whole
command and writes the nested span tree + counter summary as JSON when
the command finishes.  Machine-readable stdout is unaffected by all
three flags.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager

from repro.core.approximate import ASTPM
from repro.core.executor import (
    EXECUTOR_BACKENDS,
    EXECUTOR_PARALLEL,
    EXECUTOR_THREADS,
    MiningExecutor,
    ParallelExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.core.instance_index import STEP2_KERNELS
from repro.core.query import PatternQuery
from repro.core.stpm import ESTPM
from repro.core.supportset import SUPPORT_BACKENDS
from repro.datasets.registry import DATASET_BUILDERS, PROFILES, load_dataset
from repro.events.relations import RELATIONS
from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.runner import engine_defaults, run_all
from repro.io.results_json import load_results_archive, multigrain_to_json
from repro.multigrain import (
    MINER_APPROXIMATE,
    MINER_EXACT,
    STRATEGIES,
    STRATEGY_FOLD,
    HierarchicalMiner,
    MultiGranularityResult,
)
from repro.obs import (
    disable_telemetry,
    enable_telemetry,
    reset_telemetry,
    summary as metrics_summary,
    write_trace,
)
from repro.obs.logging import LEVELS, configure_logging, get_logger
from repro.resilience import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.transform.sequence_db import FRONTEND_KERNELS

logger = get_logger(__name__)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="freqstpfts",
        description="Frequent Seasonal Temporal Pattern Mining from Time Series "
        "(ICDE 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_engine_arguments(command_parser: argparse.ArgumentParser) -> None:
        command_parser.add_argument(
            "--executor",
            default=None,
            choices=sorted(EXECUTOR_BACKENDS),
            help="execution backend for the per-group mining work: serial "
            "(in-process), parallel (process pool), or threads (thread "
            "pool, zero-copy contexts for small levels)",
        )
        command_parser.add_argument(
            "--workers",
            type=int,
            default=None,
            help="worker processes/threads for --executor parallel|threads "
            "(default: all cores)",
        )
        command_parser.add_argument(
            "--keep-pool",
            action="store_true",
            help="keep one persistent worker pool alive for the whole "
            "command (reused across mining levels, hierarchy jobs, and "
            "experiments instead of spawning a pool per level)",
        )
        command_parser.add_argument(
            "--support-backend",
            default=None,
            choices=sorted(SUPPORT_BACKENDS),
            help="physical support-set representation",
        )
        command_parser.add_argument(
            "--kernel",
            default=None,
            choices=sorted(STEP2_KERNELS),
            help="step-2.2 instance-enumeration kernel: array (vectorized "
            "bulk boundaries + batched classification, the default), sweep "
            "(columnar tuple sweep join), or reference (object-at-a-time "
            "parity loops); all kernels return identical pattern sets",
        )
        command_parser.add_argument(
            "--frontend",
            default=None,
            choices=sorted(FRONTEND_KERNELS),
            help="step-1 DSEQ builder: columnar (one-pass vectorized run "
            "detection that also primes step-2.1 supports and instance "
            "columns, the default) or scalar (granule-by-granule parity "
            "reference); both produce identical rows and pattern sets",
        )
        command_parser.add_argument(
            "--max-retries",
            type=int,
            default=None,
            metavar="N",
            help="attempts per mining task before it is quarantined into "
            "the result's failures list (default: "
            f"{DEFAULT_RETRY_POLICY.max_attempts}; transient task errors "
            "are retried with deterministic exponential backoff)",
        )
        command_parser.add_argument(
            "--task-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-task progress budget for --executor parallel: when no "
            "task completes within this window the pool is recycled and the "
            "stalled tasks are retried (default: no timeout)",
        )

    def add_telemetry_arguments(command_parser: argparse.ArgumentParser) -> None:
        command_parser.add_argument(
            "--log-level",
            default=None,
            choices=sorted(LEVELS),
            help="threshold for repro.* diagnostics on stderr "
            "(default: warning)",
        )
        command_parser.add_argument(
            "--log-json",
            action="store_true",
            help="emit diagnostics as JSON lines instead of key=value text",
        )
        command_parser.add_argument(
            "--trace",
            default=None,
            metavar="FILE",
            help="enable span/counter telemetry and write the trace JSON "
            "(nested span tree + counter summary) here when the command "
            "finishes",
        )

    sub.add_parser("list", help="list experiments and datasets")

    run_parser = sub.add_parser("run", help="run specific experiments")
    run_parser.add_argument("ids", nargs="+", help="experiment ids, e.g. T9 F7")
    run_parser.add_argument("--profile", default="bench", choices=sorted(PROFILES))
    add_engine_arguments(run_parser)
    add_telemetry_arguments(run_parser)

    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument("--profile", default="bench", choices=sorted(PROFILES))
    all_parser.add_argument(
        "--no-memory",
        action="store_true",
        help="skip the peak-memory column (runs untraced; tracemalloc "
        "slows mining, so use this when wall-clock numbers matter)",
    )
    add_engine_arguments(all_parser)
    add_telemetry_arguments(all_parser)

    mine_parser = sub.add_parser("mine", help="one-off mining run")
    mine_parser.add_argument("--dataset", default="RE", choices=sorted(DATASET_BUILDERS))
    mine_parser.add_argument("--profile", default="bench", choices=sorted(PROFILES))
    mine_parser.add_argument("--min-season", type=int, default=6)
    mine_parser.add_argument("--min-density-pct", type=float, default=0.75)
    mine_parser.add_argument("--max-period-pct", type=float, default=0.4)
    mine_parser.add_argument("--approximate", action="store_true", help="use A-STPM")
    mine_parser.add_argument("--limit", type=int, default=25, help="patterns to print")
    mine_parser.add_argument(
        "--resume", default=None, metavar="PATH",
        help="job-progress checkpoint: completed mining groups are "
        "recorded here (written atomically) and skipped when the same "
        "command is re-run with the same PATH after a crash",
    )
    add_engine_arguments(mine_parser)
    add_telemetry_arguments(mine_parser)

    multigrain_parser = sub.add_parser(
        "multigrain",
        help="mine a dataset at several granularities (hierarchical engine)",
    )
    multigrain_parser.add_argument(
        "--dataset", default="RE", choices=sorted(DATASET_BUILDERS)
    )
    multigrain_parser.add_argument(
        "--profile", default="tiny", choices=sorted(PROFILES)
    )
    multigrain_parser.add_argument(
        "--multiples", type=int, nargs="+", default=[1, 2, 4], metavar="M",
        help="hierarchy levels as multiples of the dataset's own sequence "
        "ratio (1 = the dataset's native granularity)",
    )
    multigrain_parser.add_argument("--min-season", type=int, default=4)
    multigrain_parser.add_argument("--min-density-pct", type=float, default=0.75)
    multigrain_parser.add_argument("--max-period-pct", type=float, default=0.4)
    multigrain_parser.add_argument(
        "--approximate", action="store_true", help="mine each level with A-STPM"
    )
    multigrain_parser.add_argument(
        "--strategy", default=STRATEGY_FOLD, choices=sorted(STRATEGIES),
        help="fold: derive coarse levels from the finest; rebuild: re-map "
        "every level from the symbolic database (baseline)",
    )
    multigrain_parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="archive the multi-level result as JSON (query with --level)",
    )
    multigrain_parser.add_argument(
        "--limit", type=int, default=10, help="persistent patterns to print"
    )
    multigrain_parser.add_argument(
        "--resume", default=None, metavar="PATH",
        help="job-progress checkpoint: completed hierarchy levels are "
        "recorded here (written atomically) and skipped when the same "
        "command is re-run with the same PATH after a crash",
    )
    add_engine_arguments(multigrain_parser)
    add_telemetry_arguments(multigrain_parser)

    stream_parser = sub.add_parser(
        "stream", help="replay a dataset as a live stream (incremental mining)"
    )
    stream_parser.add_argument(
        "--dataset", default="RE", choices=sorted(DATASET_BUILDERS)
    )
    stream_parser.add_argument("--profile", default="tiny", choices=sorted(PROFILES))
    stream_parser.add_argument(
        "--batch-granules", type=int, default=8,
        help="granules ingested per stream batch",
    )
    stream_parser.add_argument(
        "--initial-granules", type=int, default=None,
        help="granules in the warm-up window (default: one batch)",
    )
    stream_parser.add_argument("--min-season", type=int, default=6)
    stream_parser.add_argument("--min-density-pct", type=float, default=0.75)
    stream_parser.add_argument("--max-period-pct", type=float, default=0.4)
    stream_parser.add_argument(
        "--reanchor-every", type=int, default=None,
        help="verify batch parity every N advances (paranoia knob)",
    )
    stream_parser.add_argument(
        "--verify", action="store_true",
        help="assert batch parity once at the end of the stream",
    )
    stream_parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write a stream checkpoint JSON at the end",
    )
    stream_parser.add_argument("--limit", type=int, default=10, help="patterns to print")
    stream_parser.add_argument(
        "--support-backend", default=None, choices=sorted(SUPPORT_BACKENDS),
        help="physical support-set representation",
    )
    stream_parser.add_argument(
        "--kernel", default=None, choices=sorted(STEP2_KERNELS),
        help="step-2.2 instance-enumeration kernel (array/sweep/reference); "
        "all kernels return identical pattern sets",
    )
    stream_parser.add_argument(
        "--frontend", default=None, choices=sorted(FRONTEND_KERNELS),
        help="granule materialization front end: columnar (one region "
        "pass per push) or scalar (granule-by-granule reference); both "
        "append identical rows",
    )
    add_telemetry_arguments(stream_parser)

    query_parser = sub.add_parser(
        "query", help="filter an archived results JSON (PatternQuery)"
    )
    query_parser.add_argument("results", help="path to a results JSON archive")
    query_parser.add_argument(
        "--events", nargs="*", default=[], metavar="EVENT",
        help="require every listed event (series:symbol)",
    )
    query_parser.add_argument(
        "--series", nargs="*", default=[], metavar="SERIES",
        help="require at least one event of every listed series",
    )
    query_parser.add_argument(
        "--relations", nargs="*", default=[], choices=sorted(RELATIONS),
        help="require every listed relation type",
    )
    query_parser.add_argument("--min-size", type=int, default=1)
    query_parser.add_argument("--max-size", type=int, default=None)
    query_parser.add_argument("--min-seasons", type=int, default=0)
    query_parser.add_argument(
        "--level", type=int, default=None, metavar="RATIO",
        help="for multigrain archives: query the level mined at this ratio "
        "(default: the finest archived level)",
    )
    query_parser.add_argument("--limit", type=int, default=25, help="patterns to print")

    sub.add_parser(
        "lint",
        help="run the static contract analyzer (python -m repro.analysis)",
        add_help=False,
    )
    return parser


def _retry_policy(args) -> RetryPolicy | None:
    """A :class:`RetryPolicy` when any retry flag was given, else ``None``."""
    max_retries = getattr(args, "max_retries", None)
    task_timeout = getattr(args, "task_timeout", None)
    if max_retries is None and task_timeout is None:
        return None
    kwargs = {}
    if max_retries is not None:
        kwargs["max_attempts"] = max_retries
    if task_timeout is not None:
        kwargs["timeout_s"] = task_timeout
    return RetryPolicy(**kwargs)


def _executor_spec(args):
    """The executor spec of parsed engine flags.

    ``--workers`` / ``--keep-pool`` / ``--max-retries`` / ``--task-timeout``
    turn the backend name into a configured instance, so an explicit
    invalid value (e.g. ``--workers 0``) reaches the executor constructor
    and is rejected there, not silently reinterpreted.  With ``--keep-pool``
    the instance runs one persistent, reused pool for the whole command
    (closed by :func:`_close_executor` before the process exits).
    """
    keep_pool = getattr(args, "keep_pool", False)
    retry = _retry_policy(args)
    configured = args.workers is not None or keep_pool or retry is not None
    if args.executor == EXECUTOR_PARALLEL and configured:
        return ParallelExecutor(
            max_workers=args.workers,
            reuse_pool=True if keep_pool else None,
            retry=retry,
        )
    if args.executor == EXECUTOR_THREADS and configured:
        # A ThreadExecutor instance is inherently a kept pool: the scope
        # machinery closes name-resolved backends per job but leaves
        # instances open for the whole command.
        return ThreadExecutor(max_workers=args.workers, retry=retry)
    if keep_pool:
        logger.warning(
            "--keep-pool has no effect without --executor parallel|threads"
        )
    if retry is not None:
        # Serial (or default) backend with an explicit retry policy: the
        # in-process retry/quarantine machinery still applies.
        return SerialExecutor(retry=retry)
    return args.executor


def _engine_settings(args):
    """``(executor_spec, n_workers)`` with the worker count folded into
    the spec whenever an instance was built (an instance plus a separate
    ``n_workers`` is a conflict the engine rejects)."""
    spec = _executor_spec(args)
    n_workers = None if isinstance(spec, MiningExecutor) else args.workers
    return spec, n_workers


def _close_executor(spec) -> None:
    """Release the pool of a CLI-built executor instance (no-op for names)."""
    if isinstance(spec, MiningExecutor):
        spec.close()


@contextmanager
def _telemetry(args):
    """Configure logging and (when ``--trace`` is set) span/counter telemetry.

    Logging is configured for every subcommand (``list``/``query`` have no
    telemetry flags, so they get the defaults).  The trace file is written
    on the way out even when the command fails, so aborted runs still leave
    the spans collected up to the failure.  The ``all`` subcommand routes
    its trace through :func:`repro.harness.runner.run_all`'s own
    ``trace_path`` hook instead, exercising the harness-level integration.
    """
    configure_logging(
        level=getattr(args, "log_level", None) or "warning",
        json_lines=getattr(args, "log_json", False),
    )
    trace_path = getattr(args, "trace", None)
    own_trace = trace_path if args.command != "all" else None
    if own_trace is not None:
        reset_telemetry()
        enable_telemetry()
    try:
        yield
    finally:
        if own_trace is not None:
            path = write_trace(
                own_trace, command=args.command, counters=metrics_summary()
            )
            disable_telemetry()
            logger.info("trace written", extra={"path": str(path)})


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    raw = sys.argv[1:] if argv is None else list(argv)
    if raw[:1] == ["lint"]:
        # Delegate everything after `lint` to the analyzer's own parser
        # (it has its own --help/--paths/--format surface).
        from repro.analysis.runner import main as lint_main

        return lint_main(raw[1:])
    args = _build_parser().parse_args(raw)
    try:
        with _telemetry(args):
            return _dispatch(args)
    except KeyboardInterrupt:
        # The per-command ``finally`` blocks (and executor_scope) have
        # already closed any CLI-built pools on the way out, and
        # _telemetry's finally has written the partial --trace file; all
        # that is left is the conventional SIGINT exit status.
        logger.warning("interrupted")
        return 130


def _dispatch(args) -> int:
    """Route parsed arguments to the subcommand implementation."""
    if args.command == "list":
        print("Experiments:")
        for artifact_id in sorted(EXPERIMENTS):
            doc = (EXPERIMENTS[artifact_id].__doc__ or "").strip().splitlines()[0]
            print(f"  {artifact_id:5s} {doc}")
        print("\nDatasets:", ", ".join(sorted(DATASET_BUILDERS)))
        print("Profiles:", ", ".join(sorted(PROFILES)))
        return 0
    if args.command == "run":
        spec = _executor_spec(args)
        try:
            with engine_defaults(
                spec, args.support_backend, args.kernel, args.frontend
            ):
                for artifact_id in args.ids:
                    print(run_experiment(artifact_id, profile=args.profile).render())
                    print()
        finally:
            _close_executor(spec)
        return 0
    if args.command == "all":
        spec = _executor_spec(args)
        try:
            run_all(
                profile=args.profile,
                executor=spec,
                support_backend=args.support_backend,
                kernel=args.kernel,
                frontend=args.frontend,
                measure_memory=not args.no_memory,
                trace_path=args.trace,
            )
        finally:
            _close_executor(spec)
        return 0
    if args.command == "mine":
        dataset = load_dataset(args.dataset, args.profile)
        params = dataset.params(
            max_period_pct=args.max_period_pct,
            min_density_pct=args.min_density_pct,
            min_season=args.min_season,
        )
        spec, n_workers = _engine_settings(args)
        engine = {
            "support_backend": args.support_backend,
            "executor": spec,
            "n_workers": n_workers,
            "kernel": args.kernel,
            "checkpoint_path": args.resume,
        }
        try:
            # The front end acts at dseq-build time, so it is installed as
            # the process default around the dataset.dseq() call.
            with engine_defaults(frontend=args.frontend):
                if args.approximate:
                    result = ASTPM(
                        dataset.dsyb, dataset.ratio, params, dseq=dataset.dseq(), **engine
                    ).mine()
                else:
                    result = ESTPM(dataset.dseq(), params, **engine).mine()
        finally:
            _close_executor(spec)
        print(
            f"{len(result)} frequent seasonal patterns on {args.dataset} "
            f"({args.profile}) in {result.stats.mining_seconds:.2f}s"
        )
        print(result.describe(limit=args.limit))
        return 0
    if args.command == "multigrain":
        return _run_multigrain(args)
    if args.command == "stream":
        return _run_stream(args)
    if args.command == "query":
        return _run_query(args)
    return 1  # pragma: no cover - argparse enforces the choices


def _run_multigrain(args) -> int:
    """The ``multigrain`` subcommand: hierarchical multi-level mining."""
    dataset = load_dataset(args.dataset, args.profile)
    ratios = sorted({dataset.ratio * multiple for multiple in args.multiples})
    if any(multiple < 1 for multiple in args.multiples):
        logger.error("--multiples must be >= 1")
        return 2
    # The dataset's dist interval is expressed in its own sequence
    # granules; the hierarchy spec wants fine granules (DSYB instants).
    dist_interval = (
        dataset.dist_interval[0] * dataset.ratio,
        dataset.dist_interval[1] * dataset.ratio,
    )
    spec, n_workers = _engine_settings(args)
    miner = HierarchicalMiner(
        dataset.dsyb,
        ratios=ratios,
        max_period_pct=args.max_period_pct,
        min_density_pct=args.min_density_pct,
        dist_interval=dist_interval,
        min_season=args.min_season,
        miner=MINER_APPROXIMATE if args.approximate else MINER_EXACT,
        strategy=args.strategy,
        support_backend=args.support_backend,
        executor=spec,
        n_workers=n_workers,
        kernel=args.kernel,
        checkpoint_path=args.resume,
    )
    try:
        with engine_defaults(frontend=args.frontend):
            result = miner.mine()
    finally:
        _close_executor(spec)
    print(
        f"hierarchical {'A-STPM' if args.approximate else 'E-STPM'} on "
        f"{args.dataset} ({args.profile}): {len(result)} levels in "
        f"{result.total_seconds:.2f}s ({args.strategy} strategy)"
    )
    print(result.describe(limit=args.limit))
    if args.output:
        multigrain_to_json(result, args.output)
        print(f"multigrain archive written to {args.output}")
    return 0


def _run_stream(args) -> int:
    """The ``stream`` subcommand: dataset replay through the live miner."""
    from repro.streaming import replay_dataset

    dataset = load_dataset(args.dataset, args.profile)
    params = dataset.params(
        max_period_pct=args.max_period_pct,
        min_density_pct=args.min_density_pct,
        min_season=args.min_season,
    )
    print(
        f"streaming {args.dataset} ({args.profile}): "
        f"{dataset.n_sequences} granules in batches of {args.batch_granules}"
    )
    service = None
    total_seconds = 0.0
    for service, delta in replay_dataset(
        dataset,
        params,
        batch_granules=args.batch_granules,
        initial_granules=args.initial_granules,
        support_backend=args.support_backend,
        reanchor_every=args.reanchor_every,
        kernel=args.kernel,
        frontend=args.frontend,
    ):
        total_seconds += delta.seconds
        print(f"  {delta.describe()}")
    result = service.result()
    print(
        f"{len(result)} frequent seasonal patterns after {service.n_granules} "
        f"granules ({total_seconds:.2f}s total incremental mining, "
        f"{len(service.border_patterns())} border patterns)"
    )
    print(result.describe(limit=args.limit))
    if args.verify:
        service.verify_parity()
        print("parity verified: streaming result == batch E-STPM")
    if args.checkpoint:
        service.save_checkpoint(args.checkpoint)
        print(f"checkpoint written to {args.checkpoint}")
    return 0


def _run_query(args) -> int:
    """The ``query`` subcommand: PatternQuery over an archived result."""
    archive = load_results_archive(args.results)
    if isinstance(archive, MultiGranularityResult):
        ratio = args.level if args.level is not None else archive.ratios[0]
        if ratio not in archive.ratios:
            logger.error(
                "no archived level at ratio %s; available: %s",
                ratio,
                archive.ratios,
            )
            return 2
        result = archive.level(ratio).result
        print(
            f"multigrain archive (levels at ratios {archive.ratios}); "
            f"querying ratio {ratio}"
        )
    else:
        if args.level is not None:
            logger.error("--level only applies to multigrain archives")
            return 2
        result = archive
    query = PatternQuery().min_size(args.min_size).min_seasons(args.min_seasons)
    if args.max_size is not None:
        query = query.max_size(args.max_size)
    if args.events:
        query = query.with_events(*args.events)
    if args.series:
        query = query.with_series(*args.series)
    if args.relations:
        query = query.with_relations(*args.relations)
    matched = query.run(result)
    print(f"{len(matched)} of {len(result)} archived patterns match")
    for sp in matched[: args.limit]:
        print(f"  {sp.describe()}")
    if len(matched) > args.limit:
        print(f"  ... and {len(matched) - args.limit} more")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
