"""Command-line interface: ``freqstpfts``.

Subcommands
-----------
``list``
    List the available experiments and datasets.
``run T9 F7 --profile bench``
    Run specific experiments and print their tables/figures.
``all --profile bench``
    Run every experiment.
``mine --dataset RE --min-season 6 ...``
    One-off mining run printing the found seasonal patterns.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.approximate import ASTPM
from repro.core.stpm import ESTPM
from repro.datasets.registry import DATASET_BUILDERS, PROFILES, load_dataset
from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.runner import run_all


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="freqstpfts",
        description="Frequent Seasonal Temporal Pattern Mining from Time Series "
        "(ICDE 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and datasets")

    run_parser = sub.add_parser("run", help="run specific experiments")
    run_parser.add_argument("ids", nargs="+", help="experiment ids, e.g. T9 F7")
    run_parser.add_argument("--profile", default="bench", choices=sorted(PROFILES))

    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument("--profile", default="bench", choices=sorted(PROFILES))

    mine_parser = sub.add_parser("mine", help="one-off mining run")
    mine_parser.add_argument("--dataset", default="RE", choices=sorted(DATASET_BUILDERS))
    mine_parser.add_argument("--profile", default="bench", choices=sorted(PROFILES))
    mine_parser.add_argument("--min-season", type=int, default=6)
    mine_parser.add_argument("--min-density-pct", type=float, default=0.75)
    mine_parser.add_argument("--max-period-pct", type=float, default=0.4)
    mine_parser.add_argument("--approximate", action="store_true", help="use A-STPM")
    mine_parser.add_argument("--limit", type=int, default=25, help="patterns to print")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        print("Experiments:")
        for artifact_id in sorted(EXPERIMENTS):
            doc = (EXPERIMENTS[artifact_id].__doc__ or "").strip().splitlines()[0]
            print(f"  {artifact_id:5s} {doc}")
        print("\nDatasets:", ", ".join(sorted(DATASET_BUILDERS)))
        print("Profiles:", ", ".join(sorted(PROFILES)))
        return 0
    if args.command == "run":
        for artifact_id in args.ids:
            print(run_experiment(artifact_id, profile=args.profile).render())
            print()
        return 0
    if args.command == "all":
        run_all(profile=args.profile)
        return 0
    if args.command == "mine":
        dataset = load_dataset(args.dataset, args.profile)
        params = dataset.params(
            max_period_pct=args.max_period_pct,
            min_density_pct=args.min_density_pct,
            min_season=args.min_season,
        )
        if args.approximate:
            result = ASTPM(dataset.dsyb, dataset.ratio, params, dseq=dataset.dseq()).mine()
        else:
            result = ESTPM(dataset.dseq(), params).mine()
        print(
            f"{len(result)} frequent seasonal patterns on {args.dataset} "
            f"({args.profile}) in {result.stats.mining_seconds:.2f}s"
        )
        print(result.describe(limit=args.limit))
        return 0
    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
