"""Experiment definitions: one entry per table/figure of the paper.

Every experiment is a function ``(profile, **overrides) -> Table | Figure``
registered in :data:`EXPERIMENTS` under the paper's artifact id (``T7`` =
Table VII, ``F7`` = Fig. 7, ...).  Default parameter sweeps are scaled to
the ``bench`` dataset profiles so each experiment finishes in tens of
seconds on a laptop; the paper's full grids can be requested through the
keyword overrides.

The *shape* each experiment must reproduce (vs the paper) is documented in
DESIGN.md section 10 and checked into EXPERIMENTS.md.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable

from repro.baselines.apsgrowth import APSGrowth
from repro.core.approximate import ASTPM
from repro.core.config import MiningParams
from repro.core.executor import MiningExecutor, resolve_executor, set_default_executor
from repro.core.prune import ALL_VARIANTS
from repro.core.results import MiningResult
from repro.core.instance_index import set_default_kernel
from repro.core.stpm import ESTPM
from repro.core.supportset import set_default_backend
from repro.datasets.dataset import Dataset
from repro.datasets.registry import DATASET_BUILDERS, PROFILES, load_dataset
from repro.datasets.scaling import scale_series
from repro.events.relations import RelationConfig
from repro.transform.sequence_db import set_default_frontend
from repro.harness.calendar_map import describe_seasonal_occurrence
from repro.harness.figures import Figure
from repro.harness.tables import Table
from repro.metrics.accuracy import accuracy_pct
from repro.metrics.memory import measure_peak_memory
from repro.metrics.timing import time_call

#: Default sweeps, scaled to the bench profiles (paper values in comments).
MIN_SEASONS = (4, 6, 8)  # paper: 4, 8, 12, 16, 20
MIN_DENSITY_PCTS = (0.5, 0.75, 1.0)  # paper: 0.5 .. 1.5
MAX_PERIOD_PCTS = (0.2, 0.4, 0.6)  # paper: 0.2 .. 1.0
DEFAULTS = {"min_season": 6, "min_density_pct": 0.75, "max_period_pct": 0.4}


@contextmanager
def engine_defaults(
    executor: MiningExecutor | str | None = None,
    support_backend: str | None = None,
    kernel: str | None = None,
    frontend: str | None = None,
):
    """Temporarily set the process-wide mining engine defaults.

    The experiment functions build their miners internally, so the harness
    selects the execution backend (``serial`` / ``parallel`` / ``threads``),
    the support-set representation (``bitset`` / ``list``), the step-2.2
    kernel (``array`` / ``sweep`` / ``reference``), and the step-1 front
    end (``columnar`` / ``scalar``) through the process-wide defaults
    rather than threading four extra parameters through every experiment
    signature.  Restores the previous defaults on exit.

    An ``executor`` given by *name* is resolved here to a single instance
    installed for the whole scope, so a pool-backed backend reuses one
    worker pool across every experiment of the run; the scope owns that
    instance and closes it on exit.  An executor *instance* is installed
    as-is and left open -- the caller decides when its pool dies.
    """
    previous_executor = previous_backend = None
    previous_kernel = previous_frontend = None
    owned: MiningExecutor | None = None
    try:
        if executor is not None:
            if not isinstance(executor, MiningExecutor):
                executor = owned = resolve_executor(executor)
            previous_executor = set_default_executor(executor)
        if support_backend is not None:
            previous_backend = set_default_backend(support_backend)
        if kernel is not None:
            previous_kernel = set_default_kernel(kernel)
        if frontend is not None:
            previous_frontend = set_default_frontend(frontend)
        yield
    finally:
        if previous_executor is not None:
            set_default_executor(previous_executor)
        if previous_backend is not None:
            set_default_backend(previous_backend)
        if previous_kernel is not None:
            set_default_kernel(previous_kernel)
        if previous_frontend is not None:
            set_default_frontend(previous_frontend)
        if owned is not None:
            owned.close()


def _params(dataset: Dataset, **overrides) -> MiningParams:
    merged = {**DEFAULTS, **overrides}
    return dataset.params(
        max_period_pct=merged["max_period_pct"],
        min_density_pct=merged["min_density_pct"],
        min_season=merged["min_season"],
    )


def _mine_exact(dataset: Dataset, params: MiningParams) -> MiningResult:
    return ESTPM(dataset.dseq(), params).mine()


def _mine_approx(dataset: Dataset, params: MiningParams) -> MiningResult:
    return ASTPM(dataset.dsyb, dataset.ratio, params, dseq=dataset.dseq()).mine()


def _mine_baseline(dataset: Dataset, params: MiningParams) -> MiningResult:
    return APSGrowth(dataset.dseq(), params).mine()

MINERS: dict[str, Callable[[Dataset, MiningParams], MiningResult]] = {
    "A-STPM": _mine_approx,
    "E-STPM": _mine_exact,
    "APS-growth": _mine_baseline,
}


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def table5_datasets(profile: str = "bench", **_) -> Table:
    """Table V: characteristics of the datasets."""
    table = Table(
        title=f"Table V -- Dataset characteristics ({profile} profile)",
        headers=["Dataset", "#seq.", "#time series", "#events", "#ins./seq."],
    )
    for name in DATASET_BUILDERS:
        summary = load_dataset(name, profile).summary()
        table.add_row(
            name,
            summary["n_sequences"],
            summary["n_time_series"],
            summary["n_events"],
            summary["instances_per_sequence"],
        )
    return table


def table7_accuracy_real(
    profile: str = "bench",
    datasets: tuple[str, ...] = ("RE", "INF"),
    min_seasons: tuple[int, ...] = MIN_SEASONS,
    min_density_pcts: tuple[float, ...] = (0.5, 1.0),
    **_,
) -> Table:
    """Table VII: A-STPM accuracy vs E-STPM on the real-shaped datasets."""
    headers = ["minSeason"] + [
        f"{name} md={md}%" for name in datasets for md in min_density_pcts
    ]
    table = Table(
        title="Table VII -- A-STPM accuracy (%) vs E-STPM",
        headers=headers,
        notes="Shape vs paper: accuracy rises with minSeason and minDensity, reaching 100.",
    )
    loaded = {name: load_dataset(name, profile) for name in datasets}
    for min_season in min_seasons:
        cells: list = [min_season]
        for name in datasets:
            dataset = loaded[name]
            for md in min_density_pcts:
                params = _params(dataset, min_season=min_season, min_density_pct=md)
                exact = _mine_exact(dataset, params)
                approx = _mine_approx(dataset, params)
                cells.append(round(accuracy_pct(exact, approx)))
        table.add_row(*cells)
    return table


#: Events whose patterns Table VIII highlights, per dataset.
_QUALITATIVE_FOCUS = {
    "RE": ("WindPower", "SolarPower", "Demand", "HydroPower"),
    "SC": ("Congestion", "LaneBlocked", "FlowIncident", "AvgSpeed"),
    "INF": ("InfluenzaCases", "InfluenzaA", "ILIVisits"),
    "HFM": ("HFMCases", "PediatricVisits", "CasesUnder2"),
}


def table8_qualitative(
    profile: str = "bench",
    datasets: tuple[str, ...] = ("RE", "SC", "INF", "HFM"),
    per_dataset: int = 3,
    **_,
) -> Table:
    """Table VIII: interesting seasonal patterns found per dataset."""
    table = Table(
        title="Table VIII -- Interesting seasonal patterns",
        headers=["Dataset", "Pattern", "#seasons", "#events", "Seasonal occurrence"],
        notes="Shape vs paper: domain patterns couple drivers to responses "
        "(wind->wind power, cold+humid->influenza, storms->incidents).",
    )
    for name in datasets:
        dataset = load_dataset(name, profile)
        params = _params(dataset, min_season=4, min_density_pct=0.5)
        result = _mine_exact(dataset, params)
        focus = _QUALITATIVE_FOCUS.get(name, ())
        interesting = [
            sp
            for sp in result.patterns
            if sp.size >= 2
            and any(event.startswith(series) for series in focus for event in sp.pattern.events)
        ]
        interesting.sort(key=lambda sp: (-sp.size, -sp.n_seasons))
        for sp in interesting[:per_dataset]:
            table.add_row(
                name,
                sp.pattern.describe(),
                sp.n_seasons,
                sp.size,
                describe_seasonal_occurrence(sp.seasons, dataset.sequence_unit),
            )
    return table


def _counts_table(
    artifact: str,
    dataset_name: str,
    profile: str,
    max_period_pcts: tuple[float, ...],
    grid: tuple[tuple[int, float], ...],
) -> Table:
    dataset = load_dataset(dataset_name, profile)
    headers = ["maxPeriod (%)"] + [f"{ms}-{md}" for ms, md in grid]
    table = Table(
        title=f"{artifact} -- Number of seasonal patterns on {dataset_name}",
        headers=headers,
        notes="Columns are minSeason-minDensity(%). Shape vs paper: counts fall "
        "with minSeason/minDensity and rise with maxPeriod.",
    )
    for mp in max_period_pcts:
        cells: list = [mp]
        for min_season, md in grid:
            params = _params(
                dataset, min_season=min_season, min_density_pct=md, max_period_pct=mp
            )
            cells.append(len(_mine_exact(dataset, params)))
        table.add_row(*cells)
    return table


def table9_counts_re(profile: str = "bench", **kw) -> Table:
    """Table IX: #seasonal patterns on RE over the threshold grid."""
    return _counts_table(
        "Table IX", "RE", profile,
        kw.get("max_period_pcts", MAX_PERIOD_PCTS),
        kw.get("grid", ((4, 0.5), (4, 1.0), (6, 0.5), (6, 1.0), (8, 0.5), (8, 1.0))),
    )


def table10_counts_inf(profile: str = "bench", **kw) -> Table:
    """Table X: #seasonal patterns on INF over the threshold grid."""
    return _counts_table(
        "Table X", "INF", profile,
        kw.get("max_period_pcts", MAX_PERIOD_PCTS),
        kw.get("grid", ((4, 0.5), (4, 1.0), (6, 0.5), (6, 1.0), (8, 0.5), (8, 1.0))),
    )


def table13_counts_sc(profile: str = "bench", **kw) -> Table:
    """Table XIII (appendix): #seasonal patterns on SC."""
    return _counts_table(
        "Table XIII", "SC", profile,
        kw.get("max_period_pcts", MAX_PERIOD_PCTS),
        kw.get("grid", ((4, 0.5), (4, 1.0), (6, 0.5), (6, 1.0), (8, 0.5), (8, 1.0))),
    )


def table14_counts_hfm(profile: str = "bench", **kw) -> Table:
    """Table XIV (appendix): #seasonal patterns on HFM."""
    return _counts_table(
        "Table XIV", "HFM", profile,
        kw.get("max_period_pcts", MAX_PERIOD_PCTS),
        kw.get("grid", ((4, 0.5), (4, 1.0), (6, 0.5), (6, 1.0), (8, 0.5), (8, 1.0))),
    )


def table11_pruned(
    profile: str = "bench",
    datasets: tuple[str, ...] = ("RE", "INF"),
    series_counts: tuple[int, ...] = (12, 16, 20),
    settings: tuple[tuple[int, float], ...] = ((4, 0.5), (6, 0.75), (8, 1.0)),
    **_,
) -> Table:
    """Tables XI/XV/XVI: % series and events pruned by A-STPM at scale."""
    headers = ["#series"] + [
        f"{name} {kind} {ms}-{md}"
        for name in datasets
        for kind in ("serie%", "event%")
        for ms, md in settings
    ]
    table = Table(
        title="Table XI -- Pruned time series and events from A-STPM (synthetic scale-up)",
        headers=headers,
        notes="Shape vs paper: pruned %% falls as #series grows and as "
        "minSeason/minDensity rise (lower thresholds -> higher mu).",
    )
    bases = {name: load_dataset(name, profile) for name in datasets}
    for count in series_counts:
        cells: list = [count]
        for name in datasets:
            scaled = scale_series(bases[name], count, seed=300 + count)
            dseq = scaled.dseq()
            all_events = dseq.events()
            for ms, md in settings:
                params = _params(scaled, min_season=ms, min_density_pct=md)
                report = ASTPM(scaled.dsyb, scaled.ratio, params, dseq=dseq).screening()
                pruned_names = set(report.pruned_series)
                pruned_events = sum(
                    1
                    for event in all_events
                    if event.rsplit(":", 1)[0] in pruned_names
                )
                cells.append(round(report.pruned_series_pct(), 1))
                cells.append(round(100.0 * pruned_events / max(len(all_events), 1), 1))
        table.add_row(*cells)
    return table


def table12_accuracy_synthetic(
    profile: str = "bench",
    datasets: tuple[str, ...] = ("RE", "INF"),
    series_counts: tuple[int, ...] = (12, 16),
    settings: tuple[tuple[int, float], ...] = ((4, 0.5), (6, 0.75), (8, 1.0)),
    **_,
) -> Table:
    """Tables XII/XVIII: A-STPM accuracy on the synthetic scale-up."""
    headers = ["#series"] + [
        f"{name} {ms}-{md}" for name in datasets for ms, md in settings
    ]
    table = Table(
        title="Table XII -- A-STPM accuracy (%) on synthetic scale-up",
        headers=headers,
        notes="Shape vs paper: accuracy rises with minSeason/minDensity, reaching 100.",
    )
    bases = {name: load_dataset(name, profile) for name in datasets}
    for count in series_counts:
        cells: list = [count]
        for name in datasets:
            scaled = scale_series(bases[name], count, seed=300 + count)
            for ms, md in settings:
                params = _params(scaled, min_season=ms, min_density_pct=md)
                exact = _mine_exact(scaled, params)
                approx = _mine_approx(scaled, params)
                cells.append(round(accuracy_pct(exact, approx)))
        table.add_row(*cells)
    return table


def table19_epsilon(
    profile: str = "bench",
    datasets: tuple[str, ...] = ("RE", "INF"),
    epsilons: tuple[int, ...] = (0, 1, 2),
    **_,
) -> Table:
    """Tables XIX/XX: tolerance buffer sensitivity (pattern loss vs eps=0)."""
    headers = ["epsilon"] + [
        f"{name} {kind}" for name in datasets for kind in ("#patterns", "loss%")
    ]
    table = Table(
        title="Tables XIX/XX -- Extracted patterns vs tolerance buffer epsilon",
        headers=headers,
        notes="epsilon in fine granules. Shape vs paper: losses stay within a "
        "few percent for small epsilon.",
    )
    loaded = {name: load_dataset(name, profile) for name in datasets}
    baselines: dict[str, set] = {}
    rows: list[list] = []
    for eps in epsilons:
        cells: list = [eps]
        for name in datasets:
            dataset = loaded[name]
            base_params = _params(dataset, min_season=4, min_density_pct=0.5)
            params = base_params.with_updates(
                relation=RelationConfig(epsilon=eps, min_overlap=1)
            )
            result = _mine_exact(dataset, params)
            keys = result.pattern_keys()
            if name not in baselines:
                baselines[name] = keys
            reference = baselines[name]
            lost = len(reference - keys)
            loss_pct = 100.0 * lost / max(len(reference), 1)
            cells.extend([len(keys), round(loss_pct, 2)])
        rows.append(cells)
    for cells in rows:
        table.add_row(*cells)
    return table


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------

_VARY_VALUES = {
    "min_season": MIN_SEASONS,
    "min_density_pct": MIN_DENSITY_PCTS,
    "max_period_pct": MAX_PERIOD_PCTS,
}
_VARY_LABEL = {
    "min_season": "minSeason",
    "min_density_pct": "minDensity (%)",
    "max_period_pct": "maxPeriod (%)",
}


def _comparison_figure(
    artifact: str,
    dataset_name: str,
    profile: str,
    vary: str,
    values: tuple | None,
    measure: str,
) -> Figure:
    dataset = load_dataset(dataset_name, profile)
    xs = list(values if values is not None else _VARY_VALUES[vary])
    figure = Figure(
        title=f"{artifact} -- {measure} comparison on {dataset_name} (varying {_VARY_LABEL[vary]})",
        x_label=_VARY_LABEL[vary],
        x_values=xs,
        y_label="runtime (s)" if measure == "Runtime" else "peak memory (MB)",
        notes="Shape vs paper: A-STPM < E-STPM < APS-growth.",
    )
    for miner_name, miner in MINERS.items():
        points: list[float] = []
        for value in xs:
            params = _params(dataset, **{vary: value})
            if measure == "Runtime":
                _, elapsed = time_call(lambda: miner(dataset, params))
                points.append(elapsed)
            else:
                _, peak = measure_peak_memory(lambda: miner(dataset, params))
                points.append(peak / 1e6)
        figure.add_series(miner_name, points)
    return figure


def fig7_runtime_re(profile: str = "bench", vary: str = "min_season", values=None, **_) -> Figure:
    """Fig. 7: runtime comparison on RE."""
    return _comparison_figure("Fig. 7", "RE", profile, vary, values, "Runtime")


def fig8_runtime_inf(profile: str = "bench", vary: str = "min_season", values=None, **_) -> Figure:
    """Fig. 8: runtime comparison on INF."""
    return _comparison_figure("Fig. 8", "INF", profile, vary, values, "Runtime")


def fig17_runtime_sc(profile: str = "bench", vary: str = "min_season", values=None, **_) -> Figure:
    """Fig. 17 (appendix): runtime comparison on SC."""
    return _comparison_figure("Fig. 17", "SC", profile, vary, values, "Runtime")


def fig18_runtime_hfm(profile: str = "bench", vary: str = "min_season", values=None, **_) -> Figure:
    """Fig. 18 (appendix): runtime comparison on HFM."""
    return _comparison_figure("Fig. 18", "HFM", profile, vary, values, "Runtime")


def fig9_memory_re(profile: str = "bench", vary: str = "min_season", values=None, **_) -> Figure:
    """Fig. 9: memory comparison on RE."""
    return _comparison_figure("Fig. 9", "RE", profile, vary, values, "Memory")


def fig10_memory_inf(profile: str = "bench", vary: str = "min_season", values=None, **_) -> Figure:
    """Fig. 10: memory comparison on INF."""
    return _comparison_figure("Fig. 10", "INF", profile, vary, values, "Memory")


def fig19_memory_sc(profile: str = "bench", vary: str = "min_season", values=None, **_) -> Figure:
    """Fig. 19 (appendix): memory comparison on SC."""
    return _comparison_figure("Fig. 19", "SC", profile, vary, values, "Memory")


def fig20_memory_hfm(profile: str = "bench", vary: str = "min_season", values=None, **_) -> Figure:
    """Fig. 20 (appendix): memory comparison on HFM."""
    return _comparison_figure("Fig. 20", "HFM", profile, vary, values, "Memory")


def _scalability_sequences(
    artifact: str,
    dataset_name: str,
    profile: str,
    fractions: tuple[float, ...],
) -> Figure:
    base_sequences, n_series = PROFILES[profile][dataset_name]
    builder = DATASET_BUILDERS[dataset_name]
    xs = [int(round(100 * f)) for f in fractions]
    figure = Figure(
        title=f"{artifact} -- Scalability on {dataset_name}: varying #sequences",
        x_label="#sequences (%)",
        x_values=xs,
        y_label="runtime (s)",
        notes="Shape vs paper: all miners grow with #sequences; the baseline "
        "grows fastest (it rescans DSEQ per group and keeps all occurrences).",
    )
    datasets = [
        builder(n_sequences=max(int(base_sequences * f), 8), n_series=n_series)
        for f in fractions
    ]
    for miner_name, miner in MINERS.items():
        points: list[float] = []
        for dataset in datasets:
            params = _params(dataset)
            _, elapsed = time_call(lambda: miner(dataset, params))
            points.append(elapsed)
        figure.add_series(miner_name, points)
    return figure


def fig11_scal_seq_re(profile: str = "bench", fractions=(0.25, 0.5, 0.75, 1.0), **_) -> Figure:
    """Fig. 11: runtime vs #sequences on synthetic RE."""
    return _scalability_sequences("Fig. 11", "RE", profile, fractions)


def fig12_scal_seq_inf(profile: str = "bench", fractions=(0.25, 0.5, 0.75, 1.0), **_) -> Figure:
    """Fig. 12: runtime vs #sequences on synthetic INF."""
    return _scalability_sequences("Fig. 12", "INF", profile, fractions)


def fig21_scal_seq_sc(profile: str = "bench", fractions=(0.25, 0.5, 0.75, 1.0), **_) -> Figure:
    """Fig. 21 (appendix): runtime vs #sequences on synthetic SC."""
    return _scalability_sequences("Fig. 21", "SC", profile, fractions)


def fig22_scal_seq_hfm(profile: str = "bench", fractions=(0.25, 0.5, 0.75, 1.0), **_) -> Figure:
    """Fig. 22 (appendix): runtime vs #sequences on synthetic HFM."""
    return _scalability_sequences("Fig. 22", "HFM", profile, fractions)


def _scalability_series(
    artifact: str,
    dataset_name: str,
    profile: str,
    series_counts: tuple[int, ...],
) -> Figure:
    base = load_dataset(dataset_name, profile)
    figure = Figure(
        title=f"{artifact} -- Scalability on {dataset_name}: varying #time series",
        x_label="#time series",
        x_values=list(series_counts),
        y_label="runtime (s)",
        notes="Shape vs paper: runtime grows with #series; A-STPM grows slowest "
        "(MI screening prunes the added uncorrelated series).",
    )
    datasets = [
        scale_series(base, count, seed=300 + count) for count in series_counts
    ]
    for miner_name, miner in MINERS.items():
        points: list[float] = []
        for dataset in datasets:
            params = _params(dataset)
            _, elapsed = time_call(lambda: miner(dataset, params))
            points.append(elapsed)
        figure.add_series(miner_name, points)
    return figure


def fig13_scal_series_re(profile: str = "bench", series_counts=(10, 14, 18), **_) -> Figure:
    """Fig. 13: runtime vs #time series on synthetic RE."""
    return _scalability_series("Fig. 13", "RE", profile, series_counts)


def fig14_scal_series_inf(profile: str = "bench", series_counts=(10, 14, 18), **_) -> Figure:
    """Fig. 14: runtime vs #time series on synthetic INF."""
    return _scalability_series("Fig. 14", "INF", profile, series_counts)


def fig23_scal_series_sc(profile: str = "bench", series_counts=(10, 14, 18), **_) -> Figure:
    """Fig. 23 (appendix): runtime vs #time series on synthetic SC."""
    return _scalability_series("Fig. 23", "SC", profile, series_counts)


def fig24_scal_series_hfm(profile: str = "bench", series_counts=(10, 14, 18), **_) -> Figure:
    """Fig. 24 (appendix): runtime vs #time series on synthetic HFM."""
    return _scalability_series("Fig. 24", "HFM", profile, series_counts)


def _pruning_figure(
    artifact: str,
    dataset_name: str,
    profile: str,
    vary: str,
    values: tuple | None,
) -> Figure:
    dataset = load_dataset(dataset_name, profile)
    xs = list(values if values is not None else _VARY_VALUES[vary])
    figure = Figure(
        title=f"{artifact} -- E-STPM pruning ablation on {dataset_name} (varying {_VARY_LABEL[vary]})",
        x_label=_VARY_LABEL[vary],
        x_values=xs,
        y_label="runtime (s)",
        notes="Shape vs paper: All <= Trans, Apriori <= NoPrune; both prunings "
        "combined win.",
    )
    for pruning in ALL_VARIANTS:
        points: list[float] = []
        for value in xs:
            params = _params(dataset, **{vary: value})
            _, elapsed = time_call(
                lambda: ESTPM(dataset.dseq(), params, pruning).mine()
            )
            points.append(elapsed)
        figure.add_series(pruning.label, points)
    return figure


def fig15_pruning_re(profile: str = "bench", vary: str = "min_season", values=None, **_) -> Figure:
    """Fig. 15: pruning-technique ablation on RE."""
    return _pruning_figure("Fig. 15", "RE", profile, vary, values)


def fig16_pruning_inf(profile: str = "bench", vary: str = "min_season", values=None, **_) -> Figure:
    """Fig. 16: pruning-technique ablation on INF."""
    return _pruning_figure("Fig. 16", "INF", profile, vary, values)


def fig25_pruning_sc(profile: str = "bench", vary: str = "min_season", values=None, **_) -> Figure:
    """Fig. 25 (appendix): pruning-technique ablation on SC."""
    return _pruning_figure("Fig. 25", "SC", profile, vary, values)


def fig26_pruning_hfm(profile: str = "bench", vary: str = "min_season", values=None, **_) -> Figure:
    """Fig. 26 (appendix): pruning-technique ablation on HFM."""
    return _pruning_figure("Fig. 26", "HFM", profile, vary, values)


def ext1_event_level_astpm(
    profile: str = "bench",
    datasets: tuple[str, ...] = ("RE", "INF"),
    min_seasons: tuple[int, ...] = (4, 8),
    **_,
) -> Table:
    """EXT1 (extension): event-level A-STPM vs plain A-STPM.

    The paper's future work proposes pruning at the event level; this
    ablation reports the extra events pruned, the runtime effect and the
    accuracy cost relative to the exact result.
    """
    headers = ["Dataset", "minSeason", "A patterns", "A+ev patterns",
               "A acc%", "A+ev acc%", "A secs", "A+ev secs", "extra events pruned"]
    table = Table(
        title="EXT1 -- Event-level pruning extension of A-STPM (paper future work)",
        headers=headers,
        notes="A+ev = A-STPM with event-level screening.  Expected shape: a "
        "subset of A-STPM's patterns at equal or lower runtime; the gap "
        "grows with minSeason (stricter mu certification).",
    )
    for name in datasets:
        dataset = load_dataset(name, profile)
        dseq = dataset.dseq()
        for min_season in min_seasons:
            params = _params(dataset, min_season=min_season)
            exact = _mine_exact(dataset, params)
            plain, plain_seconds = time_call(
                lambda: ASTPM(dataset.dsyb, dataset.ratio, params, dseq=dseq).mine()
            )
            extended, extended_seconds = time_call(
                lambda: ASTPM(
                    dataset.dsyb, dataset.ratio, params, dseq=dseq, event_level=True
                ).mine()
            )
            table.add_row(
                name,
                min_season,
                len(plain),
                len(extended),
                round(accuracy_pct(exact, plain)),
                round(accuracy_pct(exact, extended)),
                round(plain_seconds, 2),
                round(extended_seconds, 2),
                extended.stats.n_events_pruned - plain.stats.n_events_pruned,
            )
    return table


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

EXPERIMENTS: dict[str, Callable] = {
    "T5": table5_datasets,
    "T7": table7_accuracy_real,
    "T8": table8_qualitative,
    "T9": table9_counts_re,
    "T10": table10_counts_inf,
    "T11": table11_pruned,
    "T12": table12_accuracy_synthetic,
    "T13": table13_counts_sc,
    "T14": table14_counts_hfm,
    "T19": table19_epsilon,
    "EXT1": ext1_event_level_astpm,
    "F7": fig7_runtime_re,
    "F8": fig8_runtime_inf,
    "F9": fig9_memory_re,
    "F10": fig10_memory_inf,
    "F11": fig11_scal_seq_re,
    "F12": fig12_scal_seq_inf,
    "F13": fig13_scal_series_re,
    "F14": fig14_scal_series_inf,
    "F15": fig15_pruning_re,
    "F16": fig16_pruning_inf,
    "F17": fig17_runtime_sc,
    "F18": fig18_runtime_hfm,
    "F19": fig19_memory_sc,
    "F20": fig20_memory_hfm,
    "F21": fig21_scal_seq_sc,
    "F22": fig22_scal_seq_hfm,
    "F23": fig23_scal_series_sc,
    "F24": fig24_scal_series_hfm,
    "F25": fig25_pruning_sc,
    "F26": fig26_pruning_hfm,
}


def run_experiment(
    artifact_id: str,
    profile: str = "bench",
    executor: MiningExecutor | str | None = None,
    support_backend: str | None = None,
    kernel: str | None = None,
    frontend: str | None = None,
    **overrides,
):
    """Run one experiment by its paper artifact id.

    ``executor`` / ``support_backend`` / ``kernel`` / ``frontend`` select
    the mining engine backends for this experiment via
    :func:`engine_defaults` (an executor resolved from a name is closed
    when the experiment finishes; an instance's pool is left alive for
    the caller's next experiment).
    """
    key = artifact_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {artifact_id!r}; choose from {sorted(EXPERIMENTS)}"
        )
    if (
        executor is None
        and support_backend is None
        and kernel is None
        and frontend is None
    ):
        return EXPERIMENTS[key](profile=profile, **overrides)
    with engine_defaults(executor, support_backend, kernel, frontend):
        return EXPERIMENTS[key](profile=profile, **overrides)
