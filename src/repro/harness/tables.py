"""ASCII table rendering for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Table:
    """A titled table with aligned ASCII rendering."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *cells) -> None:
        """Append one row; cells are stringified."""
        self.rows.append([_format(cell) for cell in cells])

    def render(self) -> str:
        """Aligned, pipe-separated rendering with the title on top."""
        columns = len(self.headers)
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index in range(min(columns, len(row))):
                widths[index] = max(widths[index], len(row[index]))
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            padded = row + [""] * (columns - len(row))
            lines.append(" | ".join(c.ljust(w) for c, w in zip(padded, widths)))
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _format(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
