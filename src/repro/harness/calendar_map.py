"""Calendar attribution of seasons (the paper's Table VIII last column).

The paper reports *when* each qualitative pattern occurs ("December,
January, February").  Given the calendar unit of a DSEQ granule (day or
week) this module maps granule positions to months of an idealized
365-day year and summarizes a pattern's seasons by their dominant months.
"""

from __future__ import annotations

from collections import Counter

from repro.core.seasonality import SeasonView
from repro.exceptions import ReproError

MONTH_NAMES = (
    "January", "February", "March", "April", "May", "June",
    "July", "August", "September", "October", "November", "December",
)

#: Cumulative day-of-year at which each month starts (non-leap year).
_MONTH_STARTS = (0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334, 365)

#: Days per DSEQ granule for the supported sequence units.
DAYS_PER_UNIT = {"day": 1, "week": 7}


def month_of_position(position: int, unit: str = "day", start_month: int = 1) -> int:
    """Month index (1-12) of a 1-based granule position.

    ``start_month`` says which month position 1 falls in (1 = January).
    """
    if unit not in DAYS_PER_UNIT:
        raise ReproError(f"unknown sequence unit {unit!r}; use one of {sorted(DAYS_PER_UNIT)}")
    if position < 1:
        raise ReproError(f"granule positions are 1-based, got {position}")
    if not 1 <= start_month <= 12:
        raise ReproError(f"start_month must be in 1..12, got {start_month}")
    day_of_year = (
        _MONTH_STARTS[start_month - 1] + (position - 1) * DAYS_PER_UNIT[unit]
    ) % 365
    for month_index in range(12):
        if day_of_year < _MONTH_STARTS[month_index + 1]:
            return month_index + 1
    return 12  # pragma: no cover - unreachable (day_of_year < 365)


def season_months(
    view: SeasonView, unit: str = "day", start_month: int = 1, top: int = 3
) -> list[str]:
    """Dominant months of a pattern's seasons, most frequent first."""
    counts: Counter[int] = Counter()
    for season in view.seasons:
        for position in season:
            counts[month_of_position(position, unit, start_month)] += 1
    ranked = [month for month, _ in counts.most_common(top)]
    ranked.sort()  # calendar order for readability
    return [MONTH_NAMES[month - 1] for month in ranked]


def describe_seasonal_occurrence(
    view: SeasonView, unit: str = "day", start_month: int = 1
) -> str:
    """Table VIII style rendering, e.g. ``"December, January, February"``."""
    months = season_months(view, unit, start_month)
    return ", ".join(months) if months else "-"
