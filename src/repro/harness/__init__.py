"""Experiment harness: regenerate every table and figure of the paper.

Each experiment of the evaluation section has an entry in
:mod:`repro.harness.experiments` (keyed by the paper's artifact id, e.g.
``T9`` for Table IX or ``F7`` for Fig. 7).  Experiments return
:class:`~repro.harness.tables.Table` or
:class:`~repro.harness.figures.Figure` objects that render as ASCII; the
benchmark suite under ``benchmarks/`` wraps them with pytest-benchmark,
and the ``freqstpfts`` CLI runs them standalone.
"""

from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.figures import Figure
from repro.harness.runner import run_all
from repro.harness.tables import Table

__all__ = ["Table", "Figure", "EXPERIMENTS", "run_experiment", "run_all"]
