"""The temporal sequence database ``DSEQ`` (paper Defs. 3.9-3.11).

The sequence mapping ``g: XS ->m H`` groups every ``m`` adjacent symbols of
a symbolic series into one coarse granule ``Hi``; inside a granule,
consecutive identical symbols become one event instance (Def. 3.10).
Instances never span granule boundaries -- exactly as in the paper's Table
IV, where C's ON-run over G19..G24 appears as ``(C:1,[G19,G21])`` in H7 and
``(C:1,[G22,G24])`` in H8.

Instance intervals keep *global* fine-granule positions so that all
relation arithmetic is uniform across granules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.supportset import (
    SupportSet,
    default_backend,
    make_support_set,
    validate_backend,
)
from repro.events.event import EventInstance
from repro.events.sequence import TemporalSequence
from repro.exceptions import TransformError
from repro.symbolic.database import SymbolicDatabase


@dataclass
class TemporalSequenceDatabase:
    """``DSEQ``: one :class:`TemporalSequence` per coarse granule.

    Attributes
    ----------
    rows:
        Sequences in granule-position order (``rows[0]`` is position 1).
    ratio:
        The m of the sequence mapping ``g: XS ->m H``.
    source_names:
        The series names of the originating DSYB (kept for A-STPM, which
        prunes series before mining).
    """

    rows: list[TemporalSequence]
    ratio: int
    source_names: list[str] = field(default_factory=list)
    _support_cache: dict[str, dict[str, SupportSet]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def sequence_at(self, position: int) -> TemporalSequence:
        """The temporal sequence of the granule at 1-based ``position``."""
        if not 1 <= position <= len(self.rows):
            raise TransformError(
                f"granule position {position} outside [1, {len(self.rows)}]"
            )
        return self.rows[position - 1]

    def event_support(self, backend: str | None = None) -> dict[str, SupportSet]:
        """Support set per event, as :class:`SupportSet` objects.

        This is the ``SUP_E`` of Def. 3.12 for every event, computed with a
        single scan of DSEQ (as Alg. 1 step 2.1 requires) and cached per
        representation.  ``backend`` picks the physical representation
        (``"bitset"`` / ``"list"``; default: the process-wide default).
        The returned sets compare equal to plain sorted position lists, so
        list-based callers keep working unchanged.
        """
        backend = validate_backend(backend or default_backend())
        cached = self._support_cache.get(backend)
        if cached is None:
            positions: dict[str, list[int]] = {}
            for row in self.rows:
                for event in row.events():
                    positions.setdefault(event, []).append(row.position)
            cached = {
                event: make_support_set(granules, backend)
                for event, granules in positions.items()
            }
            self._support_cache[backend] = cached
        return cached

    def events(self) -> list[str]:
        """All distinct event keys occurring anywhere in DSEQ."""
        return list(self.event_support())

    def instances_at(self, position: int, event: str) -> list[EventInstance]:
        """Instances of ``event`` in the granule at ``position``."""
        return self.sequence_at(position).instances_of(event)

    def total_instances(self) -> int:
        """Total number of event instances across all rows."""
        return sum(len(row) for row in self.rows)

    def describe_row(self, position: int) -> str:
        """Paper-style rendering of one Table IV row."""
        return self.sequence_at(position).describe()

    def append_row(self, sequence: TemporalSequence) -> None:
        """Append one granule row (streaming ingestion, Def. 3.10 online).

        ``sequence`` must be finalized and carry the next 1-based position.
        The per-representation support caches are dropped: batch callers
        re-scan lazily, while the streaming miner maintains its own
        incrementally extended supports.
        """
        if sequence.position != len(self.rows) + 1:
            raise TransformError(
                f"appended granule has position {sequence.position}; "
                f"expected {len(self.rows) + 1}"
            )
        self.rows.append(sequence)
        self._support_cache.clear()

    def prefix(self, n_granules: int) -> "TemporalSequenceDatabase":
        """A view of the first ``n_granules`` rows (rows are shared).

        The streaming parity checks mine every stream prefix with the
        batch miner; this avoids rebuilding the prefix from DSYB.
        """
        if not 0 <= n_granules <= len(self.rows):
            raise TransformError(
                f"prefix length {n_granules} outside [0, {len(self.rows)}]"
            )
        return TemporalSequenceDatabase(
            rows=self.rows[:n_granules],
            ratio=self.ratio,
            source_names=list(self.source_names),
        )


def granule_instances(
    name: str, block: tuple[str, ...], offset: int
) -> list[EventInstance]:
    """Event instances of one series' symbol block (Def. 3.10 run grouping).

    ``block`` holds the consecutive symbols of one coarse granule;
    ``offset`` is the 0-based global position of its first symbol, so the
    returned intervals use global 1-based fine-granule positions.  Shared
    by the batch sequence mapping and the streaming ingestion layer.
    """
    instances: list[EventInstance] = []
    run_symbol = block[0]
    run_start = offset + 1
    for index in range(1, len(block)):
        if block[index] != run_symbol:
            instances.append(
                EventInstance(f"{name}:{run_symbol}", run_start, offset + index)
            )
            run_symbol = block[index]
            run_start = offset + index + 1
    instances.append(
        EventInstance(f"{name}:{run_symbol}", run_start, offset + len(block))
    )
    return instances


def _granule_instances(
    name: str, symbols: tuple[str, ...], granule_index: int, ratio: int
) -> list[EventInstance]:
    """Event instances of one series inside one coarse granule.

    ``granule_index`` is 0-based; returned intervals use global 1-based
    fine-granule positions.
    """
    start = granule_index * ratio
    return granule_instances(name, symbols[start : start + ratio], start)


def build_sequence_database(
    dsyb: SymbolicDatabase, ratio: int
) -> TemporalSequenceDatabase:
    """Apply the sequence mapping ``g: XS ->m H`` to every series of DSYB.

    Parameters
    ----------
    dsyb:
        The symbolic database at the fine granularity G.
    ratio:
        The m of the mapping (how many fine granules form one coarse
        granule).  A trailing block of fewer than ``ratio`` symbols is
        dropped, consistent with Def. 3.3's complete-partition requirement.
    """
    if ratio < 1:
        raise TransformError(f"sequence mapping ratio must be >= 1, got {ratio}")
    if len(dsyb) == 0:
        raise TransformError("cannot build DSEQ from an empty DSYB")
    n_granules = dsyb.n_instants // ratio
    if n_granules == 0:
        raise TransformError(
            f"ratio {ratio} exceeds the {dsyb.n_instants} instants of DSYB"
        )
    rows: list[TemporalSequence] = []
    for granule_index in range(n_granules):
        sequence = TemporalSequence(position=granule_index + 1)
        for symbolic in dsyb:
            sequence.instances.extend(
                _granule_instances(
                    symbolic.name, symbolic.symbols, granule_index, ratio
                )
            )
        rows.append(sequence.finalize())
    return TemporalSequenceDatabase(rows=rows, ratio=ratio, source_names=dsyb.names)
