"""The temporal sequence database ``DSEQ`` (paper Defs. 3.9-3.11).

The sequence mapping ``g: XS ->m H`` groups every ``m`` adjacent symbols of
a symbolic series into one coarse granule ``Hi``; inside a granule,
consecutive identical symbols become one event instance (Def. 3.10).
Instances never span granule boundaries -- exactly as in the paper's Table
IV, where C's ON-run over G19..G24 appears as ``(C:1,[G19,G21])`` in H7 and
``(C:1,[G22,G24])`` in H8.

Instance intervals keep *global* fine-granule positions so that all
relation arithmetic is uniform across granules.

Front-end builders
------------------
Two registered builders produce the same DSEQ (see
:func:`build_sequence_database`):

* ``columnar`` (the default) -- one pass over each series' symbol stream:
  run boundaries are found for the whole stream at once (vectorized when
  numpy is enabled, a single scalar sweep otherwise) and every run feeds
  the granule row, the per-event support positions, and the per
  ``(event, granule)`` :class:`~repro.core.instance_index.InstanceColumn`
  simultaneously -- so step 2.1 never re-scans the rows;
* ``scalar`` -- the original granule-by-granule
  :func:`granule_instances` loops, kept as the parity reference.

The process-wide default is selected like the step-2.2 kernel
(:func:`default_frontend` / :func:`set_default_frontend`, CLI
``--frontend``).
"""

from __future__ import annotations

import threading
from array import array
from dataclasses import dataclass, field
from itertools import groupby
from typing import Iterable, Sequence

from repro.core.config import get_numpy
from repro.core.instance_index import InstanceColumn
from repro.core.supportset import (
    SupportSet,
    default_backend,
    make_support_set,
    validate_backend,
)
from repro.events.event import EventInstance
from repro.events.sequence import TemporalSequence
from repro.exceptions import TransformError
from repro.obs import counters as metrics
from repro.obs.trace import span
from repro.symbolic.database import SymbolicDatabase

#: Front-end builder names accepted wherever the step-1 construction can
#: be chosen (mirrors the step-2.2 kernel registry).
FRONTEND_COLUMNAR = "columnar"
FRONTEND_SCALAR = "scalar"
FRONTEND_KERNELS = (FRONTEND_COLUMNAR, FRONTEND_SCALAR)

#: Process-wide default front end (see :func:`set_default_frontend`).
_DEFAULT_FRONTEND = FRONTEND_COLUMNAR

#: Symbol-stream length at or above which the columnar run detection
#: switches to numpy (below it, the array round trip costs more than the
#: scalar sweep saves).
_NUMPY_MIN_SYMBOLS = 192


def validate_frontend(frontend: str) -> str:
    """Return ``frontend`` if known, raise :class:`TransformError` otherwise."""
    if frontend not in FRONTEND_KERNELS:
        raise TransformError(
            f"unknown front end {frontend!r}; choose from {FRONTEND_KERNELS}"
        )
    return frontend


def default_frontend() -> str:
    """The process-wide default front-end builder."""
    return _DEFAULT_FRONTEND


def set_default_frontend(frontend: str) -> str:
    """Set the process-wide default front end; returns the old one.

    The harness uses this to flip whole runs between the columnar and
    the scalar builder (CLI ``--frontend``) without threading a parameter
    through every call site.  Both front ends produce identical DSEQ rows.
    """
    global _DEFAULT_FRONTEND
    previous = _DEFAULT_FRONTEND
    _DEFAULT_FRONTEND = validate_frontend(frontend)
    return previous


class _LazyRows:
    """Granule rows materialized on first element access.

    The columnar builders derive everything mining needs -- per-event
    support positions and flat run tables -- before a single
    :class:`TemporalSequence` exists, and a step-2.1-only run (primed
    supports, ``max_pattern_length == 1``) never reads the rows at all.
    Deferring their construction behind a thunk makes that common case
    pay nothing for row objects; the first indexing, iteration, append,
    or comparison builds them exactly once (``len()`` answers from the
    known row count without materializing).  Pickling degrades to a
    plain list so worker processes never ship the builder closure.
    """

    __slots__ = ("_rows", "_n_rows", "_build", "_lock")

    def __init__(self, n_rows, build):
        self._rows: list[TemporalSequence] | None = None
        self._n_rows = n_rows
        self._build = build
        self._lock = threading.Lock()

    def _materialized(self) -> list[TemporalSequence]:
        rows = self._rows
        if rows is None:
            with self._lock:
                if self._rows is None:
                    self._rows = self._build()
                    self._build = None
                rows = self._rows
        return rows

    def __len__(self) -> int:
        rows = self._rows
        return self._n_rows if rows is None else len(rows)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self):
        return iter(self._materialized())

    def __getitem__(self, index):
        return self._materialized()[index]

    def append(self, row) -> None:
        self._materialized().append(row)

    def __eq__(self, other) -> bool:
        if isinstance(other, _LazyRows):
            other = other._materialized()
        return self._materialized() == other

    def __reduce__(self):
        return (list, (self._materialized(),))


@dataclass
class TemporalSequenceDatabase:
    """``DSEQ``: one :class:`TemporalSequence` per coarse granule.

    Attributes
    ----------
    rows:
        Sequences in granule-position order (``rows[0]`` is position 1).
    ratio:
        The m of the sequence mapping ``g: XS ->m H``.
    source_names:
        The series names of the originating DSYB (kept for A-STPM, which
        prunes series before mining).
    """

    rows: list[TemporalSequence]
    ratio: int
    source_names: list[str] = field(default_factory=list)
    _support_cache: dict[str, dict[str, SupportSet]] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Per-event ascending support positions, primed by the columnar
    #: front end (``None`` on scalar-built databases -- supports are then
    #: recomputed by scanning the rows).
    _event_positions: dict[str, list[int]] | None = field(
        default=None, repr=False, compare=False
    )
    #: Per-event flat run tables primed by the columnar front end:
    #: ``event -> (granule positions per run, starts, ends, instances)``
    #: with every sequence run-aligned and non-decreasing by position.
    #: :class:`InstanceColumn` objects are materialized from these lazily
    #: (and cached in ``_prebuilt_columns``) -- only the events step 2.1
    #: actually asks for pay the per-granule column construction.
    _prebuilt_raw: dict[str, tuple] | None = field(
        default=None, repr=False, compare=False
    )
    _prebuilt_columns: dict[str, dict[int, InstanceColumn]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __getstate__(self):
        """Exclude materialized instance columns from the pickled state.

        The primed tables (``_support_cache``, ``_event_positions``,
        ``_prebuilt_raw``) ARE shipped on purpose -- the multigrain
        engine primes them before broadcasting so workers skip the row
        scans.  ``_prebuilt_columns`` is the per-process lazy
        materialization of those tables (mirror of ``HLH1._columns``):
        workers rebuild exactly the columns they touch.
        """
        state = dict(self.__dict__)
        state["_prebuilt_columns"] = {}
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def sequence_at(self, position: int) -> TemporalSequence:
        """The temporal sequence of the granule at 1-based ``position``."""
        if not 1 <= position <= len(self.rows):
            raise TransformError(
                f"granule position {position} outside [1, {len(self.rows)}]"
            )
        return self.rows[position - 1]

    def event_support(self, backend: str | None = None) -> dict[str, SupportSet]:
        """Support set per event, as :class:`SupportSet` objects.

        This is the ``SUP_E`` of Def. 3.12 for every event, computed with a
        single scan of DSEQ (as Alg. 1 step 2.1 requires) and cached per
        representation.  ``backend`` picks the physical representation
        (``"bitset"`` / ``"list"``; default: the process-wide default).
        The returned sets compare equal to plain sorted position lists, so
        list-based callers keep working unchanged.
        """
        backend = validate_backend(backend or default_backend())
        cached = self._support_cache.get(backend)
        if cached is None:
            positions: dict[str, list[int]] | dict[str, Sequence[int]]
            if self._event_positions is not None:
                positions = self._event_positions
            else:
                positions = {}
                for row in self.rows:
                    for event in row.events():
                        positions.setdefault(event, []).append(row.position)
            cached = {
                event: make_support_set(granules, backend)
                for event, granules in positions.items()
            }
            self._support_cache[backend] = cached
        return cached

    def prebuilt_columns(self, event: str) -> dict[int, InstanceColumn] | None:
        """The columnar front end's prebuilt instance columns of ``event``.

        ``{granule position: InstanceColumn}`` when this database was
        built by the columnar front end (``None`` otherwise, and the
        miner falls back to :meth:`instances_at` row walks).  The dict's
        keys are exactly the event's support positions, ascending.
        Columns are materialized from the primed flat run tables on
        first request per event, then cached -- events that never reach
        step 2.1's instance installation never pay for them.
        """
        if self._prebuilt_raw is None:
            return None
        cached = self._prebuilt_columns.get(event)
        if cached is not None:
            return cached
        raw = self._prebuilt_raw.get(event)
        if raw is None:
            return None
        positions, starts, ends, instances = raw
        if hasattr(positions, "tolist"):  # numpy-built tables
            positions = positions.tolist()
            starts = starts.tolist()
            ends = ends.tolist()
        if instances is None:
            # The numpy builder defers instance objects entirely: only
            # the events step 2.1 actually installs pay for them.
            instances = [
                EventInstance(event, start, end)
                for start, end in zip(starts, ends)
            ]
        columns: dict[int, InstanceColumn] = {}
        n_runs = len(positions)
        lo = 0
        while lo < n_runs:
            granule = positions[lo]
            hi = lo + 1
            while hi < n_runs and positions[hi] == granule:
                hi += 1
            columns[granule] = InstanceColumn(
                array("q", starts[lo:hi]),
                array("q", ends[lo:hi]),
                tuple(instances[lo:hi]),
            )
            lo = hi
        self._prebuilt_columns[event] = columns
        return columns

    def events(self) -> list[str]:
        """All distinct event keys occurring anywhere in DSEQ."""
        return list(self.event_support())

    def instances_at(self, position: int, event: str) -> list[EventInstance]:
        """Instances of ``event`` in the granule at ``position``.

        Per event the returned list is chronologically ordered and its
        runs are disjoint (Def. 3.10 run grouping), which is the
        invariant the columnar instance index's start-sorted tables and
        the sweep-join kernels build on (see
        :mod:`repro.core.instance_index`).
        """
        return self.sequence_at(position).instances_of(event)

    def total_instances(self) -> int:
        """Total number of event instances across all rows."""
        return sum(len(row) for row in self.rows)

    def describe_row(self, position: int) -> str:
        """Paper-style rendering of one Table IV row."""
        return self.sequence_at(position).describe()

    def append_row(self, sequence: TemporalSequence) -> None:
        """Append one granule row (streaming ingestion, Def. 3.10 online).

        ``sequence`` must be finalized and carry the next 1-based position.
        The per-representation support caches are dropped: batch callers
        re-scan lazily, while the streaming miner maintains its own
        incrementally extended supports.
        """
        if sequence.position != len(self.rows) + 1:
            raise TransformError(
                f"appended granule has position {sequence.position}; "
                f"expected {len(self.rows) + 1}"
            )
        self.rows.append(sequence)
        self._support_cache.clear()
        # The primed columnar state describes the pre-append rows only;
        # streaming appends invalidate it (the streaming miner keeps its
        # own incrementally extended supports and columns).
        self._event_positions = None
        self._prebuilt_raw = None
        self._prebuilt_columns.clear()

    def prefix(self, n_granules: int) -> "TemporalSequenceDatabase":
        """A view of the first ``n_granules`` rows (rows are shared).

        The streaming parity checks mine every stream prefix with the
        batch miner; this avoids rebuilding the prefix from DSYB.
        """
        if not 0 <= n_granules <= len(self.rows):
            raise TransformError(
                f"prefix length {n_granules} outside [0, {len(self.rows)}]"
            )
        return TemporalSequenceDatabase(
            rows=self.rows[:n_granules],
            ratio=self.ratio,
            source_names=list(self.source_names),
        )

    def prime_event_support(
        self, supports: dict[str, SupportSet], backend: str | None = None
    ) -> None:
        """Install precomputed per-event supports for ``backend``.

        The hierarchical miner derives a coarse level's event supports by
        folding the finer level's (:meth:`SupportSet.coarsen`) instead of
        re-scanning the rows; priming the cache makes
        :meth:`event_support` serve the folded sets directly.  The caller
        guarantees the supports equal what a scan would compute -- for
        event supports the fold is exact (see
        :meth:`repro.core.supportset.SupportSet.coarsen`).
        """
        backend = validate_backend(backend or default_backend())
        self._support_cache[backend] = dict(supports)

    def coarsen(
        self, factor: int, granules: Iterable[int] | None = None
    ) -> "TemporalSequenceDatabase":
        """Derive the ``factor``-times coarser DSEQ from this one.

        Every ``factor`` adjacent rows merge into one coarse row whose
        instances are re-run-grouped at the boundaries (Def. 3.10: runs
        never span granule boundaries *of their own granularity*, so runs
        split by a fine boundary fuse back together at the coarse level).
        The result's rows equal ``build_sequence_database(dsyb,
        self.ratio * factor)`` -- without re-walking the symbol stream.
        A trailing group of fewer than ``factor`` rows is dropped,
        mirroring the sequence mapping's complete-block rule.

        ``granules``, if given, lists the 1-based coarse positions whose
        rows are actually needed (the union of the candidate events'
        folded supports); other positions get an
        :class:`UnmaterializedSequence` placeholder that raises on access,
        so cross-level screening can skip the merge work for granules no
        candidate event touches without any risk of silently serving
        empty rows.
        """
        if factor < 1:
            raise TransformError(f"coarsening factor must be >= 1, got {factor}")
        n_coarse = len(self.rows) // factor
        if n_coarse == 0:
            raise TransformError(
                f"coarsening factor {factor} exceeds the {len(self.rows)} rows"
            )
        materialize = None if granules is None else set(granules)
        series_memo: dict[str, str] = {}
        rows: list[TemporalSequence] = []
        for position in range(1, n_coarse + 1):
            if materialize is not None and position not in materialize:
                rows.append(UnmaterializedSequence(position=position))
            else:
                rows.append(
                    merge_sequences(
                        self.rows[(position - 1) * factor : position * factor],
                        position,
                        series_memo,
                    )
                )
        return TemporalSequenceDatabase(
            rows=rows,
            ratio=self.ratio * factor,
            source_names=list(self.source_names),
        )


class UnmaterializedSequence(TemporalSequence):
    """Placeholder row for a coarse granule the screening proved irrelevant.

    Cross-level screening materializes only the granules some candidate
    event supports; every other position gets this sentinel.  Any attempt
    to read it is a bug in the screening soundness argument, so it raises
    loudly instead of serving an empty sequence.
    """

    def _unavailable(self) -> TransformError:
        return TransformError(
            f"granule {self.position} was screened out of this derived DSEQ "
            "and never materialized; re-derive with coarsen(factor) for full rows"
        )

    def events(self) -> list[str]:
        raise self._unavailable()

    def instances_of(self, event: str) -> list[EventInstance]:
        raise self._unavailable()

    def __contains__(self, event: str) -> bool:
        raise self._unavailable()

    def __len__(self) -> int:
        raise self._unavailable()

    def describe(self) -> str:
        raise self._unavailable()


def merge_sequences(
    rows: list[TemporalSequence],
    position: int,
    series_memo: dict[str, str] | None = None,
) -> TemporalSequence:
    """Merge adjacent fine granule rows into one coarse temporal sequence.

    Within each series the fine rows' instances tile their granules
    contiguously, so concatenating them per series and fusing the
    boundary runs that carry the same event (the last run of one fine
    granule and the first of the next are adjacent by construction)
    reproduces exactly the run grouping of Def. 3.10 at the coarse
    granularity.  Shared by :meth:`TemporalSequenceDatabase.coarsen` and
    the multigrain streaming service.

    ``series_memo`` caches the event-key -> series split across calls
    (the event vocabulary is tiny next to the instance count, so callers
    merging many rows pass one shared dict).
    """
    if series_memo is None:
        series_memo = {}
    per_series: dict[str, list[EventInstance]] = {}
    for row in rows:
        at_boundary: set[str] = set()
        for instance in row.instances:
            series = series_memo.get(instance.event)
            if series is None:
                series = series_memo[instance.event] = instance.event.rsplit(":", 1)[0]
            runs = per_series.setdefault(series, [])
            if series not in at_boundary:
                at_boundary.add(series)
                if (
                    runs
                    and runs[-1].event == instance.event
                    and runs[-1].end + 1 == instance.start
                ):
                    runs[-1] = EventInstance(
                        instance.event, runs[-1].start, instance.end
                    )
                    continue
            runs.append(instance)
    merged = TemporalSequence(position=position)
    for runs in per_series.values():
        merged.instances.extend(runs)
    return merged.finalize()


def granule_instances(
    name: str, block: tuple[str, ...], offset: int
) -> list[EventInstance]:
    """Event instances of one series' symbol block (Def. 3.10 run grouping).

    ``block`` holds the consecutive symbols of one coarse granule;
    ``offset`` is the 0-based global position of its first symbol, so the
    returned intervals use global 1-based fine-granule positions.  Shared
    by the batch sequence mapping and the streaming ingestion layer.
    """
    instances: list[EventInstance] = []
    run_symbol = block[0]
    run_start = offset + 1
    for index in range(1, len(block)):
        if block[index] != run_symbol:
            instances.append(
                EventInstance(f"{name}:{run_symbol}", run_start, offset + index)
            )
            run_symbol = block[index]
            run_start = offset + index + 1
    instances.append(
        EventInstance(f"{name}:{run_symbol}", run_start, offset + len(block))
    )
    return instances


def _granule_instances(
    name: str, symbols: tuple[str, ...], granule_index: int, ratio: int
) -> list[EventInstance]:
    """Event instances of one series inside one coarse granule.

    ``granule_index`` is 0-based; returned intervals use global 1-based
    fine-granule positions.
    """
    start = granule_index * ratio
    return granule_instances(name, symbols[start : start + ratio], start)


def series_runs(symbols: Sequence[str], total: int, ratio: int, offset: int = 0):
    """Yield the ``(start0, end0)`` runs of ``symbols[offset:offset+total]``.

    Runs are maximal stretches of one symbol that never cross a granule
    boundary (local index a multiple of ``ratio``), i.e. exactly the
    Def. 3.10 run grouping of the whole stream at once.  Indices are
    local to the region (add ``offset`` back for global positions).  One
    ``np.flatnonzero`` over a boundary mask when numpy is enabled and the
    region is long enough; a single scalar sweep otherwise -- both emit
    identical runs (pinned by the parity suites).
    """
    np = get_numpy()
    if np is not None and total >= _NUMPY_MIN_SYMBOLS:
        arr = np.asarray(symbols[offset : offset + total])
        boundary = np.empty(total, dtype=bool)
        boundary[0] = True
        if ratio == 1:
            boundary[1:] = True
        else:
            np.not_equal(arr[1:], arr[:-1], out=boundary[1:])
            boundary[ratio::ratio] = True
        starts = np.flatnonzero(boundary)
        ends = np.empty(len(starts), dtype=np.int64)
        ends[:-1] = starts[1:]
        ends[:-1] -= 1
        ends[-1] = total - 1
        yield from zip(starts.tolist(), ends.tolist())
        return
    # Pure sweep: runs never cross granule boundaries (Def. 3.10), so
    # each granule chunk can be run-grouped independently -- and
    # itertools.groupby iterates the chunk at C speed, leaving Python
    # work proportional to the number of runs, not symbols.
    for chunk_start in range(0, total, ratio):
        chunk = symbols[offset + chunk_start : offset + min(chunk_start + ratio, total)]
        position = chunk_start
        for _, group in groupby(chunk):
            length = len(list(group))
            yield position, position + length - 1
            position += length


def build_region_rows(
    buffers: dict[str, Sequence[str]],
    offset: int,
    n_granules: int,
    ratio: int,
    first_position: int,
) -> list[TemporalSequence]:
    """Columnar row construction for a region of a symbol stream.

    Builds the ``n_granules`` temporal sequences covering the instants
    ``offset .. offset + n_granules*ratio - 1`` of every series buffer
    (``offset`` must be a multiple of ``ratio``), with 1-based positions
    starting at ``first_position``.  The streaming ingestion layer's
    columnar counterpart of the per-granule :func:`granule_instances`
    loop: one run detection per series for the whole region.
    """
    total = n_granules * ratio
    row_instances: list[list[EventInstance]] = [[] for _ in range(n_granules)]
    for name, buffer in buffers.items():
        key_of: dict[str, str] = {}
        for start, end in series_runs(buffer, total, ratio, offset):
            symbol = buffer[offset + start]
            event = key_of.get(symbol)
            if event is None:
                event = key_of[symbol] = f"{name}:{symbol}"
            row_instances[start // ratio].append(
                EventInstance(event, offset + start + 1, offset + end + 1)
            )
    return [
        TemporalSequence(
            position=first_position + index, instances=instances
        ).finalize()
        for index, instances in enumerate(row_instances)
    ]


def _series_runs_numpy(np, symbolic, total, ratio):
    """Run bounds and global event codes of one series, as arrays.

    Returns ``(starts0, ends0, run_codes, event_names)`` where
    ``run_codes`` indexes ``event_names`` (the series' possible events).
    A series carrying mapper-attached integer ``codes`` never
    round-trips through a unicode array at all.
    """
    codes = symbolic.codes
    if codes is not None:
        arr = codes[:total]
        symbols = symbolic.alphabet.symbols
    else:
        arr = np.asarray(symbolic.symbols[:total])
        uniques, inverse = np.unique(arr, return_inverse=True)
        symbols = uniques.tolist()
        arr = inverse
    boundary = np.empty(total, dtype=bool)
    boundary[0] = True
    if ratio == 1:
        boundary[1:] = True
    else:
        np.not_equal(arr[1:], arr[:-1], out=boundary[1:])
        boundary[ratio::ratio] = True
    starts = np.flatnonzero(boundary)
    ends = np.empty(len(starts), dtype=np.int64)
    ends[:-1] = starts[1:]
    ends[:-1] -= 1
    ends[-1] = total - 1
    name = symbolic.name
    event_names = [f"{name}:{symbol}" for symbol in symbols]
    return starts, ends, arr[starts], event_names


def _build_columnar_numpy(
    np, dsyb: SymbolicDatabase, ratio: int, n_granules: int, total: int
) -> TemporalSequenceDatabase:
    """Vectorized columnar DSEQ construction (see ``_build_columnar``).

    All series' runs are pooled into flat arrays and lexsorted once by
    the canonical instance order ``(start, -end, event)``.  Because the
    pool is globally sorted, granule rows are plain slices (no per-run
    distribution loop) that arrive pre-sorted -- finalize's per-instance
    sort is skipped entirely -- and each event's runs, selected from the
    same sorted pool, are start-ascending as the lazy
    :class:`InstanceColumn` cuts require.  No ``EventInstance`` objects
    are created here at all: the run tables defer them to the per-event
    column cuts and the rows themselves are a :class:`_LazyRows` thunk,
    so a support-only mining pass stays entirely in machine arrays.
    """
    start_parts = []
    end_parts = []
    code_parts = []
    event_names: list[str] = []
    for symbolic in dsyb:
        starts, ends, run_codes, names = _series_runs_numpy(
            np, symbolic, total, ratio
        )
        start_parts.append(starts)
        end_parts.append(ends)
        code_parts.append(run_codes + len(event_names))
        event_names.extend(names)
    starts = np.concatenate(start_parts)
    ends = np.concatenate(end_parts)
    run_codes = np.concatenate(code_parts)
    n_pool = len(starts)
    # Canonical order (start, -end, event): rank events by name so the
    # string tiebreak is an integer sort.  The key is total (one event
    # has at most one run per start), so the order is exactly what
    # ``TemporalSequence.finalize`` would produce.
    name_order = sorted(range(len(event_names)), key=event_names.__getitem__)
    ranks = np.empty(len(event_names), dtype=np.int64)
    ranks[name_order] = np.arange(len(event_names))
    order = np.lexsort((ranks[run_codes], -ends, starts))
    starts = starts[order]
    ends = ends[order]
    run_codes = run_codes[order]
    # Rows are contiguous slices of the sorted pool (granule = start //
    # ratio is non-decreasing when starts are sorted), already in
    # finalize order.
    granules = starts // ratio
    bounds = np.searchsorted(granules, np.arange(1, n_granules)).tolist()
    bounds.append(n_pool)
    lookup = np.array(event_names, dtype=object)

    def build_rows() -> list[TemporalSequence]:
        instances = [
            EventInstance(event, start, end)
            for event, start, end in zip(
                lookup[run_codes].tolist(),
                (starts + 1).tolist(),
                (ends + 1).tolist(),
            )
        ]
        rows: list[TemporalSequence] = []
        lo = 0
        for index, hi in enumerate(bounds):
            row = TemporalSequence(position=index + 1, instances=instances[lo:hi])
            by_event: dict[str, list[EventInstance]] = {}
            for instance in row.instances:
                by_event.setdefault(instance.event, []).append(instance)
            row._by_event = by_event
            rows.append(row)
            lo = hi
        return rows

    tables: dict[str, tuple] = {}
    event_positions: dict[str, list[int]] = {}
    granules1 = granules + 1
    starts1 = starts + 1
    ends1 = ends + 1
    for code, event in enumerate(event_names):
        indices = np.flatnonzero(run_codes == code)
        if len(indices) == 0:  # alphabet symbol never emitted
            continue
        positions = granules1[indices]
        tables[event] = (positions, starts1[indices], ends1[indices], None)
        event_positions[event] = sorted(set(positions.tolist()))
    if metrics.metrics_enabled():
        metrics.inc("frontend.columnar.runs", n_pool)
        metrics.inc("frontend.columnar.events", len(tables))
    return TemporalSequenceDatabase(
        rows=_LazyRows(n_granules, build_rows),
        ratio=ratio,
        source_names=dsyb.names,
        _event_positions=event_positions,
        _prebuilt_raw=tables,
    )


def _columnar_positions_pure(name, symbols, total, ratio, event_positions) -> int:
    """Pure-twin support scan over one series (see ``_build_columnar``).

    One :func:`itertools.groupby` over the whole stream finds the natural
    symbol runs at C speed; a run covering granules ``g0..g1`` then
    contributes its support positions with one ``extend(range(...))``
    (plus a duplicate guard for a second run of the same event inside
    one granule), so the Python work is per natural run -- no instance
    objects, no per-granule iteration.  Returns the number of
    boundary-split runs (Def. 3.10) the deferred row pass will emit.
    """
    key_of: dict[str, str] = {}
    n_runs = 0
    position = 0
    for symbol, group in groupby(symbols[:total]):
        stop = position + len(list(group))
        event = key_of.get(symbol)
        if event is None:
            event = key_of[symbol] = f"{name}:{symbol}"
            positions = event_positions[event] = []
        else:
            positions = event_positions[event]
        first = position // ratio
        last = (stop - 1) // ratio
        n_runs += last - first + 1
        if positions and positions[-1] == first + 1:
            first += 1
        positions.extend(range(first + 1, last + 2))
        position = stop
    return n_runs


def _columnar_rows_pure(
    series_list, total, ratio, n_granules
) -> list[TemporalSequence]:
    """Deferred pure-twin row materialization (see ``_build_columnar``).

    Replays the whole-stream run grouping of every series, this time
    emitting the boundary-split :class:`EventInstance` objects into
    their granule rows.  Runs only when something actually indexes or
    iterates the rows -- a support-only mining pass never does.
    """
    row_instances: list[list[EventInstance]] = [[] for _ in range(n_granules)]
    for symbolic in series_list:
        name = symbolic.name
        key_of: dict[str, str] = {}
        position = 0
        for symbol, group in groupby(symbolic.symbols[:total]):
            stop = position + len(list(group))
            event = key_of.get(symbol)
            if event is None:
                event = key_of[symbol] = f"{name}:{symbol}"
            while position < stop:
                granule_index = position // ratio
                boundary = min(stop, granule_index * ratio + ratio)
                row_instances[granule_index].append(
                    EventInstance(event, position + 1, boundary)
                )
                position = boundary
    return [
        TemporalSequence(position=index + 1, instances=instances).finalize()
        for index, instances in enumerate(row_instances)
    ]


def _build_columnar(
    dsyb: SymbolicDatabase, ratio: int, n_granules: int
) -> TemporalSequenceDatabase:
    """One-pass columnar DSEQ construction (see the module docstring).

    Every run of every series feeds the granule row and the per-event
    support positions (priming ``event_support``), in one sweep per
    series.  On the numpy backend each run additionally lands in the
    event's flat run table -- granule positions, start/end bounds, and
    instances, run-aligned and non-decreasing by position (one event
    belongs to one series scanned left to right) -- from which
    per-granule :class:`InstanceColumn` objects are cut lazily on
    step 2.1's first request per event.  The pure twin skips the run
    tables (the per-run bookkeeping would outweigh what the lazy cuts
    save) and step 2.1 falls back to row walks for instances.
    """
    total = n_granules * ratio
    np = get_numpy()
    if np is not None and total >= _NUMPY_MIN_SYMBOLS:
        return _build_columnar_numpy(np, dsyb, ratio, n_granules, total)
    event_positions: dict[str, list[int]] = {}
    n_runs = 0
    series_list = list(dsyb)
    for symbolic in series_list:
        n_runs += _columnar_positions_pure(
            symbolic.name, symbolic.symbols, total, ratio, event_positions
        )
    if metrics.metrics_enabled():
        metrics.inc("frontend.columnar.runs", n_runs)
        metrics.inc("frontend.columnar.events", len(event_positions))
    return TemporalSequenceDatabase(
        rows=_LazyRows(
            n_granules,
            lambda: _columnar_rows_pure(series_list, total, ratio, n_granules),
        ),
        ratio=ratio,
        source_names=dsyb.names,
        _event_positions=event_positions,
    )


def _build_scalar(
    dsyb: SymbolicDatabase, ratio: int, n_granules: int
) -> TemporalSequenceDatabase:
    """The original granule-by-granule construction (parity reference)."""
    rows: list[TemporalSequence] = []
    for granule_index in range(n_granules):
        sequence = TemporalSequence(position=granule_index + 1)
        for symbolic in dsyb:
            sequence.instances.extend(
                _granule_instances(
                    symbolic.name, symbolic.symbols, granule_index, ratio
                )
            )
        rows.append(sequence.finalize())
    return TemporalSequenceDatabase(
        rows=rows, ratio=ratio, source_names=dsyb.names
    )


def build_sequence_database(
    dsyb: SymbolicDatabase, ratio: int, frontend: str | None = None
) -> TemporalSequenceDatabase:
    """Apply the sequence mapping ``g: XS ->m H`` to every series of DSYB.

    Parameters
    ----------
    dsyb:
        The symbolic database at the fine granularity G.
    ratio:
        The m of the mapping (how many fine granules form one coarse
        granule).  A trailing block of fewer than ``ratio`` symbols is
        dropped, consistent with Def. 3.3's complete-partition requirement.
    frontend:
        Which registered builder runs: ``"columnar"`` (one pass, primes
        per-event supports and instance columns) or ``"scalar"`` (the
        granule-by-granule parity reference).  ``None`` resolves to the
        process-wide default (:func:`default_frontend`).  Both produce
        identical rows.
    """
    if ratio < 1:
        raise TransformError(f"sequence mapping ratio must be >= 1, got {ratio}")
    if len(dsyb) == 0:
        raise TransformError("cannot build DSEQ from an empty DSYB")
    n_granules = dsyb.n_instants // ratio
    if n_granules == 0:
        raise TransformError(
            f"ratio {ratio} exceeds the {dsyb.n_instants} instants of DSYB"
        )
    frontend = validate_frontend(frontend or default_frontend())
    with span(
        "transform/build_dseq", ratio=ratio, granules=n_granules, frontend=frontend
    ):
        if frontend == FRONTEND_COLUMNAR:
            return _build_columnar(dsyb, ratio, n_granules)
        return _build_scalar(dsyb, ratio, n_granules)
