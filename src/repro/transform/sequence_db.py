"""The temporal sequence database ``DSEQ`` (paper Defs. 3.9-3.11).

The sequence mapping ``g: XS ->m H`` groups every ``m`` adjacent symbols of
a symbolic series into one coarse granule ``Hi``; inside a granule,
consecutive identical symbols become one event instance (Def. 3.10).
Instances never span granule boundaries -- exactly as in the paper's Table
IV, where C's ON-run over G19..G24 appears as ``(C:1,[G19,G21])`` in H7 and
``(C:1,[G22,G24])`` in H8.

Instance intervals keep *global* fine-granule positions so that all
relation arithmetic is uniform across granules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.supportset import (
    SupportSet,
    default_backend,
    make_support_set,
    validate_backend,
)
from repro.events.event import EventInstance
from repro.events.sequence import TemporalSequence
from repro.exceptions import TransformError
from repro.obs.trace import span
from repro.symbolic.database import SymbolicDatabase


@dataclass
class TemporalSequenceDatabase:
    """``DSEQ``: one :class:`TemporalSequence` per coarse granule.

    Attributes
    ----------
    rows:
        Sequences in granule-position order (``rows[0]`` is position 1).
    ratio:
        The m of the sequence mapping ``g: XS ->m H``.
    source_names:
        The series names of the originating DSYB (kept for A-STPM, which
        prunes series before mining).
    """

    rows: list[TemporalSequence]
    ratio: int
    source_names: list[str] = field(default_factory=list)
    _support_cache: dict[str, dict[str, SupportSet]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def sequence_at(self, position: int) -> TemporalSequence:
        """The temporal sequence of the granule at 1-based ``position``."""
        if not 1 <= position <= len(self.rows):
            raise TransformError(
                f"granule position {position} outside [1, {len(self.rows)}]"
            )
        return self.rows[position - 1]

    def event_support(self, backend: str | None = None) -> dict[str, SupportSet]:
        """Support set per event, as :class:`SupportSet` objects.

        This is the ``SUP_E`` of Def. 3.12 for every event, computed with a
        single scan of DSEQ (as Alg. 1 step 2.1 requires) and cached per
        representation.  ``backend`` picks the physical representation
        (``"bitset"`` / ``"list"``; default: the process-wide default).
        The returned sets compare equal to plain sorted position lists, so
        list-based callers keep working unchanged.
        """
        backend = validate_backend(backend or default_backend())
        cached = self._support_cache.get(backend)
        if cached is None:
            positions: dict[str, list[int]] = {}
            for row in self.rows:
                for event in row.events():
                    positions.setdefault(event, []).append(row.position)
            cached = {
                event: make_support_set(granules, backend)
                for event, granules in positions.items()
            }
            self._support_cache[backend] = cached
        return cached

    def events(self) -> list[str]:
        """All distinct event keys occurring anywhere in DSEQ."""
        return list(self.event_support())

    def instances_at(self, position: int, event: str) -> list[EventInstance]:
        """Instances of ``event`` in the granule at ``position``.

        Per event the returned list is chronologically ordered and its
        runs are disjoint (Def. 3.10 run grouping), which is the
        invariant the columnar instance index's start-sorted tables and
        the sweep-join kernels build on (see
        :mod:`repro.core.instance_index`).
        """
        return self.sequence_at(position).instances_of(event)

    def total_instances(self) -> int:
        """Total number of event instances across all rows."""
        return sum(len(row) for row in self.rows)

    def describe_row(self, position: int) -> str:
        """Paper-style rendering of one Table IV row."""
        return self.sequence_at(position).describe()

    def append_row(self, sequence: TemporalSequence) -> None:
        """Append one granule row (streaming ingestion, Def. 3.10 online).

        ``sequence`` must be finalized and carry the next 1-based position.
        The per-representation support caches are dropped: batch callers
        re-scan lazily, while the streaming miner maintains its own
        incrementally extended supports.
        """
        if sequence.position != len(self.rows) + 1:
            raise TransformError(
                f"appended granule has position {sequence.position}; "
                f"expected {len(self.rows) + 1}"
            )
        self.rows.append(sequence)
        self._support_cache.clear()

    def prefix(self, n_granules: int) -> "TemporalSequenceDatabase":
        """A view of the first ``n_granules`` rows (rows are shared).

        The streaming parity checks mine every stream prefix with the
        batch miner; this avoids rebuilding the prefix from DSYB.
        """
        if not 0 <= n_granules <= len(self.rows):
            raise TransformError(
                f"prefix length {n_granules} outside [0, {len(self.rows)}]"
            )
        return TemporalSequenceDatabase(
            rows=self.rows[:n_granules],
            ratio=self.ratio,
            source_names=list(self.source_names),
        )

    def prime_event_support(
        self, supports: dict[str, SupportSet], backend: str | None = None
    ) -> None:
        """Install precomputed per-event supports for ``backend``.

        The hierarchical miner derives a coarse level's event supports by
        folding the finer level's (:meth:`SupportSet.coarsen`) instead of
        re-scanning the rows; priming the cache makes
        :meth:`event_support` serve the folded sets directly.  The caller
        guarantees the supports equal what a scan would compute -- for
        event supports the fold is exact (see
        :meth:`repro.core.supportset.SupportSet.coarsen`).
        """
        backend = validate_backend(backend or default_backend())
        self._support_cache[backend] = dict(supports)

    def coarsen(
        self, factor: int, granules: Iterable[int] | None = None
    ) -> "TemporalSequenceDatabase":
        """Derive the ``factor``-times coarser DSEQ from this one.

        Every ``factor`` adjacent rows merge into one coarse row whose
        instances are re-run-grouped at the boundaries (Def. 3.10: runs
        never span granule boundaries *of their own granularity*, so runs
        split by a fine boundary fuse back together at the coarse level).
        The result's rows equal ``build_sequence_database(dsyb,
        self.ratio * factor)`` -- without re-walking the symbol stream.
        A trailing group of fewer than ``factor`` rows is dropped,
        mirroring the sequence mapping's complete-block rule.

        ``granules``, if given, lists the 1-based coarse positions whose
        rows are actually needed (the union of the candidate events'
        folded supports); other positions get an
        :class:`UnmaterializedSequence` placeholder that raises on access,
        so cross-level screening can skip the merge work for granules no
        candidate event touches without any risk of silently serving
        empty rows.
        """
        if factor < 1:
            raise TransformError(f"coarsening factor must be >= 1, got {factor}")
        n_coarse = len(self.rows) // factor
        if n_coarse == 0:
            raise TransformError(
                f"coarsening factor {factor} exceeds the {len(self.rows)} rows"
            )
        materialize = None if granules is None else set(granules)
        series_memo: dict[str, str] = {}
        rows: list[TemporalSequence] = []
        for position in range(1, n_coarse + 1):
            if materialize is not None and position not in materialize:
                rows.append(UnmaterializedSequence(position=position))
            else:
                rows.append(
                    merge_sequences(
                        self.rows[(position - 1) * factor : position * factor],
                        position,
                        series_memo,
                    )
                )
        return TemporalSequenceDatabase(
            rows=rows,
            ratio=self.ratio * factor,
            source_names=list(self.source_names),
        )


class UnmaterializedSequence(TemporalSequence):
    """Placeholder row for a coarse granule the screening proved irrelevant.

    Cross-level screening materializes only the granules some candidate
    event supports; every other position gets this sentinel.  Any attempt
    to read it is a bug in the screening soundness argument, so it raises
    loudly instead of serving an empty sequence.
    """

    def _unavailable(self) -> TransformError:
        return TransformError(
            f"granule {self.position} was screened out of this derived DSEQ "
            "and never materialized; re-derive with coarsen(factor) for full rows"
        )

    def events(self) -> list[str]:
        raise self._unavailable()

    def instances_of(self, event: str) -> list[EventInstance]:
        raise self._unavailable()

    def __contains__(self, event: str) -> bool:
        raise self._unavailable()

    def __len__(self) -> int:
        raise self._unavailable()

    def describe(self) -> str:
        raise self._unavailable()


def merge_sequences(
    rows: list[TemporalSequence],
    position: int,
    series_memo: dict[str, str] | None = None,
) -> TemporalSequence:
    """Merge adjacent fine granule rows into one coarse temporal sequence.

    Within each series the fine rows' instances tile their granules
    contiguously, so concatenating them per series and fusing the
    boundary runs that carry the same event (the last run of one fine
    granule and the first of the next are adjacent by construction)
    reproduces exactly the run grouping of Def. 3.10 at the coarse
    granularity.  Shared by :meth:`TemporalSequenceDatabase.coarsen` and
    the multigrain streaming service.

    ``series_memo`` caches the event-key -> series split across calls
    (the event vocabulary is tiny next to the instance count, so callers
    merging many rows pass one shared dict).
    """
    if series_memo is None:
        series_memo = {}
    per_series: dict[str, list[EventInstance]] = {}
    for row in rows:
        at_boundary: set[str] = set()
        for instance in row.instances:
            series = series_memo.get(instance.event)
            if series is None:
                series = series_memo[instance.event] = instance.event.rsplit(":", 1)[0]
            runs = per_series.setdefault(series, [])
            if series not in at_boundary:
                at_boundary.add(series)
                if (
                    runs
                    and runs[-1].event == instance.event
                    and runs[-1].end + 1 == instance.start
                ):
                    runs[-1] = EventInstance(
                        instance.event, runs[-1].start, instance.end
                    )
                    continue
            runs.append(instance)
    merged = TemporalSequence(position=position)
    for runs in per_series.values():
        merged.instances.extend(runs)
    return merged.finalize()


def granule_instances(
    name: str, block: tuple[str, ...], offset: int
) -> list[EventInstance]:
    """Event instances of one series' symbol block (Def. 3.10 run grouping).

    ``block`` holds the consecutive symbols of one coarse granule;
    ``offset`` is the 0-based global position of its first symbol, so the
    returned intervals use global 1-based fine-granule positions.  Shared
    by the batch sequence mapping and the streaming ingestion layer.
    """
    instances: list[EventInstance] = []
    run_symbol = block[0]
    run_start = offset + 1
    for index in range(1, len(block)):
        if block[index] != run_symbol:
            instances.append(
                EventInstance(f"{name}:{run_symbol}", run_start, offset + index)
            )
            run_symbol = block[index]
            run_start = offset + index + 1
    instances.append(
        EventInstance(f"{name}:{run_symbol}", run_start, offset + len(block))
    )
    return instances


def _granule_instances(
    name: str, symbols: tuple[str, ...], granule_index: int, ratio: int
) -> list[EventInstance]:
    """Event instances of one series inside one coarse granule.

    ``granule_index`` is 0-based; returned intervals use global 1-based
    fine-granule positions.
    """
    start = granule_index * ratio
    return granule_instances(name, symbols[start : start + ratio], start)


def build_sequence_database(
    dsyb: SymbolicDatabase, ratio: int
) -> TemporalSequenceDatabase:
    """Apply the sequence mapping ``g: XS ->m H`` to every series of DSYB.

    Parameters
    ----------
    dsyb:
        The symbolic database at the fine granularity G.
    ratio:
        The m of the mapping (how many fine granules form one coarse
        granule).  A trailing block of fewer than ``ratio`` symbols is
        dropped, consistent with Def. 3.3's complete-partition requirement.
    """
    if ratio < 1:
        raise TransformError(f"sequence mapping ratio must be >= 1, got {ratio}")
    if len(dsyb) == 0:
        raise TransformError("cannot build DSEQ from an empty DSYB")
    n_granules = dsyb.n_instants // ratio
    if n_granules == 0:
        raise TransformError(
            f"ratio {ratio} exceeds the {dsyb.n_instants} instants of DSYB"
        )
    with span("transform/build_dseq", ratio=ratio, granules=n_granules):
        rows: list[TemporalSequence] = []
        for granule_index in range(n_granules):
            sequence = TemporalSequence(position=granule_index + 1)
            for symbolic in dsyb:
                sequence.instances.extend(
                    _granule_instances(
                        symbolic.name, symbolic.symbols, granule_index, ratio
                    )
                )
            rows.append(sequence.finalize())
        return TemporalSequenceDatabase(
            rows=rows, ratio=ratio, source_names=dsyb.names
        )
