"""Phase 1 of FreqSTPfTS: data transformation (paper Sec. IV-A).

Converts a symbolic database ``DSYB`` at the fine granularity G into a
temporal sequence database ``DSEQ`` at a coarser granularity H via the
sequence mapping ``g: XS ->m H`` (paper Defs. 3.9-3.11, Table IV).
"""

from repro.transform.sequence_db import (
    TemporalSequenceDatabase,
    build_sequence_database,
    granule_instances,
)

__all__ = [
    "TemporalSequenceDatabase",
    "build_sequence_database",
    "granule_instances",
]
