"""Finding records produced by the contract rules.

A finding pins one contract violation to a file location plus a *stable
symbol* -- the name of the offending global, class, or import -- so the
baseline can match grandfathered findings across unrelated edits (line
numbers move; symbols do not).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, order=True)
class Finding:
    """One contract violation.

    Attributes
    ----------
    path:
        Repository-relative POSIX path of the offending file.
    line / col:
        1-based line and 0-based column of the offending node.
    rule:
        Rule identifier (``CT001``, ``EP002``, ...).
    symbol:
        Stable anchor of the finding inside the file: the global,
        class, attribute, or imported name the rule fired on.  Baseline
        matching keys on ``(rule, path, symbol)``.
    message:
        Human-readable description of the violation.
    """

    path: str
    line: int
    col: int
    rule: str = field(compare=False)
    symbol: str = field(compare=False)
    message: str = field(compare=False)

    def baseline_key(self) -> tuple[str, str, str]:
        """The identity the baseline matches on (line numbers excluded)."""
        return (self.rule, self.path, self.symbol)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able representation (the JSON reporter's row schema)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }

    def render(self) -> str:
        """The one-line text form: ``path:line:col RULE[symbol] message``."""
        return f"{self.path}:{self.line}:{self.col} {self.rule}[{self.symbol}] {self.message}"
