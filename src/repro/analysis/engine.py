"""The analysis engine: discover files, index once, run every rule.

The engine always analyzes ``src/repro`` (the package the contracts are
about); ``extra_paths`` widens the scope to out-of-package code such as
``scripts/`` and ``benchmarks/_shared.py``.  Findings then pass through
two filters in order: per-line / per-file suppression comments, then the
checked-in baseline.  Whatever survives is a live finding and fails the
run; stale or FIXME baseline entries fail it too.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding
from repro.analysis.index import RepoIndex, build_index
from repro.analysis.report import RunResult
from repro.analysis.rules import ALL_RULES, Rule

#: The scope every run covers, relative to the repo root.
DEFAULT_SCOPE = ("src/repro",)

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


def discover_files(root: Path, extra_paths: Sequence[str] = ()) -> list[Path]:
    """All ``.py`` files under the default scope plus ``extra_paths``.

    Paths are de-duplicated and sorted so runs are deterministic; a
    missing extra path is a hard error (a CI scope typo must not pass
    silently as "nothing to analyze").
    """
    seen: set[Path] = set()
    for raw in (*DEFAULT_SCOPE, *extra_paths):
        target = (root / raw).resolve() if not Path(raw).is_absolute() else Path(raw)
        if not target.exists():
            raise FileNotFoundError(f"analysis path does not exist: {raw}")
        for path in _iter_python_files(target):
            seen.add(path)
    return sorted(seen)


def _iter_python_files(target: Path) -> Iterator[Path]:
    if target.is_file():
        if target.suffix == ".py":
            yield target
        return
    for path in target.rglob("*.py"):
        if not any(part in _SKIP_DIRS for part in path.parts):
            yield path


def build_repo_index(root: Path, extra_paths: Sequence[str] = ()) -> RepoIndex:
    return build_index(root, discover_files(root, extra_paths))


def _selects(token: str, rule_id: str) -> bool:
    """``--select`` accepts exact rule ids (``CT001``) or whole
    families by their alphabetic prefix (``CT``, ``RC``)."""
    return rule_id == token or (token.isalpha() and rule_id.startswith(token))


def run_rules(
    repo: RepoIndex, rules: Iterable[type[Rule]] = ALL_RULES
) -> list[Finding]:
    """Every raw finding, before suppression/baseline filtering."""
    findings: list[Finding] = []
    for rule_class in rules:
        findings.extend(rule_class().check(repo))
    return findings


def analyze(
    root: Path,
    extra_paths: Sequence[str] = (),
    baseline: Baseline | None = None,
    rules: Iterable[type[Rule]] = ALL_RULES,
    select: Sequence[str] = (),
) -> RunResult:
    """One full run: index, check, filter, summarize."""
    baseline = baseline or Baseline()
    repo = build_repo_index(root, extra_paths)
    rule_classes = list(rules)
    if select:
        wanted = set(select)
        unknown = {
            token
            for token in wanted
            if not any(_selects(token, rule.id) for rule in rule_classes)
        }
        rule_classes = [
            rule
            for rule in rule_classes
            if any(_selects(token, rule.id) for token in wanted)
        ]
    else:
        unknown = set()

    live: list[Finding] = []
    suppressed = 0
    baselined = 0
    for finding in run_rules(repo, rule_classes):
        entry = repo.by_path.get(finding.path)
        if entry is not None and entry.suppressions.is_suppressed(
            finding.rule, finding.line
        ):
            suppressed += 1
            continue
        if baseline.matches(finding):
            baselined += 1
            continue
        live.append(finding)

    errors = [repo.errors[key] for key in sorted(repo.errors)]
    for rule_id in sorted(unknown):
        errors.append(f"--select names unknown rule {rule_id!r}")
    if not select:
        # Staleness is only decidable on a full-rule run: a --select
        # subset never matches entries for the unselected rules.
        for entry_obj in baseline.stale_entries():
            errors.append(
                "stale baseline entry (no matching finding -- remove it): "
                f"{entry_obj.rule} {entry_obj.path} [{entry_obj.symbol}]"
            )
    for entry_obj in baseline.unjustified_entries():
        errors.append(
            "baseline entry lacks a justification (replace the FIXME): "
            f"{entry_obj.rule} {entry_obj.path} [{entry_obj.symbol}]"
        )
    return RunResult(
        findings=live,
        suppressed=suppressed,
        baselined=baselined,
        errors=errors,
        files=len(repo) + len(repo.errors),
    )


def rule_summaries(rules: Iterable[type[Rule]] = ALL_RULES) -> dict[str, str]:
    return {rule.id: rule.summary for rule in rules}
