"""One-pass module index shared by every contract rule.

Each analyzed file is parsed exactly once into a :class:`ModuleIndex`:
the AST itself plus the pre-extracted facts most rules need (imports
with their scopes, module-level bindings, literal constants, function
definitions with nesting depth, ``__all__``, suppression comments).
Rules then run as read-only passes over the :class:`RepoIndex`, so the
whole tree analyzes in one parse + N cheap walks instead of N parses.

Module naming: files under a ``src/`` root get their real dotted import
name (``src/repro/core/stpm.py`` -> ``repro.core.stpm``); files outside
it (``scripts/``, ``benchmarks/``) get a path-derived pseudo name
(``scripts.profile_mining``) that keeps them addressable without
pretending they are importable packages.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.suppress import SuppressionMap, parse_suppressions


@dataclass(frozen=True)
class ImportRecord:
    """One imported name binding.

    For ``from M import n as a``: ``module="M"``, ``name="n"``,
    ``alias="a"``.  For ``import M as a``: ``name=""`` and the binding
    is the whole module.  ``function_scope`` is True when the import
    statement lives inside a function body.
    """

    module: str
    name: str
    alias: str
    line: int
    col: int
    function_scope: bool

    @property
    def target(self) -> str:
        """The fully dotted thing this record binds (module or member)."""
        return f"{self.module}.{self.name}" if self.name else self.module


@dataclass(frozen=True)
class FunctionRecord:
    """One function/method definition with its nesting context."""

    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Number of enclosing *functions* (0 = module- or class-level def).
    depth: int
    #: Qualname of the enclosing class, "" for free functions.
    owner_class: str


class ModuleIndex:
    """Everything the rules need to know about one source file."""

    def __init__(self, path: Path, rel_path: str, module: str, source: str) -> None:
        self.path = path
        #: Repository-relative POSIX path (what findings report).
        self.rel_path = rel_path
        #: Dotted module name (real for ``src/`` files, path-derived otherwise).
        self.module = module
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        self.suppressions: SuppressionMap = parse_suppressions(source)
        self.imports: list[ImportRecord] = []
        #: Module-scope name -> kind ("import" / "def" / "class" / "assign").
        self.bindings: dict[str, str] = {}
        #: Module-scope constant foldings: name -> literal (str/int/tuple of those).
        self.constants: dict[str, object] = {}
        #: Module-scope assignments whose value is a mutable container
        #: literal/constructor: name -> (line, col).
        self.mutable_globals: dict[str, tuple[int, int]] = {}
        #: All function defs (any depth), in source order.
        self.functions: list[FunctionRecord] = []
        #: Module-scope class defs by name.
        self.classes: dict[str, ast.ClassDef] = {}
        #: Names listed in a literal module-scope ``__all__``.
        self.dunder_all: list[str] | None = None
        self._index()

    # -- construction ---------------------------------------------------

    def _index(self) -> None:
        self._index_body(self.tree.body)
        for record in _walk_functions(self.tree.body, depth=0, owner_class="", prefix=""):
            self.functions.append(record)
        self._collect_imports()

    def _index_body(self, body: list[ast.stmt]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.bindings[node.name] = "def"
            elif isinstance(node, ast.ClassDef):
                self.bindings[node.name] = "class"
                self.classes[node.name] = node
            elif isinstance(node, ast.Import):
                for item in node.names:
                    bound = item.asname or item.name.partition(".")[0]
                    self.bindings[bound] = "import"
            elif isinstance(node, ast.ImportFrom):
                for item in node.names:
                    self.bindings[item.asname or item.name] = "import"
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                self._index_assignment(node)
            elif isinstance(node, (ast.If, ast.Try)):
                # Conditional module-scope bindings (TYPE_CHECKING guards,
                # try/except import fallbacks) still bind names.
                for sub_body in _sub_bodies(node):
                    self._index_body(sub_body)

    def _index_assignment(self, node: ast.Assign | ast.AnnAssign | ast.AugAssign) -> None:
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        else:
            targets = [node.target]
            value = node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            self.bindings.setdefault(name, "assign")
            if value is None:
                continue
            literal = _fold_literal(value, self.constants)
            if literal is not _UNFOLDABLE:
                self.constants[name] = literal
            if name == "__all__" and isinstance(value, (ast.List, ast.Tuple)):
                names = [
                    element.value
                    for element in value.elts
                    if isinstance(element, ast.Constant) and isinstance(element.value, str)
                ]
                self.dunder_all = names
            if _is_mutable_container(value):
                self.mutable_globals[name] = (node.lineno, node.col_offset)

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    self.imports.append(
                        ImportRecord(
                            module=item.name,
                            name="",
                            alias=item.asname or item.name.partition(".")[0],
                            line=node.lineno,
                            col=node.col_offset,
                            function_scope=node.col_offset > 0,
                        )
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative imports are not used in this tree
                    continue
                for item in node.names:
                    self.imports.append(
                        ImportRecord(
                            module=node.module or "",
                            name=item.name,
                            alias=item.asname or item.name,
                            line=node.lineno,
                            col=node.col_offset,
                            function_scope=node.col_offset > 0,
                        )
                    )

    # -- queries --------------------------------------------------------

    def import_aliases_of(self, module: str) -> set[str]:
        """Local names bound to the module ``module`` itself."""
        aliases = set()
        for record in self.imports:
            if not record.name and record.module == module:
                aliases.add(record.alias)
            elif record.name and f"{record.module}.{record.name}" == module:
                aliases.add(record.alias)
        return aliases

    def imported_name_aliases(self, module: str, name: str) -> set[str]:
        """Local names bound to ``module.name`` via from-imports."""
        return {
            record.alias
            for record in self.imports
            if record.name == name and record.module == module
        }

    def function_def(self, name: str) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """The module-level function definition bound to ``name``."""
        for record in self.functions:
            if record.depth == 0 and not record.owner_class and record.node.name == name:
                return record.node
        return None


_UNFOLDABLE = object()


def _fold_literal(node: ast.expr, constants: dict[str, object]) -> object:
    """Fold simple constant expressions (strings, ints, tuples, and
    references to already-folded module constants)."""
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        return constants.get(node.id, _UNFOLDABLE)
    if isinstance(node, (ast.Tuple, ast.List)):
        folded = []
        for element in node.elts:
            value = _fold_literal(element, constants)
            if value is _UNFOLDABLE:
                return _UNFOLDABLE
            folded.append(value)
        return tuple(folded)
    return _UNFOLDABLE


def _is_mutable_container(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("dict", "list", "set")
    )


def _sub_bodies(node: ast.If | ast.Try) -> Iterator[list[ast.stmt]]:
    if isinstance(node, ast.If):
        yield node.body
        yield node.orelse
    else:
        yield node.body
        yield node.orelse
        yield node.finalbody
        for handler in node.handlers:
            yield handler.body


def _walk_functions(
    body: Iterable[ast.stmt], depth: int, owner_class: str, prefix: str
) -> Iterator[FunctionRecord]:
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}{node.name}"
            yield FunctionRecord(qualname, node, depth, owner_class)
            yield from _walk_functions(
                node.body, depth + 1, owner_class, f"{qualname}.<locals>."
            )
        elif isinstance(node, ast.ClassDef):
            class_qualname = f"{prefix}{node.name}"
            yield from _walk_functions(
                node.body, depth, class_qualname, f"{class_qualname}."
            )
        elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
            yield from _walk_functions(
                [stmt for stmt in ast.iter_child_nodes(node) if isinstance(stmt, ast.stmt)],
                depth,
                owner_class,
                prefix,
            )


class RepoIndex:
    """The indexed view of every analyzed file."""

    def __init__(self, root: Path) -> None:
        #: Repository root all reported paths are relative to.
        self.root = root
        self.modules: dict[str, ModuleIndex] = {}
        self.by_path: dict[str, ModuleIndex] = {}
        #: Parse failures: rel_path -> error message (reported as findings).
        self.errors: dict[str, str] = {}

    def add_file(self, path: Path) -> None:
        rel = _relative_posix(path, self.root)
        module = _module_name(path, self.root)
        try:
            source = path.read_text(encoding="utf-8")
            entry = ModuleIndex(path, rel, module, source)
        except (OSError, SyntaxError, ValueError) as error:
            self.errors[rel] = f"cannot index {rel}: {error}"
            return
        self.modules[module] = entry
        self.by_path[rel] = entry

    def get(self, module: str) -> ModuleIndex | None:
        return self.modules.get(module)

    def has_submodule(self, package: str, name: str) -> bool:
        """True when ``package.name`` is an indexed module or package."""
        dotted = f"{package}.{name}"
        if dotted in self.modules:
            return True
        prefix = dotted + "."
        return any(module.startswith(prefix) for module in self.modules)

    def __iter__(self) -> Iterator[ModuleIndex]:
        return iter(self.modules.values())

    def __len__(self) -> int:
        return len(self.modules)


def _relative_posix(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _module_name(path: Path, root: Path) -> str:
    """Dotted module name of ``path`` (see module docstring)."""
    rel = Path(_relative_posix(path, root))
    parts = list(rel.parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else rel.stem


def build_index(root: Path, files: Iterable[Path]) -> RepoIndex:
    """Index every file once; rules run over the result."""
    index = RepoIndex(root)
    for path in files:
        index.add_file(path)
    return index
