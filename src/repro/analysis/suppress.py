"""Suppression comments: ``# repro: ignore[RULE]``.

Grammar (whitespace-tolerant, rule lists comma-separated):

* ``# repro: ignore[CT001]`` -- suppress the listed rules on this line;
* ``# repro: ignore`` -- suppress every rule on this line;
* ``# repro: ignore-file[TS001]`` -- suppress the listed rules in the
  whole file (``ignore-file`` without brackets suppresses everything --
  reserve it for generated code).

Trailing prose after the bracket is encouraged: a suppression without a
reason is a review smell, e.g.::

    _CACHE[key] = value  # repro: ignore[TS001] -- benign last-write-wins race

Suppressions are matched against the *line of the flagged AST node*, so
they belong on the offending line itself.
"""

from __future__ import annotations

import io
import re
import tokenize

_LINE_RE = re.compile(
    r"#\s*repro:\s*(?P<kind>ignore-file|ignore)\s*(?:\[(?P<rules>[^\]]*)\])?"
)

#: Wildcard entry meaning "every rule".
ALL_RULES = "*"


class SuppressionMap:
    """Per-file suppression state parsed from the comments of one module."""

    def __init__(self) -> None:
        self.by_line: dict[int, set[str]] = {}
        self.file_wide: set[str] = set()

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True when ``rule`` is suppressed at ``line`` (or file-wide)."""
        if ALL_RULES in self.file_wide or rule in self.file_wide:
            return True
        rules = self.by_line.get(line)
        if rules is None:
            return False
        return ALL_RULES in rules or rule in rules


def _parse_rule_list(raw: str | None) -> set[str]:
    if raw is None:
        return {ALL_RULES}
    rules = {entry.strip() for entry in raw.split(",") if entry.strip()}
    return rules or {ALL_RULES}


def parse_suppressions(source: str) -> SuppressionMap:
    """Extract the suppression map from a module's source text.

    Comments are found with :mod:`tokenize` so string literals containing
    the magic marker never register.  A file that fails to tokenize
    (which would also fail to parse) yields an empty map.
    """
    suppressions = SuppressionMap()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _LINE_RE.search(token.string)
            if match is None:
                continue
            rules = _parse_rule_list(match.group("rules"))
            if match.group("kind") == "ignore-file":
                suppressions.file_wide |= rules
            else:
                suppressions.by_line.setdefault(token.start[0], set()).update(rules)
    except tokenize.TokenizeError:
        pass
    return suppressions
