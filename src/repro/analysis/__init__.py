"""Static contract analyzer for the freqstpfts tree.

A stdlib-only, AST-based lint engine that turns the repo's documented
runtime contracts into checked invariants:

* **CT** compute-twin -- numpy only via :func:`repro.core.config.get_numpy`;
* **EP** executor picklability -- module-level task callables, boundary
  classes exclude per-process caches from their pickled state;
* **TS** thread safety -- shared module state is locked or thread-local;
* **OB** zero-overhead telemetry -- hot paths use the guarded helpers;
* **RC** registry conformance -- kernel registries and export surfaces
  resolve, with interchangeable kernel signatures.

Run it with ``python -m repro.analysis`` or ``freqstpfts lint``.
Findings are filtered by ``# repro: ignore[RULE]`` comments and the
checked-in ``analysis-baseline.json``; see DESIGN.md ("Static
contracts") for the workflow.
"""

from repro.analysis.baseline import Baseline, load_baseline
from repro.analysis.engine import analyze, build_repo_index, rule_summaries, run_rules
from repro.analysis.findings import Finding
from repro.analysis.report import RunResult, render_json, render_text
from repro.analysis.rules import ALL_RULES
from repro.analysis.runner import main

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Finding",
    "RunResult",
    "analyze",
    "build_repo_index",
    "load_baseline",
    "main",
    "render_json",
    "render_text",
    "rule_summaries",
    "run_rules",
]
