"""Checked-in baseline for grandfathered findings.

The baseline (``analysis-baseline.json`` at the repo root) records
findings that are *known and deliberately accepted*, keyed by
``(rule, path, symbol)`` -- line numbers are excluded on purpose so
unrelated edits do not invalidate entries.  Every entry must carry a
human-written ``justification``; ``--write-baseline`` emits ``FIXME``
placeholders that the self-check test refuses to ship.

A baseline entry that stops matching any finding is *stale* and is
reported as an error: baselines only ever shrink, they never rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import Finding
from repro.io.atomic import write_text_atomic

#: Placeholder justification emitted by ``--write-baseline``.
FIXME_JUSTIFICATION = "FIXME: justify or fix"

_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    symbol: str
    justification: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)


class Baseline:
    """The set of accepted findings plus bookkeeping for staleness."""

    def __init__(self, entries: list[BaselineEntry] | None = None) -> None:
        self.entries: dict[tuple[str, str, str], BaselineEntry] = {
            entry.key: entry for entry in (entries or [])
        }
        self._matched: set[tuple[str, str, str]] = set()

    def matches(self, finding: Finding) -> bool:
        """True (and mark the entry used) when ``finding`` is baselined."""
        key = finding.baseline_key()
        if key in self.entries:
            self._matched.add(key)
            return True
        return False

    def stale_entries(self) -> list[BaselineEntry]:
        """Entries that matched no finding in the last run."""
        return [
            entry
            for key, entry in sorted(self.entries.items())
            if key not in self._matched
        ]

    def unjustified_entries(self) -> list[BaselineEntry]:
        """Entries still carrying the FIXME placeholder."""
        return [
            entry
            for _, entry in sorted(self.entries.items())
            if entry.justification.startswith("FIXME")
        ]


def load_baseline(path: Path) -> Baseline:
    """Load ``path``; a missing file is an empty baseline."""
    if not path.exists():
        return Baseline()
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "entries" not in data:
        raise ValueError(f"{path}: not a baseline file (missing 'entries')")
    entries = []
    for raw in data["entries"]:
        missing = {"rule", "path", "symbol", "justification"} - set(raw)
        if missing:
            raise ValueError(
                f"{path}: baseline entry {raw!r} missing {sorted(missing)}"
            )
        entries.append(
            BaselineEntry(
                rule=raw["rule"],
                path=raw["path"],
                symbol=raw["symbol"],
                justification=raw["justification"],
            )
        )
    return Baseline(entries)


def write_baseline(path: Path, findings: list[Finding], previous: Baseline) -> int:
    """Write a baseline accepting ``findings``; keep existing justifications.

    Returns the number of entries written.  New entries get the FIXME
    placeholder -- the author must replace it before the self-check
    passes, which is the point: baselining is a reviewed decision, not
    an escape hatch.
    """
    entries: dict[tuple[str, str, str], BaselineEntry] = {}
    for finding in sorted(findings):
        key = finding.baseline_key()
        kept = previous.entries.get(key)
        entries[key] = kept or BaselineEntry(
            rule=finding.rule,
            path=finding.path,
            symbol=finding.symbol,
            justification=FIXME_JUSTIFICATION,
        )
    payload = {
        "version": _SCHEMA_VERSION,
        "entries": [
            {
                "rule": entry.rule,
                "path": entry.path,
                "symbol": entry.symbol,
                "justification": entry.justification,
            }
            for _, entry in sorted(entries.items())
        ],
    }
    write_text_atomic(path, json.dumps(payload, indent=2) + "\n")
    return len(entries)
