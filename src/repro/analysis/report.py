"""Reporters: human text and machine JSON.

The JSON document is the CI artifact; its shape is pinned by
``tests/test_analysis.py`` so downstream tooling can rely on it::

    {
      "version": 1,
      "summary": {"findings": N, "suppressed": N, "baselined": N,
                   "errors": N, "files": N},
      "findings": [{"path", "line", "col", "rule", "symbol", "message"}],
      "errors": ["..."]
    }
"""

from __future__ import annotations

import json

from repro.analysis.findings import Finding

JSON_SCHEMA_VERSION = 1


class RunResult:
    """Everything one engine run produced."""

    def __init__(
        self,
        findings: list[Finding],
        suppressed: int,
        baselined: int,
        errors: list[str],
        files: int,
    ) -> None:
        #: Live findings (not suppressed, not baselined), location-sorted.
        self.findings = sorted(findings)
        self.suppressed = suppressed
        self.baselined = baselined
        #: Parse failures, stale/unjustified baseline entries, config errors.
        self.errors = errors
        self.files = files

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors


def render_text(result: RunResult, rule_summaries: dict[str, str]) -> str:
    lines = []
    for finding in result.findings:
        lines.append(finding.render())
    for error in result.errors:
        lines.append(f"error: {error}")
    counts = (
        f"{result.files} file(s) analyzed: "
        f"{len(result.findings)} finding(s), "
        f"{result.suppressed} suppressed, "
        f"{result.baselined} baselined, "
        f"{len(result.errors)} error(s)"
    )
    lines.append(counts)
    if result.findings:
        lines.append("")
        lines.append("rules hit:")
        for rule in sorted({finding.rule for finding in result.findings}):
            lines.append(f"  {rule}: {rule_summaries.get(rule, '')}")
    return "\n".join(lines) + "\n"


def render_json(result: RunResult) -> str:
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "summary": {
            "findings": len(result.findings),
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "errors": len(result.errors),
            "files": result.files,
        },
        "findings": [finding.to_dict() for finding in result.findings],
        "errors": list(result.errors),
    }
    return json.dumps(payload, indent=2) + "\n"
