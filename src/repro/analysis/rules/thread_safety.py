"""TS -- the ThreadExecutor shared-state contract (PR 4).

``ThreadExecutor`` runs group tasks in one process: any module-level
mutable container reachable from a task path is shared across workers.
The repo convention is explicit -- shared mutable module state must be
``threading.local``, mutated only under a lock-like context manager
(``with _LOCK:``), or carry a justified suppression/baseline entry
(the interning caches' benign last-write-wins races are the canonical
baselined case).

* ``TS001``: module-level mutable container mutated from a function
  without a lexical lock guard.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.index import ModuleIndex, RepoIndex
from repro.analysis.rules.base import (
    THREAD_SHARED_PACKAGES,
    Rule,
    build_parent_map,
    enclosing_function,
    guarded_by_lock,
    in_packages,
)

#: Methods that mutate the container they are called on.
_MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popitem",
    "clear",
    "add",
    "discard",
    "update",
    "setdefault",
    "__setitem__",
}


def _threading_local_names(entry: ModuleIndex) -> set[str]:
    """Module-level names bound to ``threading.local()`` instances."""
    names: set[str] = set()
    for node in entry.tree.body:
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        func = node.value.func
        is_local = (
            isinstance(func, ast.Attribute) and func.attr == "local"
        ) or (isinstance(func, ast.Name) and func.id == "local")
        if not is_local:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _mutated_global(node: ast.AST, shared: set[str]) -> tuple[str, ast.AST] | None:
    """(name, anchor) when ``node`` mutates a shared module-level container."""
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in shared
            ):
                return target.value.id, node
    if isinstance(node, ast.Delete):
        for target in node.targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in shared
            ):
                return target.value.id, node
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in shared
        ):
            return func.value.id, node
    return None


class UnguardedSharedMutation(Rule):
    id = "TS001"
    summary = (
        "module-level mutable container mutated from a function without a "
        "lock guard (ThreadExecutor shares module state across workers)"
    )

    def check(self, repo: RepoIndex) -> Iterator[Finding]:
        for entry in repo:
            if not in_packages(entry.module, THREAD_SHARED_PACKAGES):
                continue
            shared = set(entry.mutable_globals) - _threading_local_names(entry)
            if not shared:
                continue
            parents = build_parent_map(entry.tree)
            seen: set[tuple[str, int]] = set()
            for node in ast.walk(entry.tree):
                hit = _mutated_global(node, shared)
                if hit is None:
                    continue
                name, anchor = hit
                function = enclosing_function(anchor, parents)
                if function is None:
                    continue  # module-scope initialization is single-threaded
                if guarded_by_lock(anchor, parents):
                    continue
                key = (name, anchor.lineno)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(
                    entry,
                    anchor,
                    name,
                    f"module-level mutable {name!r} is mutated in "
                    f"{function.name}() without a lock; ThreadExecutor "
                    "workers share this object -- guard it with a lock, "
                    "make it threading.local, or baseline it with a "
                    "justification if the race is provably benign",
                )
