"""CT -- the REPRO_COMPUTE compute-twin contract (PR 6).

Every vectorized path must have a pure-Python twin, selected through
:func:`repro.core.config.get_numpy`.  A module that imports numpy
directly bypasses the backend registry twice over: ``REPRO_COMPUTE=python``
no longer disables it, and an environment without numpy cannot even
import it -- which silently breaks the numpy-optional promise the
pure-python-fallback CI leg exists to keep.

* ``CT001``: ``import numpy`` at module scope anywhere outside
  ``repro.core.config``.
* ``CT002``: ``import numpy`` inside a function outside
  ``repro.core.config`` -- call :func:`get_numpy` instead, so the
  backend override and the one-shot import cache stay authoritative.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.index import RepoIndex
from repro.analysis.rules.base import COMPUTE_REGISTRY_MODULE, Rule


def _is_numpy(module: str) -> bool:
    return module == "numpy" or module.startswith("numpy.")


class ModuleScopeNumpyImport(Rule):
    id = "CT001"
    summary = (
        "numpy imported at module scope outside repro.core.config; route "
        "through get_numpy() so REPRO_COMPUTE keeps a pure-Python twin"
    )

    def check(self, repo: RepoIndex) -> Iterator[Finding]:
        for entry in repo:
            if entry.module == COMPUTE_REGISTRY_MODULE:
                continue
            for record in entry.imports:
                if record.function_scope or not _is_numpy(record.module):
                    continue
                yield self.finding(
                    entry,
                    record.line,
                    "numpy",
                    "module-scope numpy import bypasses the REPRO_COMPUTE "
                    "backend registry (and makes the module un-importable "
                    "without numpy); use repro.core.config.get_numpy() "
                    "inside the vectorized path and keep a pure twin",
                )


class FunctionScopeNumpyImport(Rule):
    id = "CT002"
    summary = (
        "numpy imported inside a function outside repro.core.config; "
        "call get_numpy() so the backend override applies"
    )

    def check(self, repo: RepoIndex) -> Iterator[Finding]:
        for entry in repo:
            if entry.module == COMPUTE_REGISTRY_MODULE:
                continue
            for record in entry.imports:
                if not record.function_scope or not _is_numpy(record.module):
                    continue
                yield self.finding(
                    entry,
                    record.line,
                    "numpy",
                    "function-scope numpy import ignores REPRO_COMPUTE; "
                    "call repro.core.config.get_numpy() (returns None when "
                    "the pure-Python backend is selected)",
                )
