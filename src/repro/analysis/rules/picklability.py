"""EP -- the executor-boundary picklability contract (PRs 1/4/5).

Group tasks and their contexts cross process boundaries: every callable
handed to ``map_tasks`` (or stored in a dispatch registry) must resolve
by qualified name in the worker (module-level, not a lambda / closure /
bound method), and the classes shipped inside ``LevelContext`` /
``HierarchicalContext`` / ``GroupOutcome`` must exclude per-process
caches from their pickled state (``HLH1.__getstate__`` is the model:
workers rebuild their own instance columns from the broadcast tables).

* ``EP001``: non-module-level callable passed to ``map_tasks``.
* ``EP002``: boundary class with cache-like attributes but no
  ``__getstate__`` / ``__reduce__`` to exclude them.
* ``EP003``: dispatch-registry value that is not a module-level callable.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.index import ModuleIndex, RepoIndex
from repro.analysis.rules.base import (
    CACHE_ATTR_MARKERS,
    CALLABLE_REGISTRIES,
    EXECUTOR_BOUNDARY_MODULES,
    Rule,
)


def _nested_def_names(entry: ModuleIndex) -> set[str]:
    return {
        record.node.name for record in entry.functions if record.depth > 0
    }


def _describe_callable_problem(
    entry: ModuleIndex, node: ast.expr, nested: set[str]
) -> str | None:
    """Why ``node`` cannot be shipped to a worker process (None = fine)."""
    if isinstance(node, ast.Lambda):
        return "a lambda does not pickle; define a module-level function"
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name) and node.value.id in {
            record.alias for record in entry.imports if not record.name
        }:
            return None  # module_alias.function -- resolvable by name
        return (
            "a bound method / instance attribute does not pickle by "
            "qualified name; pass a module-level function taking the "
            "instance state via the task context"
        )
    if isinstance(node, ast.Name):
        if node.id in entry.bindings:
            return None  # module-level def / import
        if node.id in nested:
            return (
                "a closure (function defined inside another function) "
                "does not pickle; hoist it to module level"
            )
        return None  # parameter or local alias -- not statically decidable
    if isinstance(node, ast.Call):
        func = node.func
        func_name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        if func_name == "partial" and node.args:
            return _describe_callable_problem(entry, node.args[0], nested)
        return None  # arbitrary factory -- not statically decidable
    return None


class NonPicklableTaskCallable(Rule):
    id = "EP001"
    summary = (
        "callable passed to map_tasks must be a module-level function "
        "(no lambdas, closures, or bound methods)"
    )

    def check(self, repo: RepoIndex) -> Iterator[Finding]:
        for entry in repo:
            nested = _nested_def_names(entry)
            for node in ast.walk(entry.tree):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                func = node.func
                is_map_tasks = (
                    isinstance(func, ast.Attribute) and func.attr == "map_tasks"
                ) or (isinstance(func, ast.Name) and func.id == "map_tasks")
                if not is_map_tasks:
                    continue
                target = node.args[0]
                # Executor internals forward their own `fn` parameter; a
                # Name bound to a parameter resolves to "fine" below.
                problem = _describe_callable_problem(entry, target, nested)
                if problem is not None:
                    symbol = getattr(target, "id", None) or "<callable>"
                    yield self.finding(
                        entry,
                        target,
                        symbol,
                        f"task callable handed to map_tasks: {problem}",
                    )


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        name = decorator
        if isinstance(name, ast.Call):
            name = name.func
        if isinstance(name, ast.Name) and name.id == "dataclass":
            return True
        if isinstance(name, ast.Attribute) and name.attr == "dataclass":
            return True
    return False


def _field_has_compare_false(value: ast.expr | None) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if not (isinstance(func, ast.Name) and func.id == "field"):
        return False
    return any(
        keyword.arg == "compare"
        and isinstance(keyword.value, ast.Constant)
        and keyword.value.value is False
        for keyword in value.keywords
    )


def _name_is_cache_like(name: str) -> bool:
    lowered = name.lower()
    return any(marker in lowered for marker in CACHE_ATTR_MARKERS)


def _suspicious_attributes(node: ast.ClassDef) -> list[tuple[str, int]]:
    """Cache-like per-process attributes of one class.

    Two triggers: an underscore dataclass field excluded from comparison
    (derived state by construction), or any underscore attribute whose
    name matches the cache markers (``_support_cache``, ``_columns``,
    ``_interned`` ...), whether a dataclass field or a ``self._x``
    assignment in ``__init__``.
    """
    attrs: list[tuple[str, int]] = []
    is_dataclass = _is_dataclass(node)
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            if not name.startswith("_") or name.startswith("__"):
                continue
            if is_dataclass and _field_has_compare_false(stmt.value):
                attrs.append((name, stmt.lineno))
            elif _name_is_cache_like(name):
                attrs.append((name, stmt.lineno))
        elif isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Assign):
                    continue
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr.startswith("_")
                        and not target.attr.startswith("__")
                        and _name_is_cache_like(target.attr)
                    ):
                        attrs.append((target.attr, sub.lineno))
    return attrs


class BoundaryClassShipsCaches(Rule):
    id = "EP002"
    summary = (
        "executor-boundary class holds per-process cache attributes but "
        "defines no __getstate__/__reduce__ to exclude them from pickling"
    )

    def check(self, repo: RepoIndex) -> Iterator[Finding]:
        for module in EXECUTOR_BOUNDARY_MODULES:
            entry = repo.get(module)
            if entry is None:
                continue
            yield from self._check_module(entry)

    def _check_module(self, entry: ModuleIndex) -> Iterator[Finding]:
        for class_name, node in entry.classes.items():
            attrs = _suspicious_attributes(node)
            if not attrs:
                continue
            methods = {
                stmt.name
                for stmt in node.body
                if isinstance(stmt, ast.FunctionDef)
            }
            if methods & {"__getstate__", "__reduce__", "__reduce_ex__"}:
                continue
            names = ", ".join(sorted({name for name, _ in attrs}))
            yield self.finding(
                entry,
                node,
                class_name,
                f"class {class_name} crosses the executor boundary with "
                f"cache-like attributes ({names}) and default pickling; "
                "add __getstate__/__setstate__ (or __reduce__) so workers "
                "rebuild per-process state instead of shipping it "
                "(see HLH1.__getstate__)",
            )


class RegistryValueNotModuleLevel(Rule):
    id = "EP003"
    summary = (
        "dispatch-registry value must be a module-level callable "
        "(registries feed cross-process dispatch)"
    )

    def check(self, repo: RepoIndex) -> Iterator[Finding]:
        for entry in repo:
            nested = _nested_def_names(entry)
            for node in entry.tree.body:
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                names = [t.id for t in targets if isinstance(t, ast.Name)]
                if not any(name in CALLABLE_REGISTRIES for name in names):
                    continue
                value = node.value
                if not isinstance(value, ast.Dict):
                    continue
                registry_name = next(n for n in names if n in CALLABLE_REGISTRIES)
                for entry_value in value.values:
                    yield from self._check_value(entry, registry_name, entry_value, nested)

    def _check_value(
        self,
        entry: ModuleIndex,
        registry_name: str,
        node: ast.expr,
        nested: set[str],
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                yield from self._check_value(entry, registry_name, element, nested)
            return
        if isinstance(node, ast.Constant):
            return  # metadata entries (labels, descriptions) are fine
        problem = _describe_callable_problem(entry, node, nested)
        if problem is not None:
            symbol = getattr(node, "id", None) or registry_name
            yield self.finding(
                entry,
                node,
                f"{registry_name}.{symbol}",
                f"registry {registry_name} value: {problem}",
            )
