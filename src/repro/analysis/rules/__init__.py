"""The contract-rule registry.

``ALL_RULES`` is the ordered tuple of rule *classes* the engine
instantiates per run; ordering only affects report layout (findings are
sorted by location anyway).  Adding a rule = appending it here.
"""

from repro.analysis.rules.base import Rule
from repro.analysis.rules.compute_twin import (
    FunctionScopeNumpyImport,
    ModuleScopeNumpyImport,
)
from repro.analysis.rules.obs_overhead import DirectObsAccess
from repro.analysis.rules.picklability import (
    BoundaryClassShipsCaches,
    NonPicklableTaskCallable,
    RegistryValueNotModuleLevel,
)
from repro.analysis.rules.registry_conformance import (
    DunderAllResolves,
    FrontendKernelRegistry,
    ImportTargetResolves,
    Step2KernelRegistry,
)
from repro.analysis.rules.thread_safety import UnguardedSharedMutation

ALL_RULES: tuple[type[Rule], ...] = (
    ModuleScopeNumpyImport,
    FunctionScopeNumpyImport,
    NonPicklableTaskCallable,
    BoundaryClassShipsCaches,
    RegistryValueNotModuleLevel,
    UnguardedSharedMutation,
    DirectObsAccess,
    Step2KernelRegistry,
    FrontendKernelRegistry,
    DunderAllResolves,
    ImportTargetResolves,
)

__all__ = ["ALL_RULES", "Rule"]
