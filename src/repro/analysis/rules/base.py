"""Rule interface and the shared scoping configuration.

A rule is a stateless object with an ``id``, a one-line ``summary``, and
a ``check(repo)`` generator yielding :class:`~repro.analysis.findings.Finding`
objects.  Rules never parse files themselves -- they read the
:class:`~repro.analysis.index.RepoIndex` built once per run.

The module-path constants below pin each contract to the part of the
tree where it is load-bearing; they are ordinary data so tests can
exercise rules against fixture trees with the same scoping.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.index import ModuleIndex, RepoIndex

#: The one module allowed to import numpy: the compute-backend registry.
COMPUTE_REGISTRY_MODULE = "repro.core.config"

#: Packages whose hot paths must use the guarded obs helpers only.
OBS_HOT_PACKAGES = (
    "repro.core",
    "repro.streaming",
    "repro.transform",
    "repro.multigrain",
)

#: Packages reachable from ``ThreadExecutor`` task paths: module-level
#: mutable state here must be ``threading.local``, lock-guarded, or
#: explicitly suppressed/baselined with a justification.
THREAD_SHARED_PACKAGES = (
    "repro.core",
    "repro.events",
    "repro.transform",
    "repro.streaming",
    "repro.symbolic",
    "repro.multigrain",
    "repro.obs",
    "repro.metrics",
)

#: Modules whose classes cross the executor boundary inside
#: ``LevelContext`` / ``HierarchicalContext`` / ``GroupOutcome`` payloads.
EXECUTOR_BOUNDARY_MODULES = (
    "repro.core.stpm",
    "repro.core.hlh",
    "repro.core.supportset",
    "repro.core.instance_index",
    "repro.core.pattern",
    "repro.transform.sequence_db",
    "repro.events.event",
    "repro.events.sequence",
    "repro.multigrain.engine",
    "repro.resilience.policy",
    "repro.resilience.faults",
)

#: Module-scope registries whose values ship (or are dispatched) across
#: process boundaries and therefore must hold module-level callables.
CALLABLE_REGISTRIES = (
    "_KERNEL_FUNCTIONS",
    "MINERS",
    "DATASET_BUILDERS",
    "EXPERIMENTS",
)

#: Attribute-name heuristic of "per-process cache state" on classes that
#: cross the executor boundary (EP002).
CACHE_ATTR_MARKERS = ("cache", "cached", "column", "memo", "intern")


class Rule:
    """One contract check."""

    #: Stable identifier, e.g. ``CT001`` (what suppressions/baselines name).
    id = "XX000"
    #: One-line description shown by ``--list-rules`` and the docs.
    summary = ""

    def check(self, repo: RepoIndex) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, entry: ModuleIndex, node_or_line, symbol: str, message: str
    ) -> Finding:
        """Build a finding anchored at an AST node (or a bare line number)."""
        if isinstance(node_or_line, int):
            line, col = node_or_line, 0
        else:
            line = getattr(node_or_line, "lineno", 1)
            col = getattr(node_or_line, "col_offset", 0)
        return Finding(
            path=entry.rel_path,
            line=line,
            col=col,
            rule=self.id,
            symbol=symbol,
            message=message,
        )


def in_packages(module: str, packages: tuple[str, ...]) -> bool:
    """True when ``module`` lives in (or is) one of ``packages``."""
    return any(
        module == package or module.startswith(package + ".")
        for package in packages
    )


def build_parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """Child -> parent links for ancestor queries (built per rule pass)."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _expr_mentions_lock(node: ast.expr) -> bool:
    for part in ast.walk(node):
        if isinstance(part, ast.Name) and "lock" in part.id.lower():
            return True
        if isinstance(part, ast.Attribute) and "lock" in part.attr.lower():
            return True
    return False


def guarded_by_lock(node: ast.AST, parents: dict[ast.AST, ast.AST]) -> bool:
    """True when an ancestor ``with`` statement holds something lock-like.

    The heuristic is purely lexical (a context-manager expression whose
    name mentions ``lock``), which matches the repo convention of
    ``with _LOCK:`` around shared-state mutation.
    """
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.With, ast.AsyncWith)):
            for item in current.items:
                if _expr_mentions_lock(item.context_expr):
                    return True
        current = parents.get(current)
    return False


def enclosing_function(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """The innermost function definition containing ``node``."""
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parents.get(current)
    return None
