"""RC -- kernel-registry and export-surface conformance (PRs 2/6/8).

The mining pipeline dispatches by name twice: ``STEP2_KERNELS`` selects
a ``(pair, extend)`` function pair out of ``_KERNEL_FUNCTIONS``, and
``FRONTEND_KERNELS`` selects a DSEQ builder.  Both registries are only
checked at call time, so a renamed kernel or a drifted signature
surfaces as a runtime KeyError/TypeError deep inside a worker process.
These rules move that failure to lint time, together with two export
checks: every ``__all__`` name must resolve, and every
``from repro.X import y`` against an indexed module must resolve
(scripts and benchmarks have broken silently on exactly this before).

* ``RC001``: ``STEP2_KERNELS`` entry missing from ``_KERNEL_FUNCTIONS``
  or kernel function signatures drifted apart.
* ``RC002``: ``FRONTEND_KERNELS`` entry without a ``_build_<name>``
  builder in the front-end module.
* ``RC003``: ``__all__`` name with no module binding behind it.
* ``RC101``: ``from repro.X import y`` that the indexed ``repro.X``
  cannot satisfy.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.index import ModuleIndex, RepoIndex
from repro.analysis.rules.base import Rule

_KERNEL_CONSTANTS_MODULE = "repro.core.instance_index"
_KERNEL_TABLE_MODULE = "repro.core.stpm"
_FRONTEND_MODULE = "repro.transform.sequence_db"


def _resolve_constant(repo: RepoIndex, entry: ModuleIndex, node: ast.expr) -> object:
    """Fold ``node`` to a literal, chasing one import hop for Names."""
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        if node.id in entry.constants:
            return entry.constants[node.id]
        for record in entry.imports:
            if record.alias == node.id and record.name:
                source = repo.get(record.module)
                if source is not None:
                    return source.constants.get(record.name)
        return None
    return None


def _resolve_function(
    repo: RepoIndex, entry: ModuleIndex, name: str
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """The def behind ``name`` in ``entry``, chasing one import hop."""
    node = entry.function_def(name)
    if node is not None:
        return node
    for record in entry.imports:
        if record.alias == name and record.name:
            source = repo.get(record.module)
            if source is not None:
                return source.function_def(record.name)
    return None


def _arg_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    args = node.args
    return tuple(
        a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    )


class Step2KernelRegistry(Rule):
    id = "RC001"
    summary = (
        "every STEP2_KERNELS name must map to a (pair, extend) entry in "
        "_KERNEL_FUNCTIONS with position-wise identical signatures"
    )

    def check(self, repo: RepoIndex) -> Iterator[Finding]:
        constants = repo.get(_KERNEL_CONSTANTS_MODULE)
        table_entry = repo.get(_KERNEL_TABLE_MODULE)
        if constants is None or table_entry is None:
            return
        declared = constants.constants.get("STEP2_KERNELS")
        if not isinstance(declared, tuple):
            yield self.finding(
                constants,
                1,
                "STEP2_KERNELS",
                "STEP2_KERNELS is not a foldable tuple of kernel names",
            )
            return
        table_node = _find_dict_assign(table_entry, "_KERNEL_FUNCTIONS")
        if table_node is None:
            yield self.finding(
                table_entry,
                1,
                "_KERNEL_FUNCTIONS",
                "_KERNEL_FUNCTIONS dict literal not found in repro.core.stpm",
            )
            return
        assign_line, table = table_node
        registered: dict[object, list[str]] = {}
        for key, value in zip(table.keys, table.values):
            if key is None:
                continue
            kernel = _resolve_constant(repo, table_entry, key)
            names = []
            if isinstance(value, ast.Tuple):
                names = [
                    element.id
                    for element in value.elts
                    if isinstance(element, ast.Name)
                ]
            registered[kernel] = names
        for kernel in declared:
            if kernel not in registered:
                yield self.finding(
                    table_entry,
                    assign_line,
                    str(kernel),
                    f"STEP2_KERNELS declares {kernel!r} but _KERNEL_FUNCTIONS "
                    "has no entry for it",
                )
        for kernel, names in registered.items():
            if kernel not in declared:
                yield self.finding(
                    table_entry,
                    assign_line,
                    str(kernel),
                    f"_KERNEL_FUNCTIONS registers {kernel!r} which "
                    "STEP2_KERNELS does not declare",
                )
        # Signature drift: each slot (pair / extend) must agree across kernels.
        slot_labels = ("pair kernel", "extension kernel")
        for slot, label in enumerate(slot_labels):
            reference: tuple[str, ...] | None = None
            reference_kernel: object = None
            for kernel, names in sorted(registered.items(), key=lambda kv: str(kv[0])):
                if slot >= len(names):
                    yield self.finding(
                        table_entry,
                        assign_line,
                        str(kernel),
                        f"_KERNEL_FUNCTIONS[{kernel!r}] has no {label} "
                        "(expected a (pair, extend) tuple of functions)",
                    )
                    continue
                node = _resolve_function(repo, table_entry, names[slot])
                if node is None:
                    yield self.finding(
                        table_entry,
                        assign_line,
                        names[slot],
                        f"{label} {names[slot]!r} for kernel {kernel!r} does "
                        "not resolve to a module-level function",
                    )
                    continue
                signature = _arg_names(node)
                if reference is None:
                    reference, reference_kernel = signature, kernel
                elif signature != reference:
                    yield self.finding(
                        table_entry,
                        assign_line,
                        names[slot],
                        f"{label} signature drift: {kernel!r} takes "
                        f"{list(signature)} but {reference_kernel!r} takes "
                        f"{list(reference)}; kernels must be drop-in "
                        "interchangeable",
                    )


class FrontendKernelRegistry(Rule):
    id = "RC002"
    summary = (
        "every FRONTEND_KERNELS name must have a _build_<name> builder in "
        "the sequence-db front end"
    )

    def check(self, repo: RepoIndex) -> Iterator[Finding]:
        entry = repo.get(_FRONTEND_MODULE)
        if entry is None:
            return
        declared = entry.constants.get("FRONTEND_KERNELS")
        if not isinstance(declared, tuple):
            yield self.finding(
                entry,
                1,
                "FRONTEND_KERNELS",
                "FRONTEND_KERNELS is not a foldable tuple of front-end names",
            )
            return
        for frontend in declared:
            builder = f"_build_{frontend}"
            if entry.function_def(builder) is None:
                yield self.finding(
                    entry,
                    1,
                    str(frontend),
                    f"FRONTEND_KERNELS declares {frontend!r} but the module "
                    f"defines no {builder}() dispatch target",
                )


class DunderAllResolves(Rule):
    id = "RC003"
    summary = "__all__ must only list names the module actually binds"

    def check(self, repo: RepoIndex) -> Iterator[Finding]:
        for entry in repo:
            if entry.dunder_all is None:
                continue
            for name in entry.dunder_all:
                if name in entry.bindings:
                    continue
                if repo.has_submodule(entry.module, name):
                    continue
                yield self.finding(
                    entry,
                    1,
                    name,
                    f"__all__ lists {name!r} but the module neither binds it "
                    "nor contains a submodule of that name",
                )


class ImportTargetResolves(Rule):
    id = "RC101"
    summary = (
        "from repro.X import y must resolve against the indexed module "
        "(catches renamed symbols breaking scripts/ and benchmarks/)"
    )

    def check(self, repo: RepoIndex) -> Iterator[Finding]:
        for entry in repo:
            for record in entry.imports:
                if not record.name or record.name == "*":
                    continue
                if not record.module.startswith("repro"):
                    continue
                source = repo.get(record.module)
                if source is None:
                    # Only modules inside the analyzed scope are checkable;
                    # a genuinely missing module fails at import time anyway.
                    continue
                if record.name in source.bindings:
                    continue
                if repo.has_submodule(record.module, record.name):
                    continue
                yield self.finding(
                    entry,
                    record.line,
                    record.target,
                    f"{record.module} does not bind {record.name!r}; the "
                    "import will fail at runtime",
                )


def _find_dict_assign(
    entry: ModuleIndex, name: str
) -> tuple[int, ast.Dict] | None:
    for node in entry.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == name
                    and isinstance(node.value, ast.Dict)
                ):
                    return node.lineno, node.value
    return None
