"""OB -- the zero-overhead telemetry contract (PR 7).

Hot packages (``core``, ``streaming``, ``transform``, ``multigrain``)
may only emit telemetry through the guarded helpers (``inc``,
``observe``, ``set_gauge``, ``span``): those compile to one module-flag
check when tracing is off.  Direct use of ``registry()``, or direct
construction of ``MetricRegistry`` / ``Histogram`` / ``Span``, pays
allocation and locking on every call whether or not anyone is looking,
which is exactly the overhead the obs layer promises not to add.

* ``OB001``: direct registry/Span access from a hot package.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.index import ModuleIndex, RepoIndex
from repro.analysis.rules.base import OBS_HOT_PACKAGES, Rule, in_packages

#: Names in ``repro.obs`` that hot code must not touch directly.
_FORBIDDEN_NAMES = ("registry", "MetricRegistry", "Histogram", "Span")

#: Modules the forbidden names live in.
_OBS_MODULES = ("repro.obs", "repro.obs.counters", "repro.obs.trace")


class DirectObsAccess(Rule):
    id = "OB001"
    summary = (
        "hot-path package uses the obs registry/Span directly; only the "
        "guarded helpers (inc/observe/set_gauge/span) are zero-overhead"
    )

    def check(self, repo: RepoIndex) -> Iterator[Finding]:
        for entry in repo:
            if not in_packages(entry.module, OBS_HOT_PACKAGES):
                continue
            yield from self._check_module(entry)

    def _check_module(self, entry: ModuleIndex) -> Iterator[Finding]:
        # Names bound by `from repro.obs import registry` style imports.
        direct_names: set[str] = set()
        for module in _OBS_MODULES:
            for forbidden in _FORBIDDEN_NAMES:
                direct_names |= entry.imported_name_aliases(module, forbidden)
        # Aliases bound to the obs modules themselves (`import repro.obs as obs`).
        module_aliases: set[str] = set()
        for module in _OBS_MODULES:
            module_aliases |= entry.import_aliases_of(module)

        for record in entry.imports:
            if record.module in _OBS_MODULES and record.name in _FORBIDDEN_NAMES:
                yield self.finding(
                    entry,
                    record.line,
                    record.name,
                    f"{record.name} imported from {record.module} in a "
                    "hot-path package; use the guarded helpers "
                    "(inc/observe/set_gauge/span) so disabled telemetry "
                    "costs one flag check",
                )

        for node in ast.walk(entry.tree):
            name: str | None = None
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in direct_names
            ):
                name = node.func.id
            elif (
                isinstance(node, ast.Attribute)
                and node.attr in _FORBIDDEN_NAMES
                and isinstance(node.value, ast.Name)
                and node.value.id in module_aliases
            ):
                name = node.attr
            if name is None:
                continue
            yield self.finding(
                entry,
                node,
                name,
                f"direct {name} use in a hot-path package bypasses the "
                "zero-overhead guard; route through inc/observe/"
                "set_gauge/span",
            )
