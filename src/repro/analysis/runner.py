"""Command-line front end: ``python -m repro.analysis`` / ``freqstpfts lint``.

Exit codes: 0 clean (possibly with suppressed/baselined findings),
1 live findings or errors, 2 usage/configuration problems.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import Baseline, load_baseline, write_baseline
from repro.analysis.engine import _selects, analyze, rule_summaries
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import ALL_RULES

#: Default baseline location, relative to the analyzed root.
BASELINE_FILENAME = "analysis-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static contract analyzer for the freqstpfts tree: enforces the "
            "compute-twin (CT), executor-picklability (EP), thread-safety "
            "(TS), zero-overhead-telemetry (OB), and registry-conformance "
            "(RC) invariants documented in DESIGN.md ('Static contracts')."
        ),
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root to analyze (default: current directory)",
    )
    parser.add_argument(
        "--paths",
        nargs="*",
        default=[],
        metavar="PATH",
        help=(
            "extra files/directories to analyze on top of src/repro "
            "(e.g. scripts benchmarks/_shared.py)"
        ),
    )
    parser.add_argument(
        "--select",
        nargs="*",
        default=[],
        metavar="RULE",
        help="run only the listed rule ids or families (e.g. CT001 EP002, or CT RC)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"baseline file (default: <root>/{BASELINE_FILENAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "accept all current findings into the baseline file (new "
            "entries get a FIXME justification you must fill in) and exit"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list rule ids and summaries, then exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, summary in sorted(rule_summaries().items()):
            print(f"{rule_id}  {summary}")
        return 0

    # Accept both `--select CT001 EP002` and `--select CT,EP`.
    select = [token for raw in args.select for token in raw.split(",") if token]
    unknown = [
        token
        for token in select
        if not any(_selects(token, rule.id) for rule in ALL_RULES)
    ]
    if unknown:
        print(
            "error: --select names unknown rule(s): " + ", ".join(sorted(set(unknown))),
            file=sys.stderr,
        )
        return 2

    root = Path(args.root).resolve()
    baseline_path = (
        Path(args.baseline) if args.baseline else root / BASELINE_FILENAME
    )
    try:
        baseline = Baseline() if args.no_baseline else load_baseline(baseline_path)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.write_baseline:
        from repro.analysis.engine import build_repo_index, run_rules

        repo = build_repo_index(root, args.paths)
        findings = [
            finding
            for finding in run_rules(repo)
            if not (
                (entry := repo.by_path.get(finding.path)) is not None
                and entry.suppressions.is_suppressed(finding.rule, finding.line)
            )
        ]
        count = write_baseline(baseline_path, findings, baseline)
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} to {baseline_path}")
        return 0

    try:
        result = analyze(
            root,
            extra_paths=args.paths,
            baseline=baseline,
            rules=ALL_RULES,
            select=select,
        )
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.format == "json":
        sys.stdout.write(render_json(result))
    else:
        sys.stdout.write(render_text(result, rule_summaries()))
    return 0 if result.ok else 1
