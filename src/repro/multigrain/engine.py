"""The hierarchical multi-granularity mining engine.

:class:`HierarchicalMiner` mines an entire granularity hierarchy as one
job instead of N independent ones:

1. the finest requested level is sequence-mapped from the symbolic
   database once and its event supports computed with the usual single
   DSEQ scan;
2. every coarser level whose ratio is a multiple of the finest derives
   its event supports by *folding* the fine supports
   (:meth:`~repro.core.supportset.SupportSet.coarsen` -- exact for
   events) and its granule rows by *merging* the fine rows
   (:meth:`~repro.transform.sequence_db.TemporalSequenceDatabase.coarsen`),
   never re-walking the raw symbol stream;
3. the cross-level screening (:mod:`repro.multigrain.screening`)
   evaluates each coarse level's candidate gate on the folded supports
   first, so rows are derived only for the granules some candidate event
   actually supports;
4. the levels are dispatched as independent tasks through the pluggable
   :class:`~repro.core.executor.MiningExecutor` backends and mined with
   E-STPM or A-STPM.

Each level's :class:`~repro.core.results.MiningResult` is equivalent to
mining that level standalone (same patterns, same supports / near sets /
seasons) -- the parity tests assert this on all seed datasets for both
support backends.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.core.approximate import ASTPM
from repro.core.config import MiningParams
from repro.core.executor import (
    MiningExecutor,
    SerialExecutor,
    executor_scope,
    get_task_context,
)
from repro.core.prune import PruningConfig
from repro.core.stpm import ESTPM
from repro.core.supportset import default_backend, validate_backend
from repro.exceptions import ConfigError, MiningError
from repro.granularity.hierarchy import GranularityHierarchy
from repro.multigrain.result import GranularityLevel, MultiGranularityResult
from repro.resilience.policy import FailedTask
from repro.multigrain.screening import screen_level
from repro.obs import counters as metrics
from repro.obs.trace import span
from repro.symbolic.database import SymbolicDatabase
from repro.transform.sequence_db import (
    TemporalSequenceDatabase,
    build_sequence_database,
)

MINER_EXACT = "exact"
MINER_APPROXIMATE = "approximate"
MINER_KINDS = (MINER_EXACT, MINER_APPROXIMATE)

#: ``fold`` derives coarse levels from the finest; ``rebuild`` re-maps
#: every level from the symbolic database (the pre-hierarchical baseline,
#: kept for the EXT4 benchmark and differential testing).
STRATEGY_FOLD = "fold"
STRATEGY_REBUILD = "rebuild"
STRATEGIES = (STRATEGY_FOLD, STRATEGY_REBUILD)


def resolve_level_params(
    ratio: int,
    n_sequences: int,
    max_period_pct: float,
    min_density_pct: float,
    dist_interval: tuple[int, int],
    min_season: int,
    max_pattern_length: int = 3,
    legacy_dist_floor: bool = False,
) -> MiningParams:
    """Resolve the shared hierarchy configuration against one level.

    ``dist_interval`` is expressed in *fine* granules; each level converts
    it to its own granule unit.  The lower bound floors (a season gap that
    was legal at the fine level must stay legal) and the upper bound
    *ceils*: a fine-level distance of ``d`` spans up to ``ceil(d/ratio)``
    coarse granules, so flooring it -- the pre-1.3 behavior, kept behind
    ``legacy_dist_floor`` for parity testing -- silently rejected season
    distances that were valid at the fine level.
    """
    dist_min = dist_interval[0] // ratio
    if legacy_dist_floor:
        dist_max = dist_interval[1] // ratio
    else:
        dist_max = math.ceil(dist_interval[1] / ratio)
    return MiningParams.from_percentages(
        n_granules=n_sequences,
        max_period_pct=max_period_pct,
        min_density_pct=min_density_pct,
        dist_interval=(dist_min, max(dist_min, dist_max)),
        min_season=min_season,
        max_pattern_length=max_pattern_length,
    )


# ---------------------------------------------------------------------------
# Level tasks: the pure, picklable per-level unit of work
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LevelJob:
    """Everything one level task needs beyond the shared context.

    ``dseq is None`` means the task rebuilds the level from the symbolic
    database (the finest level of the ``rebuild`` strategy, or a ratio
    the fold cannot reach).
    """

    ratio: int
    n_sequences: int
    params: MiningParams
    dseq: TemporalSequenceDatabase | None
    derived_from: int | None
    n_events_screened: int = 0
    n_granules_skipped: int = 0


@dataclass(frozen=True)
class HierarchicalContext:
    """Read-only state shared by every level task of one hierarchical run."""

    jobs: tuple[LevelJob, ...]
    dsyb: SymbolicDatabase
    pruning: PruningConfig
    miner: str
    event_level: bool
    support_backend: str
    kernel: str | None = None


def mine_level_task(index: int) -> GranularityLevel:
    """Mine one hierarchy level (pure function of the installed context).

    The inner miner always runs serially: the hierarchy's own executor
    already owns the parallelism, and one level is a single task.
    """
    context: HierarchicalContext = get_task_context()
    job = context.jobs[index]
    started = time.perf_counter()
    # The span records in-process (serial/threads backends); with process
    # workers it stays in the worker while the level *counters* still
    # ship back through the executor's metric envelope.
    with span("multigrain/level", ratio=job.ratio, miner=context.miner):
        metrics.inc("multigrain.levels_mined")
        dseq = job.dseq
        if dseq is None:
            dseq = build_sequence_database(context.dsyb, job.ratio)
        if context.miner == MINER_APPROXIMATE:
            result = ASTPM(
                context.dsyb,
                job.ratio,
                job.params,
                pruning=context.pruning,
                dseq=dseq,
                event_level=context.event_level,
                support_backend=context.support_backend,
                executor=SerialExecutor(),
                kernel=context.kernel,
            ).mine()
        else:
            result = ESTPM(
                dseq,
                job.params,
                context.pruning,
                support_backend=context.support_backend,
                executor=SerialExecutor(),
                kernel=context.kernel,
            ).mine()
    return GranularityLevel(
        ratio=job.ratio,
        n_sequences=job.n_sequences,
        params=job.params,
        result=result,
        derived_from=job.derived_from,
        n_events_screened=job.n_events_screened,
        n_granules_skipped=job.n_granules_skipped,
        seconds=time.perf_counter() - started,
    )


# ---------------------------------------------------------------------------
# The hierarchical miner
# ---------------------------------------------------------------------------


@dataclass
class HierarchicalMiner:
    """Mine one symbolic database at every level of a hierarchy.

    Parameters
    ----------
    dsyb:
        The symbolic database at the finest granularity G.
    ratios:
        Sequence-mapping ratios, one per level (each must leave at least
        ``min_sequences`` complete sequences).  The smallest ratio is the
        *base* level; coarser ratios that are multiples of it are
        fold-derived, others fall back to a rebuild from DSYB.
    max_period_pct / min_density_pct:
        Table VI style percentage thresholds, re-resolved per level.
    dist_interval:
        Season distance interval *in fine granules*; converted per level
        by :func:`resolve_level_params` (floor lower bound, ceil upper).
    min_season / max_pattern_length / pruning:
        As in :class:`~repro.core.stpm.ESTPM`.
    miner:
        ``"exact"`` (E-STPM) or ``"approximate"`` (A-STPM with MI
        screening; ``event_level=True`` adds its event-level extension).
    strategy:
        ``"fold"`` (derive coarse levels, the default) or ``"rebuild"``
        (re-map every level from DSYB -- the baseline the EXT4 benchmark
        measures the fold against).
    legacy_dist_floor:
        Restore the pre-1.3 flooring of the dist upper bound.
    support_backend / executor / n_workers / kernel:
        Engine knobs; the executor dispatches *levels* (each level task
        mines serially inside), and ``kernel`` picks the step-2.2 kernel
        (``array`` / ``sweep`` / ``reference``) of every level's miner.
    strict:
        ``True`` (default): a level task that failed all its retry
        attempts aborts the run with :class:`MiningError`.  ``False``:
        quarantined levels are collected into
        ``MultiGranularityResult.failures`` and the hierarchy returns
        without them.
    checkpoint_path:
        If set, each completed level's outcome is checkpointed to this
        file (atomic, versioned, keyed by the level's *ratio* -- stable
        across reruns) and a rerun pointed at the same path resumes,
        re-mining only the unfinished levels (``freqstpfts multigrain
        --resume``).
    """

    dsyb: SymbolicDatabase
    ratios: list[int]
    max_period_pct: float = 0.4
    min_density_pct: float = 0.5
    dist_interval: tuple[int, int] = (0, 10_000)
    min_season: int = 2
    max_pattern_length: int = 3
    pruning: PruningConfig = field(default_factory=PruningConfig.all)
    min_sequences: int = 4
    miner: str = MINER_EXACT
    strategy: str = STRATEGY_FOLD
    event_level: bool = False
    legacy_dist_floor: bool = False
    support_backend: str | None = None
    executor: MiningExecutor | str | None = None
    n_workers: int | None = None
    kernel: str | None = None
    strict: bool = True
    checkpoint_path: str | None = None

    def __post_init__(self) -> None:
        if not self.ratios:
            raise ConfigError("multi-granularity mining needs at least one ratio")
        if sorted(set(self.ratios)) != sorted(self.ratios):
            raise ConfigError(f"duplicate ratios in {self.ratios}")
        if any(ratio < 1 for ratio in self.ratios):
            raise ConfigError(f"ratios must be >= 1, got {self.ratios}")
        if self.miner not in MINER_KINDS:
            raise ConfigError(
                f"unknown miner kind {self.miner!r}; choose from {MINER_KINDS}"
            )
        if self.strategy not in STRATEGIES:
            raise ConfigError(
                f"unknown strategy {self.strategy!r}; choose from {STRATEGIES}"
            )

    @classmethod
    def from_hierarchy(
        cls,
        dsyb: SymbolicDatabase,
        hierarchy: GranularityHierarchy,
        **settings,
    ) -> "HierarchicalMiner":
        """Mine every level of a :class:`GranularityHierarchy`.

        The hierarchy's finest level is taken to be the granularity of
        the DSYB itself, so level ``i`` mines at sequence-mapping ratio
        ``hierarchy.ratio(0, i)`` (level 0 at ratio 1: one symbol per
        sequence).
        """
        ratios = [hierarchy.ratio(0, index) for index in range(len(hierarchy))]
        return cls(dsyb, ratios=ratios, **settings)

    def params_for(self, ratio: int, n_sequences: int) -> MiningParams:
        """Resolve the shared configuration against one level."""
        return resolve_level_params(
            ratio=ratio,
            n_sequences=n_sequences,
            max_period_pct=self.max_period_pct,
            min_density_pct=self.min_density_pct,
            dist_interval=self.dist_interval,
            min_season=self.min_season,
            max_pattern_length=self.max_pattern_length,
            legacy_dist_floor=self.legacy_dist_floor,
        )

    def _validated_levels(self) -> list[tuple[int, int]]:
        """Ascending ``(ratio, n_sequences)`` pairs, size-checked."""
        levels: list[tuple[int, int]] = []
        for ratio in sorted(self.ratios):
            n_sequences = self.dsyb.n_instants // ratio
            if n_sequences < self.min_sequences:
                raise ConfigError(
                    f"ratio {ratio} leaves only {n_sequences} sequences "
                    f"(< {self.min_sequences}); drop it or supply more data"
                )
            levels.append((ratio, n_sequences))
        return levels

    def _build_jobs(self, backend: str) -> list[LevelJob]:
        """Plan one job per level (deriving DSEQs under the fold strategy)."""
        levels = self._validated_levels()
        jobs: list[LevelJob] = []
        if self.strategy == STRATEGY_REBUILD:
            for ratio, n_sequences in levels:
                jobs.append(
                    LevelJob(
                        ratio=ratio,
                        n_sequences=n_sequences,
                        params=self.params_for(ratio, n_sequences),
                        dseq=None,
                        derived_from=None,
                    )
                )
            return jobs

        base_ratio, base_n = levels[0]
        base_dseq = build_sequence_database(self.dsyb, base_ratio)
        base_supports = base_dseq.event_support(backend)
        jobs.append(
            LevelJob(
                ratio=base_ratio,
                n_sequences=base_n,
                params=self.params_for(base_ratio, base_n),
                dseq=base_dseq,
                derived_from=None,
            )
        )
        for ratio, n_sequences in levels[1:]:
            params = self.params_for(ratio, n_sequences)
            if ratio % base_ratio != 0:
                # Not reachable by an integer fold; rebuild this level.
                jobs.append(
                    LevelJob(
                        ratio=ratio,
                        n_sequences=n_sequences,
                        params=params,
                        dseq=None,
                        derived_from=None,
                    )
                )
                continue
            factor = ratio // base_ratio
            screening = screen_level(
                base_supports, factor, n_sequences, params, ratio
            )
            # Rows back the per-granule instance tables of step 2.2: a
            # single-event run never reads them (derive none), the default
            # apriori-gated miner reads them only for gate-passing events
            # (derive the screened granules), and with apriori pruning
            # disabled every event gets tables (derive everything -- the
            # screening gate is exactly what NoPrune turns off).
            if self.max_pattern_length < 2:
                granules: frozenset[int] | None = frozenset()
            elif self.pruning.apriori:
                granules = screening.granules
            else:
                granules = None
            dseq = base_dseq.coarsen(factor, granules=granules)
            dseq.prime_event_support(screening.supports, backend)
            jobs.append(
                LevelJob(
                    ratio=ratio,
                    n_sequences=n_sequences,
                    params=params,
                    dseq=dseq,
                    derived_from=base_ratio,
                    n_events_screened=(
                        screening.n_screened_out if self.pruning.apriori else 0
                    ),
                    n_granules_skipped=(
                        0 if granules is None else n_sequences - len(granules)
                    ),
                )
            )
        return jobs

    def _open_checkpoint(self):
        """The per-level job checkpoint, or ``None`` when not configured.

        The fingerprint binds the checkpoint to the full hierarchy
        configuration and the symbolic database's extent, so a resume
        cannot silently mix levels mined under different thresholds.
        """
        if self.checkpoint_path is None:
            return None
        # Imported lazily: repro.io's package init reaches (via the
        # archive readers) back into this package.
        from repro.io.job_checkpoint import JobCheckpoint

        return JobCheckpoint(
            self.checkpoint_path,
            {
                "job": "multigrain",
                "ratios": sorted(self.ratios),
                "miner": self.miner,
                "strategy": self.strategy,
                "max_period_pct": self.max_period_pct,
                "min_density_pct": self.min_density_pct,
                "dist_interval": list(self.dist_interval),
                "min_season": self.min_season,
                "max_pattern_length": self.max_pattern_length,
                "event_level": self.event_level,
                "n_instants": self.dsyb.n_instants,
            },
        )

    def mine(self) -> MultiGranularityResult:
        """Mine every level and align the results across the hierarchy.

        The executor dispatches the level tasks of this hierarchy; a
        pool-backed *instance* passed by the caller keeps its workers
        alive across consecutive hierarchies (pool reuse), while a backend
        resolved from a name lives exactly as long as this job.

        With ``checkpoint_path`` set, levels already present in the
        checkpoint are not re-mined (their recorded outcome is used,
        counted in ``resume.tasks_skipped``) and every freshly completed
        level is recorded, so a killed run resumes at the level it died
        on.  A level task that fails all its retry attempts is
        quarantined (strict runs raise; see ``strict``).
        """
        backend = validate_backend(self.support_backend or default_backend())
        checkpoint = self._open_checkpoint()
        failures: list = []
        with span(
            "multigrain/mine", miner=self.miner, levels=len(self.ratios)
        ) as mine_span:
            with span("multigrain/build_jobs"):
                jobs = self._build_jobs(backend)
            context = HierarchicalContext(
                jobs=tuple(jobs),
                dsyb=self.dsyb,
                pruning=self.pruning,
                miner=self.miner,
                event_level=self.event_level,
                support_backend=backend,
                kernel=self.kernel,
            )
            # Checkpoint keys are the level *ratios*: stable across
            # reruns, unlike task list positions, which renumber once
            # completed levels are skipped.
            keys = [f"ratio:{job.ratio}" for job in jobs]
            if checkpoint is None:
                pending = list(range(len(jobs)))
            else:
                pending = [
                    index for index, key in enumerate(keys)
                    if key not in checkpoint
                ]
                skipped = len(jobs) - len(pending)
                if skipped:
                    metrics.inc("resume.tasks_skipped", skipped)
            levels: list[GranularityLevel] = [
                checkpoint.get(keys[index])
                for index in range(len(jobs))
                if index not in set(pending)
            ]
            if pending:
                with executor_scope(self.executor, self.n_workers) as runner:
                    for index, outcome in zip(
                        pending,
                        runner.map_tasks(mine_level_task, pending, context),
                    ):
                        if isinstance(outcome, FailedTask):
                            failures.append(outcome)
                            continue
                        levels.append(outcome)
                        if checkpoint is not None:
                            checkpoint.record(keys[index], outcome)
            if checkpoint is not None:
                checkpoint.flush()
            mine_span.set(
                patterns=sum(len(level.result) for level in levels),
                failures=len(failures),
            )
        if failures and self.strict:
            raise MiningError(
                f"{len(failures)} level task(s) failed after retries: "
                + "; ".join(f.describe() for f in failures)
                + " (run with strict=False to keep the partial hierarchy, "
                "or --resume the checkpoint)"
            )
        return MultiGranularityResult(levels=levels, failures=failures)
