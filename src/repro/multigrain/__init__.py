"""Hierarchical multi-granularity mining (the paper's contribution (1)).

FreqSTPfTS mines seasonal temporal patterns *at different data
granularities*: the same symbolic database can be sequence-mapped with
different ratios (5-minute granules into 15-minute, 1-hour, or 1-day
sequences) and mined at each level of the granularity hierarchy.  This
package turns that from a loop over independent jobs into one
hierarchical job:

* :mod:`repro.multigrain.screening` -- fold-derived coarse event supports
  (:meth:`~repro.core.supportset.SupportSet.coarsen` is exact for events)
  and the cross-level candidacy screening built on them;
* :mod:`repro.multigrain.engine` -- :class:`HierarchicalMiner`, which
  builds the finest level once, derives every coarser level's supports
  and granule rows from it, and dispatches the levels as independent
  tasks through the pluggable executors;
* :mod:`repro.multigrain.result` -- :class:`MultiGranularityResult`,
  aligning the frequent patterns across levels ("which patterns persist
  from hourly to daily?").

Each level's result is equivalent to mining that level standalone
(``results_equivalent``); the fold-derived path just never re-walks the
raw symbol stream per level.
"""

from repro.multigrain.engine import (
    MINER_APPROXIMATE,
    MINER_EXACT,
    MINER_KINDS,
    STRATEGIES,
    STRATEGY_FOLD,
    STRATEGY_REBUILD,
    HierarchicalMiner,
    resolve_level_params,
)
from repro.multigrain.result import GranularityLevel, MultiGranularityResult
from repro.multigrain.screening import LevelScreening, screen_level

__all__ = [
    "HierarchicalMiner",
    "GranularityLevel",
    "MultiGranularityResult",
    "LevelScreening",
    "screen_level",
    "resolve_level_params",
    "MINER_EXACT",
    "MINER_APPROXIMATE",
    "MINER_KINDS",
    "STRATEGY_FOLD",
    "STRATEGY_REBUILD",
    "STRATEGIES",
]
