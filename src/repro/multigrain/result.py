"""Cross-level alignment of multi-granularity mining results.

Pattern identity (the event tuple plus relation triples) is granularity
independent -- ``WindSpeed:High contains WindPower:High`` means the same
thing whether the sequences are hourly or daily, only the seasonal
evidence differs.  :class:`MultiGranularityResult` exploits that to
answer the cross-granularity questions the per-level loop never could:
which patterns persist across every level, which exist only at the
finest, and how a pattern's season count changes as the data coarsens.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import MiningParams
from repro.core.pattern import TemporalPattern
from repro.core.results import MiningResult, SeasonalPattern
from repro.exceptions import ConfigError
from repro.resilience.policy import FailedTask


@dataclass(frozen=True)
class GranularityLevel:
    """The outcome of mining one hierarchy level.

    ``derived_from`` names the ratio whose DSEQ/supports this level was
    fold-derived from (``None``: built directly from the symbolic
    database).  ``n_events_screened`` counts the events the cross-level
    screening discarded before any row of this level was derived;
    ``n_granules_skipped`` the rows it never materialized.
    """

    ratio: int
    n_sequences: int
    params: MiningParams
    result: MiningResult
    derived_from: int | None = None
    n_events_screened: int = 0
    n_granules_skipped: int = 0
    seconds: float = 0.0


@dataclass
class MultiGranularityResult:
    """All levels of one hierarchical mining run, finest first.

    ``failures`` lists the quarantined level tasks of a non-strict run
    (see :class:`~repro.core.results.MiningResult.failures`); a strict
    hierarchical run raises instead, so a populated list always marks a
    knowingly partial hierarchy.
    """

    levels: list[GranularityLevel]
    failures: list[FailedTask] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.levels = sorted(self.levels, key=lambda level: level.ratio)

    @property
    def complete(self) -> bool:
        """True when no level task was quarantined."""
        return not self.failures

    def __len__(self) -> int:
        return len(self.levels)

    def __iter__(self):
        return iter(self.levels)

    @property
    def ratios(self) -> list[int]:
        """The mined sequence-mapping ratios, ascending."""
        return [level.ratio for level in self.levels]

    @property
    def finest(self) -> GranularityLevel:
        """The finest mined level."""
        return self.levels[0]

    @property
    def total_seconds(self) -> float:
        """Summed per-level mining wall clock."""
        return sum(level.seconds for level in self.levels)

    def level(self, ratio: int) -> GranularityLevel:
        """The level mined at ``ratio``."""
        for candidate in self.levels:
            if candidate.ratio == ratio:
                return candidate
        raise ConfigError(
            f"no level mined at ratio {ratio}; available: {self.ratios}"
        )

    # ------------------------------------------------------------------
    # Cross-level pattern alignment
    # ------------------------------------------------------------------

    def persistence(self) -> dict[TemporalPattern, tuple[int, ...]]:
        """Every frequent pattern -> the ratios at which it is frequent.

        The cross-granularity fingerprint of the run: patterns mapping to
        every ratio are granularity robust, patterns mapping to one are
        granularity artifacts.
        """
        table: dict[TemporalPattern, list[int]] = {}
        for level in self.levels:
            for sp in level.result.patterns:
                table.setdefault(sp.pattern, []).append(level.ratio)
        return {pattern: tuple(ratios) for pattern, ratios in table.items()}

    def persistent_patterns(self, *ratios: int) -> list[TemporalPattern]:
        """Patterns frequent at *all* the given ratios (default: every level).

        This answers "which patterns persist from hourly to daily?":
        ``persistent_patterns(1, 24)``.
        """
        required = set(ratios) if ratios else set(self.ratios)
        unknown = required - set(self.ratios)
        if unknown:
            raise ConfigError(
                f"ratios {sorted(unknown)} were not mined; available: {self.ratios}"
            )
        return sorted(
            (
                pattern
                for pattern, present in self.persistence().items()
                if required <= set(present)
            ),
            key=lambda pattern: (pattern.size, pattern.events, pattern.triples),
        )

    def exclusive_patterns(self, ratio: int) -> list[TemporalPattern]:
        """Patterns frequent at ``ratio`` and nowhere else."""
        self.level(ratio)
        return sorted(
            (
                pattern
                for pattern, present in self.persistence().items()
                if present == (ratio,)
            ),
            key=lambda pattern: (pattern.size, pattern.events, pattern.triples),
        )

    def seasonal_trajectory(
        self, pattern: TemporalPattern
    ) -> dict[int, SeasonalPattern]:
        """One pattern's seasonal evidence per ratio where it is frequent."""
        trajectory: dict[int, SeasonalPattern] = {}
        for level in self.levels:
            for sp in level.result.patterns:
                if sp.pattern == pattern:
                    trajectory[level.ratio] = sp
                    break
        return trajectory

    def describe(self, limit: int = 10) -> str:
        """Readable multi-level report: per-level counts + persistence."""
        lines = []
        for level in self.levels:
            origin = (
                f"fold-derived from ratio {level.derived_from}"
                if level.derived_from is not None
                else "built from DSYB"
            )
            lines.append(
                f"ratio {level.ratio:4d}: {level.n_sequences:5d} sequences, "
                f"{len(level.result):4d} frequent patterns "
                f"({origin}, {level.n_events_screened} events screened, "
                f"{level.seconds:.2f}s)"
            )
        persistent = self.persistent_patterns()
        lines.append(
            f"{len(persistent)} patterns persist across all "
            f"{len(self.levels)} levels"
        )
        for pattern in persistent[:limit]:
            seasons = {
                ratio: sp.n_seasons
                for ratio, sp in self.seasonal_trajectory(pattern).items()
            }
            rendered = ", ".join(f"x{r}:{n}" for r, n in sorted(seasons.items()))
            lines.append(f"  {pattern.describe():55s} seasons {rendered}")
        if len(persistent) > limit:
            lines.append(f"  ... and {len(persistent) - limit} more")
        return "\n".join(lines)
