"""Cross-level event screening from fold-derived supports.

Soundness argument
------------------
An event occurs in a coarse granule ``Hq`` iff it occurs in at least one
of the ``f`` fine granules ``Hq`` covers -- the sequence mapping merges
runs but never creates or destroys event occurrences.  Folding a fine
event support with :meth:`~repro.core.supportset.SupportSet.coarsen`
therefore yields *exactly* the support a coarse-level DSEQ scan would
recompute (asserted by the hypothesis property tests).

Because the fold is exact, each coarse level's maxSeason candidate gate
(Eq. (1): ``|SUP_E| / minDensity >= minSeason``) can be evaluated from
the folded supports alone, before any of that level's granule rows
exist.  The batch miner materializes per-granule instance tables only
for gate-passing events (``ESTPM._mine_single_events`` checks the gate
first), so granules touched by no candidate event are never read during
mining -- screening them out of the row derivation cannot change the
result, only skip work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MiningParams
from repro.core.seasonality import is_candidate
from repro.core.supportset import SupportSet


@dataclass(frozen=True)
class LevelScreening:
    """What the fold-based screening decided for one coarse level.

    Attributes
    ----------
    ratio:
        The level's sequence-mapping ratio (fine granules per sequence).
    n_sequences:
        Length of the level's DSEQ.
    supports:
        Folded (exact) support per event occurring at this level.
    candidates:
        Events passing the level's maxSeason candidate gate.
    granules:
        Union of the candidates' supports -- the only coarse positions
        whose rows mining can touch, hence the only ones worth deriving.
    """

    ratio: int
    n_sequences: int
    supports: dict[str, SupportSet]
    candidates: frozenset[str]
    granules: frozenset[int]

    @property
    def n_events(self) -> int:
        """Distinct events occurring at this level."""
        return len(self.supports)

    @property
    def n_screened_out(self) -> int:
        """Events whose coarse gate failed before any row was derived."""
        return len(self.supports) - len(self.candidates)

    @property
    def n_granules_skipped(self) -> int:
        """Coarse granules whose rows never need materializing."""
        return self.n_sequences - len(self.granules)


def screen_level(
    fine_supports: dict[str, SupportSet],
    factor: int,
    n_sequences: int,
    params: MiningParams,
    ratio: int,
) -> LevelScreening:
    """Fold the finest level's event supports and apply the coarse gate.

    ``fine_supports`` are the finest level's per-event supports;
    ``factor`` is the ratio between the two levels; ``n_sequences`` caps
    the folded positions (the trailing partial block is dropped, matching
    the sequence mapping).  Events whose folded support is empty occur
    only in that dropped block and do not exist at the coarse level.
    """
    supports: dict[str, SupportSet] = {}
    candidates: set[str] = set()
    granules: set[int] = set()
    for event, support in fine_supports.items():
        folded = support.coarsen(factor, n_sequences)
        if not folded:
            continue
        supports[event] = folded
        if is_candidate(len(folded), params):
            candidates.add(event)
            granules.update(folded)
    return LevelScreening(
        ratio=ratio,
        n_sequences=n_sequences,
        supports=supports,
        candidates=frozenset(candidates),
        granules=frozenset(granules),
    )
