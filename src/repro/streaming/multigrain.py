"""Multi-granularity streaming: several incremental miners off one ingest.

A deployment that watches a stream at hourly, daily, *and* weekly
granularity should not run three ingestion pipelines.
:class:`MultiGrainStreamingService` feeds one
:class:`~repro.streaming.ingest.StreamingDatabase` (at the finest
requested ratio) and maintains one
:class:`~repro.streaming.incremental.IncrementalSTPM` per ratio: each
coarser level's granule rows are *derived* by merging the finest level's
rows (:func:`~repro.transform.sequence_db.merge_sequences` -- the same
fold the batch :class:`~repro.multigrain.HierarchicalMiner` uses), so raw
points are symbolized and run-grouped exactly once per arrival.

Every level inherits the incremental miner's hard batch-parity guarantee:
after any push, ``result(ratio)`` equals batch E-STPM over the coarse
DSEQ of the consumed prefix (``verify_parity()`` asserts it per level).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import MiningParams
from repro.core.results import MiningResult, SeasonalPattern
from repro.exceptions import MiningError
from repro.streaming.incremental import IncrementalSTPM, PatternDelta
from repro.streaming.ingest import StreamingDatabase, StreamingSymbolizer
from repro.transform.sequence_db import (
    TemporalSequenceDatabase,
    merge_sequences,
)


class _CoarseLevel:
    """One derived level: a growing coarse DSEQ plus its incremental miner."""

    def __init__(
        self,
        ratio: int,
        factor: int,
        params: MiningParams,
        support_backend: str | None,
        reanchor_every: int | None,
        kernel: str | None = None,
    ):
        self.ratio = ratio
        self.factor = factor
        self.dseq = TemporalSequenceDatabase(rows=[], ratio=ratio)
        self.miner = IncrementalSTPM(
            self.dseq,
            params,
            support_backend=support_backend,
            reanchor_every=reanchor_every,
            kernel=kernel,
        )

    def advance(self, fine_dseq: TemporalSequenceDatabase) -> PatternDelta:
        """Fold every newly completed group of fine rows, then mine."""
        n_available = len(fine_dseq) // self.factor
        while len(self.dseq) < n_available:
            position = len(self.dseq) + 1
            start = (position - 1) * self.factor
            self.dseq.append_row(
                merge_sequences(
                    fine_dseq.rows[start : start + self.factor], position
                )
            )
        return self.miner.advance()


class MultiGrainStreamingService:
    """One live stream mined at several granularities simultaneously.

    Parameters
    ----------
    database:
        The streaming DSEQ at the *base* ratio (the finest level).
    params_by_ratio:
        Seasonal thresholds per sequence-mapping ratio.  Every key must
        be the base ratio or a multiple of it; the base ratio itself is
        always mined (its params are required).  Thresholds are absolute
        per level -- resolve percentage thresholds against each level's
        expected horizon, e.g. via
        :func:`repro.multigrain.resolve_level_params`.
    symbolizer:
        Optional online symbolizer; required for :meth:`push` (raw
        points).  :meth:`push_symbols` works without one.
    support_backend / reanchor_every / kernel:
        Forwarded to every level's :class:`IncrementalSTPM`.
    """

    def __init__(
        self,
        database: StreamingDatabase,
        params_by_ratio: dict[int, MiningParams],
        symbolizer: StreamingSymbolizer | None = None,
        support_backend: str | None = None,
        reanchor_every: int | None = None,
        kernel: str | None = None,
    ):
        base = database.ratio
        if base not in params_by_ratio:
            raise MiningError(
                f"params_by_ratio must include the base ratio {base}; "
                f"got ratios {sorted(params_by_ratio)}"
            )
        self.database = database
        self.symbolizer = symbolizer
        self.base_ratio = base
        self.base_miner = IncrementalSTPM(
            database.dseq,
            params_by_ratio[base],
            support_backend=support_backend,
            reanchor_every=reanchor_every,
            kernel=kernel,
        )
        self._coarse: dict[int, _CoarseLevel] = {}
        for ratio in sorted(params_by_ratio):
            if ratio == base:
                continue
            if ratio % base != 0:
                raise MiningError(
                    f"ratio {ratio} is not a multiple of the base ratio {base}; "
                    "coarse streaming levels are derived by folding base granules"
                )
            self._coarse[ratio] = _CoarseLevel(
                ratio=ratio,
                factor=ratio // base,
                params=params_by_ratio[ratio],
                support_backend=support_backend,
                reanchor_every=reanchor_every,
                kernel=kernel,
            )
        # Consume anything already materialized (warm starts).
        if len(database.dseq):
            self._advance_all()

    @property
    def ratios(self) -> list[int]:
        """All mined ratios, ascending (base first)."""
        return [self.base_ratio] + sorted(self._coarse)

    def _level_miner(self, ratio: int) -> IncrementalSTPM:
        if ratio == self.base_ratio:
            return self.base_miner
        try:
            return self._coarse[ratio].miner
        except KeyError:
            raise MiningError(
                f"no streaming level at ratio {ratio}; available: {self.ratios}"
            ) from None

    def _advance_all(self) -> dict[int, PatternDelta]:
        deltas = {self.base_ratio: self.base_miner.advance()}
        for ratio, level in self._coarse.items():
            deltas[ratio] = level.advance(self.database.dseq)
        return deltas

    def push(self, points: dict[str, Sequence[float]]) -> dict[int, PatternDelta]:
        """Ingest raw points and mine every completed granule at every level."""
        if self.symbolizer is None:
            raise MiningError(
                "this stream has no symbolizer; push symbols via push_symbols()"
            )
        return self.push_symbols(self.symbolizer.push(points))

    def push_symbols(
        self, symbols: dict[str, Sequence[str] | str]
    ) -> dict[int, PatternDelta]:
        """Ingest already-symbolic values; returns one delta per ratio."""
        self.database.append_symbols(symbols)
        return self._advance_all()

    def n_granules(self, ratio: int) -> int:
        """Granules mined so far at ``ratio``."""
        return self._level_miner(ratio).n_granules

    def result(self, ratio: int) -> MiningResult:
        """The full mining result of one level."""
        return self._level_miner(ratio).result()

    def results(self) -> dict[int, MiningResult]:
        """The full mining result of every level, keyed by ratio."""
        return {ratio: self._level_miner(ratio).result() for ratio in self.ratios}

    def border_patterns(self, ratio: int) -> list[SeasonalPattern]:
        """One level's candidates one season short of promotion."""
        return self._level_miner(ratio).border_patterns()

    def verify_parity(self) -> dict[int, MiningResult]:
        """Assert batch equivalence for every level; returns batch results."""
        return {
            ratio: self._level_miner(ratio).verify_parity()
            for ratio in self.ratios
        }
