"""The long-lived streaming mining service: ingest, mine, checkpoint.

:class:`StreamingMiningService` wires the online pipeline end to end --
raw points through a :class:`~repro.streaming.ingest.StreamingSymbolizer`
into a :class:`~repro.streaming.ingest.StreamingDatabase`, whose new
granules feed an :class:`~repro.streaming.incremental.IncrementalSTPM` --
and adds the operational concerns a deployment needs: durable
checkpoints (via the :mod:`repro.io` layer) and dataset replay (the
harness / benchmark entry point that turns any registered dataset into a
stream).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Sequence

from repro.core.config import MiningParams
from repro.core.results import MiningResult, SeasonalPattern
from repro.exceptions import MiningError
from repro.streaming.incremental import IncrementalSTPM, PatternDelta
from repro.streaming.ingest import StreamingDatabase, StreamingSymbolizer


class StreamingMiningService:
    """One live mining stream: push points or symbols, read pattern deltas.

    Parameters
    ----------
    database:
        The streaming DSEQ being fed (fixes the series set and ratio).
    params:
        Seasonal thresholds, identical semantics to batch E-STPM.
    symbolizer:
        Optional online symbolizer; required for :meth:`push` (raw
        points).  :meth:`push_symbols` works without one.
    support_backend / reanchor_every / kernel:
        Forwarded to :class:`IncrementalSTPM`.
    checkpoint_path / checkpoint_every:
        Durable autosave: with both set, the service checkpoints itself
        (atomically -- a crash mid-save keeps the previous checkpoint)
        after every ``checkpoint_every``-th granule-completing push, so
        a killed stream restarts from its last autosave via
        :meth:`restore` instead of from scratch.  ``checkpoint_path``
        alone enables manual :meth:`save_checkpoint` to a default path.
    """

    def __init__(
        self,
        database: StreamingDatabase,
        params: MiningParams,
        symbolizer: StreamingSymbolizer | None = None,
        support_backend: str | None = None,
        reanchor_every: int | None = None,
        kernel: str | None = None,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int | None = None,
    ):
        if checkpoint_every is not None and checkpoint_every < 1:
            raise MiningError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if checkpoint_every is not None and checkpoint_path is None:
            raise MiningError(
                "checkpoint_every needs a checkpoint_path to write to"
            )
        self.checkpoint_path = None if checkpoint_path is None else Path(checkpoint_path)
        self.checkpoint_every = checkpoint_every
        self._granules_since_checkpoint = 0
        self.database = database
        self.symbolizer = symbolizer
        if symbolizer is not None:
            # Inherit the symbolizer's alphabets so a database that was
            # constructed without any (and would otherwise be lazily
            # seeded by its first push, skipping symbol validation)
            # validates every pushed symbol.  Registration never touches
            # the series set -- the first push still fixes it, so a stream
            # carrying only a subset of the symbolizer's series keeps
            # forming granules -- and alphabets for series this stream
            # does not carry are irrelevant and skipped.
            database.register_alphabets(symbolizer.alphabets, ignore_unknown=True)
        self.miner = IncrementalSTPM(
            database.dseq,
            params,
            support_backend=support_backend,
            reanchor_every=reanchor_every,
            kernel=kernel,
        )
        # Consume anything already materialized (warm starts / restores).
        if len(database.dseq):
            self.miner.advance()

    @property
    def params(self) -> MiningParams:
        """The stream's mining thresholds."""
        return self.miner.params

    @property
    def n_granules(self) -> int:
        """Granules mined so far."""
        return self.miner.n_granules

    def push(self, points: dict[str, Sequence[float]]) -> PatternDelta:
        """Ingest raw points per series and mine the completed granules."""
        if self.symbolizer is None:
            raise MiningError(
                "this stream has no symbolizer; push symbols via push_symbols()"
            )
        return self.push_symbols(self.symbolizer.push(points))

    def push_symbols(
        self, symbols: dict[str, Sequence[str] | str]
    ) -> PatternDelta:
        """Ingest already-symbolic values and mine the completed granules."""
        before = self.miner.n_granules
        self.database.append_symbols(symbols)
        delta = self.miner.advance()
        self._maybe_autosave(self.miner.n_granules - before)
        return delta

    def _maybe_autosave(self, new_granules: int) -> None:
        """Checkpoint after every ``checkpoint_every`` mined granules."""
        if self.checkpoint_every is None or new_granules <= 0:
            return
        self._granules_since_checkpoint += new_granules
        if self._granules_since_checkpoint >= self.checkpoint_every:
            self.save_checkpoint(self.checkpoint_path)
            self._granules_since_checkpoint = 0

    def result(self) -> MiningResult:
        """The full mining result over everything streamed so far."""
        return self.miner.result()

    def border_patterns(self) -> list[SeasonalPattern]:
        """Candidates one season short of promotion (the watch list)."""
        return self.miner.border_patterns()

    def verify_parity(self) -> MiningResult:
        """Assert equivalence against a fresh batch E-STPM run."""
        return self.miner.verify_parity()

    # ------------------------------------------------------------------
    # Checkpointing (see repro.io.stream_checkpoint for the format)
    # ------------------------------------------------------------------

    def save_checkpoint(self, path: str | Path | None = None) -> str:
        """Persist the stream as JSON; returns the payload text.

        ``path`` defaults to the service's ``checkpoint_path``; with
        neither set the payload is returned without being written.
        """
        from repro.io.stream_checkpoint import save_stream_checkpoint

        return save_stream_checkpoint(self, path or self.checkpoint_path)

    @classmethod
    def restore(cls, path: str | Path) -> "StreamingMiningService":
        """Rebuild a service from a checkpoint written by :meth:`save_checkpoint`.

        The symbol history is replayed through a fresh miner in one
        catch-up advance, reconstructing the exact pre-checkpoint state
        (the state is a deterministic function of the symbol stream).
        """
        from repro.io.stream_checkpoint import load_stream_checkpoint

        return load_stream_checkpoint(path)


def replay_dataset(
    dataset,
    params: MiningParams,
    batch_granules: int = 1,
    initial_granules: int | None = None,
    support_backend: str | None = None,
    reanchor_every: int | None = None,
    kernel: str | None = None,
    frontend: str | None = None,
) -> Iterator[tuple[StreamingMiningService, PatternDelta]]:
    """Replay a registered dataset's symbol stream through a live service.

    Yields ``(service, delta)`` after the initial window and after every
    subsequent batch of ``batch_granules`` granules.  This is how the CLI
    ``stream`` subcommand and the EXT3 benchmark turn the paper's batch
    datasets into streams.

    Parameters
    ----------
    dataset:
        A :class:`~repro.datasets.dataset.Dataset` (its DSYB is the
        stream source; its ratio fixes granule size).
    initial_granules:
        Granules in the warm-up window (default: one batch).
    """
    if batch_granules < 1:
        raise MiningError(f"batch_granules must be >= 1, got {batch_granules}")
    if initial_granules is None:
        initial_granules = batch_granules
    elif initial_granules < 1:
        raise MiningError(f"initial_granules must be >= 1, got {initial_granules}")
    database = StreamingDatabase(
        dataset.ratio,
        {series.name: series.alphabet for series in dataset.dsyb},
        frontend=frontend,
    )
    service = StreamingMiningService(
        database,
        params,
        support_backend=support_backend,
        reanchor_every=reanchor_every,
        kernel=kernel,
    )
    streams = {series.name: series.symbols for series in dataset.dsyb}
    n_instants = dataset.dsyb.n_instants
    cursor = 0
    first = True
    while cursor < n_instants:
        granules = initial_granules if first else batch_granules
        step = min(granules * dataset.ratio, n_instants - cursor)
        if step < dataset.ratio and not first:
            # A trailing partial block cannot form a granule; stop.
            break
        block = {
            name: symbols[cursor : cursor + step]
            for name, symbols in streams.items()
        }
        cursor += step
        first = False
        delta = service.push_symbols(block)
        yield service, delta
