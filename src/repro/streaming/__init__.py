"""Streaming ingestion + incremental seasonal-pattern mining.

The batch pipeline (symbolize -> DSEQ -> E-STPM) re-mines the full
database whenever data arrives.  This subsystem turns it into an online
one:

* :mod:`repro.streaming.ingest` -- online symbolization and
  granule-by-granule DSEQ growth;
* :mod:`repro.streaming.state` -- the mutable incremental miner state
  (extendable bitset supports, live HLH mirrors, border tracking);
* :mod:`repro.streaming.incremental` -- :class:`IncrementalSTPM`, whose
  ``advance()`` updates the pattern set in time proportional to the new
  granules (with bounded one-time catch-ups), with a hard batch-parity
  guarantee;
* :mod:`repro.streaming.service` -- the long-lived service wiring it all
  together, with checkpointing through the :mod:`repro.io` layer and
  dataset replay for the harness/benchmarks;
* :mod:`repro.streaming.multigrain` -- one ingest feeding an incremental
  miner per granularity ratio, coarse granules fold-derived from the
  base level's rows.
"""

from repro.streaming.incremental import (
    IncrementalSTPM,
    PatternDelta,
    canonical_sort_key,
)
from repro.streaming.ingest import (
    StreamingDatabase,
    StreamingSymbolizer,
    quantile_thresholds,
)
from repro.streaming.multigrain import MultiGrainStreamingService
from repro.streaming.service import StreamingMiningService, replay_dataset
from repro.streaming.state import MinerState

__all__ = [
    "IncrementalSTPM",
    "PatternDelta",
    "canonical_sort_key",
    "StreamingDatabase",
    "StreamingSymbolizer",
    "quantile_thresholds",
    "StreamingMiningService",
    "MultiGrainStreamingService",
    "replay_dataset",
    "MinerState",
]
