"""Online ingestion: raw points -> symbols -> DSEQ granules, incrementally.

The batch pipeline symbolizes whole series (Def. 3.5) and builds the full
DSEQ in one pass (Defs. 3.9-3.11).  Streaming deployments instead receive
a few points per series at a time; this module provides the two online
counterparts:

* :class:`StreamingSymbolizer` -- maps raw values to symbols with either
  *frozen* breakpoints (fitted once on an initial window, so history never
  re-encodes -- the mode under which the subsystem's batch-parity
  guarantee holds) or *rolling* breakpoints (re-fitted on all values seen
  so far, applied to new values only);
* :class:`StreamingDatabase` -- buffers the symbol stream per series and
  extends a live :class:`~repro.transform.sequence_db.TemporalSequenceDatabase`
  granule by granule, without ever rebuilding existing rows.  Whenever
  every series has ``ratio`` unconsumed symbols, one new temporal
  sequence is appended -- by construction identical to the row
  :func:`~repro.transform.sequence_db.build_sequence_database` would have
  produced at that position.
"""

from __future__ import annotations

from bisect import insort
from typing import Sequence

from repro.events.sequence import TemporalSequence
from repro.exceptions import SymbolizationError
from repro.symbolic.alphabet import Alphabet
from repro.symbolic.database import SymbolicDatabase
from repro.symbolic.mapping import (
    SymbolMapper,
    ThresholdMapper,
    interp_quantiles,
    quantile_breakpoints,
)
from repro.symbolic.series import TimeSeries
from repro.transform.sequence_db import (
    FRONTEND_COLUMNAR,
    TemporalSequenceDatabase,
    build_region_rows,
    default_frontend,
    granule_instances,
    validate_frontend,
)

MODE_FROZEN = "frozen"
MODE_ROLLING = "rolling"
SYMBOLIZER_MODES = (MODE_FROZEN, MODE_ROLLING)


def quantile_thresholds(values, alphabet: Alphabet) -> ThresholdMapper:
    """Equi-depth breakpoints of ``values``, frozen into a ThresholdMapper.

    Applied to the fitting window itself this reproduces
    :class:`~repro.symbolic.mapping.QuantileMapper` exactly (same
    breakpoints, same side="left" binning); unlike QuantileMapper the
    returned mapper then encodes *future* values without re-fitting.
    Backend-dispatched like the mappers themselves (``np.quantile`` or
    the bit-identical pure-Python twin).
    """
    data = [float(v) for v in values]
    if not data:
        raise SymbolizationError("cannot fit quantile thresholds on no values")
    n_bins = len(alphabet)
    if n_bins == 1:
        return ThresholdMapper((), alphabet)
    return ThresholdMapper(tuple(quantile_breakpoints(data, n_bins)), alphabet)


def _frozen_fit(name: str, values, alphabet: Alphabet) -> ThresholdMapper:
    """Fit frozen breakpoints for one series, rejecting degenerate windows.

    A constant (or single-value) fitting window yields all-equal
    breakpoints, which would silently bin every future value of the
    stream into at most two of the alphabet's symbols -- forever, since
    frozen breakpoints never re-fit.  Rolling mode tolerates such windows
    (the next refit heals them); frozen mode must refuse them.
    """
    mapper = quantile_thresholds(values, alphabet)
    breakpoints = mapper.breakpoints
    data = [float(v) for v in values]
    constant_window = bool(data) and min(data) == max(data)
    collapsed = len(breakpoints) >= 2 and len(set(breakpoints)) == 1
    if breakpoints and (constant_window or collapsed):
        raise SymbolizationError(
            f"degenerate fitting window for series {name!r}: the "
            f"{len(data)}-value window yields all-equal quantile "
            f"breakpoints at {breakpoints[0]!r}, so frozen breakpoints "
            "would bin every future value into at most two of the "
            f"{len(alphabet)} symbols; widen the fitting window, use "
            "rolling mode, or supply a pre-fitted mapper"
        )
    return mapper


class StreamingSymbolizer:
    """Online mapping function ``f: X -> Sigma_X`` over a stream.

    Parameters
    ----------
    alphabets:
        Target alphabet per series name.
    mode:
        ``"frozen"``: breakpoints are fixed (from ``mappers`` or the
        first :meth:`push`, which acts as the fitting window).
        ``"rolling"``: breakpoints re-fit over the full raw history at
        every push and apply to the newly pushed values only.  The refit
        is incremental -- new values sorted-insert into a maintained
        sorted history and the breakpoints interpolate from it in
        O(alphabet) -- so a push costs O(block x log history), not the
        O(history) full re-quantile of the naive formulation; the
        breakpoints are bit-identical to a full refit
        (:func:`~repro.symbolic.mapping.interp_quantiles`).
    mappers:
        Pre-fitted mappers per series (frozen mode only); series without
        a mapper are fitted on their first push.
    """

    def __init__(
        self,
        alphabets: dict[str, Alphabet],
        mode: str = MODE_FROZEN,
        mappers: dict[str, SymbolMapper] | None = None,
    ):
        if mode not in SYMBOLIZER_MODES:
            raise SymbolizationError(
                f"unknown symbolizer mode {mode!r}; choose from {SYMBOLIZER_MODES}"
            )
        if not alphabets:
            raise SymbolizationError("a streaming symbolizer needs >= 1 series")
        self.mode = mode
        self.alphabets = dict(alphabets)
        self.mappers: dict[str, SymbolMapper] = dict(mappers or {})
        for name in self.mappers:
            if name not in self.alphabets:
                raise SymbolizationError(f"mapper for unknown series {name!r}")
        #: Raw history per series (rolling refits; checkpoints restore it).
        self.history: dict[str, list[float]] = {name: [] for name in alphabets}
        #: Sorted twin of ``history`` (rolling mode only), maintained by
        #: sorted insertion; rebuilt lazily when a checkpoint restore
        #: replaces ``history`` wholesale.
        self._sorted_history: dict[str, list[float]] = {}
        #: Work units of the most recent rolling refit (inserted values +
        #: interpolated breakpoints) -- what the O(block) regression test
        #: pins; stays 0 in frozen mode.
        self.last_refit_cost: int = 0

    @classmethod
    def fit(
        cls,
        window: dict[str, Sequence[float]],
        alphabets: dict[str, Alphabet],
        mode: str = MODE_FROZEN,
    ) -> "StreamingSymbolizer":
        """Fit breakpoints on an initial window (without consuming it).

        Callers typically follow with ``push(window)`` so the window's own
        symbols enter the stream.
        """
        symbolizer = cls(alphabets, mode=mode)
        if mode == MODE_FROZEN:
            for name, values in window.items():
                symbolizer.mappers[name] = _frozen_fit(
                    name, values, symbolizer._alphabet_of(name)
                )
        return symbolizer

    def _alphabet_of(self, name: str) -> Alphabet:
        try:
            return self.alphabets[name]
        except KeyError:
            raise SymbolizationError(
                f"unknown series {name!r}; registered: {sorted(self.alphabets)}"
            ) from None

    def push(self, values: dict[str, Sequence[float]]) -> dict[str, tuple[str, ...]]:
        """Symbolize newly arrived raw values, per series.

        Returns the new symbols per series, ready for
        :meth:`StreamingDatabase.append_symbols`.  A rejected push --
        unknown series, or a degenerate frozen fitting window (see
        :func:`_frozen_fit`) -- mutates nothing: no series' history or
        mapper changes, so the caller can correct the batch and re-push
        all of it without duplicating instants.
        """
        # Validate everything (series names, frozen first-push fits)
        # before committing anything, so a multi-series push is atomic.
        blocks: dict[str, tuple[Alphabet, list[float]]] = {}
        for name, block in values.items():
            alphabet = self._alphabet_of(name)
            blocks[name] = (alphabet, [float(v) for v in block])
        fitted: dict[str, SymbolMapper] = {}
        if self.mode == MODE_FROZEN:
            for name, (alphabet, block_list) in blocks.items():
                if block_list and name not in self.mappers:
                    # First push of this series is its fitting window;
                    # degenerate (constant) windows are rejected so the
                    # frozen breakpoints cannot collapse the alphabet.
                    fitted[name] = _frozen_fit(name, block_list, alphabet)
        out: dict[str, tuple[str, ...]] = {}
        for name, (alphabet, block_list) in blocks.items():
            if not block_list:
                out[name] = ()
                continue
            self.history[name].extend(block_list)
            if self.mode == MODE_ROLLING:
                mapper = self._rolling_refit(name, alphabet, block_list)
            else:
                mapper = self.mappers.get(name)
                if mapper is None:
                    mapper = self.mappers[name] = fitted[name]
            encoded = mapper.encode(TimeSeries(name, tuple(block_list)))
            out[name] = encoded.symbols
        return out

    def _rolling_refit(
        self, name: str, alphabet: Alphabet, block: list[float]
    ) -> ThresholdMapper:
        """Re-fit rolling breakpoints after ``block`` joined the history.

        ``self.history[name]`` has already been extended with ``block``.
        The sorted twin absorbs the new values by insertion and the
        breakpoints interpolate straight from it -- identical floats to
        ``quantile_thresholds(self.history[name], alphabet)`` without
        touching the older values.  A sorted twin whose length disagrees
        with the history (checkpoint restore swapped the history out
        underneath us) is rebuilt once from scratch.
        """
        history = self.history[name]
        sorted_history = self._sorted_history.get(name)
        if (
            sorted_history is None
            or len(sorted_history) + len(block) != len(history)
        ):
            sorted_history = self._sorted_history[name] = sorted(history)
        else:
            for value in block:
                insort(sorted_history, value)
        n_bins = len(alphabet)
        self.last_refit_cost = len(block) + (n_bins - 1)
        if n_bins == 1:
            return ThresholdMapper((), alphabet)
        return ThresholdMapper(
            tuple(interp_quantiles(sorted_history, n_bins)), alphabet
        )


class StreamingDatabase:
    """A DSEQ that grows granule by granule from a symbol stream.

    Symbols are buffered per series; whenever every series has ``ratio``
    unconsumed symbols, one :class:`~repro.events.sequence.TemporalSequence`
    is materialized and appended to the live database.  Series may be
    pushed raggedly (different lengths per call); granules form at the
    pace of the slowest series, exactly preserving the lockstep alignment
    Def. 3.6 requires of a symbolic database.
    """

    def __init__(
        self,
        ratio: int,
        alphabets: dict[str, Alphabet] | None = None,
        frontend: str | None = None,
    ):
        if ratio < 1:
            raise SymbolizationError(f"sequence mapping ratio must be >= 1, got {ratio}")
        self.ratio = ratio
        #: Which row builder materializes complete granules: ``None``
        #: follows the process-wide default front end; ``"columnar"``
        #: builds all complete granules of a push in one region pass,
        #: ``"scalar"`` keeps the granule-by-granule reference loop.
        self.frontend = None if frontend is None else validate_frontend(frontend)
        self.alphabets: dict[str, Alphabet] = dict(alphabets or {})
        #: Full symbol history per series, in arrival order.
        self.symbols: dict[str, list[str]] = {
            name: [] for name in self.alphabets
        }
        self._consumed = 0  # instants already materialized into granules
        self.dseq = TemporalSequenceDatabase(
            rows=[], ratio=ratio, source_names=list(self.alphabets)
        )

    @classmethod
    def from_symbolic(
        cls, dsyb: SymbolicDatabase, ratio: int, frontend: str | None = None
    ) -> "StreamingDatabase":
        """Seed a streaming database from an existing DSYB.

        All of the DSYB's symbols are appended immediately, so the
        resulting DSEQ rows equal ``build_sequence_database(dsyb, ratio)``
        (a trailing partial block stays buffered instead of dropped).
        """
        database = cls(
            ratio,
            {series.name: series.alphabet for series in dsyb},
            frontend=frontend,
        )
        database.append_symbols({series.name: series.symbols for series in dsyb})
        return database

    @property
    def names(self) -> list[str]:
        """Series names, in registration order."""
        return list(self.symbols)

    def register_alphabets(
        self,
        alphabets: dict[str, Alphabet],
        ignore_unknown: bool = False,
    ) -> None:
        """Register symbol alphabets so pushes are validated.

        This closes the lazy-seeding hole where a stream seeded by its
        first :meth:`append_symbols` call carried no alphabets and skipped
        symbol validation forever.  Registration never changes the series
        set: before it is fixed, alphabets are simply recorded and apply
        to whichever of their series the seeding push introduces.  On an
        already seeded stream, unknown series are rejected (or skipped
        with ``ignore_unknown=True`` -- the symbolizer-inheritance path,
        where an alphabet for a series this stream never carries is
        irrelevant), a conflicting re-registration raises, and any
        buffered symbols are validated retroactively.
        """
        seeded = bool(self.symbols)
        for name, alphabet in alphabets.items():
            if seeded and name not in self.symbols:
                if ignore_unknown:
                    continue
                raise SymbolizationError(
                    f"unknown series {name!r}; the stream is fixed to {self.names}"
                )
            existing = self.alphabets.get(name)
            if existing is not None and existing != alphabet:
                raise SymbolizationError(
                    f"conflicting alphabet for series {name!r}: "
                    f"{tuple(existing)} already registered, got {tuple(alphabet)}"
                )
            for symbol in self.symbols.get(name, ()):
                if symbol not in alphabet:
                    raise SymbolizationError(
                        f"buffered symbol {symbol!r} of series {name!r} "
                        f"outside the newly registered alphabet {tuple(alphabet)}"
                    )
            self.alphabets[name] = alphabet

    def pending_instants(self) -> int:
        """Instants of the slowest series not yet materialized."""
        if not self.symbols:
            return 0
        return min(len(s) for s in self.symbols.values()) - self._consumed

    def append_symbols(
        self,
        symbols: dict[str, Sequence[str] | str],
        alphabets: dict[str, Alphabet] | None = None,
    ) -> list[TemporalSequence]:
        """Buffer new symbols and materialize every complete granule.

        The first call fixes the series set (to *its own* keys; a partial
        ``alphabets`` mapping never narrows it); later calls may cover any
        subset of it.  ``alphabets`` registers symbol alphabets on the fly
        (see :meth:`register_alphabets`) -- pass it with the seeding call
        so a stream seeded by its first push validates symbols exactly
        like one constructed with alphabets.  Returns the newly appended
        temporal sequences (the batch a miner advance consumes).
        """
        if alphabets:
            self.register_alphabets(alphabets)
        if not self.symbols:
            if not symbols:
                raise SymbolizationError("cannot seed a streaming DSEQ with no series")
            for name in symbols:
                self.symbols[name] = []
            self.dseq.source_names = list(self.symbols)
            # The series set is now fixed: alphabets recorded for series
            # the stream does not carry can never apply (and would seed a
            # wider, stalling series set on checkpoint restore), so drop
            # them.
            self.alphabets = {
                name: alphabet
                for name, alphabet in self.alphabets.items()
                if name in self.symbols
            }
        for name, block in symbols.items():
            buffer = self.symbols.get(name)
            if buffer is None:
                raise SymbolizationError(
                    f"unknown series {name!r}; the stream is fixed to {self.names}"
                )
            alphabet = self.alphabets.get(name)
            for symbol in block:
                if alphabet is not None and symbol not in alphabet:
                    raise SymbolizationError(
                        f"symbol {symbol!r} outside alphabet of series {name!r}"
                    )
                buffer.append(symbol)
        return self._materialize()

    def _materialize(self) -> list[TemporalSequence]:
        """Turn every complete ``ratio``-block into appended granules.

        The columnar front end builds all of a push's complete granules
        with one region pass per series
        (:func:`~repro.transform.sequence_db.build_region_rows`); the
        scalar front end keeps the original granule-by-granule loop.
        Both append identical rows.
        """
        n_new = self.pending_instants() // self.ratio
        if n_new <= 0:
            return []
        frontend = self.frontend or default_frontend()
        if frontend == FRONTEND_COLUMNAR:
            new_rows = build_region_rows(
                self.symbols,
                self._consumed,
                n_new,
                self.ratio,
                self._consumed // self.ratio + 1,
            )
            for row in new_rows:
                self.dseq.append_row(row)
            self._consumed += n_new * self.ratio
            return new_rows
        new_rows = []
        while self.pending_instants() >= self.ratio:
            position = self._consumed // self.ratio + 1
            sequence = TemporalSequence(position=position)
            for name, buffer in self.symbols.items():
                block = tuple(buffer[self._consumed : self._consumed + self.ratio])
                sequence.instances.extend(
                    granule_instances(name, block, self._consumed)
                )
            row = sequence.finalize()
            self.dseq.append_row(row)
            new_rows.append(row)
            self._consumed += self.ratio
        return new_rows
