"""Incremental E-STPM: mine seasonal patterns over a growing DSEQ.

:class:`IncrementalSTPM` maintains the batch miner's candidate universe
(HLH1/HLHk plus per-pattern supports and assignments) under granule
appends.  Each :meth:`IncrementalSTPM.advance` call

1. extends every occurring event's support bitset (one ``|=`` per event)
   and the instance tables of candidate events;
2. for candidate 2-event groups, enumerates instance pairs only at the
   *tail* granules of the advance; groups that newly pass the maxSeason
   candidate gate get a one-time catch-up pass over their full support;
3. for k >= 3 groups, extends already incorporated parent patterns over
   the tail only, newly candidate parent patterns over their full common
   support, and rebuilds a group from scratch only when the Iterative
   Check's candidate-triple set grew on one of the group's event pairs
   (or the parent group itself was rebuilt);
4. re-evaluates seasons only for the patterns whose support changed
   (season views are cached by support length) and reports the frequency
   transitions as a :class:`PatternDelta`.

Parity guarantee
----------------
Candidacy gates are monotone under appends and the per-granule
enumeration is shared verbatim with the batch miner (the step-2.2
kernel registry of :func:`~repro.core.stpm.kernel_functions`; the
``kernel`` knob picks ``array`` / ``sweep`` / ``reference`` exactly as
in batch -- the maintained assignments use the same compact
column-index encoding), so after any prefix the
maintained state matches what batch E-STPM (full pruning, the default)
builds on that prefix.  :meth:`IncrementalSTPM.result` therefore returns
a :class:`~repro.core.results.MiningResult` equivalent to the batch
result -- same frequent patterns, same supports, near sets, and seasons;
only the emission order is canonicalized.  ``reanchor_every=N`` makes the
miner re-run batch E-STPM every N advances and raise
:class:`~repro.exceptions.MiningError` on any divergence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import combinations_with_replacement
from typing import Iterable

from repro.core.config import MiningParams
from repro.core.pattern import TemporalPattern, single_event_pattern
from repro.core.results import (
    MiningResult,
    MiningStats,
    SeasonalPattern,
    results_equivalent,
)
from repro.core.seasonality import SeasonView, is_candidate
from repro.core.instance_index import default_kernel, validate_kernel
from repro.obs import counters as metrics
from repro.obs.trace import span
from repro.core.stpm import ESTPM, kernel_functions
from repro.core.supportset import default_backend, validate_backend
from repro.events.sequence import TemporalSequence
from repro.exceptions import MiningError
from repro.streaming.state import (
    EventState,
    GroupState,
    MinerState,
    PatternState,
    bit_positions,
    mask_upto,
)
from repro.transform.sequence_db import TemporalSequenceDatabase

#: Snapshot of a pattern's pre-advance seasonal status: (frequent?, view).
_Snapshot = tuple[bool, SeasonView | None]


def canonical_sort_key(sp: SeasonalPattern):
    """Deterministic result ordering: by size, then events, then triples."""
    return (sp.size, sp.pattern.events, sp.pattern.triples)


@dataclass
class PatternDelta:
    """What one :meth:`IncrementalSTPM.advance` changed.

    Attributes
    ----------
    n_granules:
        Total granules mined after the advance.
    new_granules:
        Granules consumed by this advance.
    promoted:
        Patterns that crossed ``minSeason`` and are now frequent.
    updated:
        Patterns frequent before and after, whose seasonal evidence
        (support / near sets / seasons) changed.
    demoted:
        Patterns that stopped being frequent.  Empty in append-only
        streams (season chains are monotone under appends); kept so
        downstream consumers handle future eviction semantics.
    seconds:
        Wall-clock cost of the advance.
    """

    n_granules: int
    new_granules: int
    promoted: list[SeasonalPattern] = field(default_factory=list)
    updated: list[SeasonalPattern] = field(default_factory=list)
    demoted: list[TemporalPattern] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def has_changes(self) -> bool:
        """Did any pattern change frequency status or evidence?"""
        return bool(self.promoted or self.updated or self.demoted)

    def describe(self) -> str:
        """One-line summary for stream logs."""
        return (
            f"granule {self.n_granules} (+{self.new_granules}): "
            f"{len(self.promoted)} promoted, {len(self.updated)} updated, "
            f"{len(self.demoted)} demoted [{self.seconds * 1000:.1f} ms]"
        )


@dataclass
class IncrementalSTPM:
    """Streaming E-STPM over a growing temporal sequence database.

    Parameters
    ----------
    dseq:
        The temporal sequence database being streamed into.  Rows
        appended to it (``TemporalSequenceDatabase.append_row``, usually
        via :class:`~repro.streaming.ingest.StreamingDatabase`) are
        consumed by the next :meth:`advance` call.
    params:
        The seasonal thresholds; identical semantics to batch E-STPM.
    support_backend:
        Physical support-set representation of the maintained state
        (``"bitset"`` / ``"list"``; ``None`` = process default).  Both
        backends produce identical results.
    kernel:
        Step-2.2 kernel driving the incremental instance enumeration
        (``"array"`` / ``"sweep"`` / ``"reference"``; ``None`` = process
        default).  All kernels produce identical results.
    reanchor_every:
        If set, every N-th advance re-mines the full prefix with batch
        E-STPM and raises :class:`MiningError` on any divergence -- the
        paranoia knob for long-lived deployments.

    The miner always applies both lossless prunings
    (:class:`~repro.core.prune.PruningConfig` ``all``), matching the
    batch miner's default configuration.
    """

    dseq: TemporalSequenceDatabase
    params: MiningParams
    support_backend: str | None = None
    reanchor_every: int | None = None
    kernel: str | None = None

    def __post_init__(self) -> None:
        backend = validate_backend(self.support_backend or default_backend())
        self.support_backend = backend
        self.kernel = validate_kernel(self.kernel or default_kernel())
        self.state = MinerState(params=self.params, backend=backend)
        self.n_advances = 0

    @classmethod
    def empty(
        cls,
        ratio: int,
        params: MiningParams,
        support_backend: str | None = None,
        reanchor_every: int | None = None,
        kernel: str | None = None,
    ) -> "IncrementalSTPM":
        """A miner over a fresh, empty DSEQ with the given mapping ratio."""
        return cls(
            TemporalSequenceDatabase(rows=[], ratio=ratio),
            params,
            support_backend=support_backend,
            reanchor_every=reanchor_every,
            kernel=kernel,
        )

    @property
    def n_granules(self) -> int:
        """Granules mined so far."""
        return self.state.n_granules

    # ------------------------------------------------------------------
    # The advance
    # ------------------------------------------------------------------

    def advance(self, rows: Iterable[TemporalSequence] | None = None) -> PatternDelta:
        """Consume all unprocessed granules and return the pattern delta.

        ``rows``, if given, are appended to the database first (a
        convenience for callers without a :class:`StreamingDatabase`).
        """
        with span("stream/advance") as advance_span:
            delta = self._advance(rows)
            advance_span.set(
                new_granules=delta.new_granules,
                promoted=len(delta.promoted),
                updated=len(delta.updated),
            )
        if metrics.metrics_enabled():
            metrics.inc("stream.advances")
            metrics.inc("stream.granules_ingested", delta.new_granules)
            metrics.inc("stream.patterns.promoted", len(delta.promoted))
            metrics.inc("stream.patterns.updated", len(delta.updated))
            metrics.observe("stream.advance_seconds", delta.seconds)
        return delta

    def _advance(self, rows: Iterable[TemporalSequence] | None = None) -> PatternDelta:
        started = time.perf_counter()
        if rows is not None:
            for row in rows:
                self.dseq.append_row(row)
        state = self.state
        prev_n = state.n_granules
        new_n = len(self.dseq)
        if new_n == prev_n:
            return PatternDelta(n_granules=new_n, new_granules=0)
        new_rows = self.dseq.rows[prev_n:new_n]

        touched_events: dict[str, _Snapshot] = {}
        touched_patterns: dict[TemporalPattern, _Snapshot] = {}
        changed, newly_candidate = self._update_events(new_rows, touched_events)
        if self.params.max_pattern_length >= 2:
            self._update_pairs(changed, newly_candidate, touched_patterns)
            for k in range(3, self.params.max_pattern_length + 1):
                self._update_extensions(k, changed, touched_patterns)
        state.n_granules = new_n

        delta = self._build_delta(
            prev_n, new_n, touched_events, touched_patterns, started
        )
        self.n_advances += 1
        if self.reanchor_every and self.n_advances % self.reanchor_every == 0:
            self.verify_parity()
        return delta

    # ------------------------------------------------------------------
    # Level 1: events
    # ------------------------------------------------------------------

    def _update_events(
        self, new_rows: list[TemporalSequence], touched: dict[str, _Snapshot]
    ) -> tuple[set[str], list[str]]:
        """Extend event supports / instance tables.

        Returns the events whose support changed this advance and the
        subset that newly crossed the candidate gate.
        """
        state = self.state
        params = self.params
        changed: set[str] = set()
        newly_candidate: list[str] = []
        for row in new_rows:
            for event in row.events():
                es = state.events.get(event)
                if es is None:
                    es = state.events[event] = EventState(event)
                changed.add(event)
                es.bits |= 1 << row.position
                if es.candidate:
                    state.hlh1.gh[event][row.position] = row.instances_of(event)
        for event in sorted(changed):
            es = state.events[event]
            if es.candidate:
                state.hlh1.eh[event] = state.support_set(es.bits)
                touched.setdefault(event, self._snapshot_view(es.view))
            elif is_candidate(es.bits.bit_count(), params):
                es.candidate = True
                newly_candidate.append(event)
                instances = {
                    position: self.dseq.instances_at(position, event)
                    for position in bit_positions(es.bits)
                }
                state.hlh1.add_event(event, state.support_set(es.bits), instances)
                touched.setdefault(event, self._snapshot_view(es.view))
        return changed, newly_candidate

    # ------------------------------------------------------------------
    # Level 2: event pairs
    # ------------------------------------------------------------------

    def _update_pairs(
        self,
        changed: set[str],
        newly_candidate: list[str],
        touched: dict[TemporalPattern, _Snapshot],
    ) -> None:
        """Advance every affected candidate 2-event group (step 2.2, k = 2).

        A pair's support can only change when *both* its events occur in
        a new granule, and a pair first needs evaluating when its later
        member crosses the candidate gate -- so instead of walking all
        O(|F1|^2) pairs per advance, walk the changed-candidate pairs
        plus the (newly candidate x all candidates) cross.
        """
        state = self.state
        params = self.params
        level = state.level(2)
        mirror = state.mirror(2)
        new_n = len(self.dseq)
        changed_candidates = sorted(
            event for event in changed if state.events[event].candidate
        )
        pairs = set(combinations_with_replacement(changed_candidates, 2))
        if newly_candidate:
            candidates = [
                event for event, es in state.events.items() if es.candidate
            ]
            for new_event in newly_candidate:
                for other in candidates:
                    pairs.add(tuple(sorted((new_event, other))))
        for event_a, event_b in sorted(pairs):
            both_changed = event_a in changed and event_b in changed
            group = (event_a, event_b)
            gs = level.get(group)
            if gs is None:
                gs = level[group] = GroupState(group)
            if gs.candidate:
                if not both_changed:
                    continue
                bits = state.events[event_a].bits & state.events[event_b].bits
                tail = bits & ~mask_upto(gs.processed_upto)
                if tail:
                    gs.bits = bits
                    mirror.ehk[group].support = state.support_set(bits)
                    self._collect_pairs(gs, bit_positions(tail), touched)
                gs.processed_upto = new_n
                continue
            # The support of an unevaluated or still-gated group can only
            # have changed when both events occur in a new granule.
            if gs.bits is not None and not both_changed:
                continue
            gs.bits = state.events[event_a].bits & state.events[event_b].bits
            if not is_candidate(gs.bits.bit_count(), params):
                continue
            gs.candidate = True
            mirror.add_group(group, state.support_set(gs.bits))
            self._collect_pairs(gs, bit_positions(gs.bits), touched)
            gs.processed_upto = new_n

    def _collect_pairs(
        self,
        gs: GroupState,
        granules: list[int],
        touched: dict[TemporalPattern, _Snapshot],
    ) -> None:
        """Enumerate one pair group's instances over ``granules``."""
        support_out: dict[TemporalPattern, list[int]] = {}
        assignments_out: dict[TemporalPattern, dict] = {}
        event_a, event_b = gs.group
        collect = kernel_functions(self.kernel)[0]
        collect(
            self.state.hlh1, event_a, event_b, granules,
            self.params.relation, support_out, assignments_out,
        )
        self._merge_outcomes(2, gs, support_out, assignments_out, touched, dedup=False)

    # ------------------------------------------------------------------
    # Levels k >= 3: group extension
    # ------------------------------------------------------------------

    def _update_extensions(
        self, k: int, changed: set[str], touched: dict[TemporalPattern, _Snapshot]
    ) -> None:
        """Advance every candidate k-event group (step 2.2, k >= 3)."""
        state = self.state
        prev_mirror = state.mirror(k - 1)
        if not prev_mirror.phk:
            return
        level = state.level(k)
        filtered_f1 = sorted(prev_mirror.events_in_patterns())
        seen: set[tuple[str, ...]] = set()
        for group_prev in prev_mirror.groups:
            if not prev_mirror.ehk[group_prev].patterns:
                continue
            for event in filtered_f1:
                group = tuple(sorted(group_prev + (event,)))
                if group in seen:
                    continue
                seen.add(group)
                gs = level.get(group)
                if gs is None:
                    gs = level[group] = GroupState(group)
                elif self._extension_group_is_settled(k, gs, changed):
                    continue
                self._advance_extension_group(k, gs, group_prev, event, touched)

    def _extension_group_is_settled(
        self, k: int, gs: GroupState, changed: set[str]
    ) -> bool:
        """Can this advance be skipped for an already-evaluated group?

        A group's support only changes when *every* member occurs in a
        new granule (supports are monotone intersections), so a group
        with an unchanged member can only need work through the parent
        channels: new parent patterns (entry.patterns grows), a parent
        rebuild (revision bump), or new candidate triples on its event
        pairs.  All three checks are O(1)-ish; skipping avoids the k-way
        bitset intersection over the full history for the (vast)
        majority of settled groups on every advance.
        """
        if gs.bits is None or all(member in changed for member in gs.group):
            return False
        if not gs.candidate:
            return True  # support unchanged, gate verdict cannot flip
        state = self.state
        entry_prev = state.mirror(k - 1).ehk[gs.parent_group]
        return (
            state.level(k - 1)[gs.parent_group].revision == gs.parent_revision
            and len(entry_prev.patterns) == len(gs.incorporated)
            and not state.triples_affect_group(gs)
        )

    def _advance_extension_group(
        self,
        k: int,
        gs: GroupState,
        enum_parent: tuple[str, ...],
        enum_event: str,
        touched: dict[TemporalPattern, _Snapshot],
    ) -> None:
        """Bring one k-event group's pattern state up to the new horizon."""
        state = self.state
        params = self.params
        mirror = state.mirror(k)
        new_n = len(self.dseq)
        bits = state.events[gs.group[0]].bits
        for member in gs.group[1:]:
            bits &= state.events[member].bits
        bits_changed = bits != gs.bits
        gs.bits = bits
        if not gs.candidate:
            if not is_candidate(bits.bit_count(), params):
                return
            # The group crosses the gate now: fix its extension parent
            # (any candidate parent yields the same pattern set -- every
            # sub-pattern of a candidate pattern is itself a candidate
            # with full assignments) and catch up over the full support.
            gs.candidate = True
            gs.parent_group = enum_parent
            gs.extension_event = self._extension_event(gs.group, enum_parent)
            mirror.add_group(gs.group, state.support_set(bits))
            self._rebuild_extension_group(k, gs, touched)
            return
        if bits_changed:
            mirror.ehk[gs.group].support = state.support_set(bits)
        parent_gs = state.level(k - 1)[gs.parent_group]
        if parent_gs.revision != gs.parent_revision or state.triples_affect_group(gs):
            # Old granules may now admit new patterns/assignments: the
            # incremental premise broke, redo the group batch-style.
            self._rebuild_extension_group(k, gs, touched)
            return
        entry_prev = state.mirror(k - 1).ehk[gs.parent_group]
        fresh: list[TemporalPattern] = []
        previously: list[TemporalPattern] = []
        for pattern in entry_prev.patterns:
            (previously if pattern in gs.incorporated else fresh).append(pattern)
        tail = bits & ~mask_upto(gs.processed_upto)
        if fresh:
            # Newly candidate parent patterns: their assignments cover
            # old granules too, so extend them over the full support.
            self._extend_group(k, gs, entry_prev, fresh, None, touched)
            gs.incorporated.update(fresh)
        if tail and previously:
            self._extend_group(
                k, gs, entry_prev, previously, bit_positions(tail), touched
            )
        gs.processed_upto = new_n
        gs.triples_revision = state.triples_revision

    @staticmethod
    def _extension_event(group: tuple[str, ...], parent: tuple[str, ...]) -> str:
        """The one event of ``group`` not accounted for by ``parent``
        (multiset difference -- groups may repeat an event)."""
        remaining = list(parent)
        for event in group:
            if event in remaining:
                remaining.remove(event)
            else:
                return event
        raise MiningError(f"group {group} does not extend parent {parent}")

    def _rebuild_extension_group(
        self, k: int, gs: GroupState, touched: dict[TemporalPattern, _Snapshot]
    ) -> None:
        """Re-extend one group from scratch over its full support."""
        state = self.state
        mirror = state.mirror(k)
        if gs.patterns:
            for pattern, ps in gs.patterns.items():
                if ps.candidate:
                    touched.setdefault(pattern, self._snapshot_view(ps.view))
                    mirror.remove_pattern(pattern)
            gs.patterns = {}
            gs.revision += 1
        gs.incorporated = set()
        parent_gs = state.level(k - 1)[gs.parent_group]
        entry_prev = state.mirror(k - 1).ehk[gs.parent_group]
        self._extend_group(k, gs, entry_prev, list(entry_prev.patterns), None, touched)
        gs.incorporated = set(entry_prev.patterns)
        gs.parent_revision = parent_gs.revision
        gs.triples_revision = state.triples_revision
        gs.processed_upto = len(self.dseq)

    def _extend_group(
        self,
        k: int,
        gs: GroupState,
        entry_prev,
        parent_patterns: list[TemporalPattern],
        granule_filter: list[int] | None,
        touched: dict[TemporalPattern, _Snapshot],
    ) -> None:
        """Run the shared extension loop and merge its outcomes."""
        state = self.state
        extend = kernel_functions(self.kernel)[1]
        support_out, assignments_out = extend(
            state.hlh1,
            state.mirror(k - 1),
            entry_prev,
            gs.extension_event,
            state.candidate_triples,
            self.params,
            True,
            parent_patterns=parent_patterns,
            granule_filter=granule_filter,
        )
        self._merge_outcomes(k, gs, support_out, assignments_out, touched, dedup=True)

    # ------------------------------------------------------------------
    # Shared pattern-state merging and candidacy registration
    # ------------------------------------------------------------------

    def _merge_outcomes(
        self,
        k: int,
        gs: GroupState,
        support_out: dict[TemporalPattern, list[int]],
        assignments_out: dict[TemporalPattern, dict],
        touched: dict[TemporalPattern, _Snapshot],
        dedup: bool,
    ) -> None:
        """Fold one enumeration's outcomes into the group's pattern states.

        Pair enumeration runs over granule sets disjoint from everything
        processed before, so its outcomes append (``dedup=False``).
        Extension outcomes can re-derive an assignment already found
        through a previously incorporated parent pattern, so they merge
        as per-granule sets (``dedup=True``) -- exactly the deduplication
        the batch accumulator performs within one group task.
        """
        state = self.state
        params = self.params
        mirror = state.mirror(k)
        for pattern, new_support in support_out.items():
            ps = gs.patterns.get(pattern)
            if ps is None:
                ps = gs.patterns[pattern] = PatternState()
            new_assignments = assignments_out[pattern]
            if not ps.support:
                ps.support = list(new_support)
                ps.assignments.update(new_assignments)
            elif dedup:
                for granule, assignments in new_assignments.items():
                    existing = ps.assignments.get(granule)
                    if existing is None:
                        ps.assignments[granule] = assignments
                    else:
                        ps.assignments[granule] = sorted(
                            set(existing) | set(assignments)
                        )
                ps.support = sorted(ps.assignments)
            else:
                for granule, assignments in new_assignments.items():
                    ps.assignments[granule] = assignments
                ps.support.extend(new_support)
            for granule in new_support:
                ps.bits |= 1 << granule
            if not ps.candidate:
                if is_candidate(len(ps.support), params):
                    ps.candidate = True
                    mirror.add_pattern(
                        pattern, state.support_set(ps.bits), ps.assignments
                    )
                    if k == 2:
                        state.register_triple(pattern.triples[0])
                    touched.setdefault(pattern, self._snapshot_view(ps.view))
            else:
                mirror.phk[pattern] = state.support_set(ps.bits)
                touched.setdefault(pattern, self._snapshot_view(ps.view))

    def _snapshot_view(self, view: SeasonView | None) -> _Snapshot:
        """Pre-advance status of a pattern: (was frequent, last view)."""
        frequent = view is not None and view.n_seasons >= self.params.min_season
        return (frequent, view)

    # ------------------------------------------------------------------
    # Delta + result construction
    # ------------------------------------------------------------------

    def _build_delta(
        self,
        prev_n: int,
        new_n: int,
        touched_events: dict[str, _Snapshot],
        touched_patterns: dict[TemporalPattern, _Snapshot],
        started: float,
    ) -> PatternDelta:
        state = self.state
        delta = PatternDelta(n_granules=new_n, new_granules=new_n - prev_n)
        for event, snapshot in touched_events.items():
            es = state.events[event]
            self._classify(
                single_event_pattern(event), state.event_view(es), snapshot, delta
            )
        for pattern, snapshot in touched_patterns.items():
            ps = self._pattern_state(pattern)
            self._classify(pattern, state.pattern_view(ps), snapshot, delta)
        delta.promoted.sort(key=canonical_sort_key)
        delta.updated.sort(key=canonical_sort_key)
        delta.seconds = time.perf_counter() - started
        return delta

    def _classify(
        self,
        pattern: TemporalPattern,
        view: SeasonView,
        snapshot: _Snapshot,
        delta: PatternDelta,
    ) -> None:
        was_frequent, old_view = snapshot
        if view.n_seasons >= self.params.min_season:
            sp = SeasonalPattern(pattern, view)
            if not was_frequent:
                delta.promoted.append(sp)
            elif view != old_view:
                delta.updated.append(sp)
        elif was_frequent:  # pragma: no cover - impossible under appends
            delta.demoted.append(pattern)

    def _pattern_state(self, pattern: TemporalPattern) -> PatternState:
        """The state record of a (multi-event) pattern."""
        return self.state.levels[pattern.size][pattern.event_group].patterns[pattern]

    def result(self) -> MiningResult:
        """The full mining result over everything streamed so far.

        Equivalent to batch E-STPM on the same prefix (same patterns,
        same seasonal evidence); patterns are emitted in canonical order
        (size, events, triples).
        """
        state = self.state
        params = self.params
        patterns: list[SeasonalPattern] = []
        for event in sorted(state.hlh1.eh):
            view = state.event_view(state.events[event])
            if view.n_seasons >= params.min_season:
                patterns.append(SeasonalPattern(single_event_pattern(event), view))
        for k in sorted(state.levels):
            for gs in state.levels[k].values():
                for pattern, ps in gs.patterns.items():
                    if not ps.candidate:
                        continue
                    view = state.pattern_view(ps)
                    if view.n_seasons >= params.min_season:
                        patterns.append(SeasonalPattern(pattern, view))
        patterns.sort(key=canonical_sort_key)
        stats = MiningStats(
            n_granules=state.n_granules,
            n_events_scanned=len(state.events),
            n_candidate_events=len(state.hlh1),
        )
        for sp in patterns:
            stats.bump(stats.n_frequent, sp.size)
        return MiningResult(patterns=patterns, stats=stats)

    def border_patterns(self) -> list[SeasonalPattern]:
        """Candidates exactly one season short of ``minSeason``.

        These are the patterns the next few granules are most likely to
        promote -- the "border" a monitoring dashboard watches.
        """
        state = self.state
        threshold = self.params.min_season - 1
        border: list[SeasonalPattern] = []
        if threshold >= 1:
            for event in sorted(state.hlh1.eh):
                view = state.event_view(state.events[event])
                if view.n_seasons == threshold:
                    border.append(
                        SeasonalPattern(single_event_pattern(event), view)
                    )
            for k in sorted(state.levels):
                for gs in state.levels[k].values():
                    for pattern, ps in gs.patterns.items():
                        if ps.candidate:
                            view = state.pattern_view(ps)
                            if view.n_seasons == threshold:
                                border.append(SeasonalPattern(pattern, view))
        border.sort(key=canonical_sort_key)
        return border

    # ------------------------------------------------------------------
    # Parity re-anchoring
    # ------------------------------------------------------------------

    def verify_parity(self) -> MiningResult:
        """Mine the full prefix with batch E-STPM and assert equivalence.

        Returns the batch result; raises :class:`MiningError` with the
        symmetric difference summary when the incremental state diverged
        (which would be a bug -- this is the subsystem's hard guarantee).
        """
        batch = ESTPM(
            self.dseq, self.params,
            support_backend=self.support_backend, kernel=self.kernel,
        ).mine()
        streaming = self.result()
        if not results_equivalent(streaming, batch):
            batch_map = batch.seasonal_map()
            stream_map = streaming.seasonal_map()
            missing = sorted(
                p.describe() for p in set(batch_map) - set(stream_map)
            )[:5]
            extra = sorted(
                p.describe() for p in set(stream_map) - set(batch_map)
            )[:5]
            differing = sorted(
                p.describe()
                for p in set(batch_map) & set(stream_map)
                if batch_map[p] != stream_map[p]
            )[:5]
            raise MiningError(
                "incremental result diverged from batch E-STPM at granule "
                f"{self.state.n_granules}: missing={missing} extra={extra} "
                f"differing={differing}"
            )
        return batch
