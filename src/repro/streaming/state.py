"""Mutable miner state for incremental seasonal-pattern mining.

The batch miner (Alg. 1) rebuilds its hierarchical lookup hashes from
scratch on every run.  The streaming miner instead *maintains* them: this
module holds the mutable per-event / per-group / per-pattern records the
incremental algorithm updates granule by granule, plus live
:class:`~repro.core.hlh.HLH1` / :class:`~repro.core.hlh.HLHk` mirrors so
the batch miner's inner loops (:func:`~repro.core.stpm.collect_pair_patterns`,
:func:`~repro.core.stpm.extend_group_patterns`) run unchanged against the
streamed state.

Why appends are cheap
---------------------
Everything the miners gate on is *monotone* under granule appends:

* support sets only gain positions (one ``|=`` per event per granule on
  the big-int bitset from PR 1);
* the maxSeason candidate gate ``|SUP|/minDensity >= minSeason`` (Eq. (1))
  can only flip from failed to passed -- a candidate event, group, or
  pattern never loses candidacy;
* the candidate-triple set consulted by the Iterative Check only grows;
* season chains (Defs. 3.13-3.15) are built left-to-right, so appending
  granules never removes a season from the best chain.

The state therefore records, per group, *how far* it has been enumerated
(``processed_upto``) and which parent patterns it has incorporated; an
advance only touches the tail plus the bounded one-time catch-ups of
objects that newly crossed a gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import MiningParams
from repro.core.hlh import HLH1, Assignment, HLHk
from repro.core.pattern import TemporalPattern, Triple
from repro.core.seasonality import SeasonView, compute_seasons
from repro.core.supportset import bit_positions, make_support_set

__all__ = [
    "EventState",
    "GroupState",
    "MinerState",
    "PatternState",
    "bit_positions",
    "mask_upto",
]


def mask_upto(position: int) -> int:
    """Bitmask covering granule positions ``0..position`` inclusive."""
    return (1 << (position + 1)) - 1


@dataclass
class EventState:
    """Streaming record of one temporal event (the HLH1 row)."""

    event: str
    bits: int = 0
    candidate: bool = False
    view: SeasonView | None = None
    view_support_len: int = -1


@dataclass
class PatternState:
    """Streaming record of one candidate pattern (the PHk/GHk rows).

    ``support`` / ``assignments`` grow in place, with ``bits`` as the
    equivalent bitmask (kept so the PHk mirror refresh is O(1) on the
    bitset backend instead of re-packing the whole support per advance).
    ``assignments`` holds the kernels' compact column-index encoding
    (see :mod:`repro.core.instance_index`) -- the shared inner loops
    produce and consume it, and the HLH mirrors store the same lists.
    The cached :class:`SeasonView` is valid only while
    ``view_support_len`` matches the support length (supports are
    append-only, so length is a sufficient fingerprint).
    """

    support: list[int] = field(default_factory=list)
    assignments: dict[int, list[Assignment]] = field(default_factory=dict)
    bits: int = 0
    candidate: bool = False
    view: SeasonView | None = None
    view_support_len: int = -1


@dataclass
class GroupState:
    """Streaming record of one k-event group (the EHk row).

    For k >= 3 the extension bookkeeping records which parent patterns of
    the fixed ``parent_group`` have been incorporated over the full
    history, so an advance extends incorporated patterns over the tail
    only and newly candidate parent patterns over their full support.
    ``revision`` bumps whenever the group's patterns were rebuilt from
    scratch (old granules touched), telling dependent (k+1)-groups their
    incremental premise broke.
    """

    group: tuple[str, ...]
    bits: int | None = None
    candidate: bool = False
    patterns: dict[TemporalPattern, PatternState] = field(default_factory=dict)
    processed_upto: int = 0
    parent_group: tuple[str, ...] | None = None
    extension_event: str | None = None
    incorporated: set[TemporalPattern] = field(default_factory=set)
    parent_revision: int = 0
    triples_revision: int = 0
    revision: int = 0


@dataclass
class MinerState:
    """The full mutable state of one :class:`IncrementalSTPM` run.

    ``hlh1`` / ``hlhk`` are live mirrors of the batch miner's lookup
    hashes, kept consistent with the event/group/pattern records after
    every advance so the shared mining inner loops (and any HLH-level
    introspection) see exactly what a batch run over the same prefix
    would have built.
    """

    params: MiningParams
    backend: str
    n_granules: int = 0
    events: dict[str, EventState] = field(default_factory=dict)
    levels: dict[int, dict[tuple[str, ...], GroupState]] = field(default_factory=dict)
    hlh1: HLH1 = field(default_factory=HLH1)
    hlhk: dict[int, HLHk] = field(default_factory=dict)
    candidate_triples: set[Triple] = field(default_factory=set)
    triples_revision: int = 0
    pair_revision: dict[frozenset[str], int] = field(default_factory=dict)

    def level(self, k: int) -> dict[tuple[str, ...], GroupState]:
        """The group-state table of level ``k`` (created on first use)."""
        return self.levels.setdefault(k, {})

    def mirror(self, k: int) -> HLHk:
        """The HLHk mirror of level ``k`` (created on first use)."""
        mirror = self.hlhk.get(k)
        if mirror is None:
            mirror = self.hlhk[k] = HLHk(k=k)
        return mirror

    def support_set(self, bits: int):
        """Wrap a support bitmask in the configured physical backend."""
        if self.backend == "bitset":
            from repro.core.supportset import BitsetSupportSet

            return BitsetSupportSet(bits)
        return make_support_set(bit_positions(bits), self.backend)

    def register_triple(self, triple: Triple) -> None:
        """Record a newly candidate 2-event pattern's relation triple.

        Bumps the triples revision and remembers, per unordered event
        pair, when a triple of that pair last appeared -- the k >= 3
        rebuild test consults this to find groups whose Iterative Check
        could now accept previously rejected extensions.
        """
        if triple in self.candidate_triples:
            return
        self.triples_revision += 1
        self.candidate_triples.add(triple)
        self.pair_revision[frozenset((triple.first, triple.second))] = (
            self.triples_revision
        )

    def triples_affect_group(self, state: GroupState) -> bool:
        """Could triples added since the group's last full pass matter?

        The Iterative Check only relates instances of the parent's events
        with instances of the extension event, so the group is affected
        exactly when a triple over one of those unordered pairs appeared
        after ``state.triples_revision``.
        """
        since = state.triples_revision
        event = state.extension_event
        return any(
            self.pair_revision.get(frozenset((member, event)), 0) > since
            for member in state.parent_group or ()
        )

    def event_view(self, state: EventState) -> SeasonView:
        """The (cached) seasonal decomposition of one event's support."""
        size = state.bits.bit_count()
        if state.view is None or state.view_support_len != size:
            state.view = compute_seasons(bit_positions(state.bits), self.params)
            state.view_support_len = size
        return state.view

    def pattern_view(self, state: PatternState) -> SeasonView:
        """The (cached) seasonal decomposition of one pattern's support."""
        size = len(state.support)
        if state.view is None or state.view_support_len != size:
            state.view = compute_seasons(state.support, self.params)
            state.view_support_len = size
        return state.view
