"""Temporal events and event instances (paper Def. 3.7).

A *temporal event* ``E = (omega, T)`` pairs a symbol of one series with the
set of time intervals during which the series holds that symbol.  An *event
instance* ``e = (omega, [ts, te])`` is a single occurrence.  Event identity
is the string key ``series:symbol`` (e.g. ``"C:1"``), matching the paper's
notation.

Intervals are inclusive granule-index pairs at the fine granularity G.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.exceptions import ReproError


class EventInstance(NamedTuple):
    """A single occurrence of an event over the inclusive interval [start, end].

    ``event`` is the ``series:symbol`` key; ``start``/``end`` are 1-based
    fine-granule positions (the paper's ``[G1, G2]`` style intervals).
    """

    event: str
    start: int
    end: int

    @property
    def duration(self) -> int:
        """Number of fine granules covered (inclusive interval)."""
        return self.end - self.start + 1

    def sort_key(self) -> tuple[int, int, str]:
        """Chronological ordering: by start, longer-first on ties, then key.

        Longer-first on equal starts puts a containing instance before the
        contained one, which is the orientation Table III's Contains uses.
        """
        return (self.start, -self.end, self.event)

    def describe(self) -> str:
        """Paper-style rendering, e.g. ``(C:1,[G1,G2])``."""
        return f"({self.event},[G{self.start},G{self.end}])"


@dataclass(frozen=True)
class TemporalEvent:
    """An event ``(omega, T)``: a symbol with all its occurrence intervals."""

    event: str
    intervals: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        previous_end = None
        for start, end in self.intervals:
            if start > end:
                raise ReproError(f"bad interval [{start},{end}] in event {self.event}")
            if previous_end is not None and start <= previous_end:
                raise ReproError(
                    f"intervals of event {self.event} must be disjoint and ordered"
                )
            previous_end = end

    @property
    def series(self) -> str:
        """The series name part of the event key."""
        return self.event.rsplit(":", 1)[0]

    @property
    def symbol(self) -> str:
        """The symbol part of the event key."""
        return self.event.rsplit(":", 1)[1]

    def instances(self) -> list[EventInstance]:
        """All instances of this event, in chronological order."""
        return [EventInstance(self.event, s, e) for s, e in self.intervals]

    def __len__(self) -> int:
        return len(self.intervals)


def extract_event(series_name: str, symbols: tuple[str, ...] | list[str], symbol: str) -> TemporalEvent:
    """Build the temporal event of ``symbol`` in a symbolic sequence.

    Groups maximal runs of ``symbol`` into intervals; positions are 1-based.
    This is the per-symbol view of the paper's running example, e.g.
    ``E = (C:1, {[G1,G2],[G4,G4],...})``.
    """
    intervals: list[tuple[int, int]] = []
    run_start: int | None = None
    for index, current in enumerate(symbols, start=1):
        if current == symbol:
            if run_start is None:
                run_start = index
        elif run_start is not None:
            intervals.append((run_start, index - 1))
            run_start = None
    if run_start is not None:
        intervals.append((run_start, len(symbols)))
    return TemporalEvent(f"{series_name}:{symbol}", tuple(intervals))
