"""Temporal sequences (paper Def. 3.10, Table IV rows).

A temporal sequence is the chronologically ordered list of event instances
inside one coarse granule ``Hi``.  One row of the temporal sequence
database holds the sequences of *all* series for that granule; we merge
them into a single instance list (sorted chronologically) plus a per-event
index for fast lookup during mining.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.events.event import EventInstance


@dataclass
class TemporalSequence:
    """All event instances of one coarse granule, chronologically ordered.

    ``position`` is the 1-based position of the granule in the coarse
    granularity H.  ``instances`` are sorted by
    :meth:`repro.events.event.EventInstance.sort_key`.
    """

    position: int
    instances: list[EventInstance] = field(default_factory=list)
    _by_event: dict[str, list[EventInstance]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __getstate__(self):
        """Pickle only the instance list; the per-event index is derived."""
        return {"position": self.position, "instances": self.instances}

    def __setstate__(self, state) -> None:
        self.position = state["position"]
        self.instances = state["instances"]
        by_event: dict[str, list[EventInstance]] = {}
        for instance in self.instances:
            by_event.setdefault(instance.event, []).append(instance)
        self._by_event = by_event

    def finalize(self) -> "TemporalSequence":
        """Sort instances and build the per-event index.  Call once after
        all instances are appended; returns self for chaining."""
        self.instances.sort(key=EventInstance.sort_key)
        by_event: dict[str, list[EventInstance]] = {}
        for instance in self.instances:
            by_event.setdefault(instance.event, []).append(instance)
        self._by_event = by_event
        return self

    def events(self) -> list[str]:
        """Distinct event keys occurring in this sequence."""
        return list(self._by_event)

    def instances_of(self, event: str) -> list[EventInstance]:
        """Instances of one event in this sequence (may be empty)."""
        return self._by_event.get(event, [])

    def __contains__(self, event: str) -> bool:
        return event in self._by_event

    def __len__(self) -> int:
        return len(self.instances)

    def describe(self) -> str:
        """Paper-style row rendering, e.g. ``(C:1,[G1,G2]), (C:0,[G3,G3])``."""
        return ", ".join(instance.describe() for instance in self.instances)
