"""Temporal relations between event instances (paper Table III, Property 1).

The paper defines three Allen-style relations between two event instances
``ei = (omega_i, [ts_i, te_i])`` and ``ej = (omega_j, [ts_j, te_j])`` with a
tolerance buffer ``epsilon`` and a minimal overlapping duration ``do``:

* **Follows**  ``ei -> ej``:   ``te_i +- eps <= ts_j``
* **Contains** ``ei >= ej``:   ``ts_i <= ts_j`` and ``te_i +- eps >= te_j``
* **Overlaps** ``ei ~ ej``:    ``ts_i < ts_j`` and ``te_i +- eps < te_j``
  and ``te_i - ts_j >= do +- eps``

Interval arithmetic
-------------------
Instance intervals are *inclusive granule index* pairs, so we convert the
end to the half-open bound ``te + 1`` before comparing.  With that
convention, ``[G1,G2]`` followed by ``[G3,G4]`` is adjacency (a Follows),
and the overlap length of ``[G1,G2]`` and ``[G2,G3]`` is exactly one
granule -- matching how Table IV's sequences read.

Mutual exclusivity
------------------
For ``epsilon = 0`` the three conditions are mutually exclusive exactly as
proved in the paper's appendix.  For ``epsilon > 0`` the tolerance widens
each condition, so we evaluate in the fixed order Contains -> Follows ->
Overlaps; the first match wins, which preserves Property 1 by construction
while keeping the intended tolerance semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events.event import EventInstance
from repro.exceptions import ConfigError

FOLLOWS = "Follows"
CONTAINS = "Contains"
OVERLAPS = "Overlaps"

#: The relation set of Def. 3.8, in evaluation order.
RELATIONS = (CONTAINS, FOLLOWS, OVERLAPS)

#: Pretty operators used by the paper (and our reports).
RELATION_SYMBOLS = {FOLLOWS: "->", CONTAINS: ">=", OVERLAPS: "~"}


@dataclass(frozen=True)
class RelationConfig:
    """Tolerance buffer and minimal overlap duration for relation checks.

    ``epsilon`` and ``min_overlap`` (the paper's ``do``) are measured in
    fine granules.  Defaults (0, 1) give the exact Table III semantics with
    at least one shared granule required for an Overlaps.
    """

    epsilon: int = 0
    min_overlap: int = 1

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ConfigError(f"epsilon must be >= 0, got {self.epsilon}")
        if self.min_overlap < 1:
            raise ConfigError(f"min_overlap (do) must be >= 1, got {self.min_overlap}")


DEFAULT_RELATION_CONFIG = RelationConfig()


def order_pair(
    first: EventInstance, second: EventInstance
) -> tuple[EventInstance, EventInstance]:
    """Order two instances chronologically (earlier start first; on ties the
    longer instance first so a Contains reads left-to-right)."""
    if second.sort_key() < first.sort_key():
        return second, first
    return first, second


def relation_of_bounds(
    start_i: int,
    end_i: int,
    start_j: int,
    end_j: int,
    epsilon: int,
    min_overlap: int,
) -> str | None:
    """Relation of an *ordered* pair of inclusive interval bounds.

    The scalar core of Table III, phrased directly on the inclusive
    ``[start, end]`` granule bounds (the half-open ``+1`` of the interval
    arithmetic is folded into the comparisons).  The sweep-join kernels
    of :mod:`repro.core.stpm` inline exactly these comparisons on their
    instance columns; this function is the single place their semantics
    are written down (and property-tested against
    :func:`relation_between`).
    """
    if start_i <= start_j and end_j <= end_i + epsilon:
        return CONTAINS
    if start_j >= end_i + 1 - epsilon:
        return FOLLOWS
    # Overlap length is (end_i + 1) - start_j, > 0 here since the
    # Follows test above failed.
    if (
        start_i < start_j
        and end_i + epsilon < end_j
        and end_i + 1 - start_j >= min_overlap - epsilon
    ):
        return OVERLAPS
    return None


def relation_masks_of_bounds(np, s1, e1, s2, e2, epsilon: int, min_overlap: int):
    """Vectorized :func:`relation_of_bounds` over parallel bound arrays.

    ``np`` is the numpy module (passed in so this module never imports
    it); the four arguments are int64 arrays of *ordered* pair bounds.
    Returns ``(contains, follows, overlaps)`` boolean masks -- mutually
    exclusive by construction, evaluated in the same Contains -> Follows
    -> Overlaps order as the scalar classifier, so
    ``relation_of_bounds(s1[i], e1[i], s2[i], e2[i], ...)`` is Contains/
    Follows/Overlaps/None exactly where the masks say.  This is the
    batched near-window classification core of the array kernels
    (:mod:`repro.core.array_kernel`).
    """
    contains = (s1 <= s2) & (e2 <= e1 + epsilon)
    follows = ~contains & (s2 >= e1 + 1 - epsilon)
    overlaps = (
        ~contains
        & ~follows
        & (s1 < s2)
        & (e1 + epsilon < e2)
        & (e1 + 1 - s2 >= min_overlap - epsilon)
    )
    return contains, follows, overlaps


def relation_between(
    earlier: EventInstance,
    later: EventInstance,
    config: RelationConfig = DEFAULT_RELATION_CONFIG,
) -> str | None:
    """Relation of an *ordered* instance pair, or ``None`` if none holds.

    ``earlier`` must not start after ``later`` (callers normally go through
    :func:`order_pair`).  Returns one of :data:`FOLLOWS`,
    :data:`CONTAINS`, :data:`OVERLAPS`, or ``None`` when the pair overlaps
    for less than ``do`` without containment.
    """
    return relation_of_bounds(
        earlier.start,
        earlier.end,
        later.start,
        later.end,
        config.epsilon,
        config.min_overlap,
    )


def relation_of_pair(
    a: EventInstance,
    b: EventInstance,
    config: RelationConfig = DEFAULT_RELATION_CONFIG,
) -> tuple[str, EventInstance, EventInstance] | None:
    """Order a pair chronologically and compute its relation triple.

    Returns ``(relation, earlier, later)`` or ``None``.  This is the
    building block for relation triples ``(r_ij, E_i, E_j)`` of Def. 3.8.
    """
    earlier, later = order_pair(a, b)
    relation = relation_between(earlier, later, config)
    if relation is None:
        return None
    return relation, earlier, later


def format_triple(relation: str, earlier_event: str, later_event: str) -> str:
    """Render a relation triple in the paper's operator notation."""
    return f"{earlier_event} {RELATION_SYMBOLS[relation]} {later_event}"
