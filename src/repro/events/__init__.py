"""Temporal events, instances and relations (paper Sec. III-C).

* :class:`~repro.events.event.EventInstance` -- one occurrence
  ``(event, [ts, te])`` of a temporal event.
* :class:`~repro.events.event.TemporalEvent` -- an event ``(omega, T)``
  with its full set of occurrence intervals.
* :mod:`repro.events.relations` -- the Follows / Contains / Overlaps
  relations of Table III with tolerance buffer epsilon and minimal overlap
  duration ``do``, mutually exclusive per the paper's Property 1.
* :class:`~repro.events.sequence.TemporalSequence` -- the ordered list of
  event instances inside one coarse granule (paper Def. 3.10).
"""

from repro.events.event import EventInstance, TemporalEvent
from repro.events.relations import (
    CONTAINS,
    FOLLOWS,
    OVERLAPS,
    RELATIONS,
    RelationConfig,
    relation_between,
)
from repro.events.sequence import TemporalSequence

__all__ = [
    "EventInstance",
    "TemporalEvent",
    "TemporalSequence",
    "RelationConfig",
    "relation_between",
    "FOLLOWS",
    "CONTAINS",
    "OVERLAPS",
    "RELATIONS",
]
