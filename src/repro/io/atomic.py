"""Crash-safe file writes.

Every durable artifact the library produces (stream checkpoints, result
archives, traces, analysis baselines, job-progress checkpoints) goes
through :func:`write_text_atomic`: write to a temp file *in the target
directory*, fsync, then ``os.replace`` onto the destination.  A crash
at any point leaves either the complete previous file or the complete
new file -- never a truncated hybrid -- because the rename is atomic on
POSIX and the temp file lives on the same filesystem.

The gap between writing the temp file and the rename is a ``write``
fault-injection site (:func:`repro.resilience.faults.maybe_fault`), so
the chaos suite can simulate a crash mid-write and assert the previous
file survived.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro.resilience.faults import maybe_fault

__all__ = ["write_text_atomic"]

# Monotonic per-process write counter so fault plans can target "the
# k-th durable write" of a run.
_WRITE_INDEX = 0


def write_text_atomic(path: str | Path, text: str, *, encoding: str = "utf-8") -> Path:
    """Write *text* to *path* so a crash never leaves a partial file.

    The temp file is created with :func:`tempfile.mkstemp` in the
    target's directory (same filesystem, so the final ``os.replace`` is
    a true atomic rename) and fsynced before the rename, so the new
    content is durable before it becomes visible.  On any failure --
    including an injected ``write`` fault -- the temp file is removed
    and the previous *path* content is untouched.

    Returns the target as a :class:`~pathlib.Path`.
    """
    global _WRITE_INDEX
    target = Path(path)
    parent = target.parent
    parent.mkdir(parents=True, exist_ok=True)
    index = _WRITE_INDEX
    _WRITE_INDEX += 1
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=parent
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            # Chaos site: an "interrupt" here is a crash after the data
            # was written but before it was durable or visible.
            maybe_fault("write", index=index, key=str(target))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target
