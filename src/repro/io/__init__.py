"""Input/output helpers: CSV ingestion, JSON result archives, and
stream checkpoints."""

from repro.io.csv_data import load_csv_series, save_csv_series
from repro.io.results_json import (
    load_results_archive,
    multigrain_from_json,
    multigrain_to_json,
    result_from_json,
    result_to_json,
)
from repro.io.stream_checkpoint import (
    load_stream_checkpoint,
    save_stream_checkpoint,
)

__all__ = [
    "load_csv_series",
    "save_csv_series",
    "result_to_json",
    "result_from_json",
    "multigrain_to_json",
    "multigrain_from_json",
    "load_results_archive",
    "save_stream_checkpoint",
    "load_stream_checkpoint",
]
