"""Input/output helpers: CSV ingestion and JSON result serialization."""

from repro.io.csv_data import load_csv_series, save_csv_series
from repro.io.results_json import result_from_json, result_to_json

__all__ = [
    "load_csv_series",
    "save_csv_series",
    "result_to_json",
    "result_from_json",
]
