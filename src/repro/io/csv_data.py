"""CSV ingestion for user data.

The expected layout is one column per series with a header row; every row
is one time instant of the fine granularity G (chronological order).  An
optional leading timestamp column is skipped via ``skip_columns``.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.exceptions import DatasetError
from repro.symbolic.series import TimeSeries


def load_csv_series(
    path: str | Path,
    delimiter: str = ",",
    skip_columns: int = 0,
) -> list[TimeSeries]:
    """Load every column of a CSV file as a :class:`TimeSeries`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such CSV file: {path}")
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise DatasetError(f"CSV file {path} is empty") from None
        names = [name.strip() for name in header[skip_columns:]]
        if not names:
            raise DatasetError(f"CSV file {path} has no data columns")
        columns: list[list[float]] = [[] for _ in names]
        for line_number, row in enumerate(reader, start=2):
            values = row[skip_columns:]
            if len(values) != len(names):
                raise DatasetError(
                    f"{path}:{line_number}: expected {len(names)} values, "
                    f"got {len(values)}"
                )
            for index, cell in enumerate(values):
                try:
                    columns[index].append(float(cell))
                except ValueError:
                    raise DatasetError(
                        f"{path}:{line_number}: non-numeric value {cell!r} "
                        f"in column {names[index]!r}"
                    ) from None
    if not columns[0]:
        raise DatasetError(f"CSV file {path} has a header but no rows")
    return [TimeSeries(name, tuple(column)) for name, column in zip(names, columns)]


def save_csv_series(
    series_list: list[TimeSeries],
    path: str | Path,
    delimiter: str = ",",
) -> None:
    """Write series as CSV columns (the inverse of :func:`load_csv_series`)."""
    if not series_list:
        raise DatasetError("nothing to save: empty series list")
    lengths = {len(series) for series in series_list}
    if len(lengths) != 1:
        raise DatasetError(f"series lengths differ: {sorted(lengths)}")
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow([series.name for series in series_list])
        for row in zip(*(series.values for series in series_list)):
            writer.writerow([f"{value:.10g}" for value in row])
