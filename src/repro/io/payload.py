"""Shared loading of versioned JSON payloads (results, checkpoints).

Every archive format of the :mod:`repro.io` layer is a JSON object with
an explicit ``format_version``.  This helper centralizes the common
scaffolding -- path-vs-text sniffing, parse-error wrapping, object and
version checks -- so the formats reject foreign payloads identically.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import ReproError


def load_versioned_payload(
    source: str | Path, expected_version: int, what: str
) -> dict:
    """Parse ``source`` (a path or JSON text) into a version-checked dict.

    Raises :class:`ReproError` with a ``what``-specific message when the
    payload is unparseable, not a JSON object, or carries a
    ``format_version`` other than ``expected_version``.
    """
    if isinstance(source, Path) or (
        isinstance(source, str) and not source.lstrip().startswith(("{", "["))
    ):
        try:
            text = Path(source).read_text()
        except OSError as error:
            raise ReproError(f"cannot read {what} file: {error}") from None
    else:
        text = source
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ReproError(f"invalid {what} JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ReproError(
            f"{what} JSON must be an object, got {type(payload).__name__}"
        )
    version = payload.get("format_version")
    if version != expected_version:
        raise ReproError(
            f"unsupported {what} format version {version!r} "
            f"(expected {expected_version})"
        )
    return payload
