"""Shared loading of versioned JSON payloads (results, checkpoints).

Every archive format of the :mod:`repro.io` layer is a JSON object with
an explicit ``format_version``.  This helper centralizes the common
scaffolding -- path-vs-text sniffing, parse-error wrapping, object and
version checks -- so the formats reject foreign payloads identically.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import ReproError


def load_payload(source: str | Path, what: str) -> dict:
    """Parse ``source`` (a path or JSON text) into a dict, version-unchecked.

    Raises :class:`ReproError` with a ``what``-specific message when the
    payload is unreadable, unparseable, or not a JSON object.  Callers
    that dispatch on a payload marker (e.g. the results archive ``kind``)
    sniff first and apply :func:`check_payload_version` afterwards.
    """
    if isinstance(source, Path) or (
        isinstance(source, str) and not source.lstrip().startswith(("{", "["))
    ):
        try:
            text = Path(source).read_text()
        except OSError as error:
            raise ReproError(f"cannot read {what} file: {error}") from None
    else:
        text = source
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ReproError(f"invalid {what} JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ReproError(
            f"{what} JSON must be an object, got {type(payload).__name__}"
        )
    return payload


def check_payload_version(payload: dict, expected_version: int, what: str) -> dict:
    """Return ``payload`` if it carries ``expected_version``, raise otherwise."""
    version = payload.get("format_version")
    if version != expected_version:
        raise ReproError(
            f"unsupported {what} format version {version!r} "
            f"(expected {expected_version})"
        )
    return payload


def load_versioned_payload(
    source: str | Path, expected_version: int, what: str
) -> dict:
    """Parse ``source`` (a path or JSON text) into a version-checked dict.

    Raises :class:`ReproError` with a ``what``-specific message when the
    payload is unparseable, not a JSON object, or carries a
    ``format_version`` other than ``expected_version``.
    """
    return check_payload_version(
        load_payload(source, what), expected_version, what
    )
