"""Durable job-progress checkpoints for long mining runs.

A :class:`JobCheckpoint` records the outcome of every *completed* task
of a long-running dispatch -- the per-group step-2.2 tasks of
:meth:`repro.core.stpm.ESTPM.mine`, the per-level tasks of
:class:`repro.multigrain.engine.HierarchicalMiner` -- so that a run
killed partway (machine crash, interrupt, exhausted pool budget) can be
resumed skipping the finished work (``freqstpfts run/multigrain
--resume PATH``).

The on-disk format is a versioned JSON envelope::

    {
      "format_version": 1,
      "fingerprint": {"job": "estpm", "level": 2, ...},
      "outcomes": {"<task key>": "<base64 pickle>", ...}
    }

* ``fingerprint`` binds the checkpoint to one logical job.  Opening a
  checkpoint *verifies* the stored fingerprint against the resuming
  job's (parameters, dataset shape, job kind) and refuses to resume a
  different job's progress -- silently mixing outcomes from a different
  dataset would fabricate results.  A fresh path simply adopts the
  fingerprint.
* ``outcomes`` maps stable task keys (never list positions -- the
  resumed job may dispatch a different remainder) to pickled outcome
  payloads, base64-wrapped so the envelope stays valid JSON.
* Every write goes through :func:`repro.io.atomic.write_text_atomic`,
  so a crash mid-flush leaves the previous consistent checkpoint.
  Quarantined failures are *not* recorded: a failed task is retried by
  the resumed run.

Pickled outcomes are only as trustworthy as the file they live in;
checkpoints are private job state, not an interchange format.
"""

from __future__ import annotations

import base64
import json
import pickle
from pathlib import Path
from typing import Any, Iterator

from repro.exceptions import ConfigError
from repro.io.atomic import write_text_atomic
from repro.obs import counters as metrics
from repro.obs.logging import get_logger

__all__ = ["JobCheckpoint", "FORMAT_VERSION"]

logger = get_logger(__name__)

FORMAT_VERSION = 1

#: Records buffered between automatic flushes.  Small enough that a
#: crash loses little progress, large enough that checkpointing a
#: many-task level is not one rewrite per task.
DEFAULT_FLUSH_EVERY = 32


class JobCheckpoint:
    """Completed-task outcomes of one job, mirrored to a durable file.

    Opening an existing path loads (and fingerprint-verifies) its
    outcomes; a missing path starts empty and adopts the fingerprint.
    ``record`` buffers outcomes and flushes atomically every
    ``flush_every`` records; callers flush once more when the job
    finishes cleanly (see :meth:`flush`).
    """

    def __init__(
        self,
        path: str | Path,
        fingerprint: dict[str, Any],
        *,
        flush_every: int = DEFAULT_FLUSH_EVERY,
    ):
        if flush_every < 1:
            raise ConfigError(f"flush_every must be >= 1, got {flush_every}")
        self.path = Path(path)
        self.fingerprint = dict(fingerprint)
        self.flush_every = flush_every
        self._outcomes: dict[str, Any] = {}
        self._dirty = 0
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(
                f"cannot read job checkpoint {self.path}: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ConfigError(
                f"job checkpoint {self.path} is not a JSON object"
            )
        version = data.get("format_version")
        if version != FORMAT_VERSION:
            raise ConfigError(
                f"job checkpoint {self.path} has format_version {version!r}; "
                f"this build reads version {FORMAT_VERSION}"
            )
        stored = data.get("fingerprint", {})
        if stored != self.fingerprint:
            raise ConfigError(
                f"job checkpoint {self.path} belongs to a different job: "
                f"stored fingerprint {stored!r} != current {self.fingerprint!r}. "
                "Resuming it here would mix outcomes across jobs; point "
                "--resume at this job's own checkpoint (or a fresh path)."
            )
        for key, blob in data.get("outcomes", {}).items():
            self._outcomes[key] = pickle.loads(base64.b64decode(blob))
        logger.info(
            "job checkpoint loaded",
            extra={"path": str(self.path), "completed": len(self._outcomes)},
        )

    # -- progress queries ----------------------------------------------

    def __len__(self) -> int:
        return len(self._outcomes)

    def __contains__(self, key: str) -> bool:
        return key in self._outcomes

    def get(self, key: str) -> Any:
        """The recorded outcome of a completed task key."""
        return self._outcomes[key]

    def completed_keys(self) -> Iterator[str]:
        return iter(self._outcomes)

    # -- progress recording --------------------------------------------

    def record(self, key: str, outcome: Any) -> None:
        """Record one completed task; flushes every ``flush_every`` records."""
        self._outcomes[key] = outcome
        self._dirty += 1
        if self._dirty >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Atomically persist the current progress (no-op when clean)."""
        if self._dirty == 0 and self.path.exists():
            return
        payload = {
            "format_version": FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "outcomes": {
                key: base64.b64encode(
                    pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)
                ).decode("ascii")
                for key, outcome in self._outcomes.items()
            },
        }
        write_text_atomic(self.path, json.dumps(payload, sort_keys=True) + "\n")
        metrics.inc("resume.checkpoint_flushes")
        self._dirty = 0
