"""JSON serialization of mining results (single- and multi-level).

Persists the full seasonal evidence (support set, near support sets,
seasons) of every pattern, plus the run statistics, so results can be
archived, diffed across runs, or post-processed outside Python.  Two
archive kinds share the pattern payload:

* a flat :class:`~repro.core.results.MiningResult` archive (one mining
  run, ``result_to_json`` / ``result_from_json``);
* a multigrain archive holding one entry per hierarchy level with its
  ratio, resolved thresholds, and provenance (``multigrain_to_json`` /
  ``multigrain_from_json``), readable level-by-level via
  ``freqstpfts query --level``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.config import MiningParams
from repro.core.pattern import TemporalPattern, Triple
from repro.core.results import MiningResult, MiningStats, SeasonalPattern
from repro.core.seasonality import SeasonView
from repro.events.relations import RelationConfig
from repro.exceptions import ReproError
from repro.io.atomic import write_text_atomic
from repro.io.payload import (
    check_payload_version,
    load_payload,
    load_versioned_payload,
)
from repro.multigrain.result import GranularityLevel, MultiGranularityResult

FORMAT_VERSION = 1
MULTIGRAIN_FORMAT_VERSION = 1
MULTIGRAIN_KIND = "multigrain"


def _pattern_to_dict(sp: SeasonalPattern) -> dict:
    return {
        "events": list(sp.pattern.events),
        "triples": [list(triple) for triple in sp.pattern.triples],
        "support": list(sp.seasons.support),
        "near_sets": [list(near) for near in sp.seasons.near_sets],
        "seasons": [list(season) for season in sp.seasons.seasons],
    }


def _pattern_from_dict(payload: dict) -> SeasonalPattern:
    pattern = TemporalPattern(
        tuple(payload["events"]),
        tuple(Triple(*triple) for triple in payload["triples"]),
    )
    view = SeasonView(
        support=tuple(payload["support"]),
        near_sets=tuple(tuple(near) for near in payload["near_sets"]),
        seasons=tuple(tuple(season) for season in payload["seasons"]),
    )
    return SeasonalPattern(pattern, view)


def _result_to_dict(result: MiningResult) -> dict:
    stats = result.stats
    return {
        "patterns": [_pattern_to_dict(sp) for sp in result.patterns],
        "stats": {
            "n_granules": stats.n_granules,
            "n_events_scanned": stats.n_events_scanned,
            "n_candidate_events": stats.n_candidate_events,
            "n_series_pruned": stats.n_series_pruned,
            "n_events_pruned": stats.n_events_pruned,
            "mi_seconds": stats.mi_seconds,
            "mining_seconds": stats.mining_seconds,
            "n_frequent": {str(k): v for k, v in stats.n_frequent.items()},
        },
    }


def _result_from_dict(payload: dict) -> MiningResult:
    stats_payload = payload.get("stats", {})
    stats = MiningStats(
        n_granules=stats_payload.get("n_granules", 0),
        n_events_scanned=stats_payload.get("n_events_scanned", 0),
        n_candidate_events=stats_payload.get("n_candidate_events", 0),
        n_series_pruned=stats_payload.get("n_series_pruned", 0),
        n_events_pruned=stats_payload.get("n_events_pruned", 0),
        mi_seconds=stats_payload.get("mi_seconds", 0.0),
        mining_seconds=stats_payload.get("mining_seconds", 0.0),
        n_frequent={
            int(k): v for k, v in stats_payload.get("n_frequent", {}).items()
        },
    )
    patterns = [_pattern_from_dict(entry) for entry in payload.get("patterns", [])]
    return MiningResult(patterns=patterns, stats=stats)


def result_to_json(result: MiningResult, path: str | Path | None = None) -> str:
    """Serialize a result; optionally also write it to ``path``."""
    payload = {"format_version": FORMAT_VERSION, **_result_to_dict(result)}
    text = json.dumps(payload, indent=2)
    if path is not None:
        write_text_atomic(path, text)
    return text


def result_from_json(source: str | Path) -> MiningResult:
    """Rebuild a :class:`MiningResult` from a JSON string or file path."""
    payload = load_versioned_payload(source, FORMAT_VERSION, "result")
    if payload.get("kind") == MULTIGRAIN_KIND:
        raise ReproError(
            "this archive holds a multigrain result; load it with "
            "multigrain_from_json() (or `freqstpfts query --level`)"
        )
    try:
        return _result_from_dict(payload)
    except (AttributeError, KeyError, TypeError, ValueError) as error:
        raise ReproError(f"malformed result payload: {error!r}") from None


# ---------------------------------------------------------------------------
# Multigrain archives
# ---------------------------------------------------------------------------


def _params_to_dict(params: MiningParams) -> dict:
    return {
        "max_period": params.max_period,
        "min_density": params.min_density,
        "dist_interval": list(params.dist_interval),
        "min_season": params.min_season,
        "max_pattern_length": params.max_pattern_length,
        "relation": {
            "epsilon": params.relation.epsilon,
            "min_overlap": params.relation.min_overlap,
        },
    }


def _params_from_dict(payload: dict) -> MiningParams:
    relation = payload.get("relation", {})
    return MiningParams(
        max_period=payload["max_period"],
        min_density=payload["min_density"],
        dist_interval=tuple(payload["dist_interval"]),
        min_season=payload["min_season"],
        max_pattern_length=payload.get("max_pattern_length", 3),
        relation=RelationConfig(
            epsilon=relation.get("epsilon", 0),
            min_overlap=relation.get("min_overlap", 1),
        ),
    )


def multigrain_to_json(
    result: MultiGranularityResult, path: str | Path | None = None
) -> str:
    """Serialize a multi-level result; optionally also write it to ``path``."""
    payload = {
        "format_version": MULTIGRAIN_FORMAT_VERSION,
        "kind": MULTIGRAIN_KIND,
        "levels": [
            {
                "ratio": level.ratio,
                "n_sequences": level.n_sequences,
                "derived_from": level.derived_from,
                "n_events_screened": level.n_events_screened,
                "n_granules_skipped": level.n_granules_skipped,
                "seconds": level.seconds,
                "params": _params_to_dict(level.params),
                "result": _result_to_dict(level.result),
            }
            for level in result.levels
        ],
    }
    text = json.dumps(payload, indent=2)
    if path is not None:
        write_text_atomic(path, text)
    return text


def multigrain_from_json(source: str | Path) -> MultiGranularityResult:
    """Rebuild a :class:`MultiGranularityResult` from JSON text or a path."""
    payload = load_versioned_payload(
        source, MULTIGRAIN_FORMAT_VERSION, "multigrain result"
    )
    return _multigrain_from_payload(payload)


def _multigrain_from_payload(payload: dict) -> MultiGranularityResult:
    """Parse an already version-checked multigrain payload."""
    if payload.get("kind") != MULTIGRAIN_KIND:
        raise ReproError(
            "this archive is not a multigrain result; load it with "
            "result_from_json()"
        )
    try:
        levels = [
            GranularityLevel(
                ratio=entry["ratio"],
                n_sequences=entry["n_sequences"],
                params=_params_from_dict(entry["params"]),
                result=_result_from_dict(entry["result"]),
                derived_from=entry.get("derived_from"),
                n_events_screened=entry.get("n_events_screened", 0),
                n_granules_skipped=entry.get("n_granules_skipped", 0),
                seconds=entry.get("seconds", 0.0),
            )
            for entry in payload.get("levels", [])
        ]
    except (AttributeError, KeyError, TypeError, ValueError) as error:
        raise ReproError(f"malformed multigrain payload: {error!r}") from None
    if not levels:
        raise ReproError("multigrain archive holds no levels")
    return MultiGranularityResult(levels=levels)


def load_results_archive(
    source: str | Path,
) -> MiningResult | MultiGranularityResult:
    """Load either archive kind, sniffing the ``kind`` marker.

    The CLI ``query`` subcommand uses this so one command reads both flat
    and multigrain archives.  The kind is sniffed *before* the version
    check, so each kind is validated against its own format version.
    """
    payload = load_payload(source, "result")
    if payload.get("kind") == MULTIGRAIN_KIND:
        check_payload_version(
            payload, MULTIGRAIN_FORMAT_VERSION, "multigrain result"
        )
        return _multigrain_from_payload(payload)
    check_payload_version(payload, FORMAT_VERSION, "result")
    try:
        return _result_from_dict(payload)
    except (AttributeError, KeyError, TypeError, ValueError) as error:
        raise ReproError(f"malformed result payload: {error!r}") from None
