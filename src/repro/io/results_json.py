"""JSON serialization of mining results.

Persists the full seasonal evidence (support set, near support sets,
seasons) of every pattern, plus the run statistics, so results can be
archived, diffed across runs, or post-processed outside Python.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.pattern import TemporalPattern, Triple
from repro.core.results import MiningResult, MiningStats, SeasonalPattern
from repro.core.seasonality import SeasonView
from repro.exceptions import ReproError
from repro.io.payload import load_versioned_payload

FORMAT_VERSION = 1


def _pattern_to_dict(sp: SeasonalPattern) -> dict:
    return {
        "events": list(sp.pattern.events),
        "triples": [list(triple) for triple in sp.pattern.triples],
        "support": list(sp.seasons.support),
        "near_sets": [list(near) for near in sp.seasons.near_sets],
        "seasons": [list(season) for season in sp.seasons.seasons],
    }


def _pattern_from_dict(payload: dict) -> SeasonalPattern:
    pattern = TemporalPattern(
        tuple(payload["events"]),
        tuple(Triple(*triple) for triple in payload["triples"]),
    )
    view = SeasonView(
        support=tuple(payload["support"]),
        near_sets=tuple(tuple(near) for near in payload["near_sets"]),
        seasons=tuple(tuple(season) for season in payload["seasons"]),
    )
    return SeasonalPattern(pattern, view)


def result_to_json(result: MiningResult, path: str | Path | None = None) -> str:
    """Serialize a result; optionally also write it to ``path``."""
    stats = result.stats
    payload = {
        "format_version": FORMAT_VERSION,
        "patterns": [_pattern_to_dict(sp) for sp in result.patterns],
        "stats": {
            "n_granules": stats.n_granules,
            "n_events_scanned": stats.n_events_scanned,
            "n_candidate_events": stats.n_candidate_events,
            "n_series_pruned": stats.n_series_pruned,
            "n_events_pruned": stats.n_events_pruned,
            "mi_seconds": stats.mi_seconds,
            "mining_seconds": stats.mining_seconds,
            "n_frequent": {str(k): v for k, v in stats.n_frequent.items()},
        },
    }
    text = json.dumps(payload, indent=2)
    if path is not None:
        Path(path).write_text(text)
    return text


def result_from_json(source: str | Path) -> MiningResult:
    """Rebuild a :class:`MiningResult` from a JSON string or file path."""
    payload = load_versioned_payload(source, FORMAT_VERSION, "result")
    try:
        stats_payload = payload.get("stats", {})
        stats = MiningStats(
            n_granules=stats_payload.get("n_granules", 0),
            n_events_scanned=stats_payload.get("n_events_scanned", 0),
            n_candidate_events=stats_payload.get("n_candidate_events", 0),
            n_series_pruned=stats_payload.get("n_series_pruned", 0),
            n_events_pruned=stats_payload.get("n_events_pruned", 0),
            mi_seconds=stats_payload.get("mi_seconds", 0.0),
            mining_seconds=stats_payload.get("mining_seconds", 0.0),
            n_frequent={
                int(k): v for k, v in stats_payload.get("n_frequent", {}).items()
            },
        )
        patterns = [_pattern_from_dict(entry) for entry in payload.get("patterns", [])]
    except (AttributeError, KeyError, TypeError, ValueError) as error:
        raise ReproError(f"malformed result payload: {error!r}") from None
    return MiningResult(patterns=patterns, stats=stats)
