"""Checkpoint persistence for streaming mining services.

A checkpoint stores everything that *determines* a stream's state -- the
mining thresholds, the symbolizer configuration (mode, breakpoints, raw
history), and the full per-series symbol history -- rather than the
miner's internal tables: the incremental state is a deterministic
function of the symbol stream, so a restore replays the history through a
fresh miner in one catch-up advance and lands on the exact
pre-checkpoint state.  This keeps the format small, diffable, and
forward-portable across internal state refactors.

Payloads are JSON with an explicit ``format_version``; unknown versions
are rejected with a clear :class:`~repro.exceptions.ReproError`, like the
results archive in :mod:`repro.io.results_json`.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.config import MiningParams
from repro.events.relations import RelationConfig
from repro.exceptions import ReproError
from repro.io.atomic import write_text_atomic
from repro.io.payload import load_versioned_payload
from repro.symbolic.alphabet import Alphabet
from repro.symbolic.mapping import ThresholdMapper

STREAM_FORMAT_VERSION = 1


def _params_to_dict(params: MiningParams) -> dict:
    return {
        "max_period": params.max_period,
        "min_density": params.min_density,
        "dist_interval": list(params.dist_interval),
        "min_season": params.min_season,
        "max_pattern_length": params.max_pattern_length,
        "relation": {
            "epsilon": params.relation.epsilon,
            "min_overlap": params.relation.min_overlap,
        },
    }


def _params_from_dict(payload: dict) -> MiningParams:
    relation = payload.get("relation", {})
    return MiningParams(
        max_period=payload["max_period"],
        min_density=payload["min_density"],
        dist_interval=tuple(payload["dist_interval"]),
        min_season=payload["min_season"],
        max_pattern_length=payload.get("max_pattern_length", 3),
        relation=RelationConfig(
            epsilon=relation.get("epsilon", 0),
            min_overlap=relation.get("min_overlap", 1),
        ),
    )


def _symbolizer_to_dict(symbolizer) -> dict | None:
    if symbolizer is None:
        return None
    breakpoints = {}
    for name, mapper in symbolizer.mappers.items():
        if not isinstance(mapper, ThresholdMapper):
            # Restoring would silently re-fit fresh breakpoints and
            # symbolize future data differently; refuse instead.
            raise ReproError(
                f"cannot checkpoint series {name!r}: frozen mapper "
                f"{type(mapper).__name__} is not serializable (only "
                "ThresholdMapper breakpoints are; fit the symbolizer via "
                "StreamingSymbolizer.fit)"
            )
        breakpoints[name] = list(mapper.breakpoints)
    return {
        "mode": symbolizer.mode,
        "alphabets": {
            name: list(alphabet.symbols)
            for name, alphabet in symbolizer.alphabets.items()
        },
        "breakpoints": breakpoints,
        "history": {name: list(values) for name, values in symbolizer.history.items()},
    }


def _symbolizer_from_dict(payload: dict | None):
    from repro.streaming.ingest import StreamingSymbolizer

    if payload is None:
        return None
    alphabets = {
        name: Alphabet(tuple(symbols))
        for name, symbols in payload["alphabets"].items()
    }
    mappers = {
        name: ThresholdMapper(tuple(points), alphabets[name])
        for name, points in payload.get("breakpoints", {}).items()
    }
    symbolizer = StreamingSymbolizer(
        alphabets, mode=payload["mode"], mappers=mappers
    )
    for name, values in payload.get("history", {}).items():
        symbolizer.history[name] = [float(v) for v in values]
    return symbolizer


def save_stream_checkpoint(service, path: str | Path | None = None) -> str:
    """Serialize a :class:`StreamingMiningService`; optionally write it."""
    database = service.database
    miner = service.miner
    payload = {
        "format_version": STREAM_FORMAT_VERSION,
        "params": _params_to_dict(miner.params),
        "support_backend": miner.support_backend,
        "reanchor_every": miner.reanchor_every,
        "ratio": database.ratio,
        "alphabets": {
            name: list(alphabet.symbols)
            for name, alphabet in database.alphabets.items()
        },
        "symbols": {name: list(values) for name, values in database.symbols.items()},
        "symbolizer": _symbolizer_to_dict(service.symbolizer),
    }
    text = json.dumps(payload, indent=2)
    if path is not None:
        write_text_atomic(path, text)
    return text


def load_stream_checkpoint(source: str | Path):
    """Rebuild a :class:`StreamingMiningService` from a checkpoint.

    ``source`` is a path or the JSON text itself.  Raises
    :class:`ReproError` for malformed payloads or unknown versions.
    """
    from repro.streaming.ingest import StreamingDatabase
    from repro.streaming.service import StreamingMiningService

    payload = load_versioned_payload(
        source, STREAM_FORMAT_VERSION, "stream checkpoint"
    )
    try:
        database = StreamingDatabase(
            payload["ratio"],
            {
                name: Alphabet(tuple(symbols))
                for name, symbols in payload.get("alphabets", {}).items()
            },
        )
        symbol_history = payload["symbols"]
        symbolizer = _symbolizer_from_dict(payload.get("symbolizer"))
        service = StreamingMiningService(
            database,
            _params_from_dict(payload["params"]),
            symbolizer=symbolizer,
            support_backend=payload.get("support_backend"),
            reanchor_every=payload.get("reanchor_every"),
        )
        service.push_symbols(symbol_history)
    except (KeyError, TypeError, ValueError) as error:
        raise ReproError(f"malformed stream checkpoint: {error!r}") from None
    return service
