"""The symbolic database ``DSYB`` (paper Def. 3.6, Table II).

``DSYB`` collects the symbolic representations of a set of time series, all
sampled at the same finest granularity G (equal lengths).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SymbolizationError
from repro.symbolic.alphabet import Alphabet
from repro.symbolic.mapping import SymbolMapper
from repro.symbolic.series import SymbolicSeries, TimeSeries


@dataclass
class SymbolicDatabase:
    """A collection of equal-length symbolic series over one time domain."""

    series: dict[str, SymbolicSeries] = field(default_factory=dict)

    @classmethod
    def from_symbolic(cls, series_list: list[SymbolicSeries]) -> "SymbolicDatabase":
        """Build from already-encoded series."""
        database = cls()
        for symbolic in series_list:
            database.add(symbolic)
        return database

    @classmethod
    def from_raw(
        cls, series_list: list[TimeSeries], mapper: SymbolMapper
    ) -> "SymbolicDatabase":
        """Encode raw series with one shared mapper and collect them."""
        return cls.from_symbolic([mapper.encode(raw) for raw in series_list])

    @classmethod
    def from_rows(
        cls, rows: dict[str, str], alphabet: Alphabet | None = None
    ) -> "SymbolicDatabase":
        """Build from compact string rows, e.g. ``{"C": "110100..."}``.

        Convenient for tests reproducing the paper's Table II.  Each
        character is one symbol; the alphabet defaults to binary.
        """
        alphabet = alphabet or Alphabet.binary()
        return cls.from_symbolic(
            [
                SymbolicSeries(name, tuple(row), alphabet)
                for name, row in rows.items()
            ]
        )

    def add(self, symbolic: SymbolicSeries) -> None:
        """Add one symbolic series; lengths and names must stay consistent."""
        if symbolic.name in self.series:
            raise SymbolizationError(f"duplicate series name {symbolic.name!r} in DSYB")
        if self.series and len(symbolic) != self.n_instants:
            raise SymbolizationError(
                f"series {symbolic.name!r} has {len(symbolic)} instants; "
                f"DSYB requires {self.n_instants}"
            )
        self.series[symbolic.name] = symbolic

    @property
    def n_instants(self) -> int:
        """Length of every series (granule count at granularity G)."""
        if not self.series:
            raise SymbolizationError("empty DSYB has no instant count")
        return len(next(iter(self.series.values())))

    @property
    def names(self) -> list[str]:
        """Series names in insertion order."""
        return list(self.series)

    def __len__(self) -> int:
        return len(self.series)

    def __getitem__(self, name: str) -> SymbolicSeries:
        try:
            return self.series[name]
        except KeyError:
            raise SymbolizationError(f"no series named {name!r} in DSYB") from None

    def __contains__(self, name: str) -> bool:
        return name in self.series

    def __iter__(self):
        return iter(self.series.values())

    def subset(self, names: list[str]) -> "SymbolicDatabase":
        """A new DSYB restricted to the given series names (A-STPM pruning)."""
        return SymbolicDatabase.from_symbolic([self[name] for name in names])

    def event_keys(self) -> list[str]:
        """Every possible event identifier ``series:symbol`` in the database."""
        keys: list[str] = []
        for symbolic in self.series.values():
            keys.extend(symbolic.event_keys())
        return keys
