"""Symbol alphabets (the ``Sigma_X`` of paper Def. 3.5)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SymbolizationError


@dataclass(frozen=True)
class Alphabet:
    """A finite, ordered set of permitted symbols for one series.

    Symbols are strings (``"1"``, ``"Low"``, ``"High"`` ...).  Order matters
    for ordinal mappers: ``symbols[0]`` encodes the lowest value bin.
    """

    symbols: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.symbols:
            raise SymbolizationError("an alphabet needs at least one symbol")
        if len(set(self.symbols)) != len(self.symbols):
            raise SymbolizationError(f"duplicate symbols in alphabet {self.symbols}")

    @classmethod
    def binary(cls) -> "Alphabet":
        """The ON/OFF alphabet of the paper's running example."""
        return cls(("0", "1"))

    @classmethod
    def levels(cls, names: list[str] | tuple[str, ...]) -> "Alphabet":
        """An alphabet from ordered level names, lowest first."""
        return cls(tuple(names))

    def __len__(self) -> int:
        return len(self.symbols)

    def __iter__(self):
        return iter(self.symbols)

    def __contains__(self, symbol: str) -> bool:
        return symbol in self.symbols

    def index(self, symbol: str) -> int:
        """Ordinal index of a symbol (0 = lowest bin)."""
        try:
            return self.symbols.index(symbol)
        except ValueError:
            raise SymbolizationError(
                f"symbol {symbol!r} not in alphabet {self.symbols}"
            ) from None
