"""SAX symbolization (Lin et al. [41], cited by paper Def. 3.5).

Classic SAX z-normalizes a series and bins it with breakpoints that divide
the standard normal distribution into equiprobable regions.  We implement
the standard two steps:

* optional PAA (piecewise aggregate approximation) with frame size ``w``;
* Gaussian equiprobable breakpoints via the normal quantile function.

The normal quantile is computed with the Acklam rational approximation so
the core library stays scipy-free (scipy is only a test dependency).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SymbolizationError
from repro.symbolic.alphabet import Alphabet
from repro.symbolic.series import SymbolicSeries, TimeSeries

# Acklam's rational approximation coefficients for the inverse normal CDF.
_A = (
    -3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
    1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00,
)
_B = (
    -5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
    6.680131188771972e01, -1.328068155288572e01,
)
_C = (
    -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
    -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00,
)
_D = (
    7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
    3.754408661907416e00,
)
_P_LOW = 0.02425
_P_HIGH = 1.0 - _P_LOW


def inverse_normal_cdf(p: float) -> float:
    """Quantile function of the standard normal (Acklam approximation).

    Accurate to ~1.15e-9 over (0, 1); raises for p outside (0, 1).
    """
    if not 0.0 < p < 1.0:
        raise SymbolizationError(f"quantile probability must be in (0,1), got {p}")
    if p < _P_LOW:
        q = np.sqrt(-2.0 * np.log(p))
        return (((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]) / (
            (((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0
        )
    if p > _P_HIGH:
        q = np.sqrt(-2.0 * np.log(1.0 - p))
        return -(((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]) / (
            (((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0
        )
    q = p - 0.5
    r = q * q
    return (((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4]) * r + _A[5]) * q / (
        ((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4]) * r + 1.0
    )


def sax_breakpoints(alphabet_size: int) -> np.ndarray:
    """Equiprobable standard-normal breakpoints for ``alphabet_size`` bins."""
    if alphabet_size < 2:
        raise SymbolizationError(f"SAX needs an alphabet of >= 2, got {alphabet_size}")
    probs = np.arange(1, alphabet_size) / alphabet_size
    return np.array([inverse_normal_cdf(p) for p in probs])


def paa(values: np.ndarray, frame: int) -> np.ndarray:
    """Piecewise aggregate approximation with frame size ``frame``.

    Trailing values that do not fill a frame are averaged into a final
    shorter frame, so no data is silently dropped.
    """
    if frame < 1:
        raise SymbolizationError(f"PAA frame size must be >= 1, got {frame}")
    if frame == 1:
        return values.copy()
    n_full = len(values) // frame
    means = [values[i * frame : (i + 1) * frame].mean() for i in range(n_full)]
    if len(values) % frame:
        means.append(values[n_full * frame :].mean())
    return np.asarray(means)


@dataclass(frozen=True)
class SaxMapper:
    """SAX mapping: z-normalize, (optionally) PAA, bin with normal breakpoints.

    Note on granularity: the paper's Def. 3.5 requires the mapping to be
    1-to-1 per instant, so by default ``frame == 1`` (no PAA).  With
    ``frame > 1`` each PAA frame's symbol is repeated ``frame`` times to
    keep the output aligned with the input instants.
    """

    alphabet: Alphabet
    frame: int = 1

    def encode(self, series: TimeSeries) -> SymbolicSeries:
        values = series.as_array()
        std = values.std()
        if std == 0.0:
            # A constant series z-normalizes to all-zeros: middle symbol.
            mid = self.alphabet.symbols[len(self.alphabet) // 2]
            return SymbolicSeries(series.name, (mid,) * len(series), self.alphabet)
        normalized = (values - values.mean()) / std
        frames = paa(normalized, self.frame)
        breakpoints = sax_breakpoints(len(self.alphabet))
        bins = np.searchsorted(breakpoints, frames, side="right")
        symbols: list[str] = []
        for b in bins:
            symbols.extend([self.alphabet.symbols[b]] * self.frame)
        symbols = symbols[: len(series)]
        if len(symbols) < len(series):  # short trailing frame was averaged
            symbols.extend([symbols[-1]] * (len(series) - len(symbols)))
        return SymbolicSeries(series.name, tuple(symbols), self.alphabet)
