"""SAX symbolization (Lin et al. [41], cited by paper Def. 3.5).

Classic SAX z-normalizes a series and bins it with breakpoints that divide
the standard normal distribution into equiprobable regions.  We implement
the standard two steps:

* optional PAA (piecewise aggregate approximation) with frame size ``w``;
* Gaussian equiprobable breakpoints via the normal quantile function.

The normal quantile is computed with the Acklam rational approximation so
the core library stays scipy-free (scipy is only a test dependency).

Both steps are vectorized when the numpy compute backend is active (one
reshape-mean for all PAA frames, one ``searchsorted`` + object-array
lookup for all symbols) and fall back to pure-Python twins under
``REPRO_COMPUTE=python`` -- see :func:`repro.core.config.get_numpy`.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass

from repro.core.config import get_numpy
from repro.exceptions import SymbolizationError
from repro.symbolic.alphabet import Alphabet
from repro.symbolic.series import SymbolicSeries, TimeSeries

# Acklam's rational approximation coefficients for the inverse normal CDF.
_A = (
    -3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
    1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00,
)
_B = (
    -5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
    6.680131188771972e01, -1.328068155288572e01,
)
_C = (
    -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
    -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00,
)
_D = (
    7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
    3.754408661907416e00,
)
_P_LOW = 0.02425
_P_HIGH = 1.0 - _P_LOW


def inverse_normal_cdf(p: float) -> float:
    """Quantile function of the standard normal (Acklam approximation).

    Accurate to ~1.15e-9 over (0, 1); raises for p outside (0, 1).
    """
    if not 0.0 < p < 1.0:
        raise SymbolizationError(f"quantile probability must be in (0,1), got {p}")
    if p < _P_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]) / (
            (((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0
        )
    if p > _P_HIGH:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]) / (
            (((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0
        )
    q = p - 0.5
    r = q * q
    return (((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4]) * r + _A[5]) * q / (
        ((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4]) * r + 1.0
    )


def sax_breakpoints(alphabet_size: int) -> tuple[float, ...]:
    """Equiprobable standard-normal breakpoints for ``alphabet_size`` bins."""
    if alphabet_size < 2:
        raise SymbolizationError(f"SAX needs an alphabet of >= 2, got {alphabet_size}")
    return tuple(
        inverse_normal_cdf(i / alphabet_size) for i in range(1, alphabet_size)
    )


def paa(values, frame: int):
    """Piecewise aggregate approximation with frame size ``frame``.

    Trailing values that do not fill a frame are averaged into a final
    shorter frame, so no data is silently dropped.  Returns a numpy array
    on the numpy backend (all full frames averaged by one reshaped
    ``mean(axis=1)``) and a plain list under ``REPRO_COMPUTE=python``.
    """
    if frame < 1:
        raise SymbolizationError(f"PAA frame size must be >= 1, got {frame}")
    np = get_numpy()
    if np is not None:
        arr = np.asarray(values, dtype=float)
        if frame == 1:
            return arr.copy()
        n_full = len(arr) // frame
        means = arr[: n_full * frame].reshape(n_full, frame).mean(axis=1)
        if len(arr) % frame:
            means = np.append(means, arr[n_full * frame :].mean())
        return means
    data = [float(v) for v in values]
    if frame == 1:
        return data
    n_full = len(data) // frame
    means = [
        math.fsum(data[i * frame : (i + 1) * frame]) / frame for i in range(n_full)
    ]
    if len(data) % frame:
        tail = data[n_full * frame :]
        means.append(math.fsum(tail) / len(tail))
    return means


@dataclass(frozen=True)
class SaxMapper:
    """SAX mapping: z-normalize, (optionally) PAA, bin with normal breakpoints.

    Note on granularity: the paper's Def. 3.5 requires the mapping to be
    1-to-1 per instant, so by default ``frame == 1`` (no PAA).  With
    ``frame > 1`` each PAA frame's symbol is repeated ``frame`` times to
    keep the output aligned with the input instants.
    """

    alphabet: Alphabet
    frame: int = 1

    def encode(self, series: TimeSeries) -> SymbolicSeries:
        np = get_numpy()
        if np is None:
            return self._encode_scalar(series)
        values = series.as_array()
        std = values.std()
        if std == 0.0:
            # A constant series z-normalizes to all-zeros: middle symbol.
            mid = self.alphabet.symbols[len(self.alphabet) // 2]
            return SymbolicSeries(series.name, (mid,) * len(series), self.alphabet)
        normalized = (values - values.mean()) / std
        frames = paa(normalized, self.frame)
        breakpoints = np.asarray(sax_breakpoints(len(self.alphabet)))
        bins = np.searchsorted(breakpoints, frames, side="right")
        codes = bins if self.frame == 1 else np.repeat(bins, self.frame)
        codes = codes[: len(series)]
        if len(codes) < len(series):  # short trailing frame was averaged
            codes = np.append(codes, np.full(len(series) - len(codes), codes[-1]))
        return SymbolicSeries.from_codes(series.name, codes, self.alphabet)

    def _encode_scalar(self, series: TimeSeries) -> SymbolicSeries:
        """Pure-Python twin of :meth:`encode` (``REPRO_COMPUTE=python``)."""
        values = series.values
        n = len(values)
        mean = math.fsum(values) / n
        std = math.sqrt(math.fsum((v - mean) ** 2 for v in values) / n)
        if std == 0.0:
            mid = self.alphabet.symbols[len(self.alphabet) // 2]
            return SymbolicSeries(series.name, (mid,) * n, self.alphabet)
        normalized = [(v - mean) / std for v in values]
        frames = paa(normalized, self.frame)
        breakpoints = sax_breakpoints(len(self.alphabet))
        alphabet_symbols = self.alphabet.symbols
        symbols: list[str] = []
        for value in frames:
            symbol = alphabet_symbols[bisect_right(breakpoints, value)]
            symbols.extend([symbol] * self.frame)
        symbols = symbols[:n]
        if len(symbols) < n:  # short trailing frame was averaged
            symbols.extend([symbols[-1]] * (n - len(symbols)))
        return SymbolicSeries(series.name, tuple(symbols), self.alphabet)
