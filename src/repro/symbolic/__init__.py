"""Symbolic representation of time series (paper Sec. III-B).

Raw time series are encoded into symbolic series through a mapping function
``f: X -> Sigma_X`` (paper Def. 3.5).  The subpackage provides:

* :class:`~repro.symbolic.series.TimeSeries` and
  :class:`~repro.symbolic.series.SymbolicSeries` -- the raw and encoded
  series containers.
* :class:`~repro.symbolic.alphabet.Alphabet` -- a finite symbol set.
* Mapping functions in :mod:`repro.symbolic.mapping` (threshold and
  quantile binning) and :mod:`repro.symbolic.sax` (SAX, Lin et al. [41]).
* :class:`~repro.symbolic.database.SymbolicDatabase` -- the symbolic
  database ``DSYB`` (paper Def. 3.6, Table II).
"""

from repro.symbolic.alphabet import Alphabet
from repro.symbolic.database import SymbolicDatabase
from repro.symbolic.mapping import (
    QuantileMapper,
    SymbolMapper,
    ThresholdMapper,
)
from repro.symbolic.sax import SaxMapper, sax_breakpoints
from repro.symbolic.series import SymbolicSeries, TimeSeries

__all__ = [
    "Alphabet",
    "TimeSeries",
    "SymbolicSeries",
    "SymbolMapper",
    "ThresholdMapper",
    "QuantileMapper",
    "SaxMapper",
    "sax_breakpoints",
    "SymbolicDatabase",
]
