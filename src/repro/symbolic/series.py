"""Raw and symbolic time-series containers (paper Def. 3.5).

A :class:`TimeSeries` is a chronologically ordered sequence of float values
sampled at every instant of the finest granularity G.  A
:class:`SymbolicSeries` is its 1-to-1 encoding into alphabet symbols, so it
shares the granularity of the raw series.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.config import get_numpy
from repro.exceptions import SymbolizationError
from repro.symbolic.alphabet import Alphabet


@dataclass(frozen=True)
class TimeSeries:
    """A named, uniformly sampled raw series.

    Parameters
    ----------
    name:
        Series identifier, e.g. ``"C"`` (Cooker) or ``"Temperature"``.
    values:
        The data values in chronological order.
    """

    name: str
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SymbolizationError("a time series needs a non-empty name")
        if not self.values:
            raise SymbolizationError(f"time series {self.name!r} has no values")

    @classmethod
    def from_array(cls, name: str, values) -> "TimeSeries":
        """Build from any iterable / numpy array of numbers."""
        return cls(name, tuple(float(v) for v in values))

    def __len__(self) -> int:
        return len(self.values)

    def as_array(self):
        """The values as a float numpy array (copy).

        Only meaningful on the numpy backend; the pure-Python twins work
        from :attr:`values` directly and never call this.
        """
        np = get_numpy()
        if np is None:
            raise SymbolizationError(
                "TimeSeries.as_array() needs the numpy backend "
                "(REPRO_COMPUTE=python selected or numpy unavailable); "
                "use .values on the pure path"
            )
        return np.asarray(self.values, dtype=float)


@dataclass(frozen=True)
class SymbolicSeries:
    """A symbolic series ``XS`` -- the encoded form of one raw series.

    The encoding is 1-to-1 (one symbol per instant), so the symbolic series
    has the same granularity G as the raw series it came from.
    """

    name: str
    symbols: tuple[str, ...]
    alphabet: Alphabet
    #: Optional integer alphabet-index encoding of ``symbols``, attached
    #: by the vectorized mappers (``codes[i]`` indexes
    #: ``alphabet.symbols``).  The columnar DSEQ builder consumes it to
    #: stay in machine arrays end to end; ``None`` whenever the series
    #: was built symbol-first.
    codes: object = field(default=None, repr=False, compare=False, hash=False)
    _counts: Counter = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.symbols:
            raise SymbolizationError(f"symbolic series {self.name!r} is empty")
        counts = Counter(self.symbols)
        unknown = set(counts) - set(self.alphabet.symbols)
        if unknown:
            raise SymbolizationError(
                f"series {self.name!r} uses symbols {sorted(unknown)} "
                f"outside its alphabet {self.alphabet.symbols}"
            )
        object.__setattr__(self, "_counts", counts)

    @classmethod
    def from_codes(cls, name: str, codes, alphabet: Alphabet) -> "SymbolicSeries":
        """Build from an integer code array (the vectorized mapper path).

        ``codes`` is an integer array (numpy, or any integer sequence on
        the pure-Python backend) indexing ``alphabet.symbols``.
        The symbol tuple and the per-symbol counts are derived with two
        array operations (``take`` and ``bincount``) instead of the
        per-symbol ``Counter`` validation pass -- the codes themselves
        are range-checked, which implies alphabet membership.
        """
        if len(codes) == 0:
            raise SymbolizationError(f"symbolic series {name!r} is empty")
        n_symbols = len(alphabet.symbols)
        np = get_numpy()
        if np is not None and hasattr(codes, "min"):
            if int(codes.min()) < 0:
                raise SymbolizationError(
                    f"series {name!r} has symbol codes outside its "
                    f"{n_symbols}-symbol alphabet"
                )
            counts = np.bincount(codes, minlength=n_symbols)
            if len(counts) > n_symbols:
                raise SymbolizationError(
                    f"series {name!r} has symbol codes outside its "
                    f"{n_symbols}-symbol alphabet"
                )
            lookup = np.asarray(alphabet.symbols, dtype=object)
            symbols = tuple(lookup[codes].tolist())
            count_map = dict(zip(alphabet.symbols, counts.tolist()))
        else:
            # Pure twin: same range check and count derivation, one pass.
            code_list = [int(code) for code in codes]
            if min(code_list) < 0 or max(code_list) >= n_symbols:
                raise SymbolizationError(
                    f"series {name!r} has symbol codes outside its "
                    f"{n_symbols}-symbol alphabet"
                )
            symbol_lookup = alphabet.symbols
            symbols = tuple(symbol_lookup[code] for code in code_list)
            tally = Counter(code_list)
            count_map = {
                symbol: tally.get(index, 0)
                for index, symbol in enumerate(symbol_lookup)
            }
        series = object.__new__(cls)
        object.__setattr__(series, "name", name)
        object.__setattr__(series, "symbols", symbols)
        object.__setattr__(series, "alphabet", alphabet)
        object.__setattr__(series, "codes", codes)
        object.__setattr__(series, "_counts", Counter(count_map))
        return series

    def __len__(self) -> int:
        return len(self.symbols)

    def __getitem__(self, index: int) -> str:
        return self.symbols[index]

    def event_key(self, symbol: str) -> str:
        """The event identifier ``series:symbol`` used throughout mining.

        The paper writes temporal events as e.g. ``C:1`` -- series C holding
        symbol 1 (Def. 3.7 and Table IV).
        """
        if symbol not in self.alphabet:
            raise SymbolizationError(
                f"symbol {symbol!r} not in alphabet of series {self.name!r}"
            )
        return f"{self.name}:{symbol}"

    def event_keys(self) -> list[str]:
        """All event identifiers this series can produce."""
        return [f"{self.name}:{symbol}" for symbol in self.alphabet]

    def probability(self, symbol: str) -> float:
        """Empirical probability ``p(symbol)`` over the series (Def. 5.1)."""
        return self._counts.get(symbol, 0) / len(self.symbols)

    def probabilities(self) -> dict[str, float]:
        """Empirical distribution over the alphabet (zero-prob symbols kept)."""
        total = len(self.symbols)
        return {symbol: self._counts.get(symbol, 0) / total for symbol in self.alphabet}

    def observed_symbols(self) -> list[str]:
        """Alphabet symbols that actually occur, in alphabet order."""
        return [symbol for symbol in self.alphabet if self._counts.get(symbol, 0) > 0]
