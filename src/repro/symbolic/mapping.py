"""Mapping functions ``f: X -> Sigma_X`` (paper Def. 3.5).

Two general-purpose mappers are provided:

* :class:`ThresholdMapper` -- fixed breakpoints chosen by the caller (the
  paper's ON/OFF device example: ``value > 0 -> "1"``).
* :class:`QuantileMapper` -- data-driven equi-depth breakpoints, the common
  choice for weather/energy level symbols (Low / Medium / High ...).

SAX (Lin et al. [41]), which the paper cites as an example mapping, lives in
:mod:`repro.symbolic.sax` and follows the same protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.exceptions import SymbolizationError
from repro.symbolic.alphabet import Alphabet
from repro.symbolic.series import SymbolicSeries, TimeSeries


@runtime_checkable
class SymbolMapper(Protocol):
    """Protocol for mapping functions from raw values to symbols."""

    def encode(self, series: TimeSeries) -> SymbolicSeries:
        """Encode a raw series into a symbolic series."""
        ...


def _encode_with_breakpoints(
    series: TimeSeries, breakpoints: np.ndarray, alphabet: Alphabet
) -> SymbolicSeries:
    """Shared binning core: value v gets bin ``#{b in breakpoints : b < v}``.

    A value equal to a breakpoint stays in the lower bin, so the paper's
    device example (breakpoint 0.0) maps a 0.0 reading to OFF.
    ``len(breakpoints)`` must be ``len(alphabet) - 1``; bins map to alphabet
    symbols in order (lowest bin -> first symbol).
    """
    if len(breakpoints) != len(alphabet) - 1:
        raise SymbolizationError(
            f"{len(alphabet)} symbols need {len(alphabet) - 1} breakpoints, "
            f"got {len(breakpoints)}"
        )
    if np.any(np.diff(breakpoints) < 0):
        raise SymbolizationError("breakpoints must be non-decreasing")
    bins = np.searchsorted(breakpoints, series.as_array(), side="left")
    symbols = tuple(alphabet.symbols[b] for b in bins)
    return SymbolicSeries(series.name, symbols, alphabet)


@dataclass(frozen=True)
class ThresholdMapper:
    """Fixed-breakpoint binning.

    ``breakpoints`` are the bin upper bounds (inclusive): a value ``v`` maps
    to the first symbol whose breakpoint is ``>= v``; values above every
    breakpoint map to the last symbol.

    Example: ``ThresholdMapper((0.0,), Alphabet.binary())`` encodes the
    paper's device-energy series: values ``<= 0`` become ``"0"`` (OFF) and
    values ``> 0`` become ``"1"`` (ON).
    """

    breakpoints: tuple[float, ...]
    alphabet: Alphabet

    def encode(self, series: TimeSeries) -> SymbolicSeries:
        return _encode_with_breakpoints(
            series, np.asarray(self.breakpoints, dtype=float), self.alphabet
        )


@dataclass(frozen=True)
class QuantileMapper:
    """Equi-depth binning: breakpoints at the empirical quantiles.

    With alphabet ``(Low, Medium, High)`` the breakpoints sit at the 1/3 and
    2/3 quantiles of the series' own values, so each symbol covers roughly
    the same number of instants.
    """

    alphabet: Alphabet

    def encode(self, series: TimeSeries) -> SymbolicSeries:
        n_bins = len(self.alphabet)
        if n_bins == 1:
            return SymbolicSeries(
                series.name, (self.alphabet.symbols[0],) * len(series), self.alphabet
            )
        quantiles = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
        breakpoints = np.quantile(series.as_array(), quantiles)
        return _encode_with_breakpoints(series, breakpoints, self.alphabet)


@dataclass(frozen=True)
class ExplicitMapper:
    """A mapper that returns pre-computed symbols (used by dataset builders
    that symbolize with domain-specific rules)."""

    symbols: tuple[str, ...]
    alphabet: Alphabet

    def encode(self, series: TimeSeries) -> SymbolicSeries:
        if len(self.symbols) != len(series):
            raise SymbolizationError(
                f"explicit symbols length {len(self.symbols)} does not match "
                f"series {series.name!r} length {len(series)}"
            )
        return SymbolicSeries(series.name, self.symbols, self.alphabet)
