"""Mapping functions ``f: X -> Sigma_X`` (paper Def. 3.5).

Two general-purpose mappers are provided:

* :class:`ThresholdMapper` -- fixed breakpoints chosen by the caller (the
  paper's ON/OFF device example: ``value > 0 -> "1"``).
* :class:`QuantileMapper` -- data-driven equi-depth breakpoints, the common
  choice for weather/energy level symbols (Low / Medium / High ...).

SAX (Lin et al. [41]), which the paper cites as an example mapping, lives in
:mod:`repro.symbolic.sax` and follows the same protocol.

Binning is vectorized on the numpy compute backend (one ``searchsorted``
over the whole series, one object-array lookup for the symbols) with
pure-Python twins under ``REPRO_COMPUTE=python``.  The scalar quantile
helpers replicate numpy's linear-interpolation quantile bit-for-bit so
the two backends emit byte-identical breakpoints.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from repro.core.config import get_numpy
from repro.exceptions import SymbolizationError
from repro.symbolic.alphabet import Alphabet
from repro.symbolic.series import SymbolicSeries, TimeSeries


@runtime_checkable
class SymbolMapper(Protocol):
    """Protocol for mapping functions from raw values to symbols."""

    def encode(self, series: TimeSeries) -> SymbolicSeries:
        """Encode a raw series into a symbolic series."""
        ...


def interp_quantiles(sorted_values: Sequence[float], n_bins: int) -> list[float]:
    """Interior equi-depth breakpoints of an already-sorted value sequence.

    Pure-Python replica of ``np.quantile(values,
    np.linspace(0, 1, n_bins + 1)[1:-1])`` with the default linear
    interpolation: the probabilities are ``i * (1/n_bins)`` and each
    quantile lerps between its two bracketing order statistics using
    numpy's exact ``_lerp`` formula (``b - d*(1-t)`` for ``t >= 0.5``),
    so the breakpoints match the numpy path to the last bit.  The
    streaming rolling refit calls this directly on its incrementally
    maintained sorted history -- O(n_bins) per refit, no re-sort.
    """
    n = len(sorted_values)
    step = 1.0 / n_bins
    breakpoints: list[float] = []
    for i in range(1, n_bins):
        position = (i * step) * (n - 1)
        low = int(position)
        t = position - low
        a = sorted_values[low]
        b = sorted_values[low + 1] if low + 1 < n else a
        d = b - a
        breakpoints.append(b - d * (1.0 - t) if t >= 0.5 else a + d * t)
    return breakpoints


def quantile_breakpoints(values: Sequence[float], n_bins: int) -> list[float]:
    """Interior equi-depth breakpoints of ``values`` (any order).

    Dispatches to ``np.quantile`` on the numpy backend and to the
    sort + :func:`interp_quantiles` twin otherwise; both produce the
    same floats.
    """
    np = get_numpy()
    if np is not None:
        quantiles = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
        return [float(b) for b in np.quantile(np.asarray(values, dtype=float), quantiles)]
    return interp_quantiles(sorted(float(v) for v in values), n_bins)


def _encode_with_breakpoints(
    series: TimeSeries, breakpoints: Sequence[float], alphabet: Alphabet
) -> SymbolicSeries:
    """Shared binning core: value v gets bin ``#{b in breakpoints : b < v}``.

    A value equal to a breakpoint stays in the lower bin, so the paper's
    device example (breakpoint 0.0) maps a 0.0 reading to OFF.
    ``len(breakpoints)`` must be ``len(alphabet) - 1``; bins map to alphabet
    symbols in order (lowest bin -> first symbol).
    """
    if len(breakpoints) != len(alphabet) - 1:
        raise SymbolizationError(
            f"{len(alphabet)} symbols need {len(alphabet) - 1} breakpoints, "
            f"got {len(breakpoints)}"
        )
    if any(b < a for a, b in zip(breakpoints, breakpoints[1:])):
        raise SymbolizationError("breakpoints must be non-decreasing")
    np = get_numpy()
    if np is not None:
        bins = np.searchsorted(
            np.asarray(breakpoints, dtype=float), series.as_array(), side="left"
        )
        return SymbolicSeries.from_codes(series.name, bins, alphabet)
    else:
        points = [float(b) for b in breakpoints]
        alphabet_symbols = alphabet.symbols
        symbols = tuple(
            alphabet_symbols[bisect_left(points, value)] for value in series.values
        )
    return SymbolicSeries(series.name, symbols, alphabet)


@dataclass(frozen=True)
class ThresholdMapper:
    """Fixed-breakpoint binning.

    ``breakpoints`` are the bin upper bounds (inclusive): a value ``v`` maps
    to the first symbol whose breakpoint is ``>= v``; values above every
    breakpoint map to the last symbol.

    Example: ``ThresholdMapper((0.0,), Alphabet.binary())`` encodes the
    paper's device-energy series: values ``<= 0`` become ``"0"`` (OFF) and
    values ``> 0`` become ``"1"`` (ON).
    """

    breakpoints: tuple[float, ...]
    alphabet: Alphabet

    def encode(self, series: TimeSeries) -> SymbolicSeries:
        return _encode_with_breakpoints(series, self.breakpoints, self.alphabet)


@dataclass(frozen=True)
class QuantileMapper:
    """Equi-depth binning: breakpoints at the empirical quantiles.

    With alphabet ``(Low, Medium, High)`` the breakpoints sit at the 1/3 and
    2/3 quantiles of the series' own values, so each symbol covers roughly
    the same number of instants.
    """

    alphabet: Alphabet

    def encode(self, series: TimeSeries) -> SymbolicSeries:
        n_bins = len(self.alphabet)
        if n_bins == 1:
            return SymbolicSeries(
                series.name, (self.alphabet.symbols[0],) * len(series), self.alphabet
            )
        breakpoints = quantile_breakpoints(series.values, n_bins)
        return _encode_with_breakpoints(series, breakpoints, self.alphabet)


@dataclass(frozen=True)
class ExplicitMapper:
    """A mapper that returns pre-computed symbols (used by dataset builders
    that symbolize with domain-specific rules)."""

    symbols: tuple[str, ...]
    alphabet: Alphabet

    def encode(self, series: TimeSeries) -> SymbolicSeries:
        if len(self.symbols) != len(series):
            raise SymbolizationError(
                f"explicit symbols length {len(self.symbols)} does not match "
                f"series {series.name!r} length {len(series)}"
            )
        return SymbolicSeries(series.name, self.symbols, self.alphabet)
