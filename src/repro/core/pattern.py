"""Temporal patterns (paper Def. 3.8).

A k-event temporal pattern is the list of the ``k(k-1)/2`` relation triples
``(r_ij, E_i, E_j)`` between its events, where the events ``E_1..E_k`` are
taken in the chronological order of the instances that realize the pattern.
Pattern identity is the pair ``(events, triples)``; two occurrences whose
instances order differently (and therefore relate differently) are distinct
patterns, exactly as Def. 3.8 prescribes.

Self-pairs are allowed: the search-space analysis counts ``N2 = P(n,2) + n``
because "the same event can form a pair of events with itself" -- realized
by two *distinct* instances of that event.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import NamedTuple

from repro.events.event import EventInstance
from repro.events.relations import (
    RELATION_SYMBOLS,
    RelationConfig,
    relation_between,
)
from repro.exceptions import MiningError


class Triple(NamedTuple):
    """One relation triple ``(r, E_earlier, E_later)`` of a pattern."""

    relation: str
    first: str
    second: str

    def describe(self) -> str:
        """Operator rendering, e.g. ``C:1 >= D:1``."""
        return f"{self.first} {RELATION_SYMBOLS[self.relation]} {self.second}"


@dataclass(frozen=True, slots=True)
class TemporalPattern:
    """An n-event temporal pattern: events in chronological order + triples.

    ``events`` is the chronologically ordered event tuple ``(E_1..E_k)``;
    ``triples`` holds the relation triples for every index pair ``i < j`` in
    ``combinations`` order.  Both tuples together are the hashable identity.

    The mining kernels flyweight-intern patterns (one object per distinct
    identity per process, see
    :func:`repro.core.instance_index.intern_pattern`); ``slots`` keeps
    the per-object footprint to the two tuples.
    """

    events: tuple[str, ...]
    triples: tuple[Triple, ...]

    def __post_init__(self) -> None:
        k = len(self.events)
        if len(self.triples) != k * (k - 1) // 2:
            raise MiningError(
                f"a {k}-event pattern needs {k * (k - 1) // 2} triples, "
                f"got {len(self.triples)}"
            )

    @property
    def size(self) -> int:
        """Number of events k (the pattern is a k-event pattern)."""
        return len(self.events)

    @property
    def event_group(self) -> tuple[str, ...]:
        """The k-event group as a sorted multiset key (HLHk's ``EHk`` key)."""
        return tuple(sorted(self.events))

    def contains_event(self, event: str) -> bool:
        """The paper's ``E in P`` membership test."""
        return event in self.events

    def is_subpattern_of(self, other: "TemporalPattern") -> bool:
        """``self ⊆ other``: an index-ordered embedding of self's events into
        other's events under which every triple of self appears in other."""
        if self.size > other.size:
            return False
        for indices in combinations(range(other.size), self.size):
            if tuple(other.events[i] for i in indices) != self.events:
                continue
            ok = True
            for (a, b), triple in zip(combinations(range(self.size), 2), self.triples):
                pair_index = _pair_index(other.size, indices[a], indices[b])
                if other.triples[pair_index].relation != triple.relation:
                    ok = False
                    break
            if ok:
                return True
        return False

    def describe(self) -> str:
        """Human-readable rendering; single triple for 2-event patterns,
        semicolon-joined triples otherwise."""
        return "; ".join(triple.describe() for triple in self.triples) or self.events[0]

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.describe()


def _pair_index(k: int, i: int, j: int) -> int:
    """Index of pair (i, j), i<j, in ``combinations(range(k), 2)`` order."""
    # Pairs before row i: sum_{r<i} (k-1-r); offset inside row: j - i - 1.
    return i * (2 * k - i - 1) // 2 + (j - i - 1)


def pattern_from_instances(
    instances: tuple[EventInstance, ...] | list[EventInstance],
    relation: RelationConfig,
) -> TemporalPattern | None:
    """Build the pattern realized by a set of instances, or ``None``.

    Instances are sorted chronologically; all pairwise relations must hold
    (a single unrelated pair -- e.g. a sub-``do`` overlap -- voids the
    pattern, per Def. 3.8).
    """
    ordered = sorted(instances, key=EventInstance.sort_key)
    triples: list[Triple] = []
    for i, j in combinations(range(len(ordered)), 2):
        rel = relation_between(ordered[i], ordered[j], relation)
        if rel is None:
            return None
        triples.append(Triple(rel, ordered[i].event, ordered[j].event))
    return TemporalPattern(tuple(inst.event for inst in ordered), tuple(triples))


def single_event_pattern(event: str) -> TemporalPattern:
    """The degenerate 1-event pattern (a frequent seasonal single event)."""
    return TemporalPattern((event,), ())


def oriented_triple(
    x: EventInstance, y: EventInstance, relation: RelationConfig
) -> tuple[bool, Triple] | None:
    """Relation triple of an instance pair, with orientation.

    Returns ``(x_first, triple)`` where ``x_first`` says whether ``x``
    precedes ``y`` chronologically, or ``None`` when the pair has no
    relation.  Used with a per-granule cache so each instance pair is
    related exactly once per extension batch.
    """
    if x.sort_key() <= y.sort_key():
        rel = relation_between(x, y, relation)
        if rel is None:
            return None
        return True, Triple(rel, x.event, y.event)
    rel = relation_between(y, x, relation)
    if rel is None:
        return None
    return False, Triple(rel, y.event, x.event)


def splice_triples(
    prev_triples: tuple[Triple, ...],
    partner_triples: list[Triple],
    position: int,
    k: int,
) -> tuple[Triple, ...]:
    """Triple list of a k-event pattern built by inserting one event.

    ``prev_triples`` are the parent's triples (pairs not involving the new
    event); ``partner_triples[i]`` relates the parent's i-th instance with
    the new one; ``position`` is the new instance's chronological index.
    The k == 3 case (the bulk of all mining work) is unrolled.
    """
    if k == 3:
        t0, t1 = partner_triples
        previous = prev_triples[0]
        if position == 0:
            return (t0, t1, previous)
        if position == 1:
            return (t0, previous, t1)
        return (previous, t0, t1)
    triples: list[Triple] = []
    old_pair = 0
    for i in range(k):
        for j in range(i + 1, k):
            if i == position:
                triples.append(partner_triples[j - 1])
            elif j == position:
                triples.append(partner_triples[i])
            else:
                triples.append(prev_triples[old_pair])
                old_pair += 1
    return tuple(triples)


def extend_pattern(
    prev_events: tuple[str, ...],
    prev_triples: tuple[Triple, ...],
    assignment: tuple[EventInstance, ...],
    instance: EventInstance,
    relation: RelationConfig,
) -> tuple[tuple[str, ...], tuple[Triple, ...], tuple[EventInstance, ...], tuple[Triple, ...]] | None:
    """Incrementally extend a realized pattern with one new instance.

    ``assignment`` must be the chronologically sorted instances realizing
    the parent pattern ``(prev_events, prev_triples)``.  Only the k-1 new
    pairwise relations are computed; the parent's triples are spliced in
    unchanged (inserting an instance cannot reorder or re-relate the
    existing pairs).  Returns ``(events, triples, new_assignment,
    new_triples)`` -- the last element holds just the triples involving the
    new instance, for the Iterative Check -- or ``None`` if any new pair
    has no relation.
    """
    key = instance.sort_key()
    position = 0
    while position < len(assignment) and assignment[position].sort_key() <= key:
        position += 1
    new_assignment = assignment[:position] + (instance,) + assignment[position:]
    k = len(new_assignment)
    events = prev_events[:position] + (instance.event,) + prev_events[position:]
    partner_triples: list[Triple | None] = [None] * k
    for index, other in enumerate(new_assignment):
        if index == position:
            continue
        if index < position:
            rel = relation_between(other, instance, relation)
            if rel is None:
                return None
            partner_triples[index] = Triple(rel, other.event, instance.event)
        else:
            rel = relation_between(instance, other, relation)
            if rel is None:
                return None
            partner_triples[index] = Triple(rel, instance.event, other.event)
    triples: list[Triple] = []
    old_pair = 0
    for i in range(k):
        for j in range(i + 1, k):
            if i == position:
                triples.append(partner_triples[j])  # type: ignore[arg-type]
            elif j == position:
                triples.append(partner_triples[i])  # type: ignore[arg-type]
            else:
                triples.append(prev_triples[old_pair])
                old_pair += 1
    new_triples = tuple(t for t in partner_triples if t is not None)
    return events, tuple(triples), new_assignment, new_triples
