"""Deprecated multi-granularity loop -- now a shim over :mod:`repro.multigrain`.

The original :class:`MultiGranularityMiner` rebuilt the sequence database
and re-mined every hierarchy level from scratch.  The hierarchical engine
(:class:`repro.multigrain.HierarchicalMiner`) replaces it: the finest
level is built once, coarser levels derive their supports and rows by
folding, and levels are dispatched through the pluggable executors.  This
module keeps the old import path and result shape working (one
:class:`DeprecationWarning` per ``mine_all``) so pre-1.3 callers migrate
at their own pace.

Behavior note: the old ``params_for`` floored *both* ends of the season
distance interval, silently rejecting coarse season distances that were
valid at the fine level; the engine now ceils the upper bound.  Pass
``legacy_dist_floor=True`` to reproduce the old thresholds exactly (the
parity knob for archived results).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.core.config import MiningParams
from repro.core.prune import PruningConfig
from repro.core.results import MiningResult
from repro.multigrain.engine import HierarchicalMiner
from repro.symbolic.database import SymbolicDatabase


@dataclass(frozen=True)
class GranularityLevelResult:
    """The outcome of mining one hierarchy level (legacy shape)."""

    ratio: int
    n_sequences: int
    params: MiningParams
    result: MiningResult


@dataclass
class MultiGranularityMiner:
    """Deprecated facade over :class:`repro.multigrain.HierarchicalMiner`.

    Accepts the historical constructor arguments and returns the
    historical ``list[GranularityLevelResult]``, but mines through the
    hierarchical fold-derived engine.  New code should use
    :class:`~repro.multigrain.HierarchicalMiner` directly -- it exposes
    the cross-level alignment, screening statistics, A-STPM levels, and
    executor dispatch this facade hides.
    """

    dsyb: SymbolicDatabase
    ratios: list[int]
    max_period_pct: float = 0.4
    min_density_pct: float = 0.5
    dist_interval: tuple[int, int] = (0, 10_000)
    min_season: int = 2
    max_pattern_length: int = 3
    pruning: PruningConfig = field(default_factory=PruningConfig.all)
    min_sequences: int = 4
    legacy_dist_floor: bool = False

    def __post_init__(self) -> None:
        # Validate eagerly (the historical contract raised at construction).
        self._engine()

    def _engine(self) -> HierarchicalMiner:
        return HierarchicalMiner(
            dsyb=self.dsyb,
            ratios=self.ratios,
            max_period_pct=self.max_period_pct,
            min_density_pct=self.min_density_pct,
            dist_interval=self.dist_interval,
            min_season=self.min_season,
            max_pattern_length=self.max_pattern_length,
            pruning=self.pruning,
            min_sequences=self.min_sequences,
            legacy_dist_floor=self.legacy_dist_floor,
        )

    def params_for(self, ratio: int, n_sequences: int) -> MiningParams:
        """Resolve the shared configuration against one level."""
        return self._engine().params_for(ratio, n_sequences)

    def mine_all(self) -> list[GranularityLevelResult]:
        """Mine every level, finest ratio first (legacy result shape)."""
        warnings.warn(
            "MultiGranularityMiner is deprecated; use "
            "repro.multigrain.HierarchicalMiner (same thresholds, "
            "fold-derived levels, cross-level alignment)",
            DeprecationWarning,
            stacklevel=2,
        )
        hierarchical = self._engine().mine()
        return [
            GranularityLevelResult(
                ratio=level.ratio,
                n_sequences=level.n_sequences,
                params=level.params,
                result=level.result,
            )
            for level in hierarchical.levels
        ]
