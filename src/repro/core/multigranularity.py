"""Multi-granularity mining (the paper's contribution (1)).

FreqSTPfTS "can mine STP at different data granularities": the same
symbolic database can be sequence-mapped with different ratios (e.g. a
5-minute DSYB into 15-minute, 1-hour, or 1-day sequences) and mined at
each level of the granularity hierarchy.  This module packages that loop:
percentage-valued thresholds are re-resolved against each level's sequence
count so one configuration drives every granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import MiningParams
from repro.core.prune import PruningConfig
from repro.core.results import MiningResult
from repro.core.stpm import ESTPM
from repro.exceptions import ConfigError
from repro.symbolic.database import SymbolicDatabase
from repro.transform.sequence_db import build_sequence_database


@dataclass(frozen=True)
class GranularityLevelResult:
    """The outcome of mining one hierarchy level."""

    ratio: int
    n_sequences: int
    params: MiningParams
    result: MiningResult


@dataclass
class MultiGranularityMiner:
    """Mine one DSYB at several granularities of its hierarchy.

    Parameters
    ----------
    dsyb:
        The symbolic database at the finest granularity G.
    ratios:
        Sequence-mapping ratios, one per coarser granularity H (each must
        leave at least ``min_sequences`` complete sequences).
    max_period_pct / min_density_pct:
        Table VI style percentage thresholds, re-resolved per level.
    dist_interval:
        Season distance interval *in fine granules*; converted to each
        level's granule unit by dividing by the ratio.
    min_season:
        Minimum seasonal occurrence threshold (granularity independent).
    """

    dsyb: SymbolicDatabase
    ratios: list[int]
    max_period_pct: float = 0.4
    min_density_pct: float = 0.5
    dist_interval: tuple[int, int] = (0, 10_000)
    min_season: int = 2
    max_pattern_length: int = 3
    pruning: PruningConfig = field(default_factory=PruningConfig.all)
    min_sequences: int = 4

    def __post_init__(self) -> None:
        if not self.ratios:
            raise ConfigError("multi-granularity mining needs at least one ratio")
        if sorted(set(self.ratios)) != sorted(self.ratios):
            raise ConfigError(f"duplicate ratios in {self.ratios}")

    def params_for(self, ratio: int, n_sequences: int) -> MiningParams:
        """Resolve the shared configuration against one level."""
        dist_min = self.dist_interval[0] // ratio
        dist_max = max(dist_min, self.dist_interval[1] // ratio)
        return MiningParams.from_percentages(
            n_granules=n_sequences,
            max_period_pct=self.max_period_pct,
            min_density_pct=self.min_density_pct,
            dist_interval=(dist_min, dist_max),
            min_season=self.min_season,
            max_pattern_length=self.max_pattern_length,
        )

    def mine_all(self) -> list[GranularityLevelResult]:
        """Mine every level, finest ratio first."""
        levels: list[GranularityLevelResult] = []
        for ratio in sorted(self.ratios):
            n_sequences = self.dsyb.n_instants // ratio
            if n_sequences < self.min_sequences:
                raise ConfigError(
                    f"ratio {ratio} leaves only {n_sequences} sequences "
                    f"(< {self.min_sequences}); drop it or supply more data"
                )
            dseq = build_sequence_database(self.dsyb, ratio)
            params = self.params_for(ratio, n_sequences)
            result = ESTPM(dseq, params, self.pruning).mine()
            levels.append(
                GranularityLevelResult(
                    ratio=ratio,
                    n_sequences=n_sequences,
                    params=params,
                    result=result,
                )
            )
        return levels
