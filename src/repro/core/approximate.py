"""A-STPM: the approximate miner using mutual information (paper Alg. 2).

A-STPM prunes *unpromising time series* before mining:

1. For every unordered series pair ``(XS, YS)`` in DSYB, compute
   ``minNMI = min(NMI(X;Y), NMI(Y;X))`` and the threshold mu from
   Corollary 1.1 (per direction; the more permissive direction is used so
   the filter only removes pairs that fail the bound both ways).
2. Pairs with ``minNMI >= mu`` are *correlated*; their series join ``XC``.
3. Frequent seasonal single events are mined only from the series of
   ``XC``; 2-event groups spanning two different series are mined only
   for correlated pairs; levels k >= 3 run the exact STPM machinery on the
   surviving HLH structures.

The result is a (typically large) subset of E-STPM's patterns, obtained
considerably faster -- the trade-off quantified by the paper's Tables
VII/XII and the accuracy metric in :mod:`repro.metrics.accuracy`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import combinations

from repro.core.bounds import mu_threshold, series_pair_mu
from repro.core.config import MiningParams
from repro.core.executor import MiningExecutor, executor_scope
from repro.core.mi import normalized_mutual_information
from repro.core.prune import PruningConfig
from repro.core.results import MiningResult
from repro.core.stpm import ESTPM
from repro.exceptions import MiningError
from repro.obs import counters as metrics
from repro.obs.trace import span
from repro.symbolic.database import SymbolicDatabase
from repro.transform.sequence_db import TemporalSequenceDatabase, build_sequence_database


@dataclass(frozen=True)
class CorrelationReport:
    """Outcome of the MI screening step."""

    correlated_series: frozenset[str]
    correlated_pairs: frozenset[frozenset[str]]
    all_series: tuple[str, ...]
    mi_seconds: float
    pair_nmi: dict = field(default_factory=dict, compare=False)

    @property
    def n_pruned_series(self) -> int:
        """Series removed from the search space."""
        return len(self.all_series) - len(self.correlated_series)

    @property
    def pruned_series(self) -> list[str]:
        """Names of the pruned series, in DSYB order."""
        return [name for name in self.all_series if name not in self.correlated_series]

    def pruned_series_pct(self) -> float:
        """Percentage of series pruned (paper Table XI)."""
        if not self.all_series:
            return 0.0
        return 100.0 * self.n_pruned_series / len(self.all_series)


def screen_correlated_series(
    dsyb: SymbolicDatabase, params: MiningParams, n_granules: int
) -> CorrelationReport:
    """Alg. 2 lines 1-5: find the correlated series set ``XC``.

    mu is evaluated per direction (Corollary 1.1 depends on which series is
    conditioned); a pair is correlated when ``minNMI`` reaches the smaller
    of the two directional thresholds, keeping the filter conservative.
    """
    started = time.perf_counter()
    names = dsyb.names
    correlated: set[str] = set()
    pairs: set[frozenset[str]] = set()
    pair_nmi: dict[frozenset[str], float] = {}
    for name_x, name_y in combinations(names, 2):
        x, y = dsyb[name_x], dsyb[name_y]
        min_nmi = min(
            normalized_mutual_information(x, y),
            normalized_mutual_information(y, x),
        )
        mu = min(
            series_pair_mu(x, y, params, n_granules),
            series_pair_mu(y, x, params, n_granules),
        )
        if min_nmi >= mu:
            key = frozenset((name_x, name_y))
            pairs.add(key)
            pair_nmi[key] = min_nmi
            correlated.add(name_x)
            correlated.add(name_y)
    return CorrelationReport(
        correlated_series=frozenset(correlated),
        correlated_pairs=frozenset(pairs),
        all_series=tuple(names),
        mi_seconds=time.perf_counter() - started,
        pair_nmi=pair_nmi,
    )


def screen_events(
    dsyb: SymbolicDatabase,
    params: MiningParams,
    n_granules: int,
    report: CorrelationReport,
) -> set[str]:
    """Event-level pruning (the paper's stated future-work extension).

    Within the correlated series, an event ``e = (Y, y)`` is kept only if
    some correlated partner ``X`` of ``Y`` guarantees it: Corollary 1.1's
    per-event threshold ``mu(lambda1_X, p(y))`` must not exceed the pair's
    observed ``minNMI`` -- otherwise even the strongest retained
    correlation cannot certify ``minSeason`` occurrences for ``e``, and it
    is dropped from HLH1.  Returns the kept event keys.
    """
    kept_events: set[str] = set()
    for name_y in report.correlated_series:
        y = dsyb[name_y]
        partners = [
            next(iter(pair - {name_y}))
            for pair in report.correlated_pairs
            if name_y in pair
        ]
        for symbol, lambda2 in y.probabilities().items():
            if lambda2 == 0.0:
                continue
            event = y.event_key(symbol)
            for name_x in partners:
                probabilities_x = [
                    p for p in dsyb[name_x].probabilities().values() if p > 0.0
                ]
                lambda1 = min(probabilities_x)
                mu = mu_threshold(
                    lambda1, lambda2, params.min_season, params.min_density, n_granules
                )
                if mu <= report.pair_nmi[frozenset((name_x, name_y))]:
                    kept_events.add(event)
                    break
    return kept_events


@dataclass
class ASTPM:
    """The approximate seasonal temporal pattern miner (Alg. 2).

    Accepts the symbolic database plus the sequence-mapping ratio so the MI
    screening runs on DSYB (one scan, as the paper notes) while the mining
    runs on DSEQ.  A pre-built DSEQ can be supplied to avoid re-transforming
    in benchmarks.  ``support_backend`` / ``executor`` / ``n_workers`` /
    ``kernel`` / ``strict`` / ``checkpoint_path`` are forwarded to the
    inner :class:`~repro.core.stpm.ESTPM` engine.
    """

    dsyb: SymbolicDatabase
    ratio: int
    params: MiningParams
    pruning: PruningConfig = field(default_factory=PruningConfig.all)
    dseq: TemporalSequenceDatabase | None = None
    event_level: bool = False
    support_backend: str | None = None
    executor: "MiningExecutor | str | None" = None
    n_workers: int | None = None
    kernel: str | None = None
    strict: bool = True
    checkpoint_path: str | None = None

    def mine(self) -> MiningResult:
        """Run MI screening, then the restricted exact mining.

        With ``event_level=True`` the paper's future-work extension also
        drops individual events that no retained correlation can certify
        (see :func:`screen_events`).
        """
        if len(self.dsyb) == 0:
            raise MiningError("cannot mine an empty DSYB")
        with span("astpm/mine", ratio=self.ratio):
            dseq = self.dseq or build_sequence_database(self.dsyb, self.ratio)
            with span("astpm/mi_screening") as screen_span:
                report = screen_correlated_series(self.dsyb, self.params, len(dseq))
                event_filter = None
                if self.event_level:
                    event_filter = screen_events(
                        self.dsyb, self.params, len(dseq), report
                    )
                screen_span.set(
                    correlated_series=len(report.correlated_series),
                    pruned_series=report.n_pruned_series,
                )
            metrics.inc("astpm.series_pruned", report.n_pruned_series)
            # Alg. 2 line 7 iterates pairs *of XC*: once a series survives
            # the MI screening it participates in every 2-event group with
            # other survivors, so only the series filter applies here.  The
            # executor is resolved once and handed to the inner engine as
            # an instance, so a pool-backed backend spawns (and, for name
            # specs, closes) exactly one pool per A-STPM job.
            with executor_scope(self.executor, self.n_workers) as runner:
                miner = ESTPM(
                    dseq,
                    self.params,
                    self.pruning,
                    series_filter=set(report.correlated_series),
                    event_filter=event_filter,
                    support_backend=self.support_backend,
                    executor=runner,
                    kernel=self.kernel,
                    strict=self.strict,
                    checkpoint_path=self.checkpoint_path,
                )
                result = miner.mine()
            result.stats.mi_seconds = report.mi_seconds
            result.stats.n_series_pruned = report.n_pruned_series
        return result

    def screening(self) -> CorrelationReport:
        """Run only the MI screening step (for Table XI style reports)."""
        dseq = self.dseq or build_sequence_database(self.dsyb, self.ratio)
        return screen_correlated_series(self.dsyb, self.params, len(dseq))
