"""Pluggable execution backends for the mining engine.

The candidate-group work of one HLH level (Sec. IV-D: intersect supports,
enumerate instance pairs, grow pattern assignments) is embarrassingly
parallel: groups of the same level never interact, only the finished level
feeds the next one.  :mod:`repro.core.stpm` therefore expresses each level
as a list of *group tasks* -- pure, picklable ``(task) -> outcome``
calls against a read-only :class:`~repro.core.stpm.LevelContext` -- and
hands the list to an executor:

* :class:`SerialExecutor` runs the tasks in order in-process (the default;
  zero overhead, exactly the classical single-threaded miner);
* :class:`ParallelExecutor` fans the tasks out over a
  :class:`concurrent.futures.ProcessPoolExecutor`, shipping the level
  context once per worker (pool initializer) and the tasks in chunks.

Both preserve the submission order of the results, so a
:class:`~repro.core.results.MiningResult` is identical -- same patterns,
same supports, same season views, same ordering -- whichever backend ran
the level (asserted by the parity tests).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.exceptions import ConfigError

#: Executor names accepted wherever a backend can be chosen.
EXECUTOR_SERIAL = "serial"
EXECUTOR_PARALLEL = "parallel"
EXECUTOR_BACKENDS = (EXECUTOR_SERIAL, EXECUTOR_PARALLEL)

#: The per-process task context (the read-only level state workers use).
_TASK_CONTEXT: Any = None


def _set_task_context(context: Any) -> None:
    """Install the level context in this process (pool initializer)."""
    global _TASK_CONTEXT
    _TASK_CONTEXT = context


def get_task_context() -> Any:
    """The level context installed for the currently running tasks."""
    return _TASK_CONTEXT


class MiningExecutor:
    """Interface of an execution backend.

    ``map_tasks(fn, tasks, context)`` must evaluate ``fn(task)`` for every
    task with ``context`` installed (readable via :func:`get_task_context`)
    and yield the outcomes *in task order*.  The returned iterable must be
    consumed before the next ``map_tasks`` call (the miner does): the task
    context is per-process state, not per-call.
    """

    #: Name of the backend ("serial" / "parallel").
    name = "abstract"

    def map_tasks(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any], context: Any
    ) -> Iterable[Any]:
        """Run ``fn`` over ``tasks``; outcomes keep the task order."""
        raise NotImplementedError


class SerialExecutor(MiningExecutor):
    """In-process, in-order execution -- the classical miner."""

    name = EXECUTOR_SERIAL

    def map_tasks(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any], context: Any
    ) -> Iterator[Any]:
        """Lazily evaluate the tasks one after another in this process.

        Laziness keeps the classical memory profile: each group outcome is
        registered (and freed) before the next group is mined, instead of
        holding a whole level's outcomes alive at once.  The previous
        context is restored when the iterator is exhausted or closed --
        restored rather than cleared, because tasks may themselves run a
        nested serial miner (the hierarchical miner's level tasks do), and
        in a parallel worker the pool-installed outer context must survive
        the inner run.
        """
        previous = get_task_context()
        _set_task_context(context)

        def _run() -> Iterator[Any]:
            try:
                for task in tasks:
                    yield fn(task)
            finally:
                _set_task_context(previous)

        return _run()


class ParallelExecutor(MiningExecutor):
    """Process-pool execution with chunked batching.

    Parameters
    ----------
    max_workers:
        Worker processes (default: ``os.cpu_count()``).
    chunk_size:
        Tasks per inter-process batch; ``None`` picks ``ceil(n / (4 *
        workers))`` so each worker sees a handful of batches (amortizing
        the pickling) while load stays balanced.
    min_tasks:
        Levels with fewer tasks than this run serially in-process -- a
        pool spawn costs more than mining a near-empty level.
    """

    name = EXECUTOR_PARALLEL

    def __init__(
        self,
        max_workers: int | None = None,
        chunk_size: int | None = None,
        min_tasks: int = 2,
    ):
        if max_workers is not None and max_workers < 1:
            raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
        self.max_workers = max_workers or os.cpu_count() or 1
        self.chunk_size = chunk_size
        self.min_tasks = min_tasks

    def _chunk(self, n_tasks: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, -(-n_tasks // (4 * self.max_workers)))

    def map_tasks(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any], context: Any
    ) -> Iterable[Any]:
        """Fan the tasks out over worker processes, preserving order.

        ``ProcessPoolExecutor.map`` already yields results in submission
        order, which is what makes the parallel mining result byte-identical
        to the serial one.  The context lives in the *workers* (pool
        initializer) and dies with the pool; the parent process buffers
        only the outcomes.
        """
        if len(tasks) < self.min_tasks or self.max_workers == 1:
            return SerialExecutor().map_tasks(fn, tasks, context)
        with ProcessPoolExecutor(
            max_workers=min(self.max_workers, len(tasks)),
            initializer=_set_task_context,
            initargs=(context,),
        ) as pool:
            return list(pool.map(fn, tasks, chunksize=self._chunk(len(tasks))))


#: Process-wide default backend (see :func:`set_default_executor`).
_DEFAULT_EXECUTOR: MiningExecutor | str = EXECUTOR_SERIAL


def resolve_executor(
    spec: MiningExecutor | str | None, n_workers: int | None = None
) -> MiningExecutor:
    """Turn an executor spec (instance, name, or ``None``) into an instance.

    ``None`` resolves to the process-wide default; ``n_workers`` only
    applies when a *name* is resolved (instances keep their own settings).
    """
    if spec is None:
        spec = _DEFAULT_EXECUTOR
    if isinstance(spec, MiningExecutor):
        return spec
    if spec == EXECUTOR_SERIAL:
        return SerialExecutor()
    if spec == EXECUTOR_PARALLEL:
        return ParallelExecutor(max_workers=n_workers)
    raise ConfigError(
        f"unknown executor {spec!r}; choose from {EXECUTOR_BACKENDS}"
    )


def default_executor() -> MiningExecutor | str:
    """The process-wide default executor spec."""
    return _DEFAULT_EXECUTOR


def set_default_executor(spec: MiningExecutor | str) -> MiningExecutor | str:
    """Set the process-wide default executor; returns the previous spec.

    Like :func:`repro.core.supportset.set_default_backend`, this lets the
    harness flip whole experiment runs between backends without threading
    a parameter through every experiment function.
    """
    global _DEFAULT_EXECUTOR
    previous = _DEFAULT_EXECUTOR
    if isinstance(spec, str):
        resolve_executor(spec)  # validate the name
    _DEFAULT_EXECUTOR = spec
    return previous
